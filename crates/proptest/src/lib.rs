//! In-repo stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements the API surface the workspace's
//! property tests use — the `proptest!` macro, `Strategy` with `prop_map`,
//! range/tuple/`any` strategies, `prop::collection::vec`,
//! `prop::sample::select`, weighted `prop_oneof!`, and the `prop_assert*`
//! macros — with deterministic per-test random generation.
//!
//! Differences from upstream: no shrinking (a failing case prints its case
//! number and seed instead), and the value stream is unrelated to upstream's.
//! Set `PROPTEST_SEED` to re-run a suite with a different seed, and
//! `PROPTEST_CASES` to override the per-test case count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-run configuration, normally set via
/// `#![proptest_config(ProptestConfig { cases: N, ..ProptestConfig::default() })]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility with real proptest configs; this
    /// mini harness reports the failing case without shrinking it.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Why a test case failed (used by `return Ok(())`-style early exits).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type each generated case body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// Deterministic RNG for a named test, with an optional `PROPTEST_SEED`
/// environment override.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            h ^= seed;
        }
    }
    StdRng::seed_from_u64(h)
}

/// Effective case count: the config's, unless `PROPTEST_CASES` overrides it.
pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(cfg.cases)
}

/// A generator of random values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )+};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Object-safe strategy wrapper used by [`Union`] (and `prop_oneof!`).
pub trait DynStrategy<V> {
    /// Draw one value.
    fn dyn_new_value(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Weighted union of strategies producing the same value type.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn DynStrategy<V>>)>,
}

impl<V> Union<V> {
    /// Build from weighted boxed arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new_weighted(arms: Vec<(u32, Box<dyn DynStrategy<V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one arm with nonzero weight");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.dyn_new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A vector of `size.start ..= size.end - 1` elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Select uniformly from `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, Box::new($strat) as Box<dyn $crate::DynStrategy<_>>),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, Box::new($strat) as Box<dyn $crate::DynStrategy<_>>),)+
        ])
    };
}

/// Assert inside a property body (panics with the case context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{ assert!($cond); }};
    ($cond:expr, $($fmt:tt)+) => {{ assert!($cond, $($fmt)+); }};
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{ assert_eq!($a, $b); }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{ assert_eq!($a, $b, $($fmt)+); }};
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{ assert_ne!($a, $b); }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{ assert_ne!($a, $b, $($fmt)+); }};
}

/// The test-defining macro. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(xs in prop::collection::vec(0u64..100, 1..20)) {
///         prop_assert!(!xs.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::effective_cases(&__cfg);
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cases {
                // Captured output is only shown for failing tests, so this
                // names the offending case (no shrinking in this stand-in).
                eprintln!(
                    "proptest {}: case {}/{} (set PROPTEST_SEED to vary)",
                    stringify!($name), __case + 1, __cases
                );
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let mut __body = move || -> $crate::TestCaseResult {
                    { $body };
                    Ok(())
                };
                if let Err(e) = __body() {
                    panic!("proptest {} case {} failed: {}", stringify!($name), __case + 1, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
        Pair(u8, bool),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            1 => Just(Shape::Dot),
            3 => (0u8..10).prop_map(Shape::Line),
            3 => (0u8..10, any::<bool>()).prop_map(|(a, b)| Shape::Pair(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vec_respects_size_bounds(xs in prop::collection::vec(0u64..50, 2..9)) {
            prop_assert!((2..9).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 50));
        }

        #[test]
        fn select_picks_from_options(s in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&s));
        }

        #[test]
        fn oneof_covers_arms(shape in arb_shape()) {
            match shape {
                Shape::Dot => {}
                Shape::Line(n) => prop_assert!(n < 10),
                Shape::Pair(n, _) => prop_assert!(n < 10),
            }
        }

        #[test]
        fn early_return_ok_works(n in 0u32..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn deterministic_given_same_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(crate::Strategy::new_value(&s, &mut a), crate::Strategy::new_value(&s, &mut b));
        }
    }
}

#![warn(missing_docs)]

//! # cffs-regroup — the online regrouping engine
//!
//! The paper's small-file wins come entirely from explicit grouping, and
//! its Section 4 aging discussion concedes that grouping quality decays as
//! files are created and deleted: members of dissolved groups scatter,
//! directories end up with their files spread across many partially filled
//! extents, and the whole-group fetch degenerates toward one-block reads.
//! This crate turns grouping from a one-shot allocation policy into a
//! *maintained invariant*: a background pass that detects fragmented
//! directories and relocates their small-file blocks back into freshly
//! carved contiguous extents.
//!
//! ## How a pass works
//!
//! 1. **Scan** ([`plan`]): walk the namespace, and for every directory
//!    collect its small files' mapped blocks. A directory *needs
//!    regrouping* when its file blocks occupy more fetch units (distinct
//!    dir-owned group extents, plus each stray ungrouped block) than the
//!    ideal packing `ceil(blocks / group_blocks)` would.
//! 2. **Execute** ([`execute`]): for each planned directory, *keep* the
//!    fullest of its existing extents (as many as fit within the ideal
//!    count — their members stay put), fill the keeps' free slots, and
//!    carve fresh *empty* extents ([`Cffs::carve_group_for`]) for the
//!    rest, relocating blocks into consecutive slots via the two-step
//!    crash-safe protocol
//!    ([`Cffs::relocate_copy_forward`] then [`Cffs::relocate_commit`]):
//!    copy-forward and flush the data, durably rewrite the block pointer,
//!    only then free the old block. A crash at any tear point leaves the
//!    file system fsck-clean with byte-identical logical contents. Old
//!    extents dissolve automatically as their last members move out.
//! 3. **Budget** ([`RegroupConfig`]): `max_blocks` caps relocations per
//!    invocation; [`RegroupMode::IdleOnly`] restricts the pass to blocks
//!    already resident in the buffer cache, so it costs no extra read I/O.
//!
//! Directory blocks themselves are never relocated: embedded inode numbers
//! encode physical location, so moving a directory block would renumber
//! every inode embedded in it. Re-formed extents therefore hold file data
//! only — a planned directory converges in one pass and scores clean
//! afterwards (the pass is idempotent).
//!
//! The per-cylinder-group occupancy/traffic index the planner builds is
//! exposed as a [`heatmap`] for `cffs-inspect`.

pub mod heatmap;

use cffs_core::Cffs;
use cffs_core::layout::INO_ROOT;
use cffs_fslib::{FileKind, FileSystem, FsResult, Ino, BLOCK_SIZE};
use cffs_obs::json::Json;
use cffs_obs::{obj, Ctr, Sig};
use std::collections::{BTreeMap, BTreeSet};

/// How eagerly a pass may touch cold data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegroupMode {
    /// Only relocate blocks already resident in the buffer cache — the
    /// pass issues no source-read I/O (destination writes still happen).
    IdleOnly,
    /// Relocate cold blocks too, reading them through the cache.
    Aggressive,
}

/// Budget knobs for one regrouping invocation.
#[derive(Debug, Clone)]
pub struct RegroupConfig {
    /// Maximum blocks relocated in this invocation.
    pub max_blocks: usize,
    /// Idle-only vs. aggressive (see [`RegroupMode`]).
    pub mode: RegroupMode,
}

impl Default for RegroupConfig {
    fn default() -> Self {
        RegroupConfig { max_blocks: 256, mode: RegroupMode::Aggressive }
    }
}

impl RegroupConfig {
    /// An unbounded aggressive pass — restore everything in one call.
    pub fn exhaustive() -> Self {
        RegroupConfig { max_blocks: usize::MAX, mode: RegroupMode::Aggressive }
    }
}

/// One block relocation the planner proposes.
#[derive(Debug, Clone, Copy)]
pub struct BlockMove {
    /// File owning the block.
    pub ino: Ino,
    /// Logical block within the file.
    pub lbn: u64,
    /// Physical block at plan time.
    pub from: u64,
}

/// The planner's verdict on one fragmented directory.
#[derive(Debug, Clone)]
pub struct DirPlan {
    /// The directory whose files will be re-grouped.
    pub dir: Ino,
    /// File blocks to relocate, in namespace order.
    pub moves: Vec<BlockMove>,
    /// Distinct dir-owned extents the blocks currently occupy.
    pub extents_used: usize,
    /// Blocks outside any dir-owned extent.
    pub stray: usize,
    /// `ceil(blocks / group_blocks)` — the extent count ideal packing
    /// would need.
    pub ideal_extents: usize,
}

/// A dry-runnable relocation plan over the whole file system.
#[derive(Debug, Clone, Default)]
pub struct RegroupPlan {
    /// Fragmented directories, in namespace (breadth-first) order.
    pub dirs: Vec<DirPlan>,
    /// Directories scanned, fragmented or not.
    pub dirs_scanned: usize,
    /// Small-file blocks examined across all scanned directories.
    pub blocks_scanned: usize,
}

impl RegroupPlan {
    /// Total blocks the plan would relocate (before budgeting).
    pub fn total_blocks(&self) -> usize {
        self.dirs.iter().map(|d| d.moves.len()).sum()
    }

    /// Human-readable dry-run rendering (for `cffs-inspect regroup`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "regroup plan: {} of {} directories fragmented, {} of {} blocks to move\n",
            self.dirs.len(),
            self.dirs_scanned,
            self.total_blocks(),
            self.blocks_scanned,
        ));
        for d in &self.dirs {
            out.push_str(&format!(
                "  dir {:#x}: {} blocks in {} extents + {} stray (ideal {})\n",
                d.dir,
                d.moves.len(),
                d.extents_used,
                d.stray,
                d.ideal_extents,
            ));
        }
        out
    }

    /// JSON rendering (for plotting / scripting).
    pub fn to_json(&self) -> Json {
        obj![
            ("dirs_scanned", Json::Int(self.dirs_scanned as i64)),
            ("blocks_scanned", Json::Int(self.blocks_scanned as i64)),
            ("total_blocks", Json::Int(self.total_blocks() as i64)),
            (
                "dirs",
                Json::Arr(
                    self.dirs
                        .iter()
                        .map(|d| {
                            obj![
                                ("dir", Json::Int(d.dir as i64)),
                                ("blocks", Json::Int(d.moves.len() as i64)),
                                ("extents_used", Json::Int(d.extents_used as i64)),
                                ("stray", Json::Int(d.stray as i64)),
                                ("ideal_extents", Json::Int(d.ideal_extents as i64)),
                            ]
                        })
                        .collect(),
                )
            ),
        ]
    }
}

/// What one [`execute`] invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegroupOutcome {
    /// Blocks relocated (also bumped on `regroup_blocks_moved`).
    pub blocks_moved: usize,
    /// Fresh extents carved (also bumped on `regroup_groups_formed`).
    pub groups_formed: usize,
    /// Directories fully processed.
    pub dirs_regrouped: usize,
    /// Cold blocks skipped under [`RegroupMode::IdleOnly`].
    pub skipped_cold: usize,
    /// Blocks skipped because they vanished or were already in place.
    pub skipped_stale: usize,
    /// Directories abandoned because no contiguous extent could be carved.
    pub carve_failures: usize,
    /// True when `max_blocks` ran out before the plan did.
    pub budget_exhausted: bool,
}

/// Scan the namespace and score every directory's grouping quality.
///
/// Only *small* files participate — files of 1..=`group_blocks` data
/// blocks, the population the allocator itself groups. Empty files,
/// large (degrouped) files, multiply-linked files (no unique home
/// directory — regrouping one link would ping-pong the data between the
/// linking directories' groups), and directories' own blocks are left
/// alone (directory blocks hold embedded inodes whose numbers encode
/// physical location, so they must not move).
pub fn plan(fs: &mut Cffs, _cfg: &RegroupConfig) -> FsResult<RegroupPlan> {
    let gb = fs.config().group_blocks as u64;
    let mut out = RegroupPlan::default();
    // Breadth-first namespace walk, readdir order — deterministic.
    let mut queue: Vec<Ino> = vec![INO_ROOT];
    let mut qi = 0;
    while qi < queue.len() {
        let dir = queue[qi];
        qi += 1;
        out.dirs_scanned += 1;
        let mut moves: Vec<BlockMove> = Vec::new();
        for ent in fs.readdir(dir)? {
            if ent.kind == FileKind::Dir {
                queue.push(ent.ino);
                continue;
            }
            let attr = fs.getattr(ent.ino)?;
            let nblocks = attr.size.div_ceil(BLOCK_SIZE as u64);
            if nblocks == 0 || nblocks > gb {
                continue;
            }
            // A multiply-linked file has no unique home directory: moving
            // it toward one link strands it as a stray for the other, and
            // two regrouping passes would ping-pong it forever. Leave it
            // wherever the allocator put it.
            if attr.nlink > 1 {
                continue;
            }
            for (lbn, from) in fs.file_block_map(ent.ino)? {
                moves.push(BlockMove { ino: ent.ino, lbn, from });
            }
        }
        out.blocks_scanned += moves.len();
        if moves.is_empty() {
            continue;
        }
        // Score: distinct dir-owned extents + stray blocks vs. ideal.
        let sb = fs.superblock().clone();
        let mut extents: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut stray = 0usize;
        for mv in &moves {
            match fs.group_index().group_of_block(&sb, mv.from) {
                Some(g) if g.owner == dir => {
                    extents.insert((g.cg, g.idx));
                }
                _ => stray += 1,
            }
        }
        let ideal = moves.len().div_ceil(gb as usize);
        if extents.len() + stray > ideal {
            out.dirs.push(DirPlan {
                dir,
                moves,
                extents_used: extents.len(),
                stray,
                ideal_extents: ideal,
            });
        }
    }
    Ok(out)
}

/// Execute a plan under the configured budget. Relocations use the
/// two-step crash-safe protocol; partially executed plans (budget
/// exhaustion, carve failure, crash) leave the file system consistent —
/// rerunning later resumes where this pass stopped.
///
/// Per directory, the pass first selects *keep* extents: the dir-owned
/// extents holding the most planned blocks, as many as fit within the
/// ideal extent count (each keep costs one extent but saves its members
/// from moving). Blocks already inside a keep stay put; everything else
/// fills the keeps' free slots, then freshly carved empty extents. The
/// final extent count is bounded by the ideal, so a full pass converges
/// in one shot with the minimum number of relocations — and a budgeted
/// pass resumes naturally, because the extents it part-filled rank as
/// member-rich keeps next time.
pub fn execute(fs: &mut Cffs, plan: &RegroupPlan, cfg: &RegroupConfig) -> FsResult<RegroupOutcome> {
    let gb = fs.config().group_blocks as usize;
    let sb = fs.superblock().clone();
    let mut out = RegroupOutcome::default();
    let mut budget = cfg.max_blocks;
    'dirs: for dp in &plan.dirs {
        // Planned blocks per dir-owned extent, at plan-time locations.
        let mut members: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        for mv in &dp.moves {
            if let Some(g) = fs.group_index().group_of_block(&sb, mv.from) {
                if g.owner == dp.dir {
                    *members.entry((g.cg, g.idx)).or_insert(0) += 1;
                }
            }
        }
        let n = dp.moves.len();
        let ideal = n.div_ceil(gb);
        // Greedy keep selection, fullest first: admit an extent only while
        // the projected final count (keeps + carves for the overflow)
        // stays within the ideal.
        let mut ranked: Vec<(usize, usize, (u32, u32))> = members
            .iter()
            .map(|(&k, &m)| {
                let slack = fs.group_index().get(k.0, k.1).map_or(0, |g| g.slack() as usize);
                (m, slack, k)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)));
        let mut keeps: Vec<(u32, u32)> = Vec::new();
        let (mut kept_m, mut kept_free) = (0usize, 0usize);
        for &(m, slack, k) in &ranked {
            let to_place = n - (kept_m + m);
            let overflow = to_place.saturating_sub(kept_free + slack);
            if keeps.len() + 1 + overflow.div_ceil(gb) <= ideal {
                keeps.push(k);
                kept_m += m;
                kept_free += slack;
            }
        }
        let keep_set: BTreeSet<(u32, u32)> = keeps.iter().copied().collect();
        let mut targets = keeps.into_iter();
        let mut key: Option<(u32, u32)> = None;
        for mv in &dp.moves {
            // A block already inside a kept extent is in final position.
            let home = fs
                .group_index()
                .group_of_block(&sb, mv.from)
                .filter(|g| g.owner == dp.dir)
                .map(|g| (g.cg, g.idx));
            if home.is_some_and(|k| keep_set.contains(&k)) {
                continue;
            }
            if budget == 0 {
                out.budget_exhausted = true;
                break 'dirs;
            }
            if cfg.mode == RegroupMode::IdleOnly && !fs.block_resident(mv.from) {
                out.skipped_cold += 1;
                continue;
            }
            // Advance the target whenever the current extent fills: next
            // keep with room, else carve a fresh empty extent.
            let full = key
                .and_then(|k| fs.group_index().get(k.0, k.1).copied())
                .is_none_or(|g| g.free_slot().is_none());
            if full {
                key = targets.find(|k| {
                    fs.group_index()
                        .get(k.0, k.1)
                        .is_some_and(|g| g.free_slot().is_some())
                });
                if key.is_none() {
                    key = fs.carve_group_for(dp.dir)?;
                    let Some(_) = key else {
                        out.carve_failures += 1;
                        continue 'dirs;
                    };
                    out.groups_formed += 1;
                }
            }
            match fs.relocate_block_into(mv.ino, mv.lbn, key.expect("selected above"))? {
                Some(_) => {
                    out.blocks_moved += 1;
                    budget -= 1;
                }
                None => out.skipped_stale += 1,
            }
        }
        out.dirs_regrouped += 1;
    }
    Ok(out)
}

/// Policy knobs for the signal-driven autotrigger
/// ([`autotrigger`]) — the loop that turns `group_fetch_util_ewma`
/// decay into budgeted regroup passes without explicit invocation.
#[derive(Debug, Clone)]
pub struct AutotriggerConfig {
    /// Fire when the group-fetch-utilization EWMA sits below this
    /// percentage.
    pub util_floor_pct: f64,
    /// Ignore the EWMA until it has folded in at least this many
    /// fetches (a handful of samples says nothing about decay).
    pub min_samples: u64,
    /// Relocation budget handed to each fired pass.
    pub budget_blocks: usize,
    /// Mode for fired passes. Defaults to [`RegroupMode::IdleOnly`]: the
    /// trigger runs inside live traffic, so it must not add read I/O.
    pub mode: RegroupMode,
}

impl Default for AutotriggerConfig {
    fn default() -> Self {
        AutotriggerConfig {
            util_floor_pct: 85.0,
            min_samples: 8,
            budget_blocks: 64,
            mode: RegroupMode::IdleOnly,
        }
    }
}

/// Check the stack's health signals and, if group-fetch utilization has
/// decayed below the configured floor, fire one budgeted regroup pass.
///
/// Call this from any convenient point in the serving loop (between
/// requests, after a sync, on a timer tick). The floor is armed on the
/// [`Sig::GroupFetchUtil`] signal, so each decay episode also leaves a
/// `signal.group_fetch_util.low` event in the trace ring; every fired
/// pass bumps `regroup_autotriggers` and drops a `regroup.autotrigger`
/// event (operands: EWMA in milli-percent, blocks moved). Returns
/// `None` when the signal is healthy or still warming up.
pub fn autotrigger(fs: &mut Cffs, cfg: &AutotriggerConfig) -> FsResult<Option<RegroupOutcome>> {
    let obs = fs.obs();
    obs.set_signal_floor(Sig::GroupFetchUtil, cfg.util_floor_pct);
    let v = obs.signal(Sig::GroupFetchUtil);
    if v.samples < cfg.min_samples || !v.low {
        return Ok(None);
    }
    let outcome = run(
        fs,
        &RegroupConfig { max_blocks: cfg.budget_blocks, mode: cfg.mode },
    )?;
    obs.bump(Ctr::RegroupAutotriggers);
    obs.trace(
        obs.clock_ns(),
        "regroup.autotrigger",
        (v.ewma * 1000.0).max(0.0).round() as u64,
        outcome.blocks_moved as u64,
    );
    Ok(Some(outcome))
}

/// Plan and execute until the namespace scores clean or the budget runs
/// out — the background daemon's entry point.
///
/// A single [`execute`] pass can leave a directory one step short of
/// ideal when its files share extents with immovable directory blocks,
/// so this loops (re-planning each time, bounded) while progress is
/// being made. The outcome accumulates over all passes.
pub fn run(fs: &mut Cffs, cfg: &RegroupConfig) -> FsResult<RegroupOutcome> {
    let mut total = RegroupOutcome::default();
    for _ in 0..8 {
        let p = plan(fs, cfg)?;
        if p.dirs.is_empty() {
            break;
        }
        let remaining = RegroupConfig {
            max_blocks: cfg.max_blocks.saturating_sub(total.blocks_moved),
            mode: cfg.mode,
        };
        let o = execute(fs, &p, &remaining)?;
        total.blocks_moved += o.blocks_moved;
        total.groups_formed += o.groups_formed;
        total.dirs_regrouped += o.dirs_regrouped;
        total.skipped_cold += o.skipped_cold;
        total.skipped_stale += o.skipped_stale;
        total.carve_failures += o.carve_failures;
        total.budget_exhausted |= o.budget_exhausted;
        if o.blocks_moved == 0 || total.budget_exhausted {
            break;
        }
    }
    Ok(total)
}

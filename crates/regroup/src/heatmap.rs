//! Per-cylinder-group occupancy/traffic heatmap.
//!
//! The same per-CG index the regrouper's planner keys off
//! ([`Cffs::cg_usage`] + the group index), joined with recent trace-ring
//! disk events bucketed by cylinder group. `cffs-inspect heatmap` renders
//! the result as a text grid and as JSON for plotting.

use cffs_core::Cffs;
use cffs_fslib::SECTORS_PER_BLOCK;
use cffs_obs::json::Json;
use cffs_obs::{obj, Event};

/// One cylinder group's bucket: occupancy, grouping state, and traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CgHeat {
    /// Cylinder group number.
    pub cg: u32,
    /// Data blocks the group tracks.
    pub data_blocks: u32,
    /// Data blocks allocated.
    pub used_blocks: u32,
    /// Group extents carved here.
    pub extents: u32,
    /// Live member blocks across those extents.
    pub live_members: u32,
    /// Reserved-but-unused slots across those extents.
    pub slack: u32,
    /// Trace-ring read requests landing here.
    pub read_ios: u64,
    /// Trace-ring write requests landing here.
    pub write_ios: u64,
    /// Sectors read by those requests.
    pub read_sectors: u64,
    /// Sectors written by those requests.
    pub write_sectors: u64,
    /// `group_fetch_util` EWMA for fetches resolved from this group, in
    /// milli-percent (77_000 = 77%), from the live per-CG register table.
    pub util_ewma_milli: u64,
    /// Utilization samples folded into that EWMA (0 = EWMA unseeded).
    pub util_samples: u64,
}

/// Build the heatmap from a mounted file system plus a window of trace
/// events (normally `fs.obs().recent_events(n)`). Each `disk.read` /
/// `disk.write` event is attributed to the cylinder group of its starting
/// block; events outside any CG (superblock area) are dropped.
pub fn build(fs: &Cffs, events: &[Event]) -> Vec<CgHeat> {
    let sb = fs.superblock();
    let mut heat: Vec<CgHeat> = fs
        .cg_usage()
        .into_iter()
        .map(|u| CgHeat {
            cg: u.cg,
            data_blocks: u.data_blocks,
            used_blocks: u.used_blocks,
            ..CgHeat::default()
        })
        .collect();
    for g in fs.group_index().iter() {
        let h = &mut heat[g.cg as usize];
        h.extents += 1;
        h.live_members += g.live();
        h.slack += g.slack();
    }
    // Join the live per-CG utilization EWMAs (sampled as group fetches
    // resolve) onto the occupancy rows.
    for c in fs.obs().cg_stats() {
        if let Some(h) = heat.get_mut(c.cg as usize) {
            h.util_ewma_milli = c.util_ewma_milli;
            h.util_samples = c.util_samples;
        }
    }
    for ev in events {
        let (reads, writes) = match ev.tag {
            "disk.read" => (true, false),
            "disk.write" => (false, true),
            _ => continue,
        };
        let Some(cg) = sb.block_cg(ev.a / SECTORS_PER_BLOCK) else { continue };
        let h = &mut heat[cg as usize];
        if reads {
            h.read_ios += 1;
            h.read_sectors += ev.b;
        }
        if writes {
            h.write_ios += 1;
            h.write_sectors += ev.b;
        }
    }
    heat
}

/// Render the heatmap as a text grid, one row per cylinder group: an
/// occupancy bar plus grouping and traffic figures.
pub fn render(heat: &[CgHeat]) -> String {
    const BAR: usize = 32;
    let mut out = String::new();
    out.push_str("cg   occupancy                         used/data   ext live slack     R-ios    W-ios  gf-util\n");
    for h in heat {
        let frac = if h.data_blocks == 0 {
            0.0
        } else {
            h.used_blocks as f64 / h.data_blocks as f64
        };
        let filled = (frac * BAR as f64).round() as usize;
        let bar: String = (0..BAR).map(|i| if i < filled { '#' } else { '.' }).collect();
        let util = if h.util_samples > 0 {
            format!("{:.1}%", h.util_ewma_milli as f64 / 1000.0)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{:>3} |{}| {:>5}/{:<5} {:>4} {:>4} {:>5} {:>9} {:>8} {:>8}\n",
            h.cg, bar, h.used_blocks, h.data_blocks, h.extents, h.live_members, h.slack,
            h.read_ios, h.write_ios, util,
        ));
    }
    out
}

/// JSON rendering for plotting.
pub fn to_json(heat: &[CgHeat]) -> Json {
    Json::Arr(
        heat.iter()
            .map(|h| {
                obj![
                    ("cg", Json::Int(h.cg as i64)),
                    ("data_blocks", Json::Int(h.data_blocks as i64)),
                    ("used_blocks", Json::Int(h.used_blocks as i64)),
                    ("extents", Json::Int(h.extents as i64)),
                    ("live_members", Json::Int(h.live_members as i64)),
                    ("slack", Json::Int(h.slack as i64)),
                    ("read_ios", Json::Int(h.read_ios as i64)),
                    ("write_ios", Json::Int(h.write_ios as i64)),
                    ("read_sectors", Json::Int(h.read_sectors as i64)),
                    ("write_sectors", Json::Int(h.write_sectors as i64)),
                    ("util_ewma_milli", Json::Int(h.util_ewma_milli as i64)),
                    ("util_samples", Json::Int(h.util_samples as i64)),
                ]
            })
            .collect(),
    )
}

//! Soak mode — an open-ended mixed workload for *watching* the stack.
//!
//! Every other workload in this crate exists to produce a number; the
//! soak exists to produce *activity*: round after round of seeded
//! create/read/overwrite/delete churn with periodic syncs and cache
//! drops, so the telemetry feed (and `cffs-top` following it) has
//! something worth looking at for as long as the operator cares to
//! watch. The op mix deliberately sweeps the observable surface each
//! round: allocation (CG gauges move), cold group fetches (utilization
//! samples), dirty buildup then sync (backlog signal), deletes
//! (fragmentation the regrouper can later chase).
//!
//! The workload is seeded and runs in simulated time, so a soak with a
//! fixed round count is as deterministic as any other workload here —
//! "soak" describes the shape, not a dependence on wall time.

use cffs_fslib::path::mkdir_p;
use cffs_fslib::{FileKind, FileSystem, FsResult, Ino};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one soak run.
#[derive(Debug, Clone, Copy)]
pub struct SoakParams {
    /// Churn rounds to run (each round touches every directory).
    pub rounds: usize,
    /// Directories the soak churns.
    pub ndirs: usize,
    /// Files per directory the soak tops back up to each round.
    pub files_per_dir: usize,
    /// Bytes per file.
    pub file_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SoakParams {
    fn default() -> Self {
        SoakParams { rounds: 8, ndirs: 6, files_per_dir: 24, file_size: 2048, seed: 1997 }
    }
}

/// Tally of one soak run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoakResult {
    /// Rounds completed.
    pub rounds: usize,
    /// Operations performed (create/write/read/unlink each count one).
    pub ops: u64,
    /// Payload bytes written plus read.
    pub bytes: u64,
}

/// Run the soak. `on_round(i)` fires after round `i` completes (with the
/// image synced) — the hook the repro binary uses for progress output.
pub fn run(
    fs: &mut (impl FileSystem + ?Sized),
    p: &SoakParams,
    mut on_round: impl FnMut(usize),
) -> FsResult<SoakResult> {
    let mut rng = StdRng::seed_from_u64(p.seed.wrapping_mul(0xA076_1D64_78BD_642F));
    let mut dirs: Vec<Ino> = Vec::with_capacity(p.ndirs);
    for d in 0..p.ndirs {
        dirs.push(mkdir_p(fs, &format!("/soak{d:02}"))?);
    }
    let mut res = SoakResult::default();
    let mut buf = vec![0u8; p.file_size];
    let mut serial = 0u64;
    for round in 0..p.rounds {
        for &dir in &dirs {
            // Top the directory back up to the target population (the
            // first round creates everything, later rounds replace what
            // the previous round deleted).
            let have = fs.readdir(dir)?.iter().filter(|e| e.kind == FileKind::File).count();
            for _ in have..p.files_per_dir {
                let ino = fs.create(dir, &format!("s{serial:06}"))?;
                serial += 1;
                let payload: Vec<u8> =
                    (0..p.file_size).map(|j| ((serial as usize + j) % 251) as u8).collect();
                fs.write(ino, 0, &payload)?;
                res.ops += 2;
                res.bytes += p.file_size as u64;
            }
        }
        // Cold per-directory read sweep: group fetches resolve inside the
        // round, feeding the utilization EWMA and the per-CG heat.
        fs.drop_caches()?;
        for &dir in &dirs {
            let entries = fs.readdir(dir)?;
            for e in entries.iter().filter(|e| e.kind == FileKind::File) {
                let n = fs.read(e.ino, 0, &mut buf)?;
                res.ops += 1;
                res.bytes += n as u64;
            }
            fs.drop_caches()?;
        }
        // Seeded churn: overwrite a third, delete a quarter.
        for &dir in &dirs {
            let entries = fs.readdir(dir)?;
            for e in entries.iter().filter(|e| e.kind == FileKind::File) {
                match rng.gen_range(0..12u64) {
                    0..=3 => {
                        let payload = vec![(serial & 0xff) as u8; p.file_size];
                        fs.write(e.ino, 0, &payload)?;
                        res.ops += 1;
                        res.bytes += p.file_size as u64;
                    }
                    4..=6 => {
                        fs.unlink(dir, &e.name)?;
                        res.ops += 1;
                    }
                    _ => {}
                }
            }
        }
        fs.sync()?;
        res.rounds = round + 1;
        on_round(round);
    }
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_fslib::model::ModelFs;

    #[test]
    fn soak_runs_and_reports_work() {
        let mut fs = ModelFs::new();
        let p = SoakParams { rounds: 3, ndirs: 2, files_per_dir: 5, ..SoakParams::default() };
        let mut seen = Vec::new();
        let r = run(&mut fs, &p, |i| seen.push(i)).expect("soak");
        assert_eq!(r.rounds, 3);
        assert_eq!(seen, vec![0, 1, 2]);
        assert!(r.ops > 0 && r.bytes > 0);
    }
}

//! File-size distributions.
//!
//! The paper's Figure 1 argument: "79% of all files on our file servers
//! are less than 8 KB in size", and [Baker91]: "about 80% of the files
//! accessed ... were less than 10KB". [`Empirical1993`] reproduces that
//! shape with a piecewise log-uniform CDF; a lognormal alternative is
//! provided for sensitivity studies.

use rand::Rng;

/// A sampleable file-size distribution.
pub trait SizeDist {
    /// Draw one file size in bytes.
    fn sample(&self, rng: &mut impl Rng) -> usize;
}

/// Piecewise CDF matching mid-90s file-server measurements.
///
/// | size bucket | cumulative fraction |
/// |---|---|
/// | ≤ 1 KB | 0.33 |
/// | ≤ 4 KB | 0.62 |
/// | ≤ 8 KB | 0.79 |
/// | ≤ 64 KB | 0.95 |
/// | ≤ 1 MB | 0.998 |
/// | ≤ 4 MB | 1.0 |
#[derive(Debug, Clone, Copy, Default)]
pub struct Empirical1993;

const BUCKETS: [(f64, usize, usize); 6] = [
    (0.33, 1, 1024),
    (0.62, 1025, 4096),
    (0.79, 4097, 8192),
    (0.95, 8193, 65_536),
    (0.998, 65_537, 1 << 20),
    (1.0, (1 << 20) + 1, 4 << 20),
];

impl SizeDist for Empirical1993 {
    fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        for &(cum, lo, hi) in &BUCKETS {
            if u <= cum {
                // Log-uniform within the bucket: small files dominate.
                let llo = (lo as f64).ln();
                let lhi = (hi as f64).ln();
                let v = (llo + rng.gen::<f64>() * (lhi - llo)).exp();
                return (v as usize).clamp(lo, hi);
            }
        }
        4 << 20
    }
}

/// A fixed size (micro-benchmarks).
#[derive(Debug, Clone, Copy)]
pub struct Fixed(pub usize);

impl SizeDist for Fixed {
    fn sample(&self, _rng: &mut impl Rng) -> usize {
        self.0
    }
}

/// Lognormal sizes with the given ln-space mean and sigma, clamped to
/// `[1, max]`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of ln(size).
    pub mu: f64,
    /// Std-dev of ln(size).
    pub sigma: f64,
    /// Upper clamp in bytes.
    pub max: usize,
}

impl Default for LogNormal {
    /// Median 2 KB, heavy tail, 4 MB cap.
    fn default() -> Self {
        LogNormal { mu: (2048f64).ln(), sigma: 1.6, max: 4 << 20 }
    }
}

impl SizeDist for LogNormal {
    fn sample(&self, rng: &mut impl Rng) -> usize {
        // Box-Muller.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        ((self.mu + self.sigma * z).exp() as usize).clamp(1, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_reproduces_the_79_percent_point() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Empirical1993;
        let n = 50_000;
        let under_8k = (0..n).filter(|_| d.sample(&mut rng) <= 8192).count();
        let frac = under_8k as f64 / n as f64;
        assert!((0.76..0.82).contains(&frac), "P(size <= 8KB) = {frac}");
    }

    #[test]
    fn empirical_sizes_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Empirical1993;
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1..=4 << 20).contains(&s));
        }
    }

    #[test]
    fn fixed_is_fixed() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Fixed(1024).sample(&mut rng), 1024);
    }

    #[test]
    fn lognormal_median_near_target() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = LogNormal::default();
        let mut v: Vec<usize> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        v.sort_unstable();
        let median = v[10_000];
        assert!((1024..4096).contains(&median), "median {median}");
    }
}

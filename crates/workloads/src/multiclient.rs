//! Multi-client session driver for the scale-out volume work.
//!
//! Replays a fleet of seeded user *sessions* — open/read/write/fsync
//! mixes with Zipf-skewed directory popularity — against any
//! [`ConcurrentFs`] instance. This is the workload behind E16
//! (`repro_volume`): thousands of sessions spread over a handful of OS
//! threads, where a popular-project skew concentrates traffic the way a
//! production namespace would, and per-directory sharding decides how
//! much of it each disk absorbs.
//!
//! ## Phases
//!
//! 1. **Setup** (main thread): `ndirs` project directories `/p0..`,
//!    then `sync`.
//! 2. **Populate** (threaded): each thread fills the directories it owns
//!    (`d % nthreads`) with `files_per_dir` small files, plus one
//!    `big` file in every `big_every`-th directory (sized to cross a
//!    volume set's stripe threshold). Ends with a `sync` barrier.
//! 3. **Sessions** (threaded, *measured*): each thread replays the
//!    sessions it owns (`s % nthreads`). A session picks a directory by
//!    Zipf rank through a seeded permutation, then runs
//!    `ops_per_session` iterations: resolve a file by full path (the
//!    "open"), then read it, overwrite it, read every byte of the
//!    big file, or `sync` (the fsync stand-in), per the seeded mix.
//!    The caller's phase hook runs at the populate barrier, so E16 can
//!    drop every volume's caches and make this window disk-bound.
//! 4. **Churn** (threaded): seeded unlinks and re-creates in owned
//!    directories, then a final `sync` — the mutation pass the fsck
//!    acceptance gate runs after.
//!
//! ## Determinism
//!
//! Session work is partitioned by session index, never stolen, so op
//! and byte tallies are exact across runs at any thread count. With
//! `nthreads == 1` the whole run (including every feed frame) is
//! byte-deterministic; multi-threaded runs share the per-volume disk
//! timelines and are deterministic in counts but not in nanoseconds —
//! the same discipline as [`crate::concurrent`].

use cffs_disksim::SimDuration;
use cffs_fslib::path::{mkdir_p_c, resolve_c};
use cffs_fslib::{ConcurrentFs, FsResult, Ino};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::concurrent::fan_out;

/// Zipf(s) sampler over ranks `0..n` (rank 0 most popular), tabulated
/// as a fixed-point CDF so sampling is one `u64` draw plus a binary
/// search. `s` is given in milli-units (900 = the classic 0.9 skew).
#[derive(Debug, Clone)]
pub struct Zipf {
    cum: Vec<u64>,
    total: u64,
}

impl Zipf {
    /// Tabulate the CDF for `n` ranks with exponent `s_milli / 1000`.
    pub fn new(n: usize, s_milli: u64) -> Zipf {
        assert!(n > 0, "zipf needs at least one rank");
        let s = s_milli as f64 / 1000.0;
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let total_w: f64 = weights.iter().sum();
        let scale = (1u64 << 48) as f64;
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cum.push(((acc / total_w) * scale) as u64);
        }
        let total = *cum.last().expect("non-empty");
        Zipf { cum, total }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let x = rng.gen_range(0..self.total.max(1));
        self.cum.partition_point(|&c| c <= x).min(self.cum.len() - 1)
    }
}

/// Parameters of one multi-client run.
#[derive(Debug, Clone, Copy)]
pub struct MulticlientParams {
    /// OS threads the sessions are spread over.
    pub nthreads: usize,
    /// Seeded client sessions (session `s` runs on thread
    /// `s % nthreads`).
    pub sessions: usize,
    /// Project directories `/p0 .. /p{ndirs-1}`.
    pub ndirs: usize,
    /// Small files per directory.
    pub files_per_dir: usize,
    /// Bytes per small file.
    pub file_size: usize,
    /// Open+op iterations per session.
    pub ops_per_session: usize,
    /// Zipf exponent over directory popularity, in milli-units
    /// (900 = 0.9; 0 = uniform).
    pub zipf_milli: u64,
    /// Percent of session iterations that overwrite the opened file.
    pub write_pct: u32,
    /// Percent of session iterations that `sync` (the fsync stand-in on
    /// this surface: write back everything dirty).
    pub fsync_pct: u32,
    /// Percent of session iterations that read the directory's `big`
    /// file whole instead (skipped in directories that have none); the
    /// rest read the opened small file whole. Whole-file big reads span
    /// every stripe part, so on a volume set they overlap all spindles.
    pub big_pct: u32,
    /// Every `big_every`-th directory gets one `big` file (0 = none).
    pub big_every: usize,
    /// Bytes of each `big` file — size it past a volume set's stripe
    /// threshold and session traffic exercises striped reads.
    pub big_size: usize,
    /// RNG seed; session `s` derives its stream from `seed ^ s`.
    pub seed: u64,
}

impl Default for MulticlientParams {
    fn default() -> Self {
        MulticlientParams {
            nthreads: 4,
            sessions: 2000,
            ndirs: 64,
            files_per_dir: 16,
            file_size: 4096,
            ops_per_session: 8,
            zipf_milli: 900,
            write_pct: 20,
            fsync_pct: 1,
            big_pct: 20,
            big_every: 4,
            big_size: 256 * 1024,
            seed: 42,
        }
    }
}

/// Result of one multi-client run.
#[derive(Debug, Clone)]
pub struct MulticlientResult {
    /// Threads that ran.
    pub nthreads: usize,
    /// Sessions replayed.
    pub sessions: usize,
    /// Operations completed per thread, all phases.
    pub per_thread_ops: Vec<u64>,
    /// Operations completed per thread inside the measured sessions
    /// window.
    pub session_ops: Vec<u64>,
    /// Payload bytes written plus read, all threads, all phases.
    pub bytes: u64,
    /// Elapsed simulated time of the sessions window (cross-thread
    /// clock high-water mark delta).
    pub elapsed: SimDuration,
}

impl MulticlientResult {
    /// Total operations across threads and phases.
    pub fn total_ops(&self) -> u64 {
        self.per_thread_ops.iter().sum()
    }

    /// Operations inside the measured sessions window, all threads.
    pub fn total_session_ops(&self) -> u64 {
        self.session_ops.iter().sum()
    }

    /// Aggregate sessions-window operations per second of simulated
    /// time — the number the E16 scaling gate is about.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.as_nanos() == 0 {
            return f64::INFINITY;
        }
        self.total_session_ops() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Deterministic content byte for small file `f` of directory `d`.
fn fill_byte(d: usize, f: usize) -> u8 {
    ((d.wrapping_mul(31) + f) & 0xff) as u8
}

fn has_big(d: usize, p: &MulticlientParams) -> bool {
    p.big_every > 0 && d.is_multiple_of(p.big_every) && p.big_size > 0
}

/// Phase 2 body: fill this thread's directories. Returns (ops, bytes).
fn populate(
    fs: &(impl ConcurrentFs + ?Sized),
    t: usize,
    dirs: &[Ino],
    p: &MulticlientParams,
) -> FsResult<(u64, u64)> {
    let mut ops = 0u64;
    let mut bytes = 0u64;
    for (i, &dir) in dirs.iter().enumerate() {
        let d = t + i * p.nthreads; // global directory index
        for f in 0..p.files_per_dir {
            let ino = fs.create(dir, &format!("f{f}"))?;
            fs.write(ino, 0, &vec![fill_byte(d, f); p.file_size])?;
            ops += 2;
            bytes += p.file_size as u64;
        }
        if has_big(d, p) {
            let big = fs.create(dir, "big")?;
            let payload: Vec<u8> = (0..p.big_size).map(|i| (i % 251) as u8).collect();
            fs.write(big, 0, &payload)?;
            ops += 2;
            bytes += p.big_size as u64;
        }
    }
    Ok((ops, bytes))
}

/// Phase 3 body: replay this thread's sessions. Returns (ops, bytes).
fn sessions(
    fs: &(impl ConcurrentFs + ?Sized),
    t: usize,
    zipf: &Zipf,
    dir_perm: &[usize],
    p: &MulticlientParams,
) -> FsResult<(u64, u64)> {
    let mut ops = 0u64;
    let mut bytes = 0u64;
    let mut buf = vec![0u8; p.file_size.max(p.big_size)];
    let mut s = t;
    while s < p.sessions {
        let mut rng =
            StdRng::seed_from_u64((p.seed ^ s as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let d = dir_perm[zipf.sample(&mut rng)];
        for _ in 0..p.ops_per_session {
            let f = rng.gen_range(0..p.files_per_dir as u64) as usize;
            let roll = rng.gen_range(0..100u64) as u32;
            if roll < p.write_pct {
                let ino = resolve_c(fs, &format!("/p{d}/f{f}"))?;
                fs.write(ino, 0, &vec![fill_byte(d, f); p.file_size])?;
                ops += 2;
                bytes += p.file_size as u64;
            } else if roll < p.write_pct + p.fsync_pct {
                fs.sync()?;
                ops += 1;
            } else if roll < p.write_pct + p.fsync_pct + p.big_pct && has_big(d, p) {
                let ino = resolve_c(fs, &format!("/p{d}/big"))?;
                let n = fs.read(ino, 0, &mut buf[..p.big_size])?;
                ops += 2;
                bytes += n as u64;
            } else {
                let ino = resolve_c(fs, &format!("/p{d}/f{f}"))?;
                let n = fs.read(ino, 0, &mut buf[..p.file_size])?;
                ops += 2;
                bytes += n as u64;
            }
        }
        s += p.nthreads;
    }
    Ok((ops, bytes))
}

/// Phase 4 body: seeded unlink + re-create churn in this thread's
/// directories. Returns (ops, bytes).
fn churn(
    fs: &(impl ConcurrentFs + ?Sized),
    t: usize,
    dirs: &[Ino],
    p: &MulticlientParams,
) -> FsResult<(u64, u64)> {
    let mut rng =
        StdRng::seed_from_u64((p.seed ^ t as u64).wrapping_mul(0xD134_2543_DE82_EF95));
    let mut ops = 0u64;
    let mut bytes = 0u64;
    for (i, &dir) in dirs.iter().enumerate() {
        let d = t + i * p.nthreads;
        for f in 0..p.files_per_dir {
            match rng.gen_range(0..4u64) {
                0 => {
                    // delete, half the time recreate smaller
                    fs.unlink(dir, &format!("f{f}"))?;
                    ops += 1;
                    if rng.gen_range(0..2u64) == 0 {
                        let ino = fs.create(dir, &format!("f{f}"))?;
                        let half = (p.file_size / 2).max(1);
                        fs.write(ino, 0, &vec![fill_byte(d, f); half])?;
                        ops += 2;
                        bytes += half as u64;
                    }
                }
                1 => {
                    let ino = fs.lookup(dir, &format!("f{f}"))?;
                    fs.write(ino, 0, &vec![fill_byte(d, f); p.file_size])?;
                    ops += 2;
                    bytes += p.file_size as u64;
                }
                _ => {}
            }
        }
    }
    Ok((ops, bytes))
}

/// Run the full multi-client workload.
pub fn run(
    fs: &(impl ConcurrentFs + ?Sized),
    p: &MulticlientParams,
) -> FsResult<MulticlientResult> {
    run_with_phase_hook(fs, p, |_| {})
}

/// [`run`], invoking `hook` with the phase name at each quiescent point
/// (after every barrier: "setup", "populate", "sessions", "churn").
/// No client thread is live when the hook runs, so it can cut feed
/// frames — or drop every volume's caches after "populate" to make the
/// measured sessions window cold and disk-bound.
pub fn run_with_phase_hook(
    fs: &(impl ConcurrentFs + ?Sized),
    p: &MulticlientParams,
    hook: impl Fn(&str),
) -> FsResult<MulticlientResult> {
    assert!(p.nthreads > 0 && p.ndirs > 0 && p.files_per_dir > 0);

    // Phase 1 — setup (main thread): the project directories.
    let mut all_dirs = Vec::with_capacity(p.ndirs);
    for d in 0..p.ndirs {
        all_dirs.push(mkdir_p_c(fs, &format!("/p{d}"))?);
    }
    fs.sync()?;
    hook("setup");

    let mut per_thread_ops = vec![0u64; p.nthreads];
    let mut bytes = 0u64;
    let owned: Vec<Vec<Ino>> = (0..p.nthreads)
        .map(|t| all_dirs.iter().skip(t).step_by(p.nthreads).copied().collect())
        .collect();

    // Phase 2 — populate, then a sync barrier.
    let pop = fan_out(fs, p.nthreads, |t| populate(fs, t, &owned[t], p))?;
    for (t, (ops, b)) in pop.into_iter().enumerate() {
        per_thread_ops[t] += ops;
        bytes += b;
    }
    fs.sync()?;
    hook("populate");

    // Phase 3 — the measured sessions window. The directory popularity
    // ranking is one seeded permutation shared by every session.
    let zipf = Zipf::new(p.ndirs, p.zipf_milli);
    let mut dir_perm: Vec<usize> = (0..p.ndirs).collect();
    let mut prng = StdRng::seed_from_u64(p.seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
    for i in (1..dir_perm.len()).rev() {
        dir_perm.swap(i, prng.gen_range(0..=i as u64) as usize);
    }
    let start_ns = match fs.obs() {
        Some(o) => o.global_clock_ns(),
        None => fs.now().as_nanos(),
    };
    let ran = fan_out(fs, p.nthreads, |t| sessions(fs, t, &zipf, &dir_perm, p))?;
    let end_ns = match fs.obs() {
        Some(o) => o.global_clock_ns(),
        None => fs.now().as_nanos(),
    };
    let mut session_ops = vec![0u64; p.nthreads];
    for (t, (ops, b)) in ran.into_iter().enumerate() {
        session_ops[t] = ops;
        per_thread_ops[t] += ops;
        bytes += b;
    }
    hook("sessions");

    // Phase 4 — churn, then the final sync the fsck gate runs after.
    let churned = fan_out(fs, p.nthreads, |t| churn(fs, t, &owned[t], p))?;
    for (t, (ops, b)) in churned.into_iter().enumerate() {
        per_thread_ops[t] += ops;
        bytes += b;
    }
    fs.sync()?;
    hook("churn");

    Ok(MulticlientResult {
        nthreads: p.nthreads,
        sessions: p.sessions,
        per_thread_ops,
        session_ops,
        bytes,
        elapsed: SimDuration::from_nanos(end_ns.saturating_sub(start_ns)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let z = Zipf::new(50, 900);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 50];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 must beat rank 10");
        assert!(counts[0] > counts[49] * 4, "heavy skew expected");
        let mut rng2 = StdRng::seed_from_u64(7);
        let again: Vec<usize> = (0..100).map(|_| z.sample(&mut rng2)).collect();
        let mut rng3 = StdRng::seed_from_u64(7);
        let thrice: Vec<usize> = (0..100).map(|_| z.sample(&mut rng3)).collect();
        assert_eq!(again, thrice);
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let z = Zipf::new(10, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u64; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "uniform-ish draw got {counts:?}");
        }
    }
}

//! Operation traces: random generation and replay.
//!
//! A trace is a path-level operation sequence that any [`FileSystem`] can
//! replay. The equivalence tests generate a random trace, replay it
//! against the in-memory oracle and every on-disk implementation, and
//! compare the full logical state (tree structure + file contents) — the
//! strongest cheap correctness check we have, because it is completely
//! implementation-agnostic.

use cffs_fslib::{path, FileKind, FileSystem, FsError, FsResult};
use cffs_obs::json::{FromJson, Json, JsonError, ToJson};
use cffs_obs::obj;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One path-level operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Create (or truncate) a file with the given contents.
    Write {
        /// Absolute path.
        path: String,
        /// File contents.
        data: Vec<u8>,
    },
    /// Append to an existing file.
    Append {
        /// Absolute path.
        path: String,
        /// Bytes to append.
        data: Vec<u8>,
    },
    /// Truncate a file.
    Truncate {
        /// Absolute path.
        path: String,
        /// New size.
        size: u64,
    },
    /// Make a directory (parents must exist).
    Mkdir {
        /// Absolute path.
        path: String,
    },
    /// Remove a file.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Absolute path.
        path: String,
    },
    /// Rename.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// Hard-link a file.
    Link {
        /// Existing file.
        target: String,
        /// New name.
        name: String,
    },
}


impl ToJson for Op {
    fn to_json(&self) -> Json {
        match self {
            Op::Write { path, data } => obj![
                ("op", "write".to_json()),
                ("path", path.to_json()),
                ("data", data.to_json()),
            ],
            Op::Append { path, data } => obj![
                ("op", "append".to_json()),
                ("path", path.to_json()),
                ("data", data.to_json()),
            ],
            Op::Truncate { path, size } => obj![
                ("op", "truncate".to_json()),
                ("path", path.to_json()),
                ("size", size.to_json()),
            ],
            Op::Mkdir { path } => obj![("op", "mkdir".to_json()), ("path", path.to_json())],
            Op::Unlink { path } => obj![("op", "unlink".to_json()), ("path", path.to_json())],
            Op::Rmdir { path } => obj![("op", "rmdir".to_json()), ("path", path.to_json())],
            Op::Rename { from, to } => obj![
                ("op", "rename".to_json()),
                ("from", from.to_json()),
                ("to", to.to_json()),
            ],
            Op::Link { target, name } => obj![
                ("op", "link".to_json()),
                ("target", target.to_json()),
                ("name", name.to_json()),
            ],
        }
    }
}

impl FromJson for Op {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let kind = j.want("op")?.as_str().ok_or_else(|| JsonError("op must be a string".into()))?;
        let path = |key: &str| -> Result<String, JsonError> { String::from_json(j.want(key)?) };
        Ok(match kind {
            "write" => Op::Write { path: path("path")?, data: Vec::from_json(j.want("data")?)? },
            "append" => Op::Append { path: path("path")?, data: Vec::from_json(j.want("data")?)? },
            "truncate" => Op::Truncate { path: path("path")?, size: u64::from_json(j.want("size")?)? },
            "mkdir" => Op::Mkdir { path: path("path")? },
            "unlink" => Op::Unlink { path: path("path")? },
            "rmdir" => Op::Rmdir { path: path("path")? },
            "rename" => Op::Rename { from: path("from")?, to: path("to")? },
            "link" => Op::Link { target: path("target")?, name: path("name")? },
            other => return Err(JsonError(format!("unknown op {other:?}"))),
        })
    }
}

/// Replay one op; "expected" errors (name collisions the generator allows)
/// are tolerated, real errors propagate.
pub fn apply(fs: &mut (impl FileSystem + ?Sized), op: &Op) -> FsResult<()> {
    let tolerated = |e: &FsError| {
        matches!(
            e,
            FsError::NotFound
                | FsError::Exists
                | FsError::DirNotEmpty
                | FsError::IsDir
                | FsError::NotDir
        )
    };
    let r: FsResult<()> = (|| {
        match op {
            Op::Write { path: p, data } => {
                path::write_file(fs, p, data)?;
            }
            Op::Append { path: p, data } => {
                let ino = path::resolve(fs, p)?;
                let size = fs.getattr(ino)?.size;
                let mut off = 0usize;
                while off < data.len() {
                    off += fs.write(ino, size + off as u64, &data[off..])?;
                }
            }
            Op::Truncate { path: p, size } => {
                let ino = path::resolve(fs, p)?;
                fs.truncate(ino, *size)?;
            }
            Op::Mkdir { path: p } => {
                let (dir, name) = path::resolve_parent(fs, p)?;
                fs.mkdir(dir, name)?;
            }
            Op::Unlink { path: p } => {
                let (dir, name) = path::resolve_parent(fs, p)?;
                fs.unlink(dir, name)?;
            }
            Op::Rmdir { path: p } => {
                let (dir, name) = path::resolve_parent(fs, p)?;
                fs.rmdir(dir, name)?;
            }
            Op::Rename { from, to } => {
                let (fd, fname) = path::resolve_parent(fs, from)?;
                let fname = fname.to_string();
                let (td, tname) = path::resolve_parent(fs, to)?;
                let tname = tname.to_string();
                fs.rename(fd, &fname, td, &tname)?;
            }
            Op::Link { target, name } => {
                let t = path::resolve(fs, target)?;
                let (dir, leaf) = path::resolve_parent(fs, name)?;
                let leaf = leaf.to_string();
                fs.link(t, dir, &leaf)?;
            }
        }
        Ok(())
    })();
    match r {
        Err(ref e) if tolerated(e) => Ok(()),
        other => other,
    }
}

/// Replay a whole trace.
pub fn replay(fs: &mut (impl FileSystem + ?Sized), ops: &[Op]) -> FsResult<()> {
    for op in ops {
        apply(fs, op)?;
    }
    Ok(())
}

/// Snapshot of the logical state: path → `None` for a directory, or
/// `Some(contents)` for a file.
pub type Snapshot = BTreeMap<String, Option<Vec<u8>>>;

/// Capture the logical state of the whole tree.
pub fn snapshot(fs: &mut (impl FileSystem + ?Sized)) -> FsResult<Snapshot> {
    let mut entries: Vec<(String, FileKind)> = Vec::new();
    path::walk(fs, "/", &mut |p, _, kind| entries.push((p.to_string(), kind)))?;
    let mut out = Snapshot::new();
    for (p, kind) in entries {
        match kind {
            FileKind::Dir => {
                out.insert(p, None);
            }
            FileKind::File => {
                let data = path::read_file(fs, &p)?;
                out.insert(p, Some(data));
            }
        }
    }
    Ok(out)
}

/// Serialize a trace to JSON (record once, replay anywhere — including
/// against a different file-system implementation or configuration).
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn save(ops: &[Op], w: &mut impl std::io::Write) -> std::io::Result<()> {
    w.write_all(ops.to_vec().to_json().to_string().as_bytes())
}

/// Deserialize a trace saved by [`save`].
///
/// # Errors
/// Returns an error for malformed JSON.
pub fn load(r: &mut impl std::io::Read) -> std::io::Result<Vec<Op>> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let parsed = cffs_obs::json::parse(&text).map_err(std::io::Error::other)?;
    Vec::<Op>::from_json(&parsed).map_err(std::io::Error::other)
}

/// Generate a random trace over a bounded namespace. Deterministic in
/// `seed`; sizes span holes, block boundaries and multi-block files so
/// replay exercises direct and indirect mappings.
pub fn random_trace(seed: u64, nops: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dirs = ["", "/d0", "/d1", "/d0/s0", "/d0/s1", "/d1/s0"];
    let files = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let mut ops = Vec::with_capacity(nops + dirs.len());
    for d in &dirs[1..] {
        ops.push(Op::Mkdir { path: d.to_string() });
    }
    let rand_path = |rng: &mut StdRng| {
        format!("{}/{}", dirs[rng.gen_range(0..dirs.len())], files[rng.gen_range(0..files.len())])
    };
    for _ in 0..nops {
        let op = match rng.gen_range(0..100) {
            0..=34 => {
                let len = match rng.gen_range(0..4) {
                    0 => rng.gen_range(0..512),
                    1 => rng.gen_range(512..4096),
                    2 => rng.gen_range(4096..20_000),
                    _ => rng.gen_range(20_000..100_000),
                };
                let byte = rng.gen::<u8>();
                Op::Write { path: rand_path(&mut rng), data: vec![byte; len] }
            }
            35..=49 => Op::Append {
                path: rand_path(&mut rng),
                data: vec![rng.gen::<u8>(); rng.gen_range(1..8192)],
            },
            50..=59 => Op::Truncate {
                path: rand_path(&mut rng),
                size: rng.gen_range(0..50_000),
            },
            60..=74 => Op::Unlink { path: rand_path(&mut rng) },
            75..=84 => Op::Rename { from: rand_path(&mut rng), to: rand_path(&mut rng) },
            85..=92 => Op::Link { target: rand_path(&mut rng), name: rand_path(&mut rng) },
            93..=96 => Op::Mkdir {
                path: format!("{}/sub{}", dirs[rng.gen_range(0..dirs.len())], rng.gen_range(0..3)),
            },
            _ => Op::Rmdir {
                path: format!("{}/sub{}", dirs[rng.gen_range(0..dirs.len())], rng.gen_range(0..3)),
            },
        };
        ops.push(op);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_fslib::model::ModelFs;

    #[test]
    fn replay_and_snapshot_round_trip() {
        let ops = vec![
            Op::Mkdir { path: "/x".into() },
            Op::Write { path: "/x/f".into(), data: b"hello".to_vec() },
            Op::Append { path: "/x/f".into(), data: b" world".to_vec() },
            Op::Write { path: "/x/g".into(), data: vec![7; 10_000] },
            Op::Truncate { path: "/x/g".into(), size: 5000 },
            Op::Rename { from: "/x/f".into(), to: "/x/h".into() },
        ];
        let mut fs = ModelFs::new();
        replay(&mut fs, &ops).unwrap();
        let snap = snapshot(&mut fs).unwrap();
        assert_eq!(snap["/x/h"], Some(b"hello world".to_vec()));
        assert_eq!(snap["/x/g"].as_ref().unwrap().len(), 5000);
        assert!(!snap.contains_key("/x/f"));
        assert_eq!(snap["/x"], None);
    }

    #[test]
    fn random_traces_replay_cleanly_on_oracle() {
        for seed in 0..5 {
            let ops = random_trace(seed, 300);
            let mut fs = ModelFs::new();
            replay(&mut fs, &ops).unwrap();
            snapshot(&mut fs).unwrap();
        }
    }

    #[test]
    fn trace_json_round_trip() {
        let ops = random_trace(3, 50);
        let mut bytes = Vec::new();
        save(&ops, &mut bytes).unwrap();
        let back = load(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, ops);
        // A reloaded trace replays to the same state.
        let mut a = ModelFs::new();
        replay(&mut a, &ops).unwrap();
        let mut b = ModelFs::new();
        replay(&mut b, &back).unwrap();
        assert_eq!(snapshot(&mut a).unwrap(), snapshot(&mut b).unwrap());
    }

    #[test]
    fn identical_seeds_identical_traces() {
        assert_eq!(random_trace(11, 100), random_trace(11, 100));
        assert_ne!(random_trace(11, 100), random_trace(12, 100));
    }
}

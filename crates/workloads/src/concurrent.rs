//! Multi-threaded client workload for the concurrent surface.
//!
//! N client threads share one [`ConcurrentFs`] instance. Each thread
//! replays a seeded session against its own *disjoint* directory set
//! (directories created round-robin across cylinder groups, so threads
//! allocate from different CGs and the per-CG sharding actually pays),
//! plus an optional *shared* directory set every thread contends on.
//!
//! ## Phases and the measured window
//!
//! 1. **Setup** (main thread): directory trees, then `sync`.
//! 2. **Populate** (threaded): each thread creates and writes its own
//!    files — concurrent allocation across disjoint CGs. Ends with a
//!    `sync` barrier so nothing is dirty and everything is cache-warm.
//! 3. **Warm window** (threaded, *measured*): `read_rounds` rounds of
//!    seeded re-reads, `getattr` and `readdir` per thread — strictly
//!    read-only. Every operation is a cache hit, so the window issues no
//!    disk requests and its cost is pure per-thread simulated CPU — the
//!    window's elapsed time is the cross-thread clock high-water mark,
//!    and aggregate ops/s scales with threads exactly as far as the
//!    sharded locks let threads overlap. Because no shared disk timeline
//!    is touched, the window is deterministic under any OS scheduling.
//! 4. **Churn** (threaded): seeded overwrites and unlinks plus the
//!    shared-directory contention phase — the mutation races the stress
//!    tests care about.
//! 5. Final `sync`.
//!
//! ## Time discipline
//!
//! Each thread advances its own virtual simulated clock (the thread-local
//! mirror in [`cffs_obs::Obs`]); disk requests serialize through the
//! shared driver worker. A window's elapsed simulated time is the delta
//! of `Obs::global_clock_ns` — every thread's work fits before it.

use cffs_disksim::SimDuration;
use cffs_fslib::path::{mkdir_p_c, read_file_c, resolve_c, write_file_c};
use cffs_fslib::{ConcurrentFs, FsResult, Ino};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one multi-threaded run.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentParams {
    /// Client threads sharing the file system.
    pub nthreads: usize,
    /// Disjoint directories per thread (each thread touches only its own).
    pub dirs_per_thread: usize,
    /// Files created, written, read back, and stat'd per directory.
    pub files_per_dir: usize,
    /// Bytes per file.
    pub file_size: usize,
    /// Directories every thread contends on (0 = fully disjoint run).
    pub shared_dirs: usize,
    /// Files each thread adds to (and reads from) each shared directory.
    pub shared_files_per_thread: usize,
    /// Rounds of the measured warm window: each round re-reads every
    /// file in a fresh seeded shuffle, mixing in seeded `getattr` and
    /// `readdir` calls (read-only — mutation happens in the churn phase).
    pub read_rounds: usize,
    /// RNG seed; thread `t` derives its session from `seed ^ t`.
    pub seed: u64,
}

impl Default for ConcurrentParams {
    fn default() -> Self {
        ConcurrentParams {
            nthreads: 4,
            dirs_per_thread: 4,
            files_per_dir: 32,
            file_size: 4096,
            shared_dirs: 0,
            shared_files_per_thread: 0,
            read_rounds: 1,
            seed: 42,
        }
    }
}

/// Result of one multi-threaded run.
#[derive(Debug, Clone)]
pub struct ConcurrentResult {
    /// Threads that ran.
    pub nthreads: usize,
    /// Operations completed per thread, all phases (create/write/read/
    /// getattr/readdir/unlink each count one).
    pub per_thread_ops: Vec<u64>,
    /// Operations completed per thread inside the measured warm window.
    pub measured_ops: Vec<u64>,
    /// Payload bytes written plus read, all threads, all phases.
    pub bytes: u64,
    /// Elapsed simulated time of the measured warm window (cross-thread
    /// clock high-water mark delta).
    pub elapsed: SimDuration,
}

impl ConcurrentResult {
    /// Total operations across threads and phases.
    pub fn total_ops(&self) -> u64 {
        self.per_thread_ops.iter().sum()
    }

    /// Operations inside the measured window, all threads.
    pub fn total_measured_ops(&self) -> u64 {
        self.measured_ops.iter().sum()
    }

    /// Aggregate measured-window operations per second of simulated time.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.as_nanos() == 0 {
            return f64::INFINITY;
        }
        self.total_measured_ops() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Phase 2 body: populate this thread's directories. Returns
/// (ops, bytes, inos per directory).
fn populate(
    fs: &(impl ConcurrentFs + ?Sized),
    t: usize,
    own_dirs: &[Ino],
    p: &ConcurrentParams,
) -> FsResult<(u64, u64, Vec<Vec<Ino>>)> {
    let payload = vec![(t & 0xff) as u8; p.file_size];
    let mut ops = 0u64;
    let mut bytes = 0u64;
    let mut inos: Vec<Vec<Ino>> = vec![Vec::new(); own_dirs.len()];
    // Interleave across the thread's dirs so consecutive ops hit
    // different CGs.
    for f in 0..p.files_per_dir {
        for (d, &dir) in own_dirs.iter().enumerate() {
            let ino = fs.create(dir, &format!("f{f}"))?;
            ops += 1;
            fs.write(ino, 0, &payload)?;
            ops += 1;
            bytes += p.file_size as u64;
            inos[d].push(ino);
        }
    }
    Ok((ops, bytes, inos))
}

/// Phase 3 body: the measured warm window — seeded re-reads, attribute
/// and directory scans, all cache hits and strictly read-only. Returns
/// (ops, bytes).
///
/// The window issues no writes on purpose: a dirty buffer can trip the
/// delayed-flush watermark mid-window, and the resulting disk request's
/// completion time sits on the *shared* disk timeline — the submitting
/// thread's clock would jump past its siblings' positions and the
/// window's elapsed time would depend on OS scheduling. Read-only means
/// pure per-thread CPU: deterministic and genuinely parallel.
fn warm_window(
    fs: &(impl ConcurrentFs + ?Sized),
    t: usize,
    own_dirs: &[Ino],
    inos: &[Vec<Ino>],
    p: &ConcurrentParams,
) -> FsResult<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64((p.seed ^ t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut buf = vec![0u8; p.file_size];
    let mut ops = 0u64;
    let mut bytes = 0u64;
    for _round in 0..p.read_rounds {
        let mut order: Vec<(usize, usize)> = (0..own_dirs.len())
            .flat_map(|d| (0..p.files_per_dir).map(move |f| (d, f)))
            .collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i as u64) as usize);
        }
        for (d, f) in order {
            let n = fs.read(inos[d][f], 0, &mut buf)?;
            ops += 1;
            bytes += n as u64;
            match rng.gen_range(0..16u64) {
                0..=3 => {
                    fs.getattr(inos[d][f])?;
                    ops += 1;
                }
                4..=5 => {
                    fs.readdir(own_dirs[d])?;
                    ops += 1;
                }
                _ => {}
            }
        }
    }
    Ok((ops, bytes))
}

/// Phase 4 body: seeded unlinks in the thread's own directories, then
/// the shared-directory contention round. Returns (ops, bytes).
fn churn(
    fs: &(impl ConcurrentFs + ?Sized),
    t: usize,
    own_dirs: &[Ino],
    shared: &[Ino],
    p: &ConcurrentParams,
) -> FsResult<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64((p.seed ^ t as u64).wrapping_mul(0xD134_2543_DE82_EF95));
    let payload = vec![(t & 0xff) as u8; p.file_size];
    let mut ops = 0u64;
    let mut bytes = 0u64;
    // Overwrite a seeded eighth of each directory in place (dirties
    // cached buffers, allocates nothing), then delete a seeded quarter.
    // Mutation lives here, outside the measured window — see
    // `warm_window` for why the window itself stays read-only.
    // Targets resolve by full path from the root, so every overwrite
    // walks the same namespace a real client would.
    for (d, _) in own_dirs.iter().enumerate() {
        for f in 0..p.files_per_dir {
            if rng.gen_range(0..8u64) == 0 {
                let ino = resolve_c(fs, &format!("/t{t}_d{d}/f{f}"))?;
                fs.write(ino, 0, &payload)?;
                ops += 2;
                bytes += p.file_size as u64;
            }
        }
    }
    for &dir in own_dirs {
        for f in 0..p.files_per_dir {
            if rng.gen_range(0..4u64) == 0 {
                fs.unlink(dir, &format!("f{f}"))?;
                ops += 1;
            }
        }
    }
    // Contend on the shared directories — every thread creates its own
    // (thread-unique) names, then re-reads and re-lists, so the
    // per-directory op stripe and the shared CG state genuinely collide.
    // Files go through the path helpers: racing threads resolve
    // "/sharedN" concurrently while siblings insert into it.
    for (s, &dir) in shared.iter().enumerate() {
        for f in 0..p.shared_files_per_thread {
            write_file_c(fs, &format!("/shared{s}/t{t}_s{f}"), &payload)?;
            ops += 2;
            bytes += p.file_size as u64;
        }
        for f in 0..p.shared_files_per_thread {
            let data = read_file_c(fs, &format!("/shared{s}/t{t}_s{f}"))?;
            ops += 1;
            bytes += data.len() as u64;
        }
        if p.shared_files_per_thread > 0 {
            fs.readdir(dir)?;
            ops += 1;
        }
    }
    Ok((ops, bytes))
}

/// Fan a per-thread body over thread indices and collect each thread's
/// (ops, bytes) tally, propagating the first error.
///
/// Every worker's virtual clock is pinned to the fork-time watermark
/// before its first op. Without the pin, a worker whose OS thread starts
/// late in *wall* time would fall back to the global clock mirror — which
/// its siblings have already pushed — and the per-thread timelines would
/// chain serially instead of overlapping from a common origin.
pub(crate) fn fan_out<F>(
    fs: &(impl ConcurrentFs + ?Sized),
    nthreads: usize,
    body: F,
) -> FsResult<Vec<(u64, u64)>>
where
    F: Fn(usize) -> FsResult<(u64, u64)> + Sync,
{
    let obs = fs.obs();
    let fork_ns = obs.as_ref().map(|o| o.global_clock_ns());
    let results: Vec<FsResult<(u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nthreads)
            .map(|t| {
                let body = &body;
                let obs = obs.clone();
                scope.spawn(move || {
                    if let (Some(o), Some(ns)) = (obs, fork_ns) {
                        o.pin_clock_ns(ns);
                        // Slot 0 is the main thread; clients are 1-based
                        // so the feed's per-thread op rows tell them apart.
                        o.bind_thread_slot(t + 1);
                    }
                    body(t)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    results.into_iter().collect()
}

/// Run the workload: set up the directory trees, populate concurrently,
/// sync to a warm quiescent point, run the measured warm window, churn,
/// final sync. See the module docs for why only the warm window is timed.
pub fn run(
    fs: &(impl ConcurrentFs + ?Sized),
    p: &ConcurrentParams,
) -> FsResult<ConcurrentResult> {
    run_with_phase_hook(fs, p, |_| {})
}

/// [`run`], invoking `hook` with the phase name at each quiescent point
/// (after every barrier: "setup", "populate", "warm", "churn"). The
/// registries are stable when the hook runs — no client thread is live —
/// so a manual-cadence feed tap can cut a consistent frame per phase
/// even though the phases themselves are multi-threaded.
pub fn run_with_phase_hook(
    fs: &(impl ConcurrentFs + ?Sized),
    p: &ConcurrentParams,
    hook: impl Fn(&str),
) -> FsResult<ConcurrentResult> {
    // Phase 1 — setup (main thread, unmeasured). Directory CGs are
    // assigned round-robin by the allocator, so consecutive mkdirs land
    // in different cylinder groups.
    let mut own: Vec<Vec<Ino>> = Vec::with_capacity(p.nthreads);
    for t in 0..p.nthreads {
        let mut dirs = Vec::with_capacity(p.dirs_per_thread);
        for d in 0..p.dirs_per_thread {
            dirs.push(mkdir_p_c(fs, &format!("/t{t}_d{d}"))?);
        }
        own.push(dirs);
    }
    let mut shared = Vec::with_capacity(p.shared_dirs);
    for s in 0..p.shared_dirs {
        shared.push(mkdir_p_c(fs, &format!("/shared{s}"))?);
    }
    fs.sync()?;
    hook("setup");

    let mut per_thread_ops = vec![0u64; p.nthreads];
    let mut bytes = 0u64;

    // Phase 2 — concurrent populate, then a sync barrier: the window
    // that follows starts with a warm cache and nothing dirty.
    let inos: std::sync::Mutex<Vec<Vec<Vec<Ino>>>> =
        std::sync::Mutex::new(vec![Vec::new(); p.nthreads]);
    let pop = fan_out(fs, p.nthreads, |t| {
        let (ops, b, ino_sets) = populate(fs, t, &own[t], p)?;
        inos.lock().unwrap()[t] = ino_sets;
        Ok((ops, b))
    })?;
    for (t, (ops, b)) in pop.into_iter().enumerate() {
        per_thread_ops[t] += ops;
        bytes += b;
    }
    let inos = inos.into_inner().unwrap();
    fs.sync()?;
    hook("populate");

    // Phase 3 — the measured warm window.
    let start_ns = match fs.obs() {
        Some(o) => o.global_clock_ns(),
        None => fs.now().as_nanos(),
    };
    let warm = fan_out(fs, p.nthreads, |t| warm_window(fs, t, &own[t], &inos[t], p))?;
    let end_ns = match fs.obs() {
        Some(o) => o.global_clock_ns(),
        None => fs.now().as_nanos(),
    };
    let mut measured_ops = vec![0u64; p.nthreads];
    for (t, (ops, b)) in warm.into_iter().enumerate() {
        measured_ops[t] = ops;
        per_thread_ops[t] += ops;
        bytes += b;
    }
    hook("warm");

    // Phase 4 — churn + shared-directory contention, then final sync.
    let churned = fan_out(fs, p.nthreads, |t| churn(fs, t, &own[t], &shared, p))?;
    for (t, (ops, b)) in churned.into_iter().enumerate() {
        per_thread_ops[t] += ops;
        bytes += b;
    }
    fs.sync()?;
    hook("churn");

    Ok(ConcurrentResult {
        nthreads: p.nthreads,
        per_thread_ops,
        measured_ops,
        bytes,
        elapsed: SimDuration::from_nanos(end_ns.saturating_sub(start_ns)),
    })
}

//! The paper's small-file micro-benchmark.
//!
//! "The micro-benchmark, based on the small-file benchmark from
//! [Rosenblum92], has four phases: create and write 10000 1KB files, read
//! the same files in the same order, overwrite the same files in the same
//! order, and then remove the files in the same order."
//!
//! Files are spread across a configurable number of directories (the
//! paper used multiple directories so directory-entry scans stay cheap
//! and grouping has realistic per-directory populations). Between phases
//! the cache is dropped so each phase starts cold, and each phase ends
//! with a full write-back, as in the paper.

use crate::namegen::{dir_name, file_name};
use crate::runner::{cold_boundary, measure, PhaseResult};
use cffs_fslib::{FileSystem, FsResult, Ino};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How benchmark files are assigned to directories.
///
/// This choice decides how adversarial the access pattern is for a
/// locality-based allocator. With [`Assignment::DirMajor`] all of a
/// directory's files are created (and later read) back-to-back, so even a
/// conventional FFS lays them out disk-sequentially and the drive's
/// read-ahead hides most positioning costs. With
/// [`Assignment::RoundRobin`] consecutive operations touch *different*
/// directories — which FFS deliberately spreads across cylinder groups —
/// so the conventional system pays a positioning delay per file, while
/// C-FFS amortizes one group fetch over the next 16 accesses to that
/// directory. Round-robin is the default: it exercises the cross-directory
/// interleaving that the paper's Section 2 argument (locality is not
/// adjacency) is about, and it reproduces the paper's measured shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Assignment {
    /// File `i` goes to directory `i % ndirs`; access cycles directories.
    #[default]
    RoundRobin,
    /// Directory 0 gets the first `nfiles/ndirs` files, and so on.
    DirMajor,
}

/// Benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct SmallFileParams {
    /// Number of files.
    pub nfiles: usize,
    /// Bytes per file.
    pub file_size: usize,
    /// Directories the files are spread over.
    pub ndirs: usize,
    /// File→directory assignment.
    pub order: Assignment,
    /// Seed for payload generation. Every payload is a pure function of
    /// `(seed, file index)`, so two runs with equal parameters are
    /// byte-identical end to end — same data, same block layout, same
    /// disk requests, same trace timeline.
    pub seed: u64,
}

impl Default for SmallFileParams {
    /// The paper's configuration: 10 000 × 1 KB files, spread over 100
    /// directories, accessed round-robin.
    fn default() -> Self {
        SmallFileParams {
            nfiles: 10_000,
            file_size: 1024,
            ndirs: 100,
            order: Assignment::RoundRobin,
            seed: 1997,
        }
    }
}

impl SmallFileParams {
    /// A scaled-down configuration for tests.
    pub fn small() -> Self {
        SmallFileParams { nfiles: 200, ndirs: 4, ..SmallFileParams::default() }
    }

    fn dir_of(&self, i: usize) -> usize {
        match self.order {
            Assignment::RoundRobin => i % self.ndirs,
            Assignment::DirMajor => i / self.nfiles.div_ceil(self.ndirs),
        }
    }
}

/// Deterministic per-file payload: a fixed-seed PRNG stream keyed by
/// `(seed, file index)`, so create and read phases regenerate identical
/// bytes without storing them.
fn payload(seed: u64, i: usize, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect()
}

/// Run all four phases; returns one [`PhaseResult`] per phase
/// (`create`, `read`, `overwrite`, `delete`).
pub fn run(
    fs: &mut (impl FileSystem + ?Sized),
    params: SmallFileParams,
) -> FsResult<Vec<PhaseResult>> {
    let mut results = Vec::with_capacity(4);
    let root = fs.root();

    // Setup (unmeasured): the directory skeleton.
    let mut dirs: Vec<Ino> = Vec::with_capacity(params.ndirs);
    for d in 0..params.ndirs {
        dirs.push(fs.mkdir(root, &dir_name(d))?);
    }
    cold_boundary(fs)?;

    let total_bytes = (params.nfiles * params.file_size) as u64;

    // Phase 1: create and write.
    results.push(measure(fs, "create", params.nfiles as u64, total_bytes, |fs| {
        for i in 0..params.nfiles {
            let ino = fs.create(dirs[params.dir_of(i)], &file_name(i))?;
            let data = payload(params.seed, i, params.file_size);
            fs.write(ino, 0, &data)?;
        }
        Ok(())
    })?);
    cold_boundary(fs)?;

    // Phase 2: read in the same order.
    results.push(measure(fs, "read", params.nfiles as u64, total_bytes, |fs| {
        let mut buf = vec![0u8; params.file_size];
        for i in 0..params.nfiles {
            let ino = fs.lookup(dirs[params.dir_of(i)], &file_name(i))?;
            let n = fs.read(ino, 0, &mut buf)?;
            debug_assert_eq!(n, params.file_size);
            debug_assert_eq!(buf, payload(params.seed, i, params.file_size));
        }
        Ok(())
    })?);
    cold_boundary(fs)?;

    // Phase 3: overwrite in the same order.
    results.push(measure(fs, "overwrite", params.nfiles as u64, total_bytes, |fs| {
        for i in 0..params.nfiles {
            let ino = fs.lookup(dirs[params.dir_of(i)], &file_name(i))?;
            let data = payload(params.seed, i + 1, params.file_size);
            fs.write(ino, 0, &data)?;
        }
        Ok(())
    })?);
    cold_boundary(fs)?;

    // Phase 4: delete in the same order.
    results.push(measure(fs, "delete", params.nfiles as u64, 0, |fs| {
        for i in 0..params.nfiles {
            fs.unlink(dirs[params.dir_of(i)], &file_name(i))?;
        }
        Ok(())
    })?);

    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_fslib::model::ModelFs;

    #[test]
    fn four_phases_on_the_oracle() {
        let mut fs = ModelFs::new();
        let rs = run(&mut fs, SmallFileParams::small()).unwrap();
        let phases: Vec<&str> = rs.iter().map(|r| r.phase.as_str()).collect();
        assert_eq!(phases, vec!["create", "read", "overwrite", "delete"]);
        assert!(rs.iter().all(|r| r.items == 200));
        // Everything was deleted.
        for d in 0..4 {
            let dir = fs.lookup(1, &dir_name(d)).unwrap();
            assert!(fs.readdir(dir).unwrap().is_empty());
        }
    }

    #[test]
    fn payload_is_deterministic_and_distinct() {
        assert_eq!(payload(1997, 3, 64), payload(1997, 3, 64));
        assert_ne!(payload(1997, 3, 64), payload(1997, 4, 64));
        assert_ne!(payload(1997, 3, 64), payload(7, 3, 64), "seed changes the stream");
    }
}

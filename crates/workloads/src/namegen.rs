//! Deterministic name generation for workloads.

/// The name of small-file benchmark file `i`.
pub fn file_name(i: usize) -> String {
    format!("file{i:06}")
}

/// The name of benchmark directory `d`.
pub fn dir_name(d: usize) -> String {
    format!("dir{d:04}")
}

/// A C-source-tree-ish file name.
pub fn source_name(i: usize) -> String {
    const STEMS: [&str; 8] = ["main", "util", "parse", "io", "alloc", "hash", "list", "str"];
    format!("{}{}.c", STEMS[i % STEMS.len()], i / STEMS.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        assert_eq!(file_name(7), "file000007");
        assert_eq!(dir_name(3), "dir0003");
        let mut all: Vec<String> = (0..1000).map(source_name).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 1000);
    }
}

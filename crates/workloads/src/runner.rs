//! Phase measurement.
//!
//! Each benchmark phase is wrapped in [`measure`]: statistics are reset,
//! the phase body runs, and the simulated elapsed time plus I/O deltas are
//! captured. The paper's discipline is followed exactly: "In all of our
//! experiments, we forcefully write back all dirty blocks before
//! considering the measurement complete" — the phase body is followed by a
//! `sync` *inside* the measured region.

use cffs_disksim::SimDuration;
use cffs_fslib::{FileSystem, FsResult, IoStats};
use cffs_obs::json::{Json, ToJson};
use cffs_obs::{obj, prof, StatsSnapshot};

/// Result of one measured phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// File-system label (e.g. `"C-FFS"`).
    pub fs: String,
    /// Phase name (e.g. `"create"`).
    pub phase: String,
    /// Simulated time the phase started, nanoseconds (for windowing
    /// span logs into per-phase folds).
    pub start_ns: u64,
    /// Simulated elapsed time, including the final sync.
    pub elapsed: SimDuration,
    /// Work items completed (files, operations...).
    pub items: u64,
    /// Payload bytes moved (excluding metadata).
    pub bytes: u64,
    /// I/O counter deltas for the phase.
    pub io: IoStats,
    /// Full observability counter deltas for the phase (`None` when the
    /// stack carries no instrumentation, e.g. the in-memory model fs).
    pub counters: Option<StatsSnapshot>,
    /// Host wall-clock time the phase took, nanoseconds. Unlike every
    /// other field this is **not** deterministic — it measures the
    /// harness machine, not the simulated disk — and exists so bench
    /// payloads can separate "the simulated stack got faster" from "the
    /// benchmark binary got slower to run".
    pub host_ns: u64,
}


impl ToJson for PhaseResult {
    fn to_json(&self) -> Json {
        let mut j = obj![
            ("fs", self.fs.to_json()),
            ("phase", self.phase.to_json()),
            ("elapsed_ns", self.elapsed.to_json()),
            ("items", self.items.to_json()),
            ("bytes", self.bytes.to_json()),
            ("io", self.io.to_json()),
            ("host_ns", self.host_ns.to_json()),
        ];
        if let (Json::Obj(m), Some(snap)) = (&mut j, &self.counters) {
            m.push(("counters".to_string(), snap.to_json()));
            // Per-op-kind p50/p90/p99 for the phase, from the snapshot
            // delta's latency histograms.
            m.push(("latency_ns".to_string(), snap.op_latency_summary()));
            // Where the phase's simulated time went: op work vs disk
            // queueing vs mechanical service vs idle, from the attr_*_ns
            // counter deltas (ring-wrap-proof).
            m.push((
                "time_attribution".to_string(),
                prof::Attribution::from_delta(snap).to_json(),
            ));
        }
        j
    }
}

impl PhaseResult {
    /// Items per second of simulated time.
    pub fn items_per_sec(&self) -> f64 {
        if self.elapsed.as_nanos() == 0 {
            return f64::INFINITY;
        }
        self.items as f64 / self.elapsed.as_secs_f64()
    }

    /// Payload megabytes per second of simulated time.
    pub fn mb_per_sec(&self) -> f64 {
        if self.elapsed.as_nanos() == 0 {
            return f64::INFINITY;
        }
        self.bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Physical disk requests issued during the phase.
    pub fn disk_requests(&self) -> u64 {
        self.io.disk.total_requests()
    }
}

/// Run `body` as a measured phase: reset stats, execute, sync, capture.
/// `items` and `bytes` describe the completed work for rate computation.
pub fn measure<F: FileSystem + ?Sized>(
    fs: &mut F,
    phase: &str,
    items: u64,
    bytes: u64,
    body: impl FnOnce(&mut F) -> FsResult<()>,
) -> FsResult<PhaseResult> {
    fs.reset_io_stats();
    let before = fs.obs().map(|o| o.snapshot(fs.label(), fs.now().as_nanos()));
    let t0 = fs.now();
    let host_t0 = std::time::Instant::now();
    body(fs)?;
    fs.sync()?;
    let host_ns = host_t0.elapsed().as_nanos() as u64;
    let elapsed = fs.now() - t0;
    // Obs counters are monotonic (never reset), so the phase's share is a
    // snapshot delta rather than a raw read.
    let counters = fs.obs().zip(before).map(|(o, b)| {
        o.snapshot(fs.label(), fs.now().as_nanos()).delta(&b)
    });
    Ok(PhaseResult {
        fs: fs.label().to_string(),
        phase: phase.to_string(),
        start_ns: t0.as_nanos(),
        elapsed,
        items,
        bytes,
        io: fs.io_stats(),
        counters,
        host_ns,
    })
}

/// Make the next phase start cold: write everything back and drop the
/// caches (the moral equivalent of unmount + mount between phases).
pub fn cold_boundary(fs: &mut (impl FileSystem + ?Sized)) -> FsResult<()> {
    fs.drop_caches()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_fslib::model::ModelFs;

    #[test]
    fn measure_captures_items_and_phase() {
        let mut fs = ModelFs::new();
        let r = measure(&mut fs, "create", 10, 10_240, |fs| {
            for i in 0..10 {
                fs.create(1, &format!("f{i}"))?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(r.phase, "create");
        assert_eq!(r.items, 10);
        assert_eq!(r.fs, "model");
        // ModelFs charges no time: rate is infinite, not NaN or zero.
        assert!(r.items_per_sec().is_infinite());
    }

    #[test]
    fn failing_body_propagates() {
        let mut fs = ModelFs::new();
        let r = measure(&mut fs, "x", 0, 0, |fs| fs.unlink(1, "missing"));
        assert!(r.is_err());
    }
}

//! A PostMark-style workload.
//!
//! PostMark (Katcher, 1997 — the same year as C-FFS) became the standard
//! small-file benchmark for exactly the workloads the paper targets:
//! mail, news and web servers dominated by short-lived small files. The
//! shape: create an initial pool of files across subdirectories, run a
//! long sequence of *transactions* (each a create-or-delete paired with a
//! read-or-append, against random files), then delete everything.
//!
//! This is the steady-state counterpart of the paper's four-phase
//! micro-benchmark: instead of bulk phases it interleaves operations the
//! way a server does, so grouping has to win while groups churn.

use crate::runner::{cold_boundary, measure, PhaseResult};
use crate::sizes::SizeDist;
use cffs_fslib::{FileSystem, FsResult, Ino};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// PostMark parameters.
#[derive(Debug, Clone, Copy)]
pub struct PostmarkParams {
    /// Initial file pool size.
    pub nfiles: usize,
    /// Subdirectories the pool is spread over.
    pub ndirs: usize,
    /// Transactions to run.
    pub transactions: usize,
    /// Minimum file size in bytes.
    pub min_size: usize,
    /// Maximum file size in bytes.
    pub max_size: usize,
    /// RNG seed. Every payload is a pure function of `(seed, serial)`
    /// (like `SmallFileParams::seed`), so two runs with equal parameters
    /// are byte-identical end to end — same data, same block layout, same
    /// disk requests, same trace timeline.
    pub seed: u64,
}

impl Default for PostmarkParams {
    /// Classic PostMark defaults, scaled to the simulated testbed:
    /// 2 500 files of 0.5–10 KB across 50 directories, 10 000 transactions.
    fn default() -> Self {
        PostmarkParams {
            nfiles: 2500,
            ndirs: 50,
            transactions: 10_000,
            min_size: 512,
            max_size: 10_240,
            seed: 1997,
        }
    }
}

impl PostmarkParams {
    /// Scaled-down configuration for tests.
    pub fn small() -> Self {
        PostmarkParams {
            nfiles: 120,
            ndirs: 6,
            transactions: 400,
            min_size: 512,
            max_size: 4096,
            seed: 7,
        }
    }
}

/// Deterministic payload: a fixed-seed PRNG stream keyed by
/// `(seed, serial)`, so every file's bytes are reproducible without
/// storing them.
fn payload(seed: u64, serial: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ serial.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect()
}

struct Uniform {
    lo: usize,
    hi: usize,
}

impl SizeDist for Uniform {
    fn sample(&self, rng: &mut impl Rng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Run the benchmark; returns one [`PhaseResult`] per phase
/// (`pm-create`, `pm-transactions`, `pm-delete`).
pub fn run(
    fs: &mut (impl FileSystem + ?Sized),
    params: PostmarkParams,
) -> FsResult<Vec<PhaseResult>> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let sizes = Uniform { lo: params.min_size, hi: params.max_size };
    let root = fs.root();
    let mut dirs: Vec<Ino> = Vec::with_capacity(params.ndirs);
    for d in 0..params.ndirs {
        dirs.push(fs.mkdir(root, &format!("pm{d:03}"))?);
    }
    // Live pool: (dir index, name, size).
    let mut pool: Vec<(usize, String, usize)> = Vec::new();
    let mut serial = 0u64;
    let mut results = Vec::with_capacity(3);

    // Phase 1: build the initial pool.
    let mut created_bytes = 0u64;
    {
        let pool_ref = &mut pool;
        let rng_ref = &mut rng;
        let serial_ref = &mut serial;
        results.push(measure(fs, "pm-create", params.nfiles as u64, 0, |fs| {
            for _ in 0..params.nfiles {
                let d = rng_ref.gen_range(0..params.ndirs);
                let size = sizes.sample(rng_ref);
                let s = *serial_ref;
                *serial_ref += 1;
                let name = format!("m{s:08}");
                let ino = fs.create(dirs[d], &name)?;
                fs.write(ino, 0, &payload(params.seed, s, size))?;
                created_bytes += size as u64;
                pool_ref.push((d, name, size));
            }
            Ok(())
        })?);
    }
    results.last_mut().expect("just pushed").bytes = created_bytes;
    cold_boundary(fs)?;

    // Phase 2: transactions.
    let mut tx_bytes = 0u64;
    {
        let pool_ref = &mut pool;
        let rng_ref = &mut rng;
        let serial_ref = &mut serial;
        results.push(measure(fs, "pm-transactions", params.transactions as u64, 0, |fs| {
            let mut buf = vec![0u8; params.max_size];
            for _ in 0..params.transactions {
                // Half A: create or delete.
                if rng_ref.gen_bool(0.5) || pool_ref.is_empty() {
                    let d = rng_ref.gen_range(0..params.ndirs);
                    let size = sizes.sample(rng_ref);
                    let s = *serial_ref;
                    *serial_ref += 1;
                    let name = format!("m{s:08}");
                    let ino = fs.create(dirs[d], &name)?;
                    fs.write(ino, 0, &payload(params.seed, s, size))?;
                    tx_bytes += size as u64;
                    pool_ref.push((d, name, size));
                } else {
                    let idx = rng_ref.gen_range(0..pool_ref.len());
                    let (d, name, _) = pool_ref.swap_remove(idx);
                    fs.unlink(dirs[d], &name)?;
                }
                // Half B: read or append an existing file.
                if pool_ref.is_empty() {
                    continue;
                }
                let idx = rng_ref.gen_range(0..pool_ref.len());
                if rng_ref.gen_bool(0.5) {
                    let (d, name, size) = &pool_ref[idx];
                    let ino = fs.lookup(dirs[*d], name)?;
                    buf.resize(*size, 0); // appends grow files past max_size
                    let n = fs.read(ino, 0, &mut buf)?;
                    tx_bytes += n as u64;
                } else {
                    let (d, name, size) = pool_ref[idx].clone();
                    let ino = fs.lookup(dirs[d], &name)?;
                    let add = rng_ref.gen_range(64..=1024);
                    let s = *serial_ref;
                    *serial_ref += 1;
                    fs.write(ino, size as u64, &payload(params.seed, s, add))?;
                    tx_bytes += add as u64;
                    pool_ref[idx].2 = size + add;
                }
            }
            Ok(())
        })?);
    }
    results.last_mut().expect("just pushed").bytes = tx_bytes;
    cold_boundary(fs)?;

    // Phase 3: delete everything.
    let n = pool.len() as u64;
    results.push(measure(fs, "pm-delete", n, 0, |fs| {
        for (d, name, _) in pool.drain(..) {
            fs.unlink(dirs[d], &name)?;
        }
        for (d, dir) in dirs.iter().enumerate() {
            let _ = dir;
            fs.rmdir(root, &format!("pm{d:03}"))?;
        }
        Ok(())
    })?);
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_fslib::model::ModelFs;
    use cffs_fslib::FileSystem;

    #[test]
    fn postmark_runs_and_cleans_up() {
        let mut fs = ModelFs::new();
        let rs = run(&mut fs, PostmarkParams::small()).unwrap();
        let phases: Vec<&str> = rs.iter().map(|r| r.phase.as_str()).collect();
        assert_eq!(phases, vec!["pm-create", "pm-transactions", "pm-delete"]);
        assert!(fs.readdir(fs.root()).unwrap().is_empty(), "everything deleted");
        assert!(rs[1].items == 400);
    }

    #[test]
    fn postmark_is_deterministic() {
        let run_once = || {
            let mut fs = ModelFs::new();
            let rs = run(&mut fs, PostmarkParams::small()).unwrap();
            (rs[0].bytes, rs[1].bytes, rs[2].items)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn payload_is_pure_in_seed_and_serial() {
        assert_eq!(payload(7, 3, 64), payload(7, 3, 64));
        assert_ne!(payload(7, 3, 64), payload(7, 4, 64));
        assert_ne!(payload(7, 3, 64), payload(8, 3, 64), "seed changes the stream");
    }

}

//! The software-development application suite.
//!
//! The paper reports "preliminary experience with software-development
//! applications shows performance improvements ranging from 10-300
//! percent". This module reproduces that class of workload synthetically:
//!
//! 1. **`untar`** — populate a source tree (many small files landing in
//!    directory order), like extracting a source archive.
//! 2. **`copy`** — recursively copy the tree (read every file, create and
//!    write every copy).
//! 3. **`compile`** — for every `.c` file: read it, read the shared
//!    headers, write a `.o` about 1.5× its size; then "link" each
//!    directory's objects into one larger output.
//! 4. **`search`** — `grep -r`: read every file in tree order.
//! 5. **`clean`** — delete all derived objects.
//!
//! Every phase starts cold and ends with a full write-back, measured in
//! simulated time like the micro-benchmark.

use crate::namegen::source_name;
use crate::runner::{cold_boundary, measure, PhaseResult};
use cffs_fslib::{path, FileKind, FileSystem, FsResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the synthetic source tree.
#[derive(Debug, Clone, Copy)]
pub struct DevTreeParams {
    /// Source directories (modules).
    pub dirs: usize,
    /// `.c` files per directory.
    pub files_per_dir: usize,
    /// Shared headers in `/src/include`.
    pub headers: usize,
    /// Mean source-file size in bytes (sizes vary ±50%).
    pub mean_size: usize,
    /// RNG seed. Sizes *and* file bodies derive from it — every body is a
    /// pure function of `(seed, file tag)` (like `SmallFileParams::seed`),
    /// so equal parameters give byte-identical trees and timelines.
    pub seed: u64,
}

impl Default for DevTreeParams {
    /// ~600 source files of a few KB — a mid-90s utility suite.
    fn default() -> Self {
        DevTreeParams { dirs: 30, files_per_dir: 20, headers: 40, mean_size: 4096, seed: 3 }
    }
}

impl DevTreeParams {
    /// Scaled-down tree for tests.
    pub fn small() -> Self {
        DevTreeParams { dirs: 4, files_per_dir: 6, headers: 6, mean_size: 2048, seed: 3 }
    }

    /// Total source files.
    pub fn total_files(&self) -> usize {
        self.dirs * self.files_per_dir + self.headers
    }
}

fn gen_size(rng: &mut StdRng, mean: usize) -> usize {
    let lo = mean / 2;
    let hi = mean * 3 / 2;
    rng.gen_range(lo..=hi)
}

/// Deterministic file body keyed by `(seed, tag)` — `tag` identifies the
/// file within the tree, the run's seed varies the whole stream.
fn file_body(seed: u64, tag: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect()
}

/// Run the whole suite. Returns one [`PhaseResult`] per phase:
/// `untar`, `copy`, `compile`, `search`, `clean`.
pub fn run(
    fs: &mut (impl FileSystem + ?Sized),
    params: DevTreeParams,
) -> FsResult<Vec<PhaseResult>> {
    let mut results = Vec::new();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Precompute the tree shape so phases agree on sizes.
    let mut sizes: Vec<Vec<usize>> = Vec::new();
    for _ in 0..params.dirs {
        sizes.push((0..params.files_per_dir).map(|_| gen_size(&mut rng, params.mean_size)).collect());
    }
    let header_sizes: Vec<usize> =
        (0..params.headers).map(|_| gen_size(&mut rng, params.mean_size / 2)).collect();
    let total_bytes: u64 = sizes.iter().flatten().chain(header_sizes.iter()).map(|&s| s as u64).sum();
    let nfiles = params.total_files() as u64;

    // Phase 1: untar.
    results.push(measure(fs, "untar", nfiles, total_bytes, |fs| {
        path::mkdir_p(fs, "/src/include")?;
        for (h, &sz) in header_sizes.iter().enumerate() {
            path::write_file(
                fs,
                &format!("/src/include/h{h:03}.h"),
                &file_body(params.seed, 9000 + h as u64, sz),
            )?;
        }
        for (d, dir_sizes) in sizes.iter().enumerate() {
            path::mkdir_p(fs, &format!("/src/mod{d:03}"))?;
            for (f, &sz) in dir_sizes.iter().enumerate() {
                path::write_file(
                    fs,
                    &format!("/src/mod{d:03}/{}", source_name(f)),
                    &file_body(params.seed, (d * 1000 + f) as u64, sz),
                )?;
            }
        }
        Ok(())
    })?);
    cold_boundary(fs)?;

    // Phase 2: copy the tree.
    results.push(measure(fs, "copy", nfiles, 2 * total_bytes, |fs| {
        let mut entries: Vec<(String, String)> = Vec::new();
        path::walk(fs, "/src", &mut |p, _, kind| {
            if kind == FileKind::File {
                entries.push((p.to_string(), p.replacen("/src", "/copy", 1)));
            }
        })?;
        path::mkdir_p(fs, "/copy")?;
        for (from, to) in entries {
            let data = path::read_file(fs, &from)?;
            let (parent, _) = to.rsplit_once('/').expect("absolute path");
            path::mkdir_p(fs, parent)?;
            path::write_file(fs, &to, &data)?;
        }
        Ok(())
    })?);
    cold_boundary(fs)?;

    // Phase 3: compile.
    let obj_bytes: u64 = sizes.iter().flatten().map(|&s| (s * 3 / 2) as u64).sum();
    results.push(measure(fs, "compile", (params.dirs * params.files_per_dir) as u64, obj_bytes, |fs| {
        // Read all headers once per directory (cache-warm within a module,
        // as make+cc would behave).
        for (d, dir_sizes) in sizes.iter().enumerate() {
            for h in 0..header_sizes.len() {
                let _ = path::read_file(fs, &format!("/src/include/h{h:03}.h"))?;
            }
            let mut linked: u64 = 0;
            for (f, &sz) in dir_sizes.iter().enumerate() {
                let src = path::read_file(fs, &format!("/src/mod{d:03}/{}", source_name(f)))?;
                debug_assert_eq!(src.len(), sz);
                let obj = file_body(params.seed, (50_000 + d * 1000 + f) as u64, sz * 3 / 2);
                linked += obj.len() as u64;
                path::write_file(
                    fs,
                    &format!("/src/mod{d:03}/{}.o", source_name(f).trim_end_matches(".c")),
                    &obj,
                )?;
            }
            // "Link" the module.
            path::write_file(
                fs,
                &format!("/src/mod{d:03}/module.a"),
                &file_body(params.seed, 70_000 + d as u64, linked as usize / 2),
            )?;
        }
        Ok(())
    })?);
    cold_boundary(fs)?;

    // Phase 4: recursive search.
    results.push(measure(fs, "search", nfiles, total_bytes, |fs| {
        let mut files: Vec<String> = Vec::new();
        path::walk(fs, "/src", &mut |p, _, kind| {
            if kind == FileKind::File {
                files.push(p.to_string());
            }
        })?;
        let needle = b"@@@never-present@@@";
        for f in files {
            let data = path::read_file(fs, &f)?;
            debug_assert!(!data.windows(needle.len()).any(|w| w == needle));
        }
        Ok(())
    })?);
    cold_boundary(fs)?;

    // Phase 5: clean (delete derived files).
    results.push(measure(fs, "clean", (params.dirs * (params.files_per_dir + 1)) as u64, 0, |fs| {
        let mut derived: Vec<String> = Vec::new();
        path::walk(fs, "/src", &mut |p, _, kind| {
            if kind == FileKind::File && (p.ends_with(".o") || p.ends_with(".a")) {
                derived.push(p.to_string());
            }
        })?;
        for f in derived {
            path::remove_file(fs, &f)?;
        }
        Ok(())
    })?);

    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_fslib::model::ModelFs;

    #[test]
    fn suite_runs_on_oracle() {
        let mut fs = ModelFs::new();
        let rs = run(&mut fs, DevTreeParams::small()).unwrap();
        let phases: Vec<&str> = rs.iter().map(|r| r.phase.as_str()).collect();
        assert_eq!(phases, vec!["untar", "copy", "compile", "search", "clean"]);
        // After clean, no .o files remain but sources do.
        let mut objs = 0;
        let mut srcs = 0;
        path::walk(&mut fs, "/src", &mut |p, _, k| {
            if k == FileKind::File {
                if p.ends_with(".o") || p.ends_with(".a") {
                    objs += 1;
                } else {
                    srcs += 1;
                }
            }
        })
        .unwrap();
        assert_eq!(objs, 0);
        assert_eq!(srcs, DevTreeParams::small().total_files());
        // The copy matches the original.
        let a = path::read_file(&mut fs, "/src/mod000/main0.c").unwrap();
        let b = path::read_file(&mut fs, "/copy/mod000/main0.c").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bodies_are_pure_in_seed_and_tag() {
        assert_eq!(file_body(3, 17, 64), file_body(3, 17, 64));
        assert_ne!(file_body(3, 17, 64), file_body(3, 18, 64));
        assert_ne!(file_body(3, 17, 64), file_body(4, 17, 64), "seed changes the stream");
    }

    #[test]
    fn suite_is_deterministic_and_seed_sensitive() {
        let tree = |seed| {
            let mut fs = ModelFs::new();
            run(&mut fs, DevTreeParams { seed, ..DevTreeParams::small() }).unwrap();
            path::read_file(&mut fs, "/src/mod000/main0.c").unwrap()
        };
        assert_eq!(tree(3), tree(3));
        assert_ne!(tree(3), tree(4));
    }
}

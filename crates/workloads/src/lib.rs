#![warn(missing_docs)]

//! # cffs-workloads
//!
//! Workload generators and measurement harnesses for the C-FFS
//! reproduction. Everything here drives the [`cffs_fslib::FileSystem`]
//! trait, so the same workload runs unchanged against classic FFS, the
//! four C-FFS variants, and the in-memory oracle.
//!
//! * [`smallfile`] — the paper's small-file micro-benchmark ("based on the
//!   small-file benchmark from [Rosenblum92]"): create/write N small
//!   files, read them back in order, overwrite in order, delete in order,
//!   with a cold cache between phases.
//! * [`aging`] — the [Herrin93]-style aging program: a long random
//!   create/delete sequence whose create probability is drawn from a
//!   distribution centered on a target utilization.
//! * [`appdev`] — the software-development application suite (copy,
//!   compile, search, archive extract, clean) behind the paper's
//!   "10–300%" application-level claims.
//! * [`postmark`] — a PostMark-style server workload (contemporaneous with
//!   the paper, 1997): steady-state create/delete/read/append transactions
//!   over a pool of small files.
//! * [`sizes`] — 1990s file-size distributions (79% of files under 8 KB,
//!   the paper's Figure 1 shape).
//! * [`trace`] — operation traces: random generation, recording, replay;
//!   the substrate for cross-implementation equivalence tests.
//! * [`soak`] — open-ended mixed churn for watching the stack live via
//!   the telemetry feed (`repro_soak --feed` + `cffs-top --follow`).
//! * [`runner`] — phase measurement: simulated elapsed time + I/O deltas.
//! * [`concurrent`] — N client threads over one shared [`cffs_fslib::ConcurrentFs`]
//!   instance: disjoint per-thread directory sets plus an optional shared
//!   contention set, throughput in simulated time.
//! * [`namei`] — the million-file deep-tree name-resolution benchmark:
//!   seeded full-path lookups against multi-block leaf directories, the
//!   workload behind the namespace-cache (dcache) acceptance gate.
//! * [`multiclient`] — thousands of seeded user sessions (open/read/
//!   write/fsync mixes, Zipf-skewed directory popularity) over a few OS
//!   threads: the scale-out volume workload behind E16 `repro_volume`.

pub mod aging;
pub mod appdev;
pub mod concurrent;
pub mod multiclient;
pub mod namegen;
pub mod namei;
pub mod postmark;
pub mod runner;
pub mod sizes;
pub mod smallfile;
pub mod soak;
pub mod trace;

pub use runner::PhaseResult;

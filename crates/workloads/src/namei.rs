//! Million-file namei benchmark — deep-tree name resolution.
//!
//! Builds a three-level tree `/b{i}/d{j}/f{k}` and then resolves seeded
//! full paths through it, so the cost under test is `namei` itself: one
//! `lookup` per component, against directories big enough that a linear
//! dirent scan genuinely hurts (256 files per leaf directory ≈ 10
//! directory blocks at 144 bytes per embedded entry). The namespace
//! cache (dcache) turns each warm component lookup into a single hashed
//! probe; the ablation with the cache disabled pays the full scan — the
//! p99 gap between the two is E15's acceptance metric.
//!
//! Files default to zero bytes: a million 1 KB files would blow past the
//! 1 GB testbed drive, and data blocks are not what this benchmark
//! measures. `read` is still issued per resolved path (it costs a
//! syscall even at size 0), so the op mix stays create/stat/read as the
//! experiment requires.

use cffs_fslib::path::resolve;
use cffs_fslib::{FileSystem, FsResult, Ino};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one namei run.
#[derive(Debug, Clone, Copy)]
pub struct NameiParams {
    /// Top-level branch directories (`/b0` .. `/b{branches-1}`).
    pub branches: usize,
    /// Mid-level directories per branch (`/b0/d0` ..).
    pub dirs_per_branch: usize,
    /// Files per leaf directory. Keep this large (the default 256) —
    /// the benchmark's whole point is leaf directories that span many
    /// blocks, so a scan-free lookup has something to beat.
    pub files_per_dir: usize,
    /// Bytes per file (0 = namespace-only tree, the default).
    pub file_size: usize,
    /// Full paths resolved per round (seeded sample of the tree).
    pub sample: usize,
    /// Rounds of the warm resolution phase.
    pub rounds: usize,
    /// RNG seed for the path sample.
    pub seed: u64,
}

impl Default for NameiParams {
    fn default() -> Self {
        // 64 × 64 × 256 = 1 048 576 files: the million-file tree.
        NameiParams {
            branches: 64,
            dirs_per_branch: 64,
            files_per_dir: 256,
            file_size: 0,
            sample: 4096,
            rounds: 3,
            seed: 1997,
        }
    }
}

impl NameiParams {
    /// Files in the full tree.
    pub fn total_files(&self) -> u64 {
        (self.branches * self.dirs_per_branch * self.files_per_dir) as u64
    }

    /// Directories in the full tree (branches + leaves, excluding root).
    pub fn total_dirs(&self) -> u64 {
        (self.branches + self.branches * self.dirs_per_branch) as u64
    }
}

/// Build the tree: every directory, then every file (leaf directories
/// filled one after another, like an untar). Returns (ops, payload
/// bytes). Creation drives `(dir ino, name)` directly — path walking is
/// what the *resolution* phases measure.
pub fn build_tree(fs: &mut (impl FileSystem + ?Sized), p: &NameiParams) -> FsResult<(u64, u64)> {
    let root = fs.root();
    let payload: Vec<u8> = (0..p.file_size).map(|i| (i % 251) as u8).collect();
    let mut ops = 0u64;
    let mut bytes = 0u64;
    for b in 0..p.branches {
        let branch = fs.mkdir(root, &format!("b{b}"))?;
        ops += 1;
        for d in 0..p.dirs_per_branch {
            let leaf = fs.mkdir(branch, &format!("d{d}"))?;
            ops += 1;
            for f in 0..p.files_per_dir {
                let ino = fs.create(leaf, &format!("f{f}"))?;
                ops += 1;
                if !payload.is_empty() {
                    fs.write(ino, 0, &payload)?;
                    ops += 1;
                    bytes += payload.len() as u64;
                }
            }
        }
    }
    Ok((ops, bytes))
}

/// The seeded sample of full paths the resolution phases walk. The same
/// seed produces the same sample, so the cold phase faults exactly the
/// set the warm phase then re-resolves.
pub fn sample_paths(p: &NameiParams) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(p.seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
    (0..p.sample)
        .map(|_| {
            let b = rng.gen_range(0..p.branches as u64);
            let d = rng.gen_range(0..p.dirs_per_branch as u64);
            let f = rng.gen_range(0..p.files_per_dir as u64);
            format!("/b{b}/d{d}/f{f}")
        })
        .collect()
}

/// One resolution round: resolve every sampled path component by
/// component, `getattr` it, and `read` it. Returns (ops, bytes).
pub fn resolve_round(
    fs: &mut (impl FileSystem + ?Sized),
    paths: &[String],
    buf: &mut [u8],
) -> FsResult<(u64, u64)> {
    let mut ops = 0u64;
    let mut bytes = 0u64;
    for path in paths {
        let ino: Ino = resolve(fs, path)?;
        ops += 3; // one lookup per component
        fs.getattr(ino)?;
        ops += 1;
        let n = fs.read(ino, 0, buf)?;
        ops += 1;
        bytes += n as u64;
    }
    Ok((ops, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_fslib::model::ModelFs;

    fn tiny() -> NameiParams {
        NameiParams {
            branches: 2,
            dirs_per_branch: 2,
            files_per_dir: 3,
            file_size: 8,
            sample: 10,
            rounds: 2,
            seed: 7,
        }
    }

    #[test]
    fn builds_the_advertised_tree() {
        let p = tiny();
        let mut fs = ModelFs::new();
        let (ops, bytes) = build_tree(&mut fs, &p).expect("build");
        assert_eq!(p.total_files(), 12);
        assert_eq!(p.total_dirs(), 6);
        // mkdirs + creates + writes
        assert_eq!(ops, 6 + 12 + 12);
        assert_eq!(bytes, 12 * 8);
    }

    #[test]
    fn sample_is_seeded_and_resolvable() {
        let p = tiny();
        let mut fs = ModelFs::new();
        build_tree(&mut fs, &p).expect("build");
        let paths = sample_paths(&p);
        assert_eq!(paths, sample_paths(&p));
        let mut buf = vec![0u8; p.file_size.max(1)];
        let (ops, bytes) = resolve_round(&mut fs, &paths, &mut buf).expect("resolve");
        assert_eq!(ops, 10 * 5);
        assert_eq!(bytes, 10 * 8);
    }

    #[test]
    fn zero_byte_files_still_resolve_and_read() {
        let p = NameiParams { file_size: 0, ..tiny() };
        let mut fs = ModelFs::new();
        build_tree(&mut fs, &p).expect("build");
        let mut buf = vec![0u8; 1];
        let (ops, bytes) = resolve_round(&mut fs, &sample_paths(&p), &mut buf).expect("resolve");
        assert_eq!(ops, 10 * 5);
        assert_eq!(bytes, 0);
    }
}

//! File-system aging, after [Herrin93].
//!
//! "The program simply creates and deletes a large number of files. The
//! probability that the next operation performed is a file creation
//! (rather than a deletion) is taken from a distribution centered around a
//! desired file system utilization."
//!
//! Concretely: when the file system sits below the target utilization the
//! next operation is biased toward creation, above it toward deletion, so
//! utilization oscillates around the target while allocation and freeing
//! churn fragments the free space. The E7 reproduction ages the disk, then
//! reruns the small-file read phase to see how much of the grouping
//! benefit fragmentation erodes.

use crate::sizes::SizeDist;
use cffs_fslib::{FileSystem, FsResult, Ino};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Aging parameters.
#[derive(Debug, Clone, Copy)]
pub struct AgingParams {
    /// Target fraction of data blocks in use, in `(0, 1)`.
    pub utilization: f64,
    /// Create/delete operations to perform.
    pub ops: usize,
    /// Directories to spread the churn over.
    pub ndirs: usize,
    /// RNG seed (determinism).
    pub seed: u64,
}

impl Default for AgingParams {
    fn default() -> Self {
        AgingParams { utilization: 0.5, ops: 50_000, ndirs: 50, seed: 1997 }
    }
}

/// Summary of an aging run.
#[derive(Debug, Clone, Copy)]
pub struct AgingOutcome {
    /// Files created.
    pub creates: u64,
    /// Files deleted.
    pub deletes: u64,
    /// Creates that failed with `NoSpace` (pressure events).
    pub enospc: u64,
    /// Final utilization (used / total data blocks).
    pub final_utilization: f64,
    /// Live files at the end.
    pub live_files: usize,
}

/// Age the file system. Files are created with sizes drawn from `dist` and
/// deleted at random; the create probability tracks the utilization target.
pub fn age(
    fs: &mut (impl FileSystem + ?Sized),
    params: AgingParams,
    dist: &impl SizeDist,
) -> FsResult<AgingOutcome> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let root = fs.root();
    let mut dirs: Vec<Ino> = Vec::new();
    for d in 0..params.ndirs {
        let name = format!("age{d:03}");
        let ino = match fs.lookup(root, &name) {
            Ok(i) => i,
            Err(_) => fs.mkdir(root, &name)?,
        };
        dirs.push(ino);
    }
    // (dir index, name) of live files.
    let mut live: Vec<(usize, String)> = Vec::new();
    let mut out = AgingOutcome {
        creates: 0,
        deletes: 0,
        enospc: 0,
        final_utilization: 0.0,
        live_files: 0,
    };
    let mut serial = 0u64;
    let mut buf = Vec::new();
    for _ in 0..params.ops {
        let st = fs.statfs()?;
        let used =
            (st.total_blocks - st.free_blocks - st.group_slack_blocks) as f64 / st.total_blocks as f64;
        // Bias: at target the coin is fair; the further below (above), the
        // more likely a create (delete).
        let p_create = (0.5 + (params.utilization - used) * 2.0).clamp(0.05, 0.95);
        let create = live.is_empty() || rng.gen::<f64>() < p_create;
        if create {
            let d = rng.gen_range(0..dirs.len());
            // Seed-qualified names so successive aging passes (different
            // seeds) over one image never collide.
            let name = format!("g{:04x}{serial:08}", params.seed as u16);
            serial += 1;
            let size = dist.sample(&mut rng);
            buf.resize(size, 0);
            buf.fill((serial % 251) as u8);
            match fs.create(dirs[d], &name) {
                Ok(ino) => match fs.write(ino, 0, &buf) {
                    Ok(_) => {
                        live.push((d, name));
                        out.creates += 1;
                    }
                    Err(cffs_fslib::FsError::NoSpace) => {
                        // Undo the half-made file and count the pressure event.
                        fs.unlink(dirs[d], &name)?;
                        out.enospc += 1;
                    }
                    Err(e) => return Err(e),
                },
                Err(cffs_fslib::FsError::NoSpace | cffs_fslib::FsError::NoInodes) => {
                    out.enospc += 1
                }
                Err(e) => return Err(e),
            }
        } else {
            let idx = rng.gen_range(0..live.len());
            let (d, name) = live.swap_remove(idx);
            fs.unlink(dirs[d], &name)?;
            out.deletes += 1;
        }
    }
    fs.sync()?;
    let st = fs.statfs()?;
    out.final_utilization =
        (st.total_blocks - st.free_blocks - st.group_slack_blocks) as f64 / st.total_blocks as f64;
    out.live_files = live.len();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::Fixed;
    use cffs_fslib::model::ModelFs;

    #[test]
    fn aging_on_oracle_creates_and_deletes() {
        let mut fs = ModelFs::new();
        let out = age(
            &mut fs,
            AgingParams { utilization: 0.5, ops: 500, ndirs: 4, seed: 7 },
            &Fixed(2048),
        )
        .unwrap();
        assert_eq!(out.creates + out.deletes, 500);
        assert!(out.creates > 0 && out.deletes > 0);
        assert_eq!(out.live_files as u64, out.creates - out.deletes);
    }

    #[test]
    fn aging_is_deterministic() {
        let run = || {
            let mut fs = ModelFs::new();
            age(
                &mut fs,
                AgingParams { utilization: 0.4, ops: 300, ndirs: 3, seed: 99 },
                &Fixed(1024),
            )
            .unwrap()
            .creates
        };
        assert_eq!(run(), run());
    }
}

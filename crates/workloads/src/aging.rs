//! File-system aging, after [Herrin93].
//!
//! "The program simply creates and deletes a large number of files. The
//! probability that the next operation performed is a file creation
//! (rather than a deletion) is taken from a distribution centered around a
//! desired file system utilization."
//!
//! Concretely: when the file system sits below the target utilization the
//! next operation is biased toward creation, above it toward deletion, so
//! utilization oscillates around the target while allocation and freeing
//! churn fragments the free space. The E7 reproduction ages the disk, then
//! reruns the small-file read phase to see how much of the grouping
//! benefit fragmentation erodes.

use crate::sizes::SizeDist;
use cffs_fslib::{FileSystem, FsResult, Ino, BLOCK_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Aging parameters.
#[derive(Debug, Clone, Copy)]
pub struct AgingParams {
    /// Target fraction of data blocks in use, in `(0, 1)`.
    pub utilization: f64,
    /// Create/delete operations to perform.
    pub ops: usize,
    /// Directories to spread the churn over.
    pub ndirs: usize,
    /// RNG seed (determinism).
    pub seed: u64,
}

impl Default for AgingParams {
    fn default() -> Self {
        AgingParams { utilization: 0.5, ops: 50_000, ndirs: 50, seed: 1997 }
    }
}

/// Summary of an aging run.
#[derive(Debug, Clone, Copy)]
pub struct AgingOutcome {
    /// Files created.
    pub creates: u64,
    /// Files deleted.
    pub deletes: u64,
    /// Creates that failed with `NoSpace` (pressure events).
    pub enospc: u64,
    /// Final utilization (used / total data blocks).
    pub final_utilization: f64,
    /// Live files at the end.
    pub live_files: usize,
}

/// Age the file system. Files are created with sizes drawn from `dist` and
/// deleted at random; the create probability tracks the utilization target.
pub fn age(
    fs: &mut (impl FileSystem + ?Sized),
    params: AgingParams,
    dist: &impl SizeDist,
) -> FsResult<AgingOutcome> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let root = fs.root();
    let mut dirs: Vec<Ino> = Vec::new();
    for d in 0..params.ndirs {
        let name = format!("age{d:03}");
        let ino = match fs.lookup(root, &name) {
            Ok(i) => i,
            Err(_) => fs.mkdir(root, &name)?,
        };
        dirs.push(ino);
    }
    // (dir index, name) of live files.
    let mut live: Vec<(usize, String)> = Vec::new();
    let mut out = AgingOutcome {
        creates: 0,
        deletes: 0,
        enospc: 0,
        final_utilization: 0.0,
        live_files: 0,
    };
    let mut serial = 0u64;
    let mut buf = Vec::new();
    for _ in 0..params.ops {
        let st = fs.statfs()?;
        let used =
            (st.total_blocks - st.free_blocks - st.group_slack_blocks) as f64 / st.total_blocks as f64;
        // Bias: at target the coin is fair; the further below (above), the
        // more likely a create (delete).
        let p_create = (0.5 + (params.utilization - used) * 2.0).clamp(0.05, 0.95);
        let create = live.is_empty() || rng.gen::<f64>() < p_create;
        if create {
            let d = rng.gen_range(0..dirs.len());
            // Seed-qualified names so successive aging passes (different
            // seeds) over one image never collide.
            let name = format!("g{:04x}{serial:08}", params.seed as u16);
            serial += 1;
            let size = dist.sample(&mut rng);
            buf.resize(size, 0);
            buf.fill((serial % 251) as u8);
            match fs.create(dirs[d], &name) {
                Ok(ino) => match fs.write(ino, 0, &buf) {
                    Ok(_) => {
                        live.push((d, name));
                        out.creates += 1;
                    }
                    Err(cffs_fslib::FsError::NoSpace) => {
                        // Undo the half-made file and count the pressure event.
                        fs.unlink(dirs[d], &name)?;
                        out.enospc += 1;
                    }
                    Err(e) => return Err(e),
                },
                Err(cffs_fslib::FsError::NoSpace | cffs_fslib::FsError::NoInodes) => {
                    out.enospc += 1
                }
                Err(e) => return Err(e),
            }
        } else {
            let idx = rng.gen_range(0..live.len());
            let (d, name) = live.swap_remove(idx);
            fs.unlink(dirs[d], &name)?;
            out.deletes += 1;
        }
    }
    fs.sync()?;
    let st = fs.statfs()?;
    out.final_utilization =
        (st.total_blocks - st.free_blocks - st.group_slack_blocks) as f64 / st.total_blocks as f64;
    out.live_files = live.len();
    Ok(out)
}

/// Adversarial aging parameters: storms engineered to shred explicit
/// grouping rather than merely oscillate utilization.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialParams {
    /// Storm rounds (each round: create storm, interleaved delete storm,
    /// hostile-size refill, directory churn).
    pub rounds: usize,
    /// Files per create storm.
    pub storm_files: usize,
    /// Directories the storms rotate over.
    pub ndirs: usize,
    /// RNG seed (determinism).
    pub seed: u64,
}

impl Default for AdversarialParams {
    fn default() -> Self {
        AdversarialParams { rounds: 3, storm_files: 120, ndirs: 8, seed: 1997 }
    }
}

/// Summary of an adversarial aging run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdversarialOutcome {
    /// Files created across all storms.
    pub creates: u64,
    /// Files deleted.
    pub deletes: u64,
    /// Cross-directory renames performed.
    pub renames: u64,
    /// Creates/writes that hit `NoSpace` (dropped, counted).
    pub enospc: u64,
}

/// Age the file system *adversarially*: each round runs
///
/// 1. a **create storm** — a burst of one-block files round-robined
///    across directories, filling every directory's group extents;
/// 2. an **interleaved delete storm** — every other file of the storm is
///    removed, punching single-block holes through every extent;
/// 3. a **hostile-size refill** — files of 3 and 5 blocks (awkward
///    against one-block holes and the 16-block extent size) are created
///    in the churned directories, forcing spill into strangers' extents
///    or stray ungrouped blocks;
/// 4. **directory churn** — surviving files are renamed into the *next*
///    directory, so block ownership no longer matches the namespace.
///
/// After each round the `between` hook runs — this is where a caller
/// mounts the regrouping engine (or measures decay); pass `|_, _| Ok(())`
/// to just age. The hook receives the file system and the 0-based round
/// that just finished. `fs.sync()` runs before each hook so the hook sees
/// a quiescent image, and `group_fetch_util_pct` sampled across the run
/// is the quality signal that should decay (and recover, if the hook
/// regroups).
pub fn age_adversarial<F: FileSystem + ?Sized>(
    fs: &mut F,
    params: AdversarialParams,
    mut between: impl FnMut(&mut F, usize) -> FsResult<()>,
) -> FsResult<AdversarialOutcome> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let root = fs.root();
    let mut dirs: Vec<Ino> = Vec::new();
    for d in 0..params.ndirs {
        let name = format!("adv{d:03}");
        let ino = match fs.lookup(root, &name) {
            Ok(i) => i,
            Err(_) => fs.mkdir(root, &name)?,
        };
        dirs.push(ino);
    }
    let mut out = AdversarialOutcome::default();
    let mut serial = 0u64;
    // (dir index, name) of files alive across rounds.
    let mut live: Vec<(usize, String)> = Vec::new();
    let create = |fs: &mut F,
                      dirs: &[Ino],
                      d: usize,
                      size: usize,
                      serial: &mut u64,
                      out: &mut AdversarialOutcome|
     -> FsResult<Option<String>> {
        let name = format!("s{:04x}{:08}", params.seed as u16, *serial);
        *serial += 1;
        let body: Vec<u8> = (0..size)
            .map(|j| ((params.seed as usize ^ (*serial as usize * 131 + j * 17)) % 251) as u8)
            .collect();
        match fs.create(dirs[d], &name) {
            Ok(ino) => match fs.write(ino, 0, &body) {
                Ok(_) => {
                    out.creates += 1;
                    Ok(Some(name))
                }
                Err(cffs_fslib::FsError::NoSpace) => {
                    fs.unlink(dirs[d], &name)?;
                    out.enospc += 1;
                    Ok(None)
                }
                Err(e) => Err(e),
            },
            Err(cffs_fslib::FsError::NoSpace | cffs_fslib::FsError::NoInodes) => {
                out.enospc += 1;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    };
    for round in 0..params.rounds {
        // 1. Create storm: one-block files, round-robin, so consecutive
        // allocations in one directory interleave with every other's.
        let mut storm: Vec<(usize, String)> = Vec::new();
        for i in 0..params.storm_files {
            let d = i % dirs.len();
            if let Some(name) = create(fs, &dirs, d, BLOCK_SIZE, &mut serial, &mut out)? {
                storm.push((d, name));
            }
        }
        // 2. Interleaved delete storm: every other storm file goes,
        // punching one-block holes through every group extent.
        let mut kept: Vec<(usize, String)> = Vec::new();
        for (i, (d, name)) in storm.into_iter().enumerate() {
            if i % 2 == 0 {
                fs.unlink(dirs[d], &name)?;
                out.deletes += 1;
            } else {
                kept.push((d, name));
            }
        }
        // 3. Hostile refill: 3- and 5-block files don't fit the one-block
        // holes, forcing allocation to spill across extents.
        for i in 0..params.storm_files / 4 {
            let d = rng.gen_range(0..dirs.len());
            let blocks = if i % 2 == 0 { 3 } else { 5 };
            if let Some(name) = create(fs, &dirs, d, blocks * BLOCK_SIZE, &mut serial, &mut out)? {
                kept.push((d, name));
            }
        }
        // 4. Directory churn: survivors move to the next directory, so
        // their blocks now live in extents owned by a stranger.
        for (d, name) in &mut kept {
            let nd = (*d + 1) % dirs.len();
            fs.rename(dirs[*d], name, dirs[nd], name)?;
            out.renames += 1;
            *d = nd;
        }
        live.append(&mut kept);
        fs.sync()?;
        between(fs, round)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::Fixed;
    use cffs_fslib::model::ModelFs;

    #[test]
    fn aging_on_oracle_creates_and_deletes() {
        let mut fs = ModelFs::new();
        let out = age(
            &mut fs,
            AgingParams { utilization: 0.5, ops: 500, ndirs: 4, seed: 7 },
            &Fixed(2048),
        )
        .unwrap();
        assert_eq!(out.creates + out.deletes, 500);
        assert!(out.creates > 0 && out.deletes > 0);
        assert_eq!(out.live_files as u64, out.creates - out.deletes);
    }

    #[test]
    fn adversarial_rounds_and_hook_order() {
        let mut fs = ModelFs::new();
        let mut hooks = Vec::new();
        let out = age_adversarial(
            &mut fs,
            AdversarialParams { rounds: 2, storm_files: 40, ndirs: 4, seed: 5 },
            |_, round| {
                hooks.push(round);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(hooks, vec![0, 1]);
        // Each round: 40 created, 20 deleted, 10 refills, survivors renamed.
        assert_eq!(out.creates, 2 * (40 + 10));
        assert_eq!(out.deletes, 2 * 20);
        assert_eq!(out.renames, 2 * 30);
        assert_eq!(out.enospc, 0);
    }

    #[test]
    fn adversarial_is_deterministic() {
        let run = || {
            let mut fs = ModelFs::new();
            let out = age_adversarial(
                &mut fs,
                AdversarialParams { rounds: 2, storm_files: 30, ndirs: 3, seed: 11 },
                |_, _| Ok(()),
            )
            .unwrap();
            (out.creates, out.deletes, out.renames)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn aging_is_deterministic() {
        let run = || {
            let mut fs = ModelFs::new();
            age(
                &mut fs,
                AgingParams { utilization: 0.4, ops: 300, ndirs: 3, seed: 99 },
                &Fixed(1024),
            )
            .unwrap()
            .creates
        };
        assert_eq!(run(), run());
    }
}

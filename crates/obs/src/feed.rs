//! Streaming telemetry feed — timestamped frames folded from the atomic
//! registries, appended as JSONL for `cffs-top` (and any other consumer)
//! to follow or replay.
//!
//! A [`FeedSink`] owns the feed file. Each appended frame rewrites the
//! whole file through a staging-file + rename, the same atomic-write
//! discipline as the bench artifacts: a follower polling the path always
//! reads a complete prefix of frames, never a torn line. In-process
//! consumers can [`FeedSink::subscribe`] for a channel of rendered frame
//! lines instead of polling the file.
//!
//! A [`FeedTap`] attaches one observed stack ([`Obs`]) to a sink and
//! decides *when* frames are cut ([`Cadence`]):
//!
//! * `Sim(interval_ns)` — a frame whenever the stack's simulated clock
//!   crosses the next interval boundary. The check rides
//!   [`Obs::set_clock_ns`] (one relaxed load when no tap is attached),
//!   so emission happens at deterministic points of a deterministic
//!   run: same seed ⇒ byte-identical feed.
//! * `Host(duration)` — a background sampler thread cuts frames in wall
//!   time, for watching long soaks live.
//! * `Manual` — frames only via [`TapGuard::frame`], e.g. at the phase
//!   barriers of a multi-threaded run where the registries are
//!   quiescent.
//!
//! Frames carry *deltas* since the previous frame (counters, histogram
//! sum/count, per-CG traffic, per-thread ops) plus instantaneous state
//! (signal EWMAs, queue depth, per-CG occupancy). Every registry read
//! is an atomic load or a short leaf-lock copy, so a frame is a
//! consistent-enough snapshot without ever stopping the stack — see
//! DESIGN.md §8 for the consistency model.

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};

use crate::json::Json;
use crate::{obj, Ctr, Obs, Sig, THREAD_SLOTS};

/// Default simulated-time frame cadence: 50 ms of simulated time, a few
/// dozen frames per benchmark phase at the repro binaries' scales.
pub const SIM_INTERVAL_DEFAULT_NS: u64 = 50_000_000;

/// Counters carried (as deltas) in every frame, in frame order.
pub const FRAME_COUNTERS: &[Ctr] = &[
    Ctr::DiskRequests,
    Ctr::DiskReads,
    Ctr::DiskWrites,
    Ctr::DriverQueueSubmit,
    Ctr::CacheLookups,
    Ctr::CacheMisses,
    Ctr::CacheWritebacks,
    Ctr::DcacheHits,
    Ctr::DcacheMisses,
    Ctr::DcacheNegHits,
    Ctr::DcacheEvictions,
    Ctr::FsGroupFetches,
    Ctr::RegroupBlocksMoved,
    Ctr::RegroupGroupsFormed,
    Ctr::RegroupAutotriggers,
    Ctr::SignalLowEvents,
    Ctr::SignalHighEvents,
    Ctr::LockWaitNsAlloc,
    Ctr::LockWaitNsCache,
    Ctr::LockWaitNsDriver,
    Ctr::VolStripePromotions,
    Ctr::VolStripePartIos,
    Ctr::VolDirFanouts,
];

/// Histograms whose per-frame `(dsum, dcount)` deltas are carried in
/// every frame.
pub const FRAME_HISTOS: &[&str] =
    &["group_fetch_util_pct", "driver_batch_reqs", "cache_shard_hit_pct", "dcache_hit_pct"];

/// Top-level frame fields with one-line descriptions — the glossary
/// that README documents and `tests/doc_drift.rs` cross-checks.
pub const FRAME_FIELDS: &[(&str, &str)] = &[
    ("seq", "frame number within the feed file, starting at 0"),
    ("stage", "producer-supplied label for the run stage that cut this frame"),
    ("t_ns", "simulated time the frame was cut, nanoseconds"),
    ("counters", "curated counter deltas since the previous frame of this tap"),
    ("ops", "outermost file-system ops completed since the previous frame"),
    ("queue_depth", "submissions waiting in the threaded driver queue right now"),
    ("histos", "per-histogram {dsum, dcount} deltas since the previous frame"),
    ("signals", "live signal registry: EWMAs, armed thresholds, crossing counts"),
    ("cgs", "per-cylinder-group occupancy, utilization EWMA, and I/O deltas"),
    ("threads", "per-thread-slot op deltas since the previous frame"),
    ("events", "signal.* and regroup.* trace events recorded since the previous frame"),
    (
        "dcache_hit_milli",
        "namespace-cache hit rate (positive + negative) over probes since the previous frame, in milli-units; 0 when no probes",
    ),
    (
        "slo_burn_milli",
        "worst per-op SLO error-budget burn so far, milli-units (1000 = exactly at budget); 0 when no objectives are armed",
    ),
    (
        "volumes",
        "per-volume rows (vol, ops, queue_depth, dreads, dwrites, gf_util_ewma_milli) for volume-set producers; empty array otherwise",
    ),
];

/// How a tap decides when to cut frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cadence {
    /// A frame each time the simulated clock crosses an interval
    /// boundary (deterministic for a deterministic run).
    Sim(u64),
    /// A background sampler thread cuts frames every wall-clock
    /// interval (for watching live; frame count is nondeterministic).
    Host(std::time::Duration),
    /// Frames only on explicit [`TapGuard::frame`] calls.
    Manual,
}

/// Staging-name disambiguator (same discipline as the bench artifacts).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The feed file plus its in-process subscribers.
pub struct FeedSink {
    path: std::path::PathBuf,
    state: Mutex<SinkState>,
}

struct SinkState {
    /// Full JSONL content written so far (the file is atomically
    /// rewritten per frame, so the accumulated text is the file).
    text: String,
    frames: u64,
    subscribers: Vec<mpsc::Sender<String>>,
    /// Set after the first failed write so the warning prints once.
    write_failed: bool,
}

impl FeedSink {
    /// Create (truncate) the feed file and return the sink. The empty
    /// file is written immediately so `cffs-top --follow` can latch on
    /// before the first frame.
    pub fn create(path: impl Into<std::path::PathBuf>) -> std::io::Result<Arc<FeedSink>> {
        let path = path.into();
        std::fs::write(&path, "")?;
        Ok(Arc::new(FeedSink {
            path,
            state: Mutex::new(SinkState {
                text: String::new(),
                frames: 0,
                subscribers: Vec::new(),
                write_failed: false,
            }),
        }))
    }

    /// Where the feed is being written.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Frames appended so far.
    pub fn frames(&self) -> u64 {
        self.state.lock().expect("feed sink poisoned").frames
    }

    /// Receive every subsequent frame as its rendered JSONL line.
    pub fn subscribe(&self) -> mpsc::Receiver<String> {
        let (tx, rx) = mpsc::channel();
        self.state.lock().expect("feed sink poisoned").subscribers.push(tx);
        rx
    }

    /// Assign the next sequence number to `frame`, render it, and
    /// publish: atomic full-file rewrite + subscriber fan-out. Write
    /// failures warn once and drop frames rather than killing the run —
    /// telemetry must never fail the experiment it watches.
    fn append(&self, mut frame: Vec<(String, Json)>) {
        let mut st = self.state.lock().expect("feed sink poisoned");
        frame.insert(0, ("seq".to_string(), Json::Int(st.frames as i64)));
        let line = Json::Obj(frame).to_string();
        st.frames += 1;
        st.text.push_str(&line);
        st.text.push('\n');
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .path
            .with_extension(format!("{}.{}.tmp", std::process::id(), seq));
        let res = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(st.text.as_bytes()))
            .and_then(|()| std::fs::rename(&tmp, &self.path));
        if let Err(e) = res {
            if !st.write_failed {
                st.write_failed = true;
                eprintln!("warning: telemetry feed write to {} failed: {e}", self.path.display());
            }
        }
        st.subscribers.retain(|tx| tx.send(line.clone()).is_ok());
    }
}

/// Per-tap delta baseline: the registry values at the previous frame.
struct Baseline {
    counters: Vec<u64>,
    histos: Vec<(u64, u64)>,
    cg_io: Vec<(u64, u64, u64, u64)>,
    threads: [u64; THREAD_SLOTS],
    events_mark: u64,
}

/// `(sum, count)` of each [`FRAME_HISTOS`] histogram, in frame order.
fn frame_histo_points(obs: &Obs) -> Vec<(u64, u64)> {
    let h = obs.histos();
    [&h.group_fetch_util_pct, &h.driver_batch_reqs, &h.cache_shard_hit_pct, &h.dcache_hit_pct]
        .iter()
        .map(|hg| {
            let s = hg.snapshot();
            (s.sum, s.count())
        })
        .collect()
}

impl Baseline {
    fn capture(obs: &Obs) -> Baseline {
        Baseline {
            counters: FRAME_COUNTERS.iter().map(|&c| obs.get(c)).collect(),
            histos: frame_histo_points(obs),
            cg_io: obs
                .cg_stats()
                .iter()
                .map(|c| (c.read_ios, c.write_ios, c.read_sectors, c.write_sectors))
                .collect(),
            threads: obs.thread_ops(),
            events_mark: obs.events_recorded(),
        }
    }
}

/// One attachment of an [`Obs`] to a [`FeedSink`] (see the module docs
/// for cadences). Created via [`attach`]; frames stop when the returned
/// [`TapGuard`] drops.
pub struct FeedTap {
    sink: Arc<FeedSink>,
    obs: Arc<Obs>,
    /// Per-volume registries of a volume-set producer, in volume order
    /// (empty for single-volume producers; drives the `volumes` rows).
    vols: Vec<Arc<Obs>>,
    interval_ns: u64,
    state: Mutex<TapState>,
}

struct TapState {
    stage: String,
    due_ns: u64,
    prev: Baseline,
    /// Per-volume delta baselines, parallel to [`FeedTap::vols`].
    vol_prev: Vec<VolBaseline>,
}

/// Per-volume delta baseline for the `volumes` frame rows.
struct VolBaseline {
    ops: u64,
    dreads: u64,
    dwrites: u64,
}

impl VolBaseline {
    fn capture(obs: &Obs) -> VolBaseline {
        VolBaseline {
            ops: obs.thread_ops().iter().sum(),
            dreads: obs.get(Ctr::DiskReads),
            dwrites: obs.get(Ctr::DiskWrites),
        }
    }
}

impl FeedTap {
    /// Cut one frame at simulated time `t_ns` (stage overridable for
    /// manual frames).
    fn emit(&self, t_ns: u64, stage: Option<&str>) {
        let mut st = self.state.lock().expect("feed tap poisoned");
        if let Some(s) = stage {
            st.stage = s.to_string();
        }
        let frame = self.build_frame(&mut st, t_ns);
        drop(st);
        self.sink.append(frame);
    }

    /// Simulated-clock pacer entry: called (via [`sim_fire`]) whenever
    /// the clock crosses `due_ns`. Rechecks under the tap lock so
    /// concurrent clock movers cut exactly one frame per crossing.
    pub(crate) fn sim_tick(&self, now_ns: u64) {
        let mut st = self.state.lock().expect("feed tap poisoned");
        if now_ns < st.due_ns {
            return;
        }
        st.due_ns = (now_ns / self.interval_ns + 1) * self.interval_ns;
        self.obs.feed_due_ns.store(st.due_ns, Ordering::Relaxed);
        let frame = self.build_frame(&mut st, now_ns);
        drop(st);
        self.sink.append(frame);
    }

    /// Fold the registries into one frame object and advance the
    /// baseline. Lock discipline: every read below is an atomic load or
    /// a short copy under one leaf lock (signals, trace ring, per-CG
    /// util) taken *sequentially*, never nested — emission can therefore
    /// run from any thread, including the driver worker.
    fn build_frame(&self, st: &mut TapState, t_ns: u64) -> Vec<(String, Json)> {
        let obs = &self.obs;
        let cur = Baseline::capture(obs);
        let counters = Json::Obj(
            FRAME_COUNTERS
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let prev = st.prev.counters.get(i).copied().unwrap_or(0);
                    (c.name().to_string(), Json::Int(cur.counters[i].saturating_sub(prev) as i64))
                })
                .collect(),
        );
        let histos = Json::Obj(
            FRAME_HISTOS
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    let (psum, pcount) = st.prev.histos.get(i).copied().unwrap_or((0, 0));
                    let (sum, count) = cur.histos[i];
                    (
                        n.to_string(),
                        obj![
                            ("dsum", Json::Int(sum.saturating_sub(psum) as i64)),
                            ("dcount", Json::Int(count.saturating_sub(pcount) as i64)),
                        ],
                    )
                })
                .collect(),
        );
        let cgs = Json::Arr(
            obs.cg_stats()
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let (pr, pw, prs, pws) = st.prev.cg_io.get(i).copied().unwrap_or((0, 0, 0, 0));
                    obj![
                        ("cg", Json::Int(c.cg as i64)),
                        ("data_blocks", Json::Int(c.data_blocks as i64)),
                        ("used", Json::Int(c.used as i64)),
                        ("util_ewma_milli", Json::Int(c.util_ewma_milli as i64)),
                        ("util_samples", Json::Int(c.util_samples as i64)),
                        ("dread_ios", Json::Int(c.read_ios.saturating_sub(pr) as i64)),
                        ("dwrite_ios", Json::Int(c.write_ios.saturating_sub(pw) as i64)),
                        ("dread_sectors", Json::Int(c.read_sectors.saturating_sub(prs) as i64)),
                        ("dwrite_sectors", Json::Int(c.write_sectors.saturating_sub(pws) as i64)),
                    ]
                })
                .collect(),
        );
        let threads = Json::Arr(
            (0..THREAD_SLOTS)
                .map(|i| Json::Int(cur.threads[i].saturating_sub(st.prev.threads[i]) as i64))
                .collect(),
        );
        let ops: u64 = (0..THREAD_SLOTS)
            .map(|i| cur.threads[i].saturating_sub(st.prev.threads[i]))
            .sum();
        // Namespace-cache hit rate over this frame's window, derived
        // from the counter deltas already captured above.
        let dctr = |ctr: Ctr| -> u64 {
            FRAME_COUNTERS
                .iter()
                .position(|&c| c == ctr)
                .map(|i| {
                    cur.counters[i].saturating_sub(st.prev.counters.get(i).copied().unwrap_or(0))
                })
                .unwrap_or(0)
        };
        let dcache_hits = dctr(Ctr::DcacheHits) + dctr(Ctr::DcacheNegHits);
        let dcache_probes = dcache_hits + dctr(Ctr::DcacheMisses);
        let dcache_hit_milli = (dcache_hits * 1000).checked_div(dcache_probes).unwrap_or(0);
        let (fresh, mark) = obs.events_since(st.prev.events_mark);
        let events = Json::Arr(
            fresh
                .iter()
                .filter(|e| e.tag.starts_with("signal.") || e.tag.starts_with("regroup."))
                .map(|e| {
                    obj![
                        ("t_ns", Json::Int(e.t_ns as i64)),
                        ("tag", Json::Str(e.tag.to_string())),
                        ("a", Json::Int(e.a as i64)),
                        ("b", Json::Int(e.b as i64)),
                    ]
                })
                .collect(),
        );
        let vol_cur: Vec<VolBaseline> =
            self.vols.iter().map(|v| VolBaseline::capture(v)).collect();
        let volumes = Json::Arr(
            self.vols
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let zero = VolBaseline { ops: 0, dreads: 0, dwrites: 0 };
                    let prev = st.vol_prev.get(i).unwrap_or(&zero);
                    let gf = v.signal(Sig::GroupFetchUtil);
                    obj![
                        ("vol", Json::Int(i as i64)),
                        ("ops", Json::Int(vol_cur[i].ops.saturating_sub(prev.ops) as i64)),
                        ("queue_depth", Json::Int(v.queue_depth() as i64)),
                        (
                            "dreads",
                            Json::Int(vol_cur[i].dreads.saturating_sub(prev.dreads) as i64)
                        ),
                        (
                            "dwrites",
                            Json::Int(vol_cur[i].dwrites.saturating_sub(prev.dwrites) as i64)
                        ),
                        (
                            "gf_util_ewma_milli",
                            Json::Int((gf.ewma * 1000.0).round() as i64)
                        ),
                    ]
                })
                .collect(),
        );
        let frame = vec![
            ("stage".to_string(), Json::Str(st.stage.clone())),
            ("t_ns".to_string(), Json::Int(t_ns as i64)),
            ("counters".to_string(), counters),
            ("ops".to_string(), Json::Int(ops as i64)),
            ("queue_depth".to_string(), Json::Int(obs.queue_depth() as i64)),
            ("histos".to_string(), histos),
            ("signals".to_string(), obs.signals_json()),
            ("cgs".to_string(), cgs),
            ("threads".to_string(), threads),
            ("events".to_string(), events),
            ("dcache_hit_milli".to_string(), Json::Int(dcache_hit_milli as i64)),
            ("slo_burn_milli".to_string(), Json::Int(obs.slo_burn_milli() as i64)),
            ("volumes".to_string(), volumes),
        ];
        st.prev = cur;
        st.prev.events_mark = mark;
        st.vol_prev = vol_cur;
        frame
    }
}

/// Guard returned by [`attach`]. Dropping it detaches the tap (stopping
/// the pacer / sampler thread) and cuts one final frame, so every stage
/// is guaranteed at least one frame even if its run ended between
/// cadence boundaries.
pub struct TapGuard {
    tap: Arc<FeedTap>,
    sim: bool,
    stop: Option<Arc<AtomicBool>>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl TapGuard {
    /// Cut a frame right now, relabelling the tap's stage. The manual
    /// cadence's only trigger; valid (if rarely needed) on the others.
    pub fn frame(&self, stage: &str) {
        self.tap.emit(self.tap.obs.global_clock_ns(), Some(stage));
    }
}

impl Drop for TapGuard {
    fn drop(&mut self) {
        if let Some(stop) = &self.stop {
            stop.store(true, Ordering::Relaxed);
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        if self.sim {
            let obs = &self.tap.obs;
            obs.feed_due_ns.store(u64::MAX, Ordering::Relaxed);
            *obs.feed_tap.lock().expect("feed tap slot poisoned") = None;
        }
        self.tap.emit(self.tap.obs.global_clock_ns(), None);
    }
}

/// Attach `obs` to `sink` with the given stage label and cadence.
pub fn attach(
    sink: &Arc<FeedSink>,
    obs: &Arc<Obs>,
    stage: &str,
    cadence: Cadence,
) -> TapGuard {
    attach_with_volumes(sink, obs, &[], stage, cadence)
}

/// [`attach`] for a volume-set producer: `vols` are the per-volume
/// registries, in volume order; every frame then carries one `volumes`
/// row per entry (single-volume taps emit an empty array).
pub fn attach_with_volumes(
    sink: &Arc<FeedSink>,
    obs: &Arc<Obs>,
    vols: &[Arc<Obs>],
    stage: &str,
    cadence: Cadence,
) -> TapGuard {
    let interval_ns = match cadence {
        Cadence::Sim(i) => i.max(1),
        _ => u64::MAX,
    };
    let tap = Arc::new(FeedTap {
        sink: Arc::clone(sink),
        obs: Arc::clone(obs),
        vols: vols.to_vec(),
        interval_ns,
        state: Mutex::new(TapState {
            stage: stage.to_string(),
            due_ns: u64::MAX,
            prev: Baseline::capture(obs),
            vol_prev: vols.iter().map(|v| VolBaseline::capture(v)).collect(),
        }),
    });
    let mut guard = TapGuard { tap: Arc::clone(&tap), sim: false, stop: None, join: None };
    match cadence {
        Cadence::Sim(_) => {
            let now = obs.global_clock_ns();
            let due = (now / interval_ns + 1) * interval_ns;
            tap.state.lock().expect("feed tap poisoned").due_ns = due;
            *obs.feed_tap.lock().expect("feed tap slot poisoned") = Some(Arc::downgrade(&tap));
            obs.feed_due_ns.store(due, Ordering::Relaxed);
            guard.sim = true;
        }
        Cadence::Host(every) => {
            let stop = Arc::new(AtomicBool::new(false));
            let t = Arc::clone(&tap);
            let s = Arc::clone(&stop);
            guard.join = Some(std::thread::spawn(move || {
                // The background sampler: cut a frame per wall interval
                // until the guard drops.
                while !s.load(Ordering::Relaxed) {
                    std::thread::sleep(every);
                    if s.load(Ordering::Relaxed) {
                        break;
                    }
                    t.emit(t.obs.global_clock_ns(), None);
                }
            }));
            guard.stop = Some(stop);
        }
        Cadence::Manual => {}
    }
    guard
}

/// Dispatch a simulated-clock crossing from [`Obs::set_clock_ns`] to the
/// attached tap (resetting the pacer when the tap is gone).
pub(crate) fn sim_fire(obs: &Obs, now_ns: u64) {
    let tap = obs
        .feed_tap
        .lock()
        .expect("feed tap slot poisoned")
        .as_ref()
        .and_then(Weak::upgrade);
    match tap {
        Some(t) => t.sim_tick(now_ns),
        None => obs.feed_due_ns.store(u64::MAX, Ordering::Relaxed),
    }
}

/// Process-wide sink used by the repro binaries' `--feed <path>` flag:
/// set once in `main`, then any stage anywhere in the process can
/// [`tap_global`] without parameter plumbing through the experiment
/// modules.
static GLOBAL_SINK: Mutex<Option<Arc<FeedSink>>> = Mutex::new(None);

/// Create the process-global feed sink at `path` (truncating any
/// previous file). Replaces an earlier global sink, if any.
pub fn set_global(path: impl Into<std::path::PathBuf>) -> std::io::Result<Arc<FeedSink>> {
    let sink = FeedSink::create(path)?;
    *GLOBAL_SINK.lock().expect("global feed sink poisoned") = Some(Arc::clone(&sink));
    Ok(sink)
}

/// The process-global feed sink, if one was set.
pub fn global() -> Option<Arc<FeedSink>> {
    GLOBAL_SINK.lock().expect("global feed sink poisoned").clone()
}

/// Attach `obs` to the process-global sink (no-op `None` when `--feed`
/// was not given). Stages across one process share the sink, so a run's
/// consecutive stages accumulate into one replayable feed.
pub fn tap_global(obs: &Arc<Obs>, stage: &str, cadence: Cadence) -> Option<TapGuard> {
    global().map(|sink| attach(&sink, obs, stage, cadence))
}

/// [`tap_global`] with per-volume registries attached (see
/// [`attach_with_volumes`]).
pub fn tap_global_volumes(
    obs: &Arc<Obs>,
    vols: &[Arc<Obs>],
    stage: &str,
    cadence: Cadence,
) -> Option<TapGuard> {
    global().map(|sink| attach_with_volumes(&sink, obs, vols, stage, cadence))
}

/// [`tap_global`] at the default simulated cadence — the one-liner the
/// experiment stages use.
pub fn tap_global_sim(obs: &Arc<Obs>, stage: &str) -> Option<TapGuard> {
    tap_global(obs, stage, Cadence::Sim(SIM_INTERVAL_DEFAULT_NS))
}

/// Validate one parsed feed frame against the schema documented by
/// [`FRAME_FIELDS`]. Shared by `bench_schema_check --feed` and the feed
/// tests so the schema cannot drift from its checker.
pub fn validate_frame(frame: &Json) -> Result<(), String> {
    let want_u64 = |name: &str| -> Result<u64, String> {
        frame
            .get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("frame field {name:?} missing or not a u64"))
    };
    want_u64("seq")?;
    want_u64("t_ns")?;
    want_u64("ops")?;
    want_u64("queue_depth")?;
    if want_u64("dcache_hit_milli")? > 1000 {
        return Err("frame field \"dcache_hit_milli\" exceeds 1000".to_string());
    }
    want_u64("slo_burn_milli")?;
    frame
        .get("stage")
        .and_then(Json::as_str)
        .ok_or("frame field \"stage\" missing or not a string")?;
    let counters = frame.get("counters").ok_or("frame field \"counters\" missing")?;
    for &c in FRAME_COUNTERS {
        counters
            .get(c.name())
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("counter delta {:?} missing or not a u64", c.name()))?;
    }
    let histos = frame.get("histos").ok_or("frame field \"histos\" missing")?;
    for &n in FRAME_HISTOS {
        let h = histos.get(n).ok_or_else(|| format!("histogram delta {n:?} missing"))?;
        for k in ["dsum", "dcount"] {
            h.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram delta {n:?} lacks u64 {k:?}"))?;
        }
    }
    let signals = frame.get("signals").ok_or("frame field \"signals\" missing")?;
    for sig in Sig::ALL {
        let s = signals
            .get(sig.name())
            .ok_or_else(|| format!("signal {:?} missing", sig.name()))?;
        for k in ["ewma_milli", "samples", "low_count", "high_count"] {
            s.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("signal {:?} lacks u64 {k:?}", sig.name()))?;
        }
        for k in ["low", "high"] {
            match s.get(k) {
                Some(Json::Bool(_)) => {}
                _ => return Err(format!("signal {:?} lacks bool {k:?}", sig.name())),
            }
        }
        for k in ["floor_milli", "ceiling_milli"] {
            match s.get(k) {
                Some(Json::Null) | Some(Json::Int(_)) => {}
                _ => return Err(format!("signal {:?} lacks null-or-int {k:?}", sig.name())),
            }
        }
    }
    let Some(Json::Arr(cgs)) = frame.get("cgs") else {
        return Err("frame field \"cgs\" missing or not an array".to_string());
    };
    for c in cgs {
        for k in [
            "cg",
            "data_blocks",
            "used",
            "util_ewma_milli",
            "util_samples",
            "dread_ios",
            "dwrite_ios",
            "dread_sectors",
            "dwrite_sectors",
        ] {
            c.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("cg row lacks u64 {k:?}"))?;
        }
    }
    let Some(Json::Arr(threads)) = frame.get("threads") else {
        return Err("frame field \"threads\" missing or not an array".to_string());
    };
    if threads.len() != THREAD_SLOTS {
        return Err(format!(
            "frame field \"threads\" has {} slots, want {THREAD_SLOTS}",
            threads.len()
        ));
    }
    if !threads.iter().all(|t| t.as_u64().is_some()) {
        return Err("frame field \"threads\" holds a non-u64 slot".to_string());
    }
    let Some(Json::Arr(volumes)) = frame.get("volumes") else {
        return Err("frame field \"volumes\" missing or not an array".to_string());
    };
    for (i, v) in volumes.iter().enumerate() {
        for k in ["vol", "ops", "queue_depth", "dreads", "dwrites", "gf_util_ewma_milli"] {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("volume row lacks u64 {k:?}"))?;
        }
        if v.get("vol").and_then(Json::as_u64) != Some(i as u64) {
            return Err(format!("volume row {i} out of order"));
        }
    }
    let Some(Json::Arr(events)) = frame.get("events") else {
        return Err("frame field \"events\" missing or not an array".to_string());
    };
    for e in events {
        for k in ["t_ns", "a", "b"] {
            e.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event lacks u64 {k:?}"))?;
        }
        e.get("tag")
            .and_then(Json::as_str)
            .ok_or("event lacks string \"tag\"")?;
    }
    // Every documented field must actually be present (the loop above
    // checked shapes; this catches a FRAME_FIELDS row with no producer).
    for (name, _) in FRAME_FIELDS {
        if frame.get(name).is_none() {
            return Err(format!("documented frame field {name:?} missing"));
        }
    }
    Ok(())
}

/// Parse a feed file's JSONL into frames, validating each. Returns the
/// frames in file order.
pub fn parse_feed(text: &str) -> Result<Vec<Json>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = crate::json::parse(line).map_err(|e| format!("feed line {}: {e:?}", i + 1))?;
        validate_frame(&j).map_err(|e| format!("feed line {}: {e}", i + 1))?;
        out.push(j);
    }
    Ok(out)
}

/// A bounded rolling history of one numeric series, for sparklines.
/// (Here rather than in the renderer so in-process subscribers get the
/// same windowing as `cffs-top`.)
#[derive(Debug, Clone)]
pub struct Series {
    cap: usize,
    vals: VecDeque<f64>,
}

impl Series {
    /// A series retaining the last `cap` points.
    pub fn new(cap: usize) -> Series {
        Series { cap: cap.max(1), vals: VecDeque::new() }
    }

    /// Append one point, evicting the oldest past capacity.
    pub fn push(&mut self, v: f64) {
        if self.vals.len() == self.cap {
            self.vals.pop_front();
        }
        self.vals.push_back(v);
    }

    /// The retained points, oldest first.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.vals.iter().copied()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The most recent point, if any.
    pub fn last(&self) -> Option<f64> {
        self.vals.back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cffs-feed-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn manual_tap_emits_valid_frames() {
        let path = tmp_path("manual");
        let sink = FeedSink::create(&path).unwrap();
        let obs = Obs::new();
        obs.configure_cg_table(CgTableConfigFixture::two_groups());
        {
            let tap = attach(&sink, &obs, "warm", Cadence::Manual);
            obs.set_clock_ns(1_000);
            obs.bump(Ctr::DiskRequests);
            {
                let _g = obs.span(OpKind::Read);
            }
            tap.frame("warm");
            obs.cg_used_delta(1, 3);
            obs.cg_util_sample(1, 75);
            tap.frame("churn");
        } // drop cuts the final frame
        let text = std::fs::read_to_string(&path).unwrap();
        let frames = parse_feed(&text).expect("all frames validate");
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].get("stage").and_then(Json::as_str), Some("warm"));
        assert_eq!(frames[1].get("stage").and_then(Json::as_str), Some("churn"));
        // Deltas: the disk request and op land in frame 0 only.
        assert_eq!(
            frames[0].get("counters").and_then(|c| c.get("disk_requests")).and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            frames[1].get("counters").and_then(|c| c.get("disk_requests")).and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(frames[0].get("ops").and_then(Json::as_u64), Some(1));
        // The CG gauge and EWMA show in frame 1.
        let cgs = match frames[1].get("cgs") {
            Some(Json::Arr(a)) => a,
            _ => panic!("cgs array"),
        };
        assert_eq!(cgs[1].get("used").and_then(Json::as_u64), Some(3));
        assert_eq!(cgs[1].get("util_ewma_milli").and_then(Json::as_u64), Some(75_000));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sim_cadence_cuts_frames_on_clock_crossings() {
        let path = tmp_path("sim");
        let sink = FeedSink::create(&path).unwrap();
        let obs = Obs::new();
        {
            let _tap = attach(&sink, &obs, "run", Cadence::Sim(1_000));
            obs.set_clock_ns(500); // below first boundary: no frame
            assert_eq!(sink.frames(), 0);
            obs.set_clock_ns(1_200); // crosses 1000
            assert_eq!(sink.frames(), 1);
            obs.set_clock_ns(1_300); // still inside [1000, 2000)
            assert_eq!(sink.frames(), 1);
            obs.set_clock_ns(5_000); // crosses (one frame per tick, not per interval)
            assert_eq!(sink.frames(), 2);
        }
        assert_eq!(sink.frames(), 3); // + final frame on detach
        // Detach reset the pacer: further clock movement is frame-free.
        obs.set_clock_ns(100_000);
        assert_eq!(sink.frames(), 3);
        let frames = parse_feed(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(frames[0].get("t_ns").and_then(Json::as_u64), Some(1_200));
        assert_eq!(frames[1].get("t_ns").and_then(Json::as_u64), Some(5_000));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn subscriber_sees_every_frame_line() {
        let path = tmp_path("sub");
        let sink = FeedSink::create(&path).unwrap();
        let rx = sink.subscribe();
        let obs = Obs::new();
        let tap = attach(&sink, &obs, "s", Cadence::Manual);
        tap.frame("s");
        drop(tap);
        let lines: Vec<String> = rx.try_iter().collect();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            validate_frame(&crate::json::parse(l).unwrap()).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn host_cadence_samples_in_wall_time() {
        let path = tmp_path("host");
        let sink = FeedSink::create(&path).unwrap();
        let obs = Obs::new();
        {
            let _tap = attach(
                &sink,
                &obs,
                "soak",
                Cadence::Host(std::time::Duration::from_millis(1)),
            );
            obs.set_clock_ns(42);
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        // At least the detach frame; almost surely sampler frames too.
        assert!(sink.frames() >= 1);
        parse_feed(&std::fs::read_to_string(&path).unwrap()).expect("frames validate");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn feed_file_is_rewritten_atomically_per_frame() {
        let path = tmp_path("atomic");
        let sink = FeedSink::create(&path).unwrap();
        let obs = Obs::new();
        let tap = attach(&sink, &obs, "s", Cadence::Manual);
        for _ in 0..10 {
            tap.frame("s");
        }
        // Every intermediate state was a complete file; the final state
        // has all 10 frames and no staging leftovers.
        let dir = path.parent().unwrap();
        let strays: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name().to_string_lossy().starts_with(
                    path.file_stem().unwrap().to_string_lossy().as_ref(),
                ) && e.path().extension().is_some_and(|x| x == "tmp")
            })
            .collect();
        assert!(strays.is_empty(), "staging files renamed away: {strays:?}");
        assert_eq!(
            parse_feed(&std::fs::read_to_string(&path).unwrap()).unwrap().len(),
            10
        );
        drop(tap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_frame_rejects_missing_fields() {
        let path = tmp_path("invalid");
        let sink = FeedSink::create(&path).unwrap();
        let obs = Obs::new();
        let tap = attach(&sink, &obs, "s", Cadence::Manual);
        tap.frame("s");
        let text = std::fs::read_to_string(&path).unwrap();
        let mut frame = crate::json::parse(text.lines().next().unwrap()).unwrap();
        validate_frame(&frame).unwrap();
        if let Json::Obj(m) = &mut frame {
            m.retain(|(k, _)| k != "signals");
        }
        assert!(validate_frame(&frame).is_err());
        drop(tap);
        std::fs::remove_file(&path).ok();
    }

    /// Builders for test fixtures.
    struct CgTableConfigFixture;
    impl CgTableConfigFixture {
        fn two_groups() -> crate::CgTableConfig {
            crate::CgTableConfig {
                first_block: 2,
                cg_size: 1024,
                sectors_per_block: 8,
                groups: vec![(1023, 10), (1023, 0)],
            }
        }
    }
}

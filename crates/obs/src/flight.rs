//! Flight recorder — the always-on forensic black box.
//!
//! A [`Flight`] keeps a bounded in-memory window of recent telemetry for
//! one observed stack — cumulative-counter frames, closed op spans, and
//! `signal.*`/`regroup.*` events, all harvested from the registries the
//! stack already maintains — and persists the window atomically to
//! `FLIGHT_<name>.jsonl` at every frame cut. A run killed at an
//! arbitrary instant therefore always leaves a complete, schema-valid
//! dump of its final seconds on disk; explicit dumps (the panic hook,
//! fsck failures, [`Obs::dump_flight`]) cut a fresh frame first, so the
//! dump's last frame always equals the head's final counter snapshot.
//!
//! Pacing rides [`Obs::set_clock_ns`] exactly like the telemetry feed:
//! with no recorder armed the hot path pays one relaxed load
//! (`flight_due_ns == u64::MAX`). Spans and events are *not* collected
//! on their own hot paths — they are lifted out of the existing trace
//! ring at each cut via the [`Obs::events_since`] watermark, so arming a
//! recorder adds no per-op cost.
//!
//! Frames carry **cumulative** counter values (not deltas): the ring
//! overwrites oldest frames, and cumulative values keep every retained
//! frame independently meaningful — the postmortem analyzer re-derives
//! window deltas from the first and last retained frames.

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, Weak};

use crate::feed::FRAME_COUNTERS;
use crate::json::Json;
use crate::{obj, Ctr, Obs, Sig};

/// Frames retained in a flight ring (at the default 50 ms sim cadence:
/// the last ~3 simulated seconds).
pub const FLIGHT_FRAMES: usize = 64;

/// Closed op spans retained in a flight ring.
pub const FLIGHT_SPANS: usize = 256;

/// `signal.*` / `regroup.*` events retained in a flight ring.
pub const FLIGHT_EVENTS: usize = 256;

/// Record types of a `FLIGHT_*.jsonl` dump, with one-line descriptions —
/// the glossary README documents and `tests/doc_drift.rs` cross-checks.
pub const FLIGHT_RECORDS: &[(&str, &str)] = &[
    ("head", "dump header: name, capture reason, final counter snapshot, SLO table"),
    ("frame", "one periodic cut: cumulative counters, gauges, signals, per-CG registers"),
    ("span", "one closed op span lifted from the trace ring (op, open time, latency)"),
    ("event", "one signal.* or regroup.* trace event retained in the capture window"),
];

/// Fields of a flight `frame` record, with one-line descriptions.
pub const FLIGHT_FRAME_FIELDS: &[(&str, &str)] = &[
    ("rec", "record discriminator: head, frame, span, or event"),
    ("t_ns", "simulated time the frame was cut, nanoseconds"),
    ("counters", "cumulative curated counter values at the cut (not deltas)"),
    ("ops", "cumulative outermost file-system ops completed at the cut"),
    ("queue_depth", "submissions waiting in the threaded driver queue at the cut"),
    ("signals", "live signal registry at the cut: EWMAs, thresholds, crossing counts"),
    ("cgs", "per-cylinder-group occupancy, utilization EWMA, and cumulative I/O tallies"),
    ("slo_burn_milli", "worst per-op SLO error-budget burn at the cut, milli-units"),
    ("volumes", "per-volume cumulative rows (vol, ops, dreads, dwrites, queue_depth)"),
];

/// Staging-name disambiguator (same discipline as the bench artifacts).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// One armed recorder: a bounded window of recent telemetry for one
/// observed stack, persisted to `FLIGHT_<name>.jsonl` on every cut.
pub struct Flight {
    path: std::path::PathBuf,
    name: String,
    obs: Arc<Obs>,
    /// Per-volume registries of a volume-set producer, in volume order
    /// (empty for single-volume stacks). Their spans/events are merged
    /// into this ring tagged with the volume index.
    vols: Vec<Arc<Obs>>,
    interval_ns: u64,
    state: Mutex<FlightState>,
}

struct FlightState {
    frames: VecDeque<Json>,
    spans: VecDeque<Json>,
    events: VecDeque<Json>,
    /// Trace-ring watermarks: `marks[0]` for the primary registry,
    /// `marks[1 + i]` for volume `i`.
    marks: Vec<u64>,
    due_ns: u64,
    /// Reason recorded in the head of the most recent persist.
    reason: String,
    /// Set after the first failed write so the warning prints once.
    write_failed: bool,
}

/// Recover a possibly-poisoned flight lock: the recorder must stay
/// usable from a panic hook, where ordinary `.expect()` would abort the
/// process with a double panic.
fn lock_flight(m: &Mutex<FlightState>) -> MutexGuard<'_, FlightState> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `FLIGHT_<name>.jsonl` file name for a stack label (non-portable
/// characters mapped to `_`).
pub fn flight_file_name(name: &str) -> String {
    let safe: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    format!("FLIGHT_{safe}.jsonl")
}

impl Flight {
    /// Where this recorder persists its dumps.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Harvest fresh trace events from one registry into the span/event
    /// rings, tagging rows with `vol` (`Null` for the primary).
    fn harvest(st: &mut FlightState, mark_idx: usize, obs: &Obs, vol: Json) {
        let mark = st.marks.get(mark_idx).copied().unwrap_or(0);
        let (fresh, new_mark) = obs.events_since(mark);
        st.marks[mark_idx] = new_mark;
        for e in fresh {
            if e.tag.starts_with("op.") && e.span != 0 {
                st.spans.push_back(obj![
                    ("rec", Json::Str("span".into())),
                    ("vol", vol.clone()),
                    ("t_ns", Json::Int(e.t_ns as i64)),
                    ("op", Json::Str(e.op.to_string())),
                    ("span", Json::Int(e.span as i64)),
                    ("dur_ns", Json::Int(e.dur_ns as i64)),
                ]);
                while st.spans.len() > FLIGHT_SPANS {
                    st.spans.pop_front();
                }
            } else if e.tag.starts_with("signal.") || e.tag.starts_with("regroup.") {
                st.events.push_back(obj![
                    ("rec", Json::Str("event".into())),
                    ("vol", vol.clone()),
                    ("t_ns", Json::Int(e.t_ns as i64)),
                    ("tag", Json::Str(e.tag.to_string())),
                    ("a", Json::Int(e.a as i64)),
                    ("b", Json::Int(e.b as i64)),
                ]);
                while st.events.len() > FLIGHT_EVENTS {
                    st.events.pop_front();
                }
            }
        }
    }

    /// Cut one frame at simulated time `t_ns`: harvest spans/events from
    /// every registry, append a cumulative-counter frame, and persist.
    fn cut(&self, t_ns: u64, reason: &str) {
        let mut st = lock_flight(&self.state);
        Flight::harvest(&mut st, 0, &self.obs, Json::Null);
        for (i, v) in self.vols.iter().enumerate() {
            Flight::harvest(&mut st, 1 + i, v, Json::Int(i as i64));
        }
        let counters = Json::Obj(
            FRAME_COUNTERS
                .iter()
                .map(|&c| (c.name().to_string(), Json::Int(self.obs.get(c) as i64)))
                .collect(),
        );
        let cgs = Json::Arr(
            self.obs
                .cg_stats()
                .iter()
                .map(|c| {
                    obj![
                        ("cg", Json::Int(c.cg as i64)),
                        ("data_blocks", Json::Int(c.data_blocks as i64)),
                        ("used", Json::Int(c.used as i64)),
                        ("util_ewma_milli", Json::Int(c.util_ewma_milli as i64)),
                        ("util_samples", Json::Int(c.util_samples as i64)),
                        ("read_ios", Json::Int(c.read_ios as i64)),
                        ("write_ios", Json::Int(c.write_ios as i64)),
                    ]
                })
                .collect(),
        );
        let volumes = Json::Arr(
            self.vols
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    obj![
                        ("vol", Json::Int(i as i64)),
                        ("ops", Json::Int(v.thread_ops().iter().sum::<u64>() as i64)),
                        ("dreads", Json::Int(v.get(Ctr::DiskReads) as i64)),
                        ("dwrites", Json::Int(v.get(Ctr::DiskWrites) as i64)),
                        ("queue_depth", Json::Int(v.queue_depth() as i64)),
                    ]
                })
                .collect(),
        );
        let ops: u64 = self.obs.thread_ops().iter().sum();
        st.frames.push_back(obj![
            ("rec", Json::Str("frame".into())),
            ("t_ns", Json::Int(t_ns as i64)),
            ("counters", counters),
            ("ops", Json::Int(ops as i64)),
            ("queue_depth", Json::Int(self.obs.queue_depth() as i64)),
            ("signals", self.obs.signals_json()),
            ("cgs", cgs),
            ("slo_burn_milli", Json::Int(self.obs.slo_burn_milli() as i64)),
            ("volumes", volumes),
        ]);
        while st.frames.len() > FLIGHT_FRAMES {
            st.frames.pop_front();
        }
        st.reason = reason.to_string();
        self.persist_locked(&mut st, t_ns);
    }

    /// Atomically rewrite the dump file from the current window. Write
    /// failures warn once and drop dumps rather than killing the run —
    /// the black box must never fail the flight it records.
    fn persist_locked(&self, st: &mut FlightState, t_ns: u64) {
        let head = obj![
            ("rec", Json::Str("head".into())),
            ("name", Json::Str(self.name.clone())),
            ("reason", Json::Str(st.reason.clone())),
            ("t_ns", Json::Int(t_ns as i64)),
            ("interval_ns", Json::Int(self.interval_ns as i64)),
            (
                "counters_final",
                Json::Obj(
                    Ctr::ALL
                        .iter()
                        .map(|&c| (c.name().to_string(), Json::Int(self.obs.get(c) as i64)))
                        .collect()
                )
            ),
            ("slo", self.obs.slo_json()),
            ("nframes", Json::Int(st.frames.len() as i64)),
            ("nspans", Json::Int(st.spans.len() as i64)),
            ("nevents", Json::Int(st.events.len() as i64)),
        ];
        let mut text = head.to_string();
        text.push('\n');
        for row in st.frames.iter().chain(st.spans.iter()).chain(st.events.iter()) {
            text.push_str(&row.to_string());
            text.push('\n');
        }
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .path
            .with_extension(format!("{}.{}.tmp", std::process::id(), seq));
        let res = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(text.as_bytes()))
            .and_then(|()| std::fs::rename(&tmp, &self.path));
        if let Err(e) = res {
            if !st.write_failed {
                st.write_failed = true;
                eprintln!(
                    "warning: flight recorder write to {} failed: {e}",
                    self.path.display()
                );
            }
        }
    }

    /// Simulated-clock pacer entry (via [`sim_fire`]): rechecks under the
    /// flight lock so concurrent clock movers cut exactly one frame per
    /// crossing.
    pub(crate) fn sim_tick(&self, now_ns: u64) {
        {
            let mut st = lock_flight(&self.state);
            if now_ns < st.due_ns {
                return;
            }
            st.due_ns = (now_ns / self.interval_ns + 1) * self.interval_ns;
            self.obs.flight_due_ns.store(st.due_ns, Ordering::Relaxed);
        }
        self.cut(now_ns, "periodic");
    }

    /// Cut a frame and persist with an explicit reason (panic, fsck
    /// failure, operator request). Harvesting touches the registry locks,
    /// which may be poisoned mid-panic — any such failure falls back to
    /// persisting the window already captured.
    pub fn dump(&self, reason: &str) {
        let t = self.obs.global_clock_ns();
        let this = std::panic::AssertUnwindSafe(self);
        let r = std::panic::catch_unwind(move || this.cut(t, reason));
        if r.is_err() {
            let mut st = lock_flight(&self.state);
            st.reason = reason.to_string();
            self.persist_locked(&mut st, t);
        }
    }
}

/// Guard returned by [`arm`]. Dropping it cuts one final frame (reason
/// `"detach"`), persists, and detaches the pacer.
pub struct FlightGuard {
    flight: Arc<Flight>,
}

impl FlightGuard {
    /// The armed recorder (for explicit [`Flight::dump`] calls).
    pub fn flight(&self) -> &Arc<Flight> {
        &self.flight
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        let obs = &self.flight.obs;
        obs.flight_due_ns.store(u64::MAX, Ordering::Relaxed);
        if let Ok(mut slot) = obs.flight_slot.lock() {
            *slot = None;
        }
        self.flight.dump("detach");
    }
}

/// Arm a flight recorder on `obs` (with optional per-volume registries),
/// persisting to `FLIGHT_<name>.jsonl` under `dir` at the feed's default
/// simulated cadence. The recorder registers itself for [`dump_all`].
pub fn arm(
    dir: impl Into<std::path::PathBuf>,
    obs: &Arc<Obs>,
    vols: &[Arc<Obs>],
    name: &str,
) -> FlightGuard {
    let interval_ns = crate::feed::SIM_INTERVAL_DEFAULT_NS;
    let dir = dir.into();
    let flight = Arc::new(Flight {
        path: dir.join(flight_file_name(name)),
        name: name.to_string(),
        obs: Arc::clone(obs),
        vols: vols.to_vec(),
        interval_ns,
        state: Mutex::new(FlightState {
            frames: VecDeque::new(),
            spans: VecDeque::new(),
            events: VecDeque::new(),
            marks: std::iter::once(obs.events_recorded())
                .chain(vols.iter().map(|v| v.events_recorded()))
                .collect(),
            due_ns: u64::MAX,
            reason: "armed".to_string(),
            write_failed: false,
        }),
    });
    let now = obs.global_clock_ns();
    let due = (now / interval_ns + 1) * interval_ns;
    lock_flight(&flight.state).due_ns = due;
    *obs.flight_slot.lock().expect("flight slot poisoned") = Some(Arc::downgrade(&flight));
    obs.flight_due_ns.store(due, Ordering::Relaxed);
    let mut reg = REGISTRY.lock().expect("flight registry poisoned");
    reg.retain(|w| w.strong_count() > 0);
    reg.push(Arc::downgrade(&flight));
    // Persist the (empty-window) dump immediately so even a run killed
    // before the first cadence boundary leaves a parseable black box.
    flight.cut(now, "armed");
    FlightGuard { flight }
}

/// Dispatch a simulated-clock crossing from [`Obs::set_clock_ns`] to the
/// armed recorder (resetting the pacer when the recorder is gone).
pub(crate) fn sim_fire(obs: &Obs, now_ns: u64) {
    let flight = obs
        .flight_slot
        .lock()
        .expect("flight slot poisoned")
        .as_ref()
        .and_then(Weak::upgrade);
    match flight {
        Some(f) => f.sim_tick(now_ns),
        None => obs.flight_due_ns.store(u64::MAX, Ordering::Relaxed),
    }
}

/// Every recorder armed in this process (weak: guards own the strong
/// refs), so the panic hook and fsck failures can dump them all.
static REGISTRY: Mutex<Vec<Weak<Flight>>> = Mutex::new(Vec::new());

/// Process-wide output directory set by the repro binaries' `--flight`
/// flag; [`arm_global`] is a no-op until this is set.
static GLOBAL_DIR: Mutex<Option<std::path::PathBuf>> = Mutex::new(None);

static PANIC_HOOK: Once = Once::new();

/// Enable the process-global flight recorder: dumps land under `dir`
/// (created if missing) and the panic hook is installed so an unwinding
/// run flushes every armed recorder before dying.
pub fn set_global(dir: impl Into<std::path::PathBuf>) -> std::io::Result<std::path::PathBuf> {
    let dir = dir.into();
    std::fs::create_dir_all(&dir)?;
    *GLOBAL_DIR.lock().expect("flight dir poisoned") = Some(dir.clone());
    install_panic_hook();
    Ok(dir)
}

/// The process-global flight directory, if `--flight` set one.
pub fn global_dir() -> Option<std::path::PathBuf> {
    GLOBAL_DIR.lock().expect("flight dir poisoned").clone()
}

/// First name in `name`, `name-2`, `name-3`, ... whose dump file under
/// `dir` is not already owned by a live recorder — the volumes of a set
/// share one mount label, and their black boxes must not overwrite each
/// other.
fn unique_name(dir: &std::path::Path, name: &str) -> String {
    let live: Vec<std::path::PathBuf> = {
        let reg = match REGISTRY.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        reg.iter().filter_map(Weak::upgrade).map(|f| f.path.clone()).collect()
    };
    let taken = |cand: &str| live.contains(&dir.join(flight_file_name(cand)));
    if !taken(name) {
        return name.to_string();
    }
    (2..)
        .map(|n| format!("{name}-{n}"))
        .find(|cand| !taken(cand))
        .expect("unbounded suffix search")
}

/// Arm a recorder on `obs` under the global directory (no-op `None` when
/// `--flight` was not given — the hot path then keeps its single relaxed
/// load and mounts stay untouched).
pub fn arm_global(obs: &Arc<Obs>, name: &str) -> Option<FlightGuard> {
    global_dir().map(|dir| {
        let name = unique_name(&dir, name);
        arm(dir, obs, &[], &name)
    })
}

/// [`arm_global`] for a volume-set producer: per-volume spans/events are
/// merged into the one ring tagged with their volume index.
pub fn arm_global_volumes(
    obs: &Arc<Obs>,
    vols: &[Arc<Obs>],
    name: &str,
) -> Option<FlightGuard> {
    global_dir().map(|dir| {
        let name = unique_name(&dir, name);
        arm(dir, obs, vols, &name)
    })
}

/// Flush every armed recorder with the given reason. Called by the panic
/// hook, by fsck on an inconsistent image, and by the bench reporters
/// before an `exit(1)`. Cheap no-op when nothing is armed.
pub fn dump_all(reason: &str) {
    let flights: Vec<Arc<Flight>> = {
        let reg = match REGISTRY.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        reg.iter().filter_map(Weak::upgrade).collect()
    };
    for f in flights {
        f.dump(reason);
    }
}

/// Install (once) a panic hook that flushes every armed recorder before
/// delegating to the previous hook. Idempotent.
pub fn install_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_all("panic");
            prev(info);
        }));
    });
}

// ---- parsing, validation, postmortem ----

/// A parsed `FLIGHT_*.jsonl` dump.
#[derive(Debug, Clone)]
pub struct FlightDump {
    pub head: Json,
    pub frames: Vec<Json>,
    pub spans: Vec<Json>,
    pub events: Vec<Json>,
}

/// Parse and validate a flight dump. The first line must be the head
/// record; every record is checked against the documented schema.
pub fn parse_flight(text: &str) -> Result<FlightDump, String> {
    let mut head = None;
    let mut frames = Vec::new();
    let mut spans = Vec::new();
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ln = i + 1;
        let j = crate::json::parse(line).map_err(|e| format!("flight line {ln}: {e:?}"))?;
        let rec = j
            .get("rec")
            .and_then(Json::as_str)
            .ok_or(format!("flight line {ln}: record lacks string \"rec\""))?;
        match rec {
            "head" => {
                if head.is_some() || !frames.is_empty() {
                    return Err(format!("flight line {ln}: head must be the first record"));
                }
                validate_head(&j).map_err(|e| format!("flight line {ln}: {e}"))?;
                head = Some(j);
            }
            "frame" => {
                validate_flight_frame(&j).map_err(|e| format!("flight line {ln}: {e}"))?;
                frames.push(j);
            }
            "span" => {
                validate_span(&j).map_err(|e| format!("flight line {ln}: {e}"))?;
                spans.push(j);
            }
            "event" => {
                validate_event(&j).map_err(|e| format!("flight line {ln}: {e}"))?;
                events.push(j);
            }
            other => return Err(format!("flight line {ln}: unknown record type {other:?}")),
        }
    }
    let head = head.ok_or("flight dump lacks a head record")?;
    if frames.is_empty() {
        return Err("flight dump has no frames".to_string());
    }
    Ok(FlightDump { head, frames, spans, events })
}

fn validate_head(j: &Json) -> Result<(), String> {
    for k in ["name", "reason"] {
        j.get(k)
            .and_then(Json::as_str)
            .ok_or(format!("head lacks string {k:?}"))?;
    }
    for k in ["t_ns", "interval_ns", "nframes", "nspans", "nevents"] {
        j.get(k)
            .and_then(Json::as_u64)
            .ok_or(format!("head lacks u64 {k:?}"))?;
    }
    let fin = j.get("counters_final").ok_or("head lacks \"counters_final\"")?;
    for c in Ctr::ALL {
        fin.get(c.name())
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("counters_final lacks u64 {:?}", c.name()))?;
    }
    j.get("slo").ok_or("head lacks \"slo\"")?;
    Ok(())
}

fn validate_flight_frame(j: &Json) -> Result<(), String> {
    for k in ["t_ns", "ops", "queue_depth", "slo_burn_milli"] {
        j.get(k)
            .and_then(Json::as_u64)
            .ok_or(format!("frame lacks u64 {k:?}"))?;
    }
    let counters = j.get("counters").ok_or("frame lacks \"counters\"")?;
    for &c in FRAME_COUNTERS {
        counters
            .get(c.name())
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("frame counters lack u64 {:?}", c.name()))?;
    }
    let signals = j.get("signals").ok_or("frame lacks \"signals\"")?;
    for sig in Sig::ALL {
        signals
            .get(sig.name())
            .ok_or_else(|| format!("frame signals lack {:?}", sig.name()))?;
    }
    let Some(Json::Arr(cgs)) = j.get("cgs") else {
        return Err("frame lacks array \"cgs\"".to_string());
    };
    for c in cgs {
        for k in ["cg", "used", "util_ewma_milli", "read_ios", "write_ios"] {
            c.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("frame cg row lacks u64 {k:?}"))?;
        }
    }
    let Some(Json::Arr(vols)) = j.get("volumes") else {
        return Err("frame lacks array \"volumes\"".to_string());
    };
    for v in vols {
        for k in ["vol", "ops", "dreads", "dwrites", "queue_depth"] {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("frame volume row lacks u64 {k:?}"))?;
        }
    }
    Ok(())
}

fn vol_tag_ok(j: &Json) -> Result<(), String> {
    match j.get("vol") {
        Some(Json::Null) | Some(Json::Int(_)) => Ok(()),
        _ => Err("record lacks null-or-int \"vol\"".to_string()),
    }
}

fn validate_span(j: &Json) -> Result<(), String> {
    vol_tag_ok(j)?;
    j.get("op")
        .and_then(Json::as_str)
        .filter(|s| !s.is_empty())
        .ok_or("span lacks non-empty string \"op\"")?;
    for k in ["t_ns", "span", "dur_ns"] {
        j.get(k)
            .and_then(Json::as_u64)
            .ok_or(format!("span lacks u64 {k:?}"))?;
    }
    Ok(())
}

fn validate_event(j: &Json) -> Result<(), String> {
    vol_tag_ok(j)?;
    j.get("tag")
        .and_then(Json::as_str)
        .ok_or("event lacks string \"tag\"")?;
    for k in ["t_ns", "a", "b"] {
        j.get(k)
            .and_then(Json::as_u64)
            .ok_or(format!("event lacks u64 {k:?}"))?;
    }
    Ok(())
}

/// Correlate a parsed dump into a structured postmortem report: the
/// capture window's counter deltas, gauge/signal state at capture, the
/// per-CG utilization trajectory, the slowest spans, and a list of
/// plain-language diagnosis lines (always non-empty).
pub fn postmortem(dump: &FlightDump) -> Json {
    let first = &dump.frames[0];
    let last = dump.frames.last().expect("parse_flight requires frames");
    let fu = |j: &Json, k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
    let t0 = fu(first, "t_ns");
    let t1 = fu(last, "t_ns");
    let reason = dump.head.get("reason").and_then(Json::as_str).unwrap_or("?").to_string();
    let name = dump.head.get("name").and_then(Json::as_str).unwrap_or("?").to_string();

    // Window deltas of the curated counters (cumulative frames make this
    // a plain subtraction between the oldest and newest retained frames).
    let ctr_at = |f: &Json, name: &str| {
        f.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
    };
    let mut window: Vec<(String, Json)> = Vec::new();
    for &c in FRAME_COUNTERS {
        let d = ctr_at(last, c.name()).saturating_sub(ctr_at(first, c.name()));
        if d > 0 {
            window.push((c.name().to_string(), Json::Int(d as i64)));
        }
    }

    // Internal consistency: an explicit dump cuts a frame first, so the
    // last frame must equal the head's final snapshot on every curated
    // counter. A mismatch means the dump was torn mid-flight.
    let fin = dump.head.get("counters_final");
    let mut mismatches: Vec<Json> = Vec::new();
    for &c in FRAME_COUNTERS {
        let head_v = fin.and_then(|f| f.get(c.name())).and_then(Json::as_u64).unwrap_or(0);
        if head_v != ctr_at(last, c.name()) {
            mismatches.push(Json::Str(c.name().to_string()));
        }
    }

    // Signal state at capture.
    let mut signal_notes: Vec<String> = Vec::new();
    if let Some(signals) = last.get("signals") {
        for sig in Sig::ALL {
            let Some(s) = signals.get(sig.name()) else { continue };
            let low = matches!(s.get("low"), Some(Json::Bool(true)));
            let high = matches!(s.get("high"), Some(Json::Bool(true)));
            if low || high {
                signal_notes.push(format!(
                    "signal {} was {} at capture (ewma {} milli, {} low / {} high crossings)",
                    sig.name(),
                    if low { "low" } else { "high" },
                    fu(s, "ewma_milli"),
                    fu(s, "low_count"),
                    fu(s, "high_count"),
                ));
            }
        }
    }

    // Per-CG trajectory: traffic over the window and utilization drops.
    let cg_rows = |f: &Json| -> Vec<(u64, u64, u64, u64)> {
        match f.get("cgs") {
            Some(Json::Arr(a)) => a
                .iter()
                .map(|c| (fu(c, "cg"), fu(c, "util_ewma_milli"), fu(c, "read_ios"), fu(c, "write_ios")))
                .collect(),
            _ => Vec::new(),
        }
    };
    let cgs0 = cg_rows(first);
    let cgs1 = cg_rows(last);
    let mut hot: Vec<(u64, u64)> = Vec::new(); // (cg, window ios)
    let mut drops: Vec<(u64, u64, u64)> = Vec::new(); // (cg, util0, util1)
    for (i, &(cg, util1, r1, w1)) in cgs1.iter().enumerate() {
        let (_, util0, r0, w0) = cgs0.get(i).copied().unwrap_or((cg, util1, 0, 0));
        let dio = (r1 + w1).saturating_sub(r0 + w0);
        if dio > 0 {
            hot.push((cg, dio));
        }
        // A collapse: the EWMA lost at least a quarter of its value
        // across the window (and started from something real).
        if util0 >= 1000 && util1 < util0 - util0 / 4 {
            drops.push((cg, util0, util1));
        }
    }
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hot.truncate(4);

    // Slowest spans in the window.
    let mut spans: Vec<&Json> = dump.spans.iter().collect();
    spans.sort_by(|a, b| fu(b, "dur_ns").cmp(&fu(a, "dur_ns")).then(fu(a, "t_ns").cmp(&fu(b, "t_ns"))));
    let top_spans: Vec<Json> = spans.iter().take(5).map(|&s| s.clone()).collect();

    let queue_last = fu(last, "queue_depth");
    let burn = fu(last, "slo_burn_milli");
    let window_ms = t1.saturating_sub(t0) / 1_000_000;

    // Diagnosis: always at least the capture line and the consistency
    // verdict, then whatever the window shows.
    let mut diagnosis: Vec<String> = Vec::new();
    diagnosis.push(format!(
        "{name}: captured on \"{reason}\" at t={t1} ns; window covers {window_ms} ms across {} frames, {} spans, {} events",
        dump.frames.len(),
        dump.spans.len(),
        dump.events.len(),
    ));
    if mismatches.is_empty() {
        diagnosis.push(
            "dump is internally consistent: last frame matches the final counter snapshot"
                .to_string(),
        );
    } else {
        diagnosis.push(format!(
            "WARNING: last frame disagrees with the final counter snapshot on {} counters (torn dump?)",
            mismatches.len()
        ));
    }
    let wc = |n: &str| window.iter().find(|(k, _)| k == n).and_then(|(_, v)| v.as_u64()).unwrap_or(0);
    if !window.is_empty() {
        diagnosis.push(format!(
            "window I/O: {} disk reads, {} disk writes, {} writebacks, {} group fetches, {} regroup blocks moved",
            wc("disk_reads"),
            wc("disk_writes"),
            wc("cache_writebacks"),
            wc("fs_group_fetches"),
            wc("regroup_blocks_moved"),
        ));
    }
    if queue_last > 0 {
        diagnosis.push(format!(
            "{queue_last} submissions were still waiting in the driver queue at capture"
        ));
    }
    diagnosis.extend(signal_notes);
    if burn >= 1000 {
        diagnosis.push(format!(
            "SLO error budget exhausted: worst per-op burn {burn} milli (1000 = exactly at budget)"
        ));
    } else if burn > 0 {
        diagnosis.push(format!("SLO burn at {burn} milli of the error budget"));
    }
    for &(cg, u0, u1) in drops.iter().take(4) {
        diagnosis.push(format!(
            "group-fetch utilization collapsed in CG {cg}: {u0} -> {u1} milli-pct over the window"
        ));
    }
    if let Some(s) = top_spans.first() {
        diagnosis.push(format!(
            "slowest op in window: {} took {} us (span {})",
            s.get("op").and_then(Json::as_str).unwrap_or("?"),
            fu(s, "dur_ns") / 1_000,
            fu(s, "span"),
        ));
    }

    obj![
        ("name", Json::Str(name)),
        ("reason", Json::Str(reason)),
        ("t_first_ns", Json::Int(t0 as i64)),
        ("t_last_ns", Json::Int(t1 as i64)),
        ("frames", Json::Int(dump.frames.len() as i64)),
        ("spans", Json::Int(dump.spans.len() as i64)),
        ("events", Json::Int(dump.events.len() as i64)),
        ("consistent", Json::Bool(mismatches.is_empty())),
        ("mismatches", Json::Arr(mismatches)),
        ("counters_window", Json::Obj(window)),
        ("queue_depth_last", Json::Int(queue_last as i64)),
        ("slo_burn_milli", Json::Int(burn as i64)),
        (
            "hot_cgs",
            Json::Arr(
                hot.iter()
                    .map(|&(cg, dio)| obj![
                        ("cg", Json::Int(cg as i64)),
                        ("window_ios", Json::Int(dio as i64)),
                    ])
                    .collect()
            )
        ),
        (
            "util_drops",
            Json::Arr(
                drops
                    .iter()
                    .map(|&(cg, u0, u1)| obj![
                        ("cg", Json::Int(cg as i64)),
                        ("from_milli", Json::Int(u0 as i64)),
                        ("to_milli", Json::Int(u1 as i64)),
                    ])
                    .collect()
            )
        ),
        ("top_spans", Json::Arr(top_spans)),
        (
            "diagnosis",
            Json::Arr(diagnosis.into_iter().map(Json::Str).collect())
        ),
    ]
}

/// Plain-text rendering of a [`postmortem`] report.
pub fn render_postmortem(report: &Json) -> String {
    let mut out = String::new();
    let gs = |k: &str| report.get(k).and_then(Json::as_str).unwrap_or("?");
    let gu = |k: &str| report.get(k).and_then(Json::as_u64).unwrap_or(0);
    out.push_str(&format!("postmortem: {} (reason: {})\n", gs("name"), gs("reason")));
    out.push_str(&format!(
        "window: t={}..{} ns  frames={} spans={} events={}\n",
        gu("t_first_ns"),
        gu("t_last_ns"),
        gu("frames"),
        gu("spans"),
        gu("events"),
    ));
    out.push_str("\ndiagnosis:\n");
    if let Some(Json::Arr(lines)) = report.get("diagnosis") {
        for l in lines {
            out.push_str(&format!("  - {}\n", l.as_str().unwrap_or("?")));
        }
    }
    if let Some(Json::Obj(window)) = report.get("counters_window") {
        if !window.is_empty() {
            out.push_str("\ncounter deltas over the window:\n");
            for (k, v) in window {
                out.push_str(&format!("  {:<28} {}\n", k, v.as_u64().unwrap_or(0)));
            }
        }
    }
    if let Some(Json::Arr(spans)) = report.get("top_spans") {
        if !spans.is_empty() {
            out.push_str("\nslowest spans in the window:\n");
            for s in spans {
                out.push_str(&format!(
                    "  {:<12} t={} ns  dur={} ns\n",
                    s.get("op").and_then(Json::as_str).unwrap_or("?"),
                    s.get("t_ns").and_then(Json::as_u64).unwrap_or(0),
                    s.get("dur_ns").and_then(Json::as_u64).unwrap_or(0),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cffs-flight-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Armed recorders live in the process-global [`REGISTRY`], so a
    /// concurrent test's [`dump_all`] would overwrite this test's dump
    /// (and its head reason) mid-assertion — serialize every test that
    /// arms one.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        match SERIAL.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn armed_flight_persists_parseable_dump_every_cut() {
        let _s = serial();
        let dir = tmp_dir("basic");
        let obs = Obs::new();
        let path;
        {
            let guard = arm(&dir, &obs, &[], "unit basic");
            path = guard.flight().path().to_path_buf();
            // The arm-time dump exists before any clock movement.
            let dump = parse_flight(&std::fs::read_to_string(&path).unwrap()).unwrap();
            assert_eq!(dump.head.get("reason").and_then(Json::as_str), Some("armed"));
            obs.bump(Ctr::DiskRequests);
            {
                let _g = obs.span(OpKind::Create);
            }
            obs.set_clock_ns(60_000_000); // crosses the 50 ms boundary
            let dump = parse_flight(&std::fs::read_to_string(&path).unwrap()).unwrap();
            assert_eq!(dump.head.get("reason").and_then(Json::as_str), Some("periodic"));
            assert_eq!(dump.frames.len(), 2);
            // Cumulative counters: the bump shows in the last frame.
            let last = dump.frames.last().unwrap();
            assert_eq!(
                last.get("counters").and_then(|c| c.get("disk_requests")).and_then(Json::as_u64),
                Some(1)
            );
            // The span was harvested from the trace ring.
            assert_eq!(dump.spans.len(), 1);
            assert_eq!(dump.spans[0].get("op").and_then(Json::as_str), Some("create"));
        }
        // Guard drop cut a final "detach" dump and disarmed the pacer.
        let dump = parse_flight(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(dump.head.get("reason").and_then(Json::as_str), Some("detach"));
        obs.set_clock_ns(500_000_000);
        let dump2 = parse_flight(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(dump2.frames.len(), dump.frames.len(), "no cuts after detach");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explicit_dump_last_frame_matches_final_counters() {
        let _s = serial();
        let dir = tmp_dir("explicit");
        let obs = Obs::new();
        let guard = arm(&dir, &obs, &[], "unit-explicit");
        obs.add(Ctr::DiskReads, 17);
        obs.add(Ctr::CacheWritebacks, 3);
        guard.flight().dump("operator");
        let text = std::fs::read_to_string(guard.flight().path()).unwrap();
        let dump = parse_flight(&text).unwrap();
        assert_eq!(dump.head.get("reason").and_then(Json::as_str), Some("operator"));
        let report = postmortem(&dump);
        assert_eq!(report.get("consistent"), Some(&Json::Bool(true)));
        let last = dump.frames.last().unwrap();
        assert_eq!(
            last.get("counters").and_then(|c| c.get("disk_reads")).and_then(Json::as_u64),
            Some(17)
        );
        assert_eq!(
            dump.head
                .get("counters_final")
                .and_then(|c| c.get("disk_reads"))
                .and_then(Json::as_u64),
            Some(17)
        );
        let text = render_postmortem(&report);
        assert!(text.contains("internally consistent"), "{text}");
        drop(guard);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn volume_rows_and_tags_are_merged() {
        let _s = serial();
        let dir = tmp_dir("vols");
        let set = Obs::new();
        let vols = vec![Obs::new(), Obs::new()];
        let guard = arm(&dir, &set, &vols, "unit-vols");
        vols[1].add(Ctr::DiskWrites, 5);
        {
            let _g = vols[1].span(OpKind::Write);
        }
        guard.flight().dump("check");
        let dump = parse_flight(&std::fs::read_to_string(guard.flight().path()).unwrap()).unwrap();
        let last = dump.frames.last().unwrap();
        let Some(Json::Arr(volumes)) = last.get("volumes") else { panic!("volumes") };
        assert_eq!(volumes.len(), 2);
        assert_eq!(volumes[1].get("dwrites").and_then(Json::as_u64), Some(5));
        // The volume-1 span carries its volume tag.
        let span = dump.spans.iter().find(|s| s.get("op").and_then(Json::as_str) == Some("write"));
        assert_eq!(span.unwrap().get("vol").and_then(Json::as_u64), Some(1));
        drop(guard);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_all_reaches_every_armed_flight() {
        let _s = serial();
        let dir = tmp_dir("all");
        let a = Obs::new();
        let b = Obs::new();
        let ga = arm(&dir, &a, &[], "unit-all-a");
        let gb = arm(&dir, &b, &[], "unit-all-b");
        dump_all("fsck_failure");
        for g in [&ga, &gb] {
            let dump = parse_flight(&std::fs::read_to_string(g.flight().path()).unwrap()).unwrap();
            assert_eq!(dump.head.get("reason").and_then(Json::as_str), Some("fsck_failure"));
        }
        drop(ga);
        drop(gb);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rings_stay_bounded() {
        let _s = serial();
        let dir = tmp_dir("bounded");
        let obs = Obs::new();
        let guard = arm(&dir, &obs, &[], "unit-bounded");
        for i in 0..(FLIGHT_FRAMES as u64 + 40) {
            obs.set_clock_ns((i + 1) * crate::feed::SIM_INTERVAL_DEFAULT_NS);
        }
        for _ in 0..(FLIGHT_SPANS + 50) {
            let _g = obs.span(OpKind::Read);
        }
        guard.flight().dump("bound-check");
        let dump = parse_flight(&std::fs::read_to_string(guard.flight().path()).unwrap()).unwrap();
        assert!(dump.frames.len() <= FLIGHT_FRAMES);
        assert!(dump.spans.len() <= FLIGHT_SPANS);
        let report = postmortem(&dump);
        let Some(Json::Arr(diag)) = report.get("diagnosis") else { panic!("diagnosis") };
        assert!(!diag.is_empty(), "diagnosis is never empty");
        drop(guard);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_rejects_torn_and_malformed_dumps() {
        let _s = serial();
        assert!(parse_flight("").is_err(), "no head");
        assert!(parse_flight("{\"rec\":\"frame\"}").is_err(), "frame before head");
        let dir = tmp_dir("reject");
        let obs = Obs::new();
        let guard = arm(&dir, &obs, &[], "unit-reject");
        guard.flight().dump("x");
        let text = std::fs::read_to_string(guard.flight().path()).unwrap();
        // Head alone (frames stripped) must not validate.
        let head_only: String = text.lines().take(1).map(|l| format!("{l}\n")).collect();
        assert!(parse_flight(&head_only).is_err());
        drop(guard);
        std::fs::remove_dir_all(&dir).ok();
    }
}

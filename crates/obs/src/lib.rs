//! `cffs-obs` — cross-layer observability for the C-FFS reproduction.
//!
//! Three pieces, all dependency-free and cheap enough for simulator hot
//! paths:
//!
//! * [`Counters`]: a fixed registry of relaxed atomic `u64` counters indexed
//!   by the [`Ctr`] enum. Incrementing is one relaxed `fetch_add`; the hot
//!   path never allocates, locks, or formats.
//! * [`TraceRing`]: a bounded ring of [`Event`]s that overwrites the oldest
//!   entries on wrap, so the newest events are always retained.
//! * [`StatsSnapshot`]: a point-in-time, JSON-serializable copy of every
//!   counter plus simulated time — the unit that bench binaries embed in
//!   their `BENCH_*.json` output and that tests diff against hand counts.
//!
//! One [`Obs`] handle (an `Arc`) is shared by the disk, driver, buffer
//! cache, and file-system layers of a mounted stack, so a single snapshot
//! sees the whole path a request took.

pub mod json;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use json::{Json, JsonError, ToJson};

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// Every counter in the registry. `Ctr::name()` gives the stable
        /// snake_case string used in snapshots and `BENCH_*.json`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Ctr {
            $($(#[$doc])* $variant,)+
        }

        impl Ctr {
            /// Number of registered counters.
            pub const COUNT: usize = [$($name),+].len();

            /// All counters, in registry (snapshot) order.
            pub const ALL: [Ctr; Self::COUNT] = [$(Ctr::$variant),+];

            /// Stable external name.
            pub fn name(self) -> &'static str {
                match self {
                    $(Ctr::$variant => $name,)+
                }
            }

            /// Inverse of [`Ctr::name`].
            pub fn from_name(name: &str) -> Option<Ctr> {
                match name {
                    $($name => Some(Ctr::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

counters! {
    // ---- disksim: mechanical disk ----
    /// Requests serviced by the disk (after driver coalescing).
    DiskRequests => "disk_requests",
    /// Read requests serviced by the disk.
    DiskReads => "disk_reads",
    /// Write requests serviced by the disk.
    DiskWrites => "disk_writes",
    /// Requests that required an arm seek (nonzero cylinder delta).
    DiskSeeks => "disk_seeks",
    /// Nanoseconds the arm spent seeking.
    DiskSeekNs => "disk_seek_ns",
    /// Total simulated service time, nanoseconds.
    DiskServiceNs => "disk_service_ns",
    /// Bytes transferred from the media on reads.
    DiskBytesRead => "disk_bytes_read",
    /// Bytes transferred to the media on writes.
    DiskBytesWritten => "disk_bytes_written",
    /// Read requests absorbed by the on-board (track) cache.
    DiskCacheHits => "disk_cache_hits",

    // ---- disksim: driver / scheduler ----
    /// Logical I/O requests submitted to the driver.
    DriverLogicalRequests => "driver_logical_requests",
    /// Physical requests issued after scheduling + coalescing.
    DriverPhysicalRequests => "driver_physical_requests",
    /// Scatter/gather segments across all physical requests.
    DriverSgSegments => "driver_sg_segments",
    /// Logical requests merged away by coalescing.
    DriverCoalesced => "driver_coalesced",
    /// Batches submitted to the driver.
    DriverBatches => "driver_batches",

    // ---- buffer cache ----
    /// Block lookups against the cache.
    CacheLookups => "cache_lookups",
    /// Lookups satisfied via the physical (disk-address) index.
    CachePhysHits => "cache_phys_hits",
    /// Lookups satisfied via the logical (file-identity) index.
    CacheLogicalHits => "cache_logical_hits",
    /// Lookups that missed and went to disk.
    CacheMisses => "cache_misses",
    /// Group-fetched buffers later claimed by file identity.
    CacheBackbinds => "cache_backbinds",
    /// Buffers evicted to make room.
    CacheEvictions => "cache_evictions",
    /// Dirty buffers written back (any path).
    CacheWritebacks => "cache_writebacks",
    /// Physically contiguous dirty runs written as one request by sync.
    CacheCoalescedRuns => "cache_coalesced_runs",
    /// Blocks flushed synchronously (write-through ordering points).
    CacheSyncFlushes => "cache_sync_flushes",
    /// Blocks flushed by delayed write-back (sync sweep / eviction).
    CacheDelayedFlushes => "cache_delayed_flushes",
    /// Group read-ahead requests issued.
    CacheGroupReads => "cache_group_reads",
    /// Blocks brought in by group read-ahead.
    CacheGroupReadBlocks => "cache_group_read_blocks",

    // ---- file system (C-FFS and the FFS baseline) ----
    /// Inode reads/writes served from an embedded (in-directory) inode.
    FsEmbeddedInodeOps => "fs_embedded_inode_ops",
    /// Inode reads/writes served from an external inode block/table.
    FsExternalInodeOps => "fs_external_inode_ops",
    /// Whole-group prefetches triggered by a member access.
    FsGroupFetches => "fs_group_fetches",
    /// Blocks covered by those group prefetches.
    FsGroupFetchBlocks => "fs_group_fetch_blocks",
    /// Groups dissolved (membership dropped to zero / reclaimed).
    FsGroupDissolves => "fs_group_dissolves",
    /// Files removed from a group without dissolving it.
    FsDegroupings => "fs_degroupings",
    /// Metadata updates forced to disk synchronously.
    FsSyncMetaWrites => "fs_sync_meta_writes",
    /// Metadata updates deferred to delayed write-back.
    FsDelayedMetaWrites => "fs_delayed_meta_writes",
}

/// Fixed registry of relaxed atomic counters.
pub struct Counters {
    vals: [AtomicU64; Ctr::COUNT],
}

impl Counters {
    pub fn new() -> Self {
        Counters {
            vals: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Add `n` to a counter. Relaxed: counters are statistics, not
    /// synchronization.
    #[inline]
    pub fn add(&self, c: Ctr, n: u64) {
        self.vals[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn bump(&self, c: Ctr) {
        self.add(c, 1);
    }

    /// Current value of one counter.
    pub fn get(&self, c: Ctr) -> u64 {
        self.vals[c as usize].load(Ordering::Relaxed)
    }

    /// Copy of all counter values, in [`Ctr::ALL`] order.
    pub fn values(&self) -> [u64; Ctr::COUNT] {
        std::array::from_fn(|i| self.vals[i].load(Ordering::Relaxed))
    }
}

impl Default for Counters {
    fn default() -> Self {
        Self::new()
    }
}

/// One trace event. `a`/`b` are event-specific operands (block numbers,
/// byte counts, inode numbers — the tag's documentation defines them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated time the event occurred, nanoseconds.
    pub t_ns: u64,
    /// Static event name, e.g. `"disk.read"` or `"cffs.group_fetch"`.
    pub tag: &'static str,
    pub a: u64,
    pub b: u64,
}

impl Event {
    /// One-line JSON rendering (for JSONL dumps).
    pub fn to_jsonl(&self) -> String {
        obj![
            ("t_ns", Json::Int(self.t_ns as i64)),
            ("tag", Json::Str(self.tag.to_string())),
            ("a", Json::Int(self.a as i64)),
            ("b", Json::Int(self.b as i64)),
        ]
        .to_string()
    }
}

/// Bounded event ring. When full, recording overwrites the oldest entry —
/// the newest `capacity` events are always available.
pub struct TraceRing {
    buf: Vec<Event>,
    cap: usize,
    /// Next write position; `total` counts all events ever recorded.
    head: usize,
    total: u64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs nonzero capacity");
        TraceRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            total: 0,
        }
    }

    pub fn record(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
        }
        self.head = (self.head + 1) % self.cap;
        self.total += 1;
    }

    /// Events ever recorded (including ones overwritten since).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }

    /// The newest `n` retained events, oldest first.
    pub fn last(&self, n: usize) -> Vec<Event> {
        let all = self.events();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }
}

/// Shared observability handle for one mounted stack (disk + driver +
/// cache + file system). Clone the `Arc` into each layer.
pub struct Obs {
    counters: Counters,
    trace: Mutex<TraceRing>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").finish_non_exhaustive()
    }
}

/// Default trace-ring capacity (events retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

impl Obs {
    pub fn new() -> Arc<Obs> {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    pub fn with_trace_capacity(capacity: usize) -> Arc<Obs> {
        Arc::new(Obs {
            counters: Counters::new(),
            trace: Mutex::new(TraceRing::new(capacity)),
        })
    }

    #[inline]
    pub fn bump(&self, c: Ctr) {
        self.counters.bump(c);
    }

    #[inline]
    pub fn add(&self, c: Ctr, n: u64) {
        self.counters.add(c, n);
    }

    pub fn get(&self, c: Ctr) -> u64 {
        self.counters.get(c)
    }

    /// Record a trace event at simulated time `t_ns`.
    pub fn trace(&self, t_ns: u64, tag: &'static str, a: u64, b: u64) {
        self.trace
            .lock()
            .expect("trace ring poisoned")
            .record(Event { t_ns, tag, a, b });
    }

    /// The newest `n` trace events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<Event> {
        self.trace.lock().expect("trace ring poisoned").last(n)
    }

    /// Events ever recorded (monotonic; exceeds retained count on wrap).
    pub fn events_recorded(&self) -> u64 {
        self.trace
            .lock()
            .expect("trace ring poisoned")
            .total_recorded()
    }

    /// Point-in-time copy of every counter plus simulated time.
    pub fn snapshot(&self, label: &str, sim_ns: u64) -> StatsSnapshot {
        let vals = self.counters.values();
        StatsSnapshot {
            label: label.to_string(),
            sim_ns,
            counters: Ctr::ALL
                .iter()
                .map(|&c| (c.name().to_string(), vals[c as usize]))
                .collect(),
        }
    }
}

/// Serializable copy of the whole counter registry at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Which stack this came from, e.g. `"cffs"` or `"ffs"`.
    pub label: String,
    /// Simulated time at the snapshot, nanoseconds.
    pub sim_ns: u64,
    /// `(counter name, value)` in registry order.
    pub counters: Vec<(String, u64)>,
}

impl StatsSnapshot {
    /// Value of a counter by name (0 if the name is absent — snapshots
    /// parsed from older files may lack newer counters).
    pub fn get(&self, c: Ctr) -> u64 {
        self.get_named(c.name())
    }

    /// Value of a counter by external name.
    pub fn get_named(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Counter-wise difference `self - earlier` (saturating), for
    /// measuring one phase of a longer run.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            label: self.label.clone(),
            sim_ns: self.sim_ns.saturating_sub(earlier.sim_ns),
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.get_named(n))))
                .collect(),
        }
    }

    pub fn from_json(j: &Json) -> Result<StatsSnapshot, JsonError> {
        let label = String::from(j.want("label")?.as_str().ok_or_else(|| {
            JsonError("label must be a string".into())
        })?);
        let sim_ns = j
            .want("sim_ns")?
            .as_u64()
            .ok_or_else(|| JsonError("sim_ns must be a u64".into()))?;
        let counters_obj = j.want("counters")?;
        let members = match counters_obj {
            Json::Obj(m) => m,
            _ => return Err(JsonError("counters must be an object".into())),
        };
        let mut counters = Vec::with_capacity(members.len());
        for (name, val) in members {
            let v = val
                .as_u64()
                .ok_or_else(|| JsonError(format!("counter {name:?} must be a u64")))?;
            counters.push((name.clone(), v));
        }
        Ok(StatsSnapshot {
            label,
            sim_ns,
            counters,
        })
    }
}

impl ToJson for StatsSnapshot {
    fn to_json(&self) -> Json {
        obj![
            ("label", Json::Str(self.label.clone())),
            ("sim_ns", Json::Int(self.sim_ns as i64)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Int(*v as i64)))
                        .collect()
                )
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let obs = Obs::new();
        obs.bump(Ctr::DiskRequests);
        obs.add(Ctr::DiskBytesRead, 4096);
        obs.add(Ctr::DiskBytesRead, 4096);
        assert_eq!(obs.get(Ctr::DiskRequests), 1);
        assert_eq!(obs.get(Ctr::DiskBytesRead), 8192);

        let snap = obs.snapshot("test", 123);
        assert_eq!(snap.get(Ctr::DiskBytesRead), 8192);
        assert_eq!(snap.get(Ctr::CacheMisses), 0);
        assert_eq!(snap.counters.len(), Ctr::COUNT);
    }

    #[test]
    fn counter_names_round_trip() {
        for c in Ctr::ALL {
            assert_eq!(Ctr::from_name(c.name()), Some(c));
        }
        assert_eq!(Ctr::from_name("no_such_counter"), None);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let obs = Obs::new();
        obs.add(Ctr::DiskRequests, 5);
        let before = obs.snapshot("s", 100);
        obs.add(Ctr::DiskRequests, 3);
        obs.add(Ctr::CacheMisses, 2);
        let after = obs.snapshot("s", 250);
        let d = after.delta(&before);
        assert_eq!(d.sim_ns, 150);
        assert_eq!(d.get(Ctr::DiskRequests), 3);
        assert_eq!(d.get(Ctr::CacheMisses), 2);
        assert_eq!(d.get(Ctr::DiskBytesRead), 0);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let obs = Obs::new();
        obs.add(Ctr::DriverSgSegments, 7);
        obs.add(Ctr::FsGroupFetches, 2);
        let snap = obs.snapshot("cffs", 999_999_999_999);
        let text = snap.to_json().to_string_pretty();
        let back = StatsSnapshot::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn trace_ring_wraps_keeping_newest() {
        let mut ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.record(Event {
                t_ns: i,
                tag: "t",
                a: i,
                b: 0,
            });
        }
        assert_eq!(ring.total_recorded(), 10);
        let evs = ring.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest-first, newest retained"
        );
        assert_eq!(ring.last(2).iter().map(|e| e.a).collect::<Vec<_>>(), vec![8, 9]);
        // Asking for more than retained returns everything retained.
        assert_eq!(ring.last(100).len(), 4);
    }

    #[test]
    fn trace_through_obs_handle() {
        let obs = Obs::with_trace_capacity(8);
        obs.trace(10, "disk.read", 100, 4096);
        obs.trace(20, "disk.write", 200, 8192);
        let evs = obs.recent_events(10);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].tag, "disk.write");
        let line = evs[0].to_jsonl();
        let j = json::parse(&line).unwrap();
        assert_eq!(j.get("tag").unwrap().as_str().unwrap(), "disk.read");
        assert_eq!(j.get("b").unwrap().as_u64().unwrap(), 4096);
    }

    #[test]
    fn counters_are_monotonic_under_concurrency() {
        let obs = Obs::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let obs = &obs;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        obs.bump(Ctr::CacheLookups);
                    }
                });
            }
        });
        assert_eq!(obs.get(Ctr::CacheLookups), 40_000);
    }
}

//! `cffs-obs` — cross-layer observability for the C-FFS reproduction.
//!
//! Three pieces, all dependency-free and cheap enough for simulator hot
//! paths:
//!
//! * [`Counters`]: a fixed registry of relaxed atomic `u64` counters indexed
//!   by the [`Ctr`] enum. Incrementing is one relaxed `fetch_add`; the hot
//!   path never allocates, locks, or formats.
//! * [`TraceRing`]: a bounded ring of [`Event`]s that overwrites the oldest
//!   entries on wrap, so the newest events are always retained.
//! * [`StatsSnapshot`]: a point-in-time, JSON-serializable copy of every
//!   counter plus simulated time — the unit that bench binaries embed in
//!   their `BENCH_*.json` output and that tests diff against hand counts.
//!
//! One [`Obs`] handle (an `Arc`) is shared by the disk, driver, buffer
//! cache, and file-system layers of a mounted stack, so a single snapshot
//! sees the whole path a request took.

pub mod diff;
pub mod feed;
pub mod flight;
pub mod json;
pub mod prof;

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use json::{Json, JsonError, ToJson};

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// Every counter in the registry. `Ctr::name()` gives the stable
        /// snake_case string used in snapshots and `BENCH_*.json`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Ctr {
            $($(#[$doc])* $variant,)+
        }

        impl Ctr {
            /// Number of registered counters.
            pub const COUNT: usize = [$($name),+].len();

            /// All counters, in registry (snapshot) order.
            pub const ALL: [Ctr; Self::COUNT] = [$(Ctr::$variant),+];

            /// Stable external name.
            pub fn name(self) -> &'static str {
                match self {
                    $(Ctr::$variant => $name,)+
                }
            }

            /// Inverse of [`Ctr::name`].
            pub fn from_name(name: &str) -> Option<Ctr> {
                match name {
                    $($name => Some(Ctr::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

counters! {
    // ---- disksim: mechanical disk ----
    /// Requests serviced by the disk (after driver coalescing).
    DiskRequests => "disk_requests",
    /// Read requests serviced by the disk.
    DiskReads => "disk_reads",
    /// Write requests serviced by the disk.
    DiskWrites => "disk_writes",
    /// Requests that required an arm seek (nonzero cylinder delta).
    DiskSeeks => "disk_seeks",
    /// Nanoseconds the arm spent seeking.
    DiskSeekNs => "disk_seek_ns",
    /// Total simulated service time, nanoseconds.
    DiskServiceNs => "disk_service_ns",
    /// Bytes transferred from the media on reads.
    DiskBytesRead => "disk_bytes_read",
    /// Bytes transferred to the media on writes.
    DiskBytesWritten => "disk_bytes_written",
    /// Read requests absorbed by the on-board (track) cache.
    DiskCacheHits => "disk_cache_hits",

    // ---- disksim: driver / scheduler ----
    /// Logical I/O requests submitted to the driver.
    DriverLogicalRequests => "driver_logical_requests",
    /// Physical requests issued after scheduling + coalescing.
    DriverPhysicalRequests => "driver_physical_requests",
    /// Scatter/gather segments across all physical requests.
    DriverSgSegments => "driver_sg_segments",
    /// Logical requests merged away by coalescing.
    DriverCoalesced => "driver_coalesced",
    /// Batches submitted to the driver.
    DriverBatches => "driver_batches",
    /// Submissions enqueued on the threaded driver queue (single reads
    /// and writes as well as batches).
    DriverQueueSubmit => "driver_queue_submit",

    // ---- buffer cache ----
    /// Block lookups against the cache.
    CacheLookups => "cache_lookups",
    /// Lookups satisfied via the physical (disk-address) index.
    CachePhysHits => "cache_phys_hits",
    /// Lookups satisfied via the logical (file-identity) index.
    CacheLogicalHits => "cache_logical_hits",
    /// Lookups that missed and went to disk.
    CacheMisses => "cache_misses",
    /// Group-fetched buffers later claimed by file identity.
    CacheBackbinds => "cache_backbinds",
    /// Buffers evicted to make room.
    CacheEvictions => "cache_evictions",
    /// Dirty buffers written back (any path).
    CacheWritebacks => "cache_writebacks",
    /// Physically contiguous dirty runs written as one request by sync.
    CacheCoalescedRuns => "cache_coalesced_runs",
    /// Blocks flushed synchronously (write-through ordering points).
    CacheSyncFlushes => "cache_sync_flushes",
    /// Blocks flushed by delayed write-back (sync sweep / eviction).
    CacheDelayedFlushes => "cache_delayed_flushes",
    /// Group read-ahead requests issued.
    CacheGroupReads => "cache_group_reads",
    /// Blocks brought in by group read-ahead.
    CacheGroupReadBlocks => "cache_group_read_blocks",
    /// Group-fetched blocks that were hit at least once before leaving
    /// the cache — the "free bandwidth" that actually got used.
    GroupFetchBlocksUsed => "group_fetch_blocks_used",
    /// Group-fetched blocks evicted/invalidated without ever being hit.
    GroupFetchBlocksWasted => "group_fetch_blocks_wasted",

    // ---- namespace cache (dcache) ----
    /// Dcache probes answered with a cached positive entry (name -> ino).
    DcacheHits => "dcache_hit",
    /// Dcache probes that found no entry and fell through to a dirent scan.
    DcacheMisses => "dcache_miss",
    /// Dcache probes answered with a cached negative entry (name known
    /// absent — the dominant cost in create-if-absent patterns).
    DcacheNegHits => "dcache_neg_hit",
    /// Dcache entries evicted by the CLOCK hand to stay within capacity.
    DcacheEvictions => "dcache_evict",

    // ---- file system (C-FFS and the FFS baseline) ----
    /// Inode reads/writes served from an embedded (in-directory) inode.
    FsEmbeddedInodeOps => "fs_embedded_inode_ops",
    /// Inode reads/writes served from an external inode block/table.
    FsExternalInodeOps => "fs_external_inode_ops",
    /// Whole-group prefetches triggered by a member access.
    FsGroupFetches => "fs_group_fetches",
    /// Blocks covered by those group prefetches.
    FsGroupFetchBlocks => "fs_group_fetch_blocks",
    /// Groups dissolved (membership dropped to zero / reclaimed).
    FsGroupDissolves => "fs_group_dissolves",
    /// Files removed from a group without dissolving it.
    FsDegroupings => "fs_degroupings",
    /// Metadata updates forced to disk synchronously.
    FsSyncMetaWrites => "fs_sync_meta_writes",
    /// Metadata updates deferred to delayed write-back.
    FsDelayedMetaWrites => "fs_delayed_meta_writes",

    // ---- online regrouping engine ----
    /// Blocks relocated by the regrouper (copy-forward + pointer rewrite).
    RegroupBlocksMoved => "regroup_blocks_moved",
    /// Fresh contiguous group extents carved by the regrouper.
    RegroupGroupsFormed => "regroup_groups_formed",
    /// Budgeted regroup passes fired by the signal autotrigger.
    RegroupAutotriggers => "regroup_autotriggers",

    // ---- time attribution (simulated-time profiler) ----
    /// Span time left after queueing and disk service — in-memory op work.
    AttrOpNs => "attr_op_ns",
    /// Time disk requests inside spans waited behind earlier requests.
    AttrQueueNs => "attr_queue_ns",
    /// Mechanical disk service time, in-span and unattributed.
    AttrServiceNs => "attr_service_ns",

    // ---- health signals ----
    /// Signal EWMA crossings below a configured floor.
    SignalLowEvents => "signal_low_events",
    /// Signal EWMA crossings above a configured ceiling.
    SignalHighEvents => "signal_high_events",

    // ---- lock contention (host-time; zero in single-threaded runs) ----
    /// Host nanoseconds spent waiting on contended allocation-map /
    /// group-index / namespace locks in the FS core.
    LockWaitNsAlloc => "lock_wait_ns_alloc",
    /// Host nanoseconds spent waiting on contended buffer-cache shard
    /// locks.
    LockWaitNsCache => "lock_wait_ns_cache",
    /// Host nanoseconds spent waiting on contended driver queue / disk
    /// locks.
    LockWaitNsDriver => "lock_wait_ns_driver",

    // ---- scale-out volume sets ----
    /// Files promoted to the striped layout by a volume set (first write
    /// that extends past the stripe threshold).
    VolStripePromotions => "vol_stripe_promotions",
    /// Stripe-part reads/writes issued to non-home volumes on behalf of
    /// striped files.
    VolStripePartIos => "vol_stripe_part_ios",
    /// Directory creations fanned out to every volume to replicate the
    /// namespace skeleton.
    VolDirFanouts => "vol_dir_fanouts",
}

/// Fixed registry of relaxed atomic counters.
pub struct Counters {
    vals: [AtomicU64; Ctr::COUNT],
}

impl Counters {
    pub fn new() -> Self {
        Counters {
            vals: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Add `n` to a counter. Relaxed: counters are statistics, not
    /// synchronization.
    #[inline]
    pub fn add(&self, c: Ctr, n: u64) {
        self.vals[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn bump(&self, c: Ctr) {
        self.add(c, 1);
    }

    /// Current value of one counter.
    pub fn get(&self, c: Ctr) -> u64 {
        self.vals[c as usize].load(Ordering::Relaxed)
    }

    /// Copy of all counter values, in [`Ctr::ALL`] order.
    pub fn values(&self) -> [u64; Ctr::COUNT] {
        std::array::from_fn(|i| self.vals[i].load(Ordering::Relaxed))
    }
}

impl Default for Counters {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! op_kinds {
    ($($(#[$doc:meta])* $variant:ident => $name:literal / $tag:literal,)+) => {
        /// The kind of file-system operation a [span](Obs::span) is
        /// attributed to — one variant per public `FileSystem` entry
        /// point (plus C-FFS's `group_files` hint).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum OpKind {
            $($(#[$doc])* $variant,)+
        }

        impl OpKind {
            /// Number of op kinds.
            pub const COUNT: usize = [$($name),+].len();

            /// All op kinds, in registry order.
            pub const ALL: [OpKind; Self::COUNT] = [$(OpKind::$variant),+];

            /// Stable external name (the `op` field of trace events and
            /// the suffix of the `op_ns_*` latency histograms).
            pub fn name(self) -> &'static str {
                match self {
                    $(OpKind::$variant => $name,)+
                }
            }

            /// Trace-event tag recorded when the op's span closes.
            pub fn tag(self) -> &'static str {
                match self {
                    $(OpKind::$variant => $tag,)+
                }
            }

            /// Inverse of [`OpKind::name`].
            pub fn from_name(name: &str) -> Option<OpKind> {
                match name {
                    $($name => Some(OpKind::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

op_kinds! {
    /// Name resolution in one directory.
    Lookup => "lookup" / "op.lookup",
    /// Attribute read.
    Getattr => "getattr" / "op.getattr",
    /// File creation.
    Create => "create" / "op.create",
    /// Directory creation.
    Mkdir => "mkdir" / "op.mkdir",
    /// File unlink.
    Unlink => "unlink" / "op.unlink",
    /// Directory removal.
    Rmdir => "rmdir" / "op.rmdir",
    /// Hard-link creation.
    Link => "link" / "op.link",
    /// Rename (same or cross directory).
    Rename => "rename" / "op.rename",
    /// File data read.
    Read => "read" / "op.read",
    /// File data write.
    Write => "write" / "op.write",
    /// File truncate/extend.
    Truncate => "truncate" / "op.truncate",
    /// Directory scan.
    Readdir => "readdir" / "op.readdir",
    /// Flush of all dirty state.
    Sync => "sync" / "op.sync",
    /// File-system statistics.
    Statfs => "statfs" / "op.statfs",
    /// Application grouping hint.
    GroupHint => "group_hint" / "op.group_hint",
    /// Cache drop (cold-cache boundary in benchmarks).
    DropCaches => "drop_caches" / "op.drop_caches",
    /// C-FFS explicit co-grouping of named files.
    GroupFiles => "group_files" / "op.group_files",
}

/// Number of buckets in every [`Histogram`]. Bucket 0 holds the value 0;
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`. 48 buckets cover
/// values up to `2^47` (≈ 39 simulated hours in nanoseconds).
pub const HISTO_BUCKETS: usize = 48;

/// Bucket index a value lands in (log2 buckets, see [`HISTO_BUCKETS`]).
#[inline]
pub fn histo_bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTO_BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket.
pub fn histo_bucket_lo(i: usize) -> u64 {
    if i == 0 { 0 } else { 1u64 << (i - 1) }
}

/// Inclusive upper bound of a bucket (quantiles report this value, so a
/// log2 histogram's percentiles are upper bounds accurate to 2×).
pub fn histo_bucket_hi(i: usize) -> u64 {
    if i == 0 { 0 } else { (1u64 << i) - 1 }
}

/// Fixed-size log2-bucket histogram of `u64` values. Recording is one
/// relaxed `fetch_add` on a bucket plus one on the running sum — no
/// allocation, no locks, no floating point on the hot path.
pub struct Histogram {
    buckets: [AtomicU64; HISTO_BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[histo_bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializable copy of a [`Histogram`] at one instant. Trailing empty
/// buckets are trimmed, so `buckets.len()` varies but indices keep the
/// log2 meaning of [`histo_bucket_of`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Sum of all recorded values (for means).
    pub sum: u64,
    /// Per-bucket counts, trailing zeros trimmed.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Quantile `q` in `[0, 1]`, reported as the inclusive upper bound of
    /// the bucket where the cumulative count crosses `q` (log2 buckets:
    /// accurate to a factor of 2). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return histo_bucket_hi(i);
            }
        }
        histo_bucket_hi(self.buckets.len().saturating_sub(1))
    }

    /// Bucket-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let len = self.buckets.len().max(earlier.buckets.len());
        let get = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
        let mut buckets: Vec<u64> = (0..len)
            .map(|i| get(&self.buckets, i).saturating_sub(get(&earlier.buckets, i)))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }

    /// Bucket-wise sum `self + other` (saturating), for folding
    /// per-volume histograms into one aggregate view.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let len = self.buckets.len().max(other.buckets.len());
        let get = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
        let buckets: Vec<u64> = (0..len)
            .map(|i| get(&self.buckets, i).saturating_add(get(&other.buckets, i)))
            .collect();
        HistogramSnapshot {
            sum: self.sum.saturating_add(other.sum),
            buckets,
        }
    }

    pub fn from_json(j: &Json) -> Result<HistogramSnapshot, JsonError> {
        let sum = j
            .want("sum")?
            .as_u64()
            .ok_or_else(|| JsonError("histogram sum must be a u64".into()))?;
        let buckets = match j.want("buckets")? {
            Json::Arr(a) => a
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| JsonError("histogram bucket must be a u64".into()))
                })
                .collect::<Result<Vec<u64>, _>>()?,
            _ => return Err(JsonError("histogram buckets must be an array".into())),
        };
        Ok(HistogramSnapshot { sum, buckets })
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        obj![
            ("count", Json::Int(self.count() as i64)),
            ("sum", Json::Int(self.sum as i64)),
            (
                "buckets",
                Json::Arr(self.buckets.iter().map(|&c| Json::Int(c as i64)).collect())
            ),
        ]
    }
}

/// The fixed registry of histograms one [`Obs`] carries: per-op latency
/// (`op_ns_<op>`), disk-request size in sectors, seek distance in
/// cylinders, per-request service time, and group-fetch utilization.
pub struct Histos {
    op_ns: [Histogram; OpKind::COUNT],
    /// Sectors per disk request, after driver coalescing.
    pub disk_req_sectors: Histogram,
    /// Cylinders traversed by each arm seek (zero-distance not recorded).
    pub disk_seek_cylinders: Histogram,
    /// Simulated service time of each disk request, nanoseconds.
    pub disk_req_service_ns: Histogram,
    /// Percent of each group fetch's blocks hit before leaving the cache,
    /// recorded once per fetch when its last block resolves.
    pub group_fetch_util_pct: Histogram,
    /// Logical requests per driver batch (instantaneous queue depth at
    /// each submit).
    pub driver_batch_reqs: Histogram,
    /// Per-shard buffer-cache hit rate in percent, sampled once per shard
    /// at every cache drop (cold boundary) covering the epoch since the
    /// previous drop.
    pub cache_shard_hit_pct: Histogram,
    /// Per-shard namespace-cache (dcache) hit rate in percent — positive
    /// and negative hits over all probes — sampled once per shard at
    /// every dcache clear covering the epoch since the previous clear.
    pub dcache_hit_pct: Histogram,
}

impl Histos {
    fn new() -> Self {
        Histos {
            op_ns: std::array::from_fn(|_| Histogram::new()),
            disk_req_sectors: Histogram::new(),
            disk_seek_cylinders: Histogram::new(),
            disk_req_service_ns: Histogram::new(),
            group_fetch_util_pct: Histogram::new(),
            driver_batch_reqs: Histogram::new(),
            cache_shard_hit_pct: Histogram::new(),
            dcache_hit_pct: Histogram::new(),
        }
    }

    /// The latency histogram for one op kind.
    pub fn op_ns(&self, op: OpKind) -> &Histogram {
        &self.op_ns[op as usize]
    }

    /// `(stable name, histogram)` pairs in registry (snapshot) order.
    pub fn named(&self) -> Vec<(String, &Histogram)> {
        let mut out: Vec<(String, &Histogram)> = OpKind::ALL
            .iter()
            .map(|&op| (format!("op_ns_{}", op.name()), &self.op_ns[op as usize]))
            .collect();
        out.push(("disk_req_sectors".to_string(), &self.disk_req_sectors));
        out.push(("disk_seek_cylinders".to_string(), &self.disk_seek_cylinders));
        out.push(("disk_req_service_ns".to_string(), &self.disk_req_service_ns));
        out.push(("group_fetch_util_pct".to_string(), &self.group_fetch_util_pct));
        out.push(("driver_batch_reqs".to_string(), &self.driver_batch_reqs));
        out.push(("cache_shard_hit_pct".to_string(), &self.cache_shard_hit_pct));
        out.push(("dcache_hit_pct".to_string(), &self.dcache_hit_pct));
        out
    }

    /// All registered histogram names, in snapshot order.
    pub fn names() -> Vec<String> {
        let mut out: Vec<String> = OpKind::ALL
            .iter()
            .map(|&op| format!("op_ns_{}", op.name()))
            .collect();
        out.push("disk_req_sectors".to_string());
        out.push("disk_seek_cylinders".to_string());
        out.push("disk_req_service_ns".to_string());
        out.push("group_fetch_util_pct".to_string());
        out.push("driver_batch_reqs".to_string());
        out.push("cache_shard_hit_pct".to_string());
        out.push("dcache_hit_pct".to_string());
        out
    }
}

/// One trace event. `a`/`b` are event-specific operands (block numbers,
/// byte counts, inode numbers — the tag's documentation defines them).
/// Every event is stamped with the [span](Obs::span) active when it was
/// recorded (`span == 0` / empty `op` when none), so disk requests can be
/// attributed to the file-system operation that caused them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated time the event occurred, nanoseconds.
    pub t_ns: u64,
    /// Static event name, e.g. `"disk.read"` or `"op.create"`.
    pub tag: &'static str,
    pub a: u64,
    pub b: u64,
    /// Id of the causing op span; 0 when no span was active.
    pub span: u64,
    /// [`OpKind::name`] of the causing op; `""` when no span was active.
    pub op: &'static str,
    /// Event duration in simulated nanoseconds (service time for `disk.*`
    /// events, op latency for `op.*` span events); 0 when instantaneous.
    pub dur_ns: u64,
}

impl Event {
    /// One-line JSON rendering (for JSONL dumps).
    pub fn to_jsonl(&self) -> String {
        obj![
            ("t_ns", Json::Int(self.t_ns as i64)),
            ("tag", Json::Str(self.tag.to_string())),
            ("a", Json::Int(self.a as i64)),
            ("b", Json::Int(self.b as i64)),
            ("span", Json::Int(self.span as i64)),
            ("op", Json::Str(self.op.to_string())),
            ("dur_ns", Json::Int(self.dur_ns as i64)),
        ]
        .to_string()
    }
}

/// Bounded event ring. When full, recording overwrites the oldest entry —
/// the newest `capacity` events are always available.
pub struct TraceRing {
    buf: Vec<Event>,
    cap: usize,
    /// Next write position; `total` counts all events ever recorded.
    head: usize,
    total: u64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs nonzero capacity");
        TraceRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            total: 0,
        }
    }

    pub fn record(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
        }
        self.head = (self.head + 1) % self.cap;
        self.total += 1;
    }

    /// Events ever recorded (including ones overwritten since).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }

    /// The newest `n` retained events, oldest first.
    pub fn last(&self, n: usize) -> Vec<Event> {
        let all = self.events();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }
}

/// Shared observability handle for one mounted stack (disk + driver +
/// cache + file system). Clone the `Arc` into each layer.
///
/// Span state (the currently open op span and its attribution
/// accumulators) is **per thread**: each workload thread opens and
/// closes its own spans independently, so causal attribution stays
/// correct when several clients drive one stack concurrently. Span ids
/// still come from one shared counter, so a single-threaded run sees
/// the same deterministic ids (1, 2, ...) as before.
pub struct Obs {
    /// Process-unique id keying this handle's slots in the thread-local
    /// span/clock tables (an id, not a pointer, so a freed `Obs` can
    /// never alias a new one's state).
    uid: u64,
    counters: Counters,
    histos: Histos,
    trace: Mutex<TraceRing>,
    /// High-water mirror of the simulated clock across *all* threads,
    /// updated whenever any driver clock moves. Threads that have
    /// advanced their own clock read their thread-local mirror instead
    /// (see [`Obs::clock_ns`]).
    clock_ns: AtomicU64,
    /// Next span id to allocate (span ids start at 1; 0 means "none").
    next_span: AtomicU64,
    /// Optional unbounded log of every closed span (plus unattributed
    /// disk requests), for full-run folds that outlive the trace ring.
    span_log: Mutex<Option<Vec<SpanRecord>>>,
    /// Health-signal EWMAs (see [`Sig`]).
    signals: Mutex<[SignalState; Sig::COUNT]>,
    /// Per-cylinder-group live registers (occupancy gauge, I/O tallies,
    /// group-fetch-utilization EWMA), configured once at mount by
    /// [`Obs::configure_cg_table`]. Unset for stacks without cylinder
    /// groups (FFS baseline, bare disks).
    cg_table: OnceLock<CgTable>,
    /// Submissions currently sitting in the threaded driver queue
    /// (gauge: incremented at enqueue, decremented at worker pickup).
    queue_depth: AtomicU64,
    /// Ops completed per bound thread slot (outermost span closes). Slot
    /// 0 is the main thread; fan-out workers bind 1.. via
    /// [`Obs::bind_thread_slot`].
    thread_ops: [AtomicU64; THREAD_SLOTS],
    /// Next simulated instant the attached telemetry tap wants a frame;
    /// `u64::MAX` (the reset value) keeps the [`Obs::set_clock_ns`] hot
    /// path to a single relaxed load when no feed is attached.
    feed_due_ns: AtomicU64,
    /// The attached sim-cadence telemetry tap, if any (weak: the tap
    /// holds the `Arc<Obs>`, so a strong ref here would leak both).
    feed_tap: Mutex<Option<Weak<feed::FeedTap>>>,
    /// Next simulated instant the armed flight recorder wants a frame
    /// cut; `u64::MAX` keeps the disarmed hot path to one relaxed load
    /// (same pacing trick as `feed_due_ns`).
    pub(crate) flight_due_ns: AtomicU64,
    /// The armed flight recorder, if any (weak: the guard holds the
    /// `Arc<flight::Flight>`, which holds the `Arc<Obs>`).
    pub(crate) flight_slot: Mutex<Option<Weak<flight::Flight>>>,
    /// Per-op p99 latency objectives, nanoseconds (0 = no objective
    /// armed for that op). See [`Obs::set_slo`].
    slo_ns: [AtomicU64; OpKind::COUNT],
}

/// Fixed number of per-thread op-counter slots (slot 0 = main thread,
/// 1.. = fan-out workers; binds past the last slot clamp onto it).
pub const THREAD_SLOTS: usize = 16;

/// Source of [`Obs::uid`] values.
static OBS_UID: AtomicU64 = AtomicU64::new(1);

/// Per-thread span state for one `Obs`: the open span, its op kind, and
/// the attribution accumulators the span guard folds on close.
#[derive(Debug, Clone, Copy, Default)]
struct SpanTls {
    cur_span: u64,
    cur_op: usize,
    q: u64,
    svc: u64,
    last_end: u64,
}

thread_local! {
    /// Span state per (thread, Obs-uid).
    static SPAN_TLS: std::cell::RefCell<std::collections::HashMap<u64, SpanTls>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
    /// Simulated-clock mirror per (thread, Obs-uid) — each client thread
    /// runs its own virtual timeline under the threaded driver.
    static CLOCK_TLS: std::cell::RefCell<std::collections::HashMap<u64, u64>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
    /// Bound thread-op slot per (thread, Obs-uid); absent means slot 0.
    static SLOT_TLS: std::cell::RefCell<std::collections::HashMap<u64, usize>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Snapshot of the calling thread's open span, taken by a submitter so a
/// worker thread (the threaded driver) can service I/O on the span's
/// behalf. `span == 0` means no span was open.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanCtx {
    /// Open span id (0 = none).
    pub span: u64,
    /// [`OpKind`] index of the open span.
    pub op: usize,
    /// End time of the last disk request already attributed to the span
    /// (queue gaps accumulate against this).
    pub last_end: u64,
}

/// Attribution a worker thread accumulated while servicing on behalf of
/// an adopted span; the submitting thread folds it back into its own
/// span via [`Obs::fold_attr`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AttrDelta {
    /// Queue-gap nanoseconds accumulated while adopted.
    pub queue_ns: u64,
    /// Disk service nanoseconds accumulated while adopted.
    pub service_ns: u64,
    /// End time of the last disk request serviced.
    pub last_end: u64,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").finish_non_exhaustive()
    }
}

/// Default trace-ring capacity (events retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Default p99 latency objectives armed at mount, simulated nanoseconds.
/// Deliberately lenient for a seek-bound simulated disk: a healthy run
/// burns 0; a collapsed cache or a starved regrouper shows up as burn
/// long before it shows up as a failed bench gate.
pub const DEFAULT_SLO_P99_NS: &[(OpKind, u64)] = &[
    (OpKind::Lookup, 50_000_000),
    (OpKind::Getattr, 20_000_000),
    (OpKind::Create, 100_000_000),
    (OpKind::Unlink, 100_000_000),
    (OpKind::Read, 100_000_000),
    (OpKind::Write, 100_000_000),
];

impl Obs {
    pub fn new() -> Arc<Obs> {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    pub fn with_trace_capacity(capacity: usize) -> Arc<Obs> {
        Arc::new(Obs {
            uid: OBS_UID.fetch_add(1, Ordering::Relaxed),
            counters: Counters::new(),
            histos: Histos::new(),
            trace: Mutex::new(TraceRing::new(capacity)),
            clock_ns: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            span_log: Mutex::new(None),
            signals: Mutex::new(std::array::from_fn(|_| SignalState::default())),
            cg_table: OnceLock::new(),
            queue_depth: AtomicU64::new(0),
            thread_ops: std::array::from_fn(|_| AtomicU64::new(0)),
            feed_due_ns: AtomicU64::new(u64::MAX),
            feed_tap: Mutex::new(None),
            flight_due_ns: AtomicU64::new(u64::MAX),
            flight_slot: Mutex::new(None),
            slo_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }

    /// Run `f` on this handle's slot in the calling thread's span table.
    #[inline]
    fn with_tls<R>(&self, f: impl FnOnce(&mut SpanTls) -> R) -> R {
        SPAN_TLS.with(|t| f(t.borrow_mut().entry(self.uid).or_default()))
    }

    #[inline]
    pub fn bump(&self, c: Ctr) {
        self.counters.bump(c);
    }

    #[inline]
    pub fn add(&self, c: Ctr, n: u64) {
        self.counters.add(c, n);
    }

    pub fn get(&self, c: Ctr) -> u64 {
        self.counters.get(c)
    }

    /// Record a trace event at simulated time `t_ns`. The event is
    /// stamped with the currently open op span (if any).
    pub fn trace(&self, t_ns: u64, tag: &'static str, a: u64, b: u64) {
        self.trace_io(t_ns, tag, a, b, 0);
    }

    /// Like [`Obs::trace`], with an explicit duration (e.g. the service
    /// time of a disk request).
    pub fn trace_io(&self, t_ns: u64, tag: &'static str, a: u64, b: u64, dur_ns: u64) {
        let (span, op) = self.current_span_fields();
        if dur_ns > 0 && tag.starts_with("disk.") {
            self.attribute_disk_request(span != 0, t_ns, dur_ns);
        }
        // Per-CG I/O tallies ride the existing disk trace points:
        // `a` is the request's sector LBA, `b` its sector count.
        if let Some(t) = self.cg_table.get() {
            if tag == "disk.read" || tag == "disk.write" {
                t.bump_io(a, b, tag == "disk.write");
            }
        }
        self.trace
            .lock()
            .expect("trace ring poisoned")
            .record(Event { t_ns, tag, a, b, span, op, dur_ns });
    }

    /// Fold one serviced disk request into the attribution accounts.
    /// In-span requests split into queue (gap since the later of span
    /// open / previous request end) and service (the request's own
    /// duration); requests outside any span count as pure service.
    fn attribute_disk_request(&self, in_span: bool, t_ns: u64, dur_ns: u64) {
        if in_span {
            self.with_tls(|t| {
                let gap = t_ns.saturating_sub(t.last_end);
                t.q += gap;
                t.svc += dur_ns;
                t.last_end = t.last_end.max(t_ns.saturating_add(dur_ns));
            });
        } else {
            self.counters.add(Ctr::AttrServiceNs, dur_ns);
            let mut log = self.span_log.lock().expect("span log poisoned");
            if let Some(records) = log.as_mut() {
                records.push(SpanRecord {
                    op: None,
                    t0_ns: t_ns,
                    dur_ns,
                    queue_ns: 0,
                    service_ns: dur_ns,
                    truncated: false,
                });
            }
        }
    }

    /// Start collecting a full-run span log: from now on every closed
    /// span (and every unattributed disk request) appends a
    /// [`SpanRecord`]. Unbounded — meant for bounded benchmark runs, not
    /// long-lived mounts.
    pub fn enable_span_log(&self) {
        let mut log = self.span_log.lock().expect("span log poisoned");
        if log.is_none() {
            *log = Some(Vec::new());
        }
    }

    /// Copy of the span log collected so far (None when never enabled).
    pub fn span_log(&self) -> Option<Vec<SpanRecord>> {
        self.span_log.lock().expect("span log poisoned").clone()
    }

    /// Fold one raw sample into a signal's EWMA (`ewma += (v - ewma)/8`
    /// in fixed-point milli-units, step rounded away from zero so the
    /// EWMA converges *exactly* onto a constant sample stream; the first
    /// sample seeds the EWMA directly). Armed thresholds are checked on
    /// every sample: a crossing bumps
    /// `signal_low_events`/`signal_high_events` and drops a
    /// `signal.<name>.low`/`.recovered`/`.high` event in the trace ring
    /// (operands: EWMA and threshold in milli-units).
    pub fn signal_sample(&self, sig: Sig, v: f64) {
        let mut crossings: Vec<(&'static str, f64, f64, Ctr)> = Vec::new();
        {
            let mut sigs = self.signals.lock().expect("signals poisoned");
            let s = &mut sigs[sig as usize];
            let vm = (v * 1000.0).round() as i64;
            if s.samples == 0 {
                s.ewma_milli = vm;
            } else {
                // Truncating division would park the EWMA as soon as
                // |v - ewma| < 8 milli-units — a signal sitting just
                // under its floor could then never cross or re-arm.
                // Rounding the step away from zero guarantees progress
                // all the way to exact convergence.
                s.ewma_milli += ewma_step(vm - s.ewma_milli);
            }
            s.samples += 1;
            let ewma = s.ewma();
            if let Some(floor) = s.floor {
                if !s.low && ewma < floor {
                    s.low = true;
                    s.low_count += 1;
                    crossings.push((sig.low_tag(), ewma, floor, Ctr::SignalLowEvents));
                } else if s.low && ewma >= floor * SIGNAL_REARM {
                    s.low = false;
                    s.high_count += 1;
                    crossings.push((sig.high_tag(), ewma, floor, Ctr::SignalHighEvents));
                }
            }
            if let Some(ceiling) = s.ceiling {
                if !s.high && ewma > ceiling {
                    s.high = true;
                    s.high_count += 1;
                    crossings.push((sig.high_tag(), ewma, ceiling, Ctr::SignalHighEvents));
                } else if s.high && ewma <= ceiling / SIGNAL_REARM {
                    s.high = false;
                    s.low_count += 1;
                    crossings.push((sig.low_tag(), ewma, ceiling, Ctr::SignalLowEvents));
                }
            }
        }
        // Trace outside the signals lock (trace_io takes the ring lock).
        for (tag, ewma, threshold, ctr) in crossings {
            self.counters.bump(ctr);
            self.trace(self.clock_ns(), tag, milli(ewma), milli(threshold));
        }
    }

    /// Smoothed view of one signal.
    pub fn signal(&self, sig: Sig) -> SignalView {
        let s = self.signals.lock().expect("signals poisoned")[sig as usize];
        SignalView {
            ewma: s.ewma(),
            samples: s.samples,
            low: s.low,
            high: s.high,
        }
    }

    /// Arm a floor on a signal: once the EWMA drops below it, the signal
    /// reports `low` (with a trace event) until it climbs back above
    /// `floor * 1.02`.
    pub fn set_signal_floor(&self, sig: Sig, floor: f64) {
        self.signals.lock().expect("signals poisoned")[sig as usize].floor = Some(floor);
    }

    /// Arm a ceiling on a signal (symmetric to [`Obs::set_signal_floor`]).
    pub fn set_signal_ceiling(&self, sig: Sig, ceiling: f64) {
        self.signals.lock().expect("signals poisoned")[sig as usize].ceiling = Some(ceiling);
    }

    /// JSON view of every signal — EWMAs as milli-unit integers so the
    /// rendering is deterministic across platforms. Carries the armed
    /// thresholds (`floor_milli`/`ceiling_milli`, `null` when unarmed)
    /// and the cumulative crossing counts alongside the live state, so
    /// `cffs-inspect stats` and telemetry feed frames share one schema.
    pub fn signals_json(&self) -> Json {
        let sigs = self.signals.lock().expect("signals poisoned");
        let thresh = |t: Option<f64>| match t {
            Some(v) => Json::Int(milli(v) as i64),
            None => Json::Null,
        };
        Json::Obj(
            Sig::ALL
                .iter()
                .map(|&sig| {
                    let s = &sigs[sig as usize];
                    (
                        sig.name().to_string(),
                        obj![
                            ("ewma_milli", Json::Int(s.ewma_milli.max(0))),
                            ("samples", Json::Int(s.samples as i64)),
                            ("low", Json::Bool(s.low)),
                            ("high", Json::Bool(s.high)),
                            ("floor_milli", thresh(s.floor)),
                            ("ceiling_milli", thresh(s.ceiling)),
                            ("low_count", Json::Int(s.low_count as i64)),
                            ("high_count", Json::Int(s.high_count as i64)),
                        ],
                    )
                })
                .collect(),
        )
    }

    /// Arm a p99 latency objective for one op kind, nanoseconds
    /// (`target_ns == 0` disarms it). Burn is computed lazily from the
    /// op's log2 latency histogram — arming costs the hot path nothing.
    pub fn set_slo(&self, op: OpKind, target_ns: u64) {
        self.slo_ns[op as usize].store(target_ns, Ordering::Relaxed);
    }

    /// The armed p99 target for an op kind (0 = none).
    pub fn slo_target(&self, op: OpKind) -> u64 {
        self.slo_ns[op as usize].load(Ordering::Relaxed)
    }

    /// Arm [`DEFAULT_SLO_P99_NS`] (called at mount by the full stack).
    pub fn arm_default_slos(&self) {
        for &(op, ns) in DEFAULT_SLO_P99_NS {
            self.set_slo(op, ns);
        }
    }

    /// Error-budget burn for one armed op, milli-units: the observed
    /// fraction of ops slower than the p99 target, scaled so 1000 means
    /// "exactly at budget" (1% of ops over target). 0 when disarmed,
    /// empty, or within budget bucket-conservatively — a violation is a
    /// sample in a bucket whose *lower* bound already exceeds the
    /// target, so log2 rounding never charges false positives.
    pub fn slo_op_burn_milli(&self, op: OpKind) -> u64 {
        let target = self.slo_target(op);
        if target == 0 {
            return 0;
        }
        let snap = self.histos.op_ns(op).snapshot();
        let count = snap.count();
        if count == 0 {
            return 0;
        }
        let violations: u64 = snap
            .buckets
            .iter()
            .enumerate()
            .filter(|&(i, _)| histo_bucket_lo(i) > target)
            .map(|(_, &n)| n)
            .sum();
        violations.saturating_mul(100_000) / count
    }

    /// Worst [`Obs::slo_op_burn_milli`] across every armed objective
    /// (the feed's `slo_burn_milli` field). 0 when nothing is armed.
    pub fn slo_burn_milli(&self) -> u64 {
        OpKind::ALL
            .iter()
            .map(|&op| self.slo_op_burn_milli(op))
            .max()
            .unwrap_or(0)
    }

    /// The SLO registry as JSON: one row per armed objective with its
    /// target, sample count, violation count, and burn.
    pub fn slo_json(&self) -> Json {
        Json::Obj(
            OpKind::ALL
                .iter()
                .filter(|&&op| self.slo_target(op) > 0)
                .map(|&op| {
                    let target = self.slo_target(op);
                    let snap = self.histos.op_ns(op).snapshot();
                    let violations: u64 = snap
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| histo_bucket_lo(i) > target)
                        .map(|(_, &n)| n)
                        .sum();
                    (
                        op.name().to_string(),
                        obj![
                            ("target_ns", Json::Int(target as i64)),
                            ("count", Json::Int(snap.count() as i64)),
                            ("violations", Json::Int(violations as i64)),
                            ("burn_milli", Json::Int(self.slo_op_burn_milli(op) as i64)),
                        ],
                    )
                })
                .collect(),
        )
    }

    /// Flush the armed flight recorder (no-op when none is armed) —
    /// the explicit-dump entry of the black box.
    pub fn dump_flight(&self, reason: &str) {
        let f = self
            .flight_slot
            .lock()
            .ok()
            .and_then(|s| s.as_ref().and_then(Weak::upgrade));
        if let Some(f) = f {
            f.dump(reason);
        }
    }

    fn current_span_fields(&self) -> (u64, &'static str) {
        self.with_tls(|t| {
            if t.cur_span == 0 {
                (0, "")
            } else {
                (t.cur_span, OpKind::ALL[t.cur_op].name())
            }
        })
    }

    /// The histogram registry.
    pub fn histos(&self) -> &Histos {
        &self.histos
    }

    /// Mirror a driver's simulated clock (monotonic; called by the
    /// driver whenever its clock moves). The calling thread's local
    /// mirror takes the exact value; the shared mirror keeps the
    /// high-water mark across all threads.
    #[inline]
    pub fn set_clock_ns(&self, now_ns: u64) {
        CLOCK_TLS.with(|t| {
            let mut map = t.borrow_mut();
            let slot = map.entry(self.uid).or_insert(0);
            *slot = (*slot).max(now_ns);
        });
        self.clock_ns.fetch_max(now_ns, Ordering::Relaxed);
        // Telemetry pacer: with no tap attached `feed_due_ns` is
        // `u64::MAX`, so the feed costs this hot path exactly one
        // relaxed load. Every call site holds no obs locks (verified
        // against the driver's submit/worker/advance paths), so frame
        // emission can take the registry locks sequentially.
        if now_ns >= self.feed_due_ns.load(Ordering::Relaxed) {
            feed::sim_fire(self, now_ns);
        }
        // Flight-recorder pacer: same single relaxed load when disarmed.
        if now_ns >= self.flight_due_ns.load(Ordering::Relaxed) {
            flight::sim_fire(self, now_ns);
        }
    }

    /// Pin the calling thread's clock mirror to at least `ns` without
    /// touching the shared high-water mark. A fan-out point calls this at
    /// the top of each spawned worker, passing the fork-time watermark:
    /// without the pin, a worker whose first op happens to run late in
    /// *wall* time falls back to the global mirror — which its siblings
    /// have already pushed forward — and the virtual timelines chain one
    /// after another instead of overlapping.
    #[inline]
    pub fn pin_clock_ns(&self, ns: u64) {
        CLOCK_TLS.with(|t| {
            let mut map = t.borrow_mut();
            let slot = map.entry(self.uid).or_insert(0);
            *slot = (*slot).max(ns);
        });
    }

    /// The calling thread's simulated time, nanoseconds: its own clock
    /// mirror when it has one, else the cross-thread high-water mark.
    pub fn clock_ns(&self) -> u64 {
        CLOCK_TLS
            .with(|t| t.borrow().get(&self.uid).copied())
            .unwrap_or_else(|| self.clock_ns.load(Ordering::Relaxed))
    }

    /// Cross-thread high-water mark of the simulated clock — the elapsed
    /// time of a multi-threaded run (every thread's work fits before it).
    pub fn global_clock_ns(&self) -> u64 {
        self.clock_ns.load(Ordering::Relaxed)
    }

    /// The op span currently open **on the calling thread**, if any.
    pub fn current_span(&self) -> Option<(SpanId, OpKind)> {
        self.with_tls(|t| {
            if t.cur_span == 0 {
                None
            } else {
                Some((SpanId(t.cur_span), OpKind::ALL[t.cur_op]))
            }
        })
    }

    /// Open a causal span for one file-system operation. Returns a guard
    /// that closes the span (recording an `op.*` trace event and the op's
    /// latency histogram sample) when dropped.
    ///
    /// Spans do not nest: if a span is already open **on this thread**
    /// (an entry point called another entry point, e.g. `drop_caches` →
    /// `sync`), the inner guard is inert and all I/O stays attributed to
    /// the outermost — user-visible — operation. Guards must be dropped
    /// on the thread that opened them.
    pub fn span(self: &Arc<Obs>, op: OpKind) -> SpanGuard {
        let t0 = self.clock_ns();
        let opened = self.with_tls(|t| {
            if t.cur_span != 0 {
                return None;
            }
            let id = self.next_span.fetch_add(1, Ordering::Relaxed);
            *t = SpanTls {
                cur_span: id,
                cur_op: op as usize,
                q: 0,
                svc: 0,
                last_end: t0,
            };
            Some((SpanId(id), t0))
        });
        SpanGuard {
            obs: Arc::clone(self),
            op,
            opened,
        }
    }

    /// Snapshot of the calling thread's open span for hand-off to a
    /// worker thread (see [`SpanCtx`]).
    pub fn span_ctx(&self) -> SpanCtx {
        self.with_tls(|t| SpanCtx {
            span: t.cur_span,
            op: t.cur_op,
            last_end: t.last_end,
        })
    }

    /// Adopt a submitter's span on the current (worker) thread: trace
    /// events recorded until [`Obs::end_adopt`] are stamped with the
    /// adopted span/op, and disk-request attribution accumulates locally
    /// for the submitter to fold back. The worker thread must have no
    /// span of its own open.
    pub fn adopt_span(&self, ctx: SpanCtx) {
        self.with_tls(|t| {
            debug_assert_eq!(t.cur_span, 0, "worker adopted a span while one was open");
            *t = SpanTls {
                cur_span: ctx.span,
                cur_op: ctx.op,
                q: 0,
                svc: 0,
                last_end: ctx.last_end,
            };
        });
    }

    /// Close out an adoption and return what accumulated (see
    /// [`Obs::adopt_span`]).
    pub fn end_adopt(&self) -> AttrDelta {
        self.with_tls(|t| {
            let d = AttrDelta {
                queue_ns: t.q,
                service_ns: t.svc,
                last_end: t.last_end,
            };
            *t = SpanTls::default();
            d
        })
    }

    /// Fold attribution a worker accumulated on our behalf back into the
    /// calling thread's open span (no-op when no span is open — the
    /// worker already accounted unattributed service itself).
    pub fn fold_attr(&self, d: AttrDelta) {
        self.with_tls(|t| {
            if t.cur_span != 0 {
                t.q += d.queue_ns;
                t.svc += d.service_ns;
                t.last_end = t.last_end.max(d.last_end);
            }
        });
    }

    /// Lock `m`, charging host-time wait on contention to counter `ctr`.
    /// The uncontended path is a plain `try_lock` and charges nothing, so
    /// single-threaded runs deterministically report zero lock wait.
    pub fn lock_timed<'a, T>(
        &self,
        m: &'a Mutex<T>,
        ctr: Ctr,
    ) -> std::sync::MutexGuard<'a, T> {
        if let Ok(g) = m.try_lock() {
            return g;
        }
        let t0 = std::time::Instant::now();
        let g = m.lock().expect("lock poisoned");
        self.counters.add(ctr, t0.elapsed().as_nanos() as u64);
        g
    }

    /// The newest `n` trace events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<Event> {
        self.trace.lock().expect("trace ring poisoned").last(n)
    }

    /// Events ever recorded (monotonic; exceeds retained count on wrap).
    pub fn events_recorded(&self) -> u64 {
        self.trace
            .lock()
            .expect("trace ring poisoned")
            .total_recorded()
    }

    /// Trace events recorded after the first `since_total` (a watermark
    /// from a previous [`Obs::events_recorded`]), oldest first, clipped
    /// to what the ring still retains. Returns the events plus the new
    /// watermark.
    pub fn events_since(&self, since_total: u64) -> (Vec<Event>, u64) {
        let ring = self.trace.lock().expect("trace ring poisoned");
        let total = ring.total_recorded();
        let fresh = total.saturating_sub(since_total).min(ring.buf.len() as u64);
        (ring.last(fresh as usize), total)
    }

    /// Install the per-cylinder-group register table. Called once at
    /// mount with the stack's geometry and each group's initial
    /// occupancy; later calls are ignored (first mount wins — one `Obs`
    /// serves one mounted stack).
    pub fn configure_cg_table(&self, cfg: CgTableConfig) {
        let _ = self.cg_table.set(CgTable::new(cfg));
    }

    /// Whether [`Obs::configure_cg_table`] has run.
    pub fn has_cg_table(&self) -> bool {
        self.cg_table.get().is_some()
    }

    /// Adjust one group's allocated-block gauge (called from the
    /// allocator's bitmap set/clear sites; negative on free).
    pub fn cg_used_delta(&self, cg: usize, delta: i64) {
        if let Some(t) = self.cg_table.get() {
            if let Some(cell) = t.cells.get(cg) {
                cell.used.fetch_add(delta, Ordering::Relaxed);
            }
        }
    }

    /// Fold one group fetch's utilization percentage into the owning
    /// group's EWMA (same fixed-point rule as [`Obs::signal_sample`]).
    pub fn cg_util_sample(&self, cg: usize, pct: u64) {
        if let Some(t) = self.cg_table.get() {
            if let Some(cell) = t.cells.get(cg) {
                let mut u = cell.util.lock().expect("cg util poisoned");
                let vm = (pct * 1000) as i64;
                if u.1 == 0 {
                    u.0 = vm;
                } else {
                    u.0 += ewma_step(vm - u.0);
                }
                u.1 += 1;
            }
        }
    }

    /// The cylinder group a sector LBA falls in, per the configured
    /// geometry (None before mount or outside any group's blocks).
    pub fn cg_of_sector(&self, lba: u64) -> Option<usize> {
        self.cg_table.get().and_then(|t| t.cg_of_sector(lba))
    }

    /// Point-in-time copy of every cylinder group's registers (empty
    /// before [`Obs::configure_cg_table`]).
    pub fn cg_stats(&self) -> Vec<CgStat> {
        let Some(t) = self.cg_table.get() else { return Vec::new() };
        t.cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let (ewma_milli, samples) = *c.util.lock().expect("cg util poisoned");
                CgStat {
                    cg: i as u32,
                    data_blocks: c.data_blocks,
                    used: c.used.load(Ordering::Relaxed).max(0) as u64,
                    read_ios: c.read_ios.load(Ordering::Relaxed),
                    write_ios: c.write_ios.load(Ordering::Relaxed),
                    read_sectors: c.read_sectors.load(Ordering::Relaxed),
                    write_sectors: c.write_sectors.load(Ordering::Relaxed),
                    util_ewma_milli: ewma_milli.max(0) as u64,
                    util_samples: samples,
                }
            })
            .collect()
    }

    /// Driver queue gauge: one submission entered the queue.
    pub fn queue_depth_inc(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Driver queue gauge: the worker picked one submission up.
    pub fn queue_depth_dec(&self) {
        let _ = self.queue_depth.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Submissions currently waiting in the threaded driver queue.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Bind the calling thread to a per-thread op-counter slot (clamped
    /// to [`THREAD_SLOTS`]). Fan-out workers call this next to
    /// [`Obs::pin_clock_ns`]; unbound threads (the main thread) tally
    /// into slot 0.
    pub fn bind_thread_slot(&self, slot: usize) {
        SLOT_TLS.with(|t| {
            t.borrow_mut().insert(self.uid, slot.min(THREAD_SLOTS - 1));
        });
    }

    /// The calling thread's bound op-counter slot (0 when never bound).
    fn thread_slot(&self) -> usize {
        SLOT_TLS.with(|t| t.borrow().get(&self.uid).copied().unwrap_or(0))
    }

    /// Ops completed per thread slot (outermost span closes), slot 0
    /// first.
    pub fn thread_ops(&self) -> [u64; THREAD_SLOTS] {
        std::array::from_fn(|i| self.thread_ops[i].load(Ordering::Relaxed))
    }

    /// Point-in-time copy of every counter and histogram plus simulated
    /// time.
    pub fn snapshot(&self, label: &str, sim_ns: u64) -> StatsSnapshot {
        let vals = self.counters.values();
        StatsSnapshot {
            label: label.to_string(),
            sim_ns,
            counters: Ctr::ALL
                .iter()
                .map(|&c| (c.name().to_string(), vals[c as usize]))
                .collect(),
            histograms: self
                .histos
                .named()
                .into_iter()
                .map(|(n, h)| (n, h.snapshot()))
                .collect(),
        }
    }
}

/// Id of one causal op span. Allocated per-[`Obs`] starting at 1 (0 means
/// "no span"), so ids are deterministic across runs of a deterministic
/// workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// Guard returned by [`Obs::span`]. Dropping it closes the span: the op's
/// simulated latency (clock delta since open) is recorded into its
/// `op_ns_*` histogram and an `op.*` trace event is emitted carrying the
/// span id and latency. Inert when the span was nested (see
/// [`Obs::span`]).
pub struct SpanGuard {
    obs: Arc<Obs>,
    op: OpKind,
    /// `(id, open-time ns)` when this guard actually opened a span.
    opened: Option<(SpanId, u64)>,
}

impl SpanGuard {
    /// The span id, when this guard opened one (None when nested).
    pub fn id(&self) -> Option<SpanId> {
        self.opened.map(|(id, _)| id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((SpanId(id), t0)) = self.opened {
            let latency = self.obs.clock_ns().saturating_sub(t0);
            self.obs.histos.op_ns(self.op).record(latency);
            // Close the attribution accounts: whatever span time was not
            // queueing or disk service is in-memory op work. Queue gaps
            // can be computed against a clock that ran past the span's
            // close (nested sync paths), so the residue saturates at 0 —
            // the documented `op_ns >= queue_ns + service_ns` caveat.
            let (q, svc) = self.obs.with_tls(|t| {
                debug_assert_eq!(t.cur_span, id, "span closed on a foreign thread");
                (t.q, t.svc)
            });
            self.obs.counters.add(Ctr::AttrQueueNs, q);
            self.obs.counters.add(Ctr::AttrServiceNs, svc);
            self.obs
                .counters
                .add(Ctr::AttrOpNs, latency.saturating_sub(q.saturating_add(svc)));
            {
                let mut log = self.obs.span_log.lock().expect("span log poisoned");
                if let Some(records) = log.as_mut() {
                    records.push(SpanRecord {
                        op: Some(self.op),
                        t0_ns: t0,
                        dur_ns: latency,
                        queue_ns: q,
                        service_ns: svc,
                        truncated: false,
                    });
                }
            }
            // Emit while the span is still current so the event is
            // stamped with its own span/op, then close.
            self.obs.trace_io(t0, self.op.tag(), 0, 0, latency);
            self.obs.with_tls(|t| *t = SpanTls::default());
            // Outermost closes only, so per-thread tallies count
            // user-visible ops, not nested entry points.
            self.obs.thread_ops[self.obs.thread_slot()].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One closed span — or one disk request that ran outside any span —
/// as collected by the full-run span log ([`Obs::enable_span_log`]) or
/// reconstructed from the trace ring ([`prof::spans_from_events`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Causing op, or `None` for disk activity outside any span (mount,
    /// background writeback).
    pub op: Option<OpKind>,
    /// Simulated time the span opened.
    pub t0_ns: u64,
    /// Total span latency (equals `service_ns` for unattributed
    /// requests).
    pub dur_ns: u64,
    /// Time this span's disk requests waited behind earlier requests.
    pub queue_ns: u64,
    /// Mechanical service time of this span's disk requests.
    pub service_ns: u64,
    /// True when ring wrap overwrote part of this span's history, so
    /// `queue_ns`/`service_ns` (and for still-open spans `dur_ns`) are
    /// lower bounds. Never set by the live span log.
    pub truncated: bool,
}

macro_rules! signals {
    ($($(#[$doc:meta])* $variant:ident => $name:literal / $low:literal / $high:literal,)+) => {
        /// Health signals tracked as windowed EWMAs on [`Obs`]. Layers
        /// feed raw samples via [`Obs::signal_sample`]; policy code reads
        /// the smoothed view via [`Obs::signal`] and arms thresholds
        /// whose crossings land in the trace ring.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Sig {
            $($(#[$doc])* $variant,)+
        }

        impl Sig {
            /// Number of registered signals.
            pub const COUNT: usize = [$($name),+].len();

            /// All signals, in registry order.
            pub const ALL: [Sig; Self::COUNT] = [$(Sig::$variant),+];

            /// Stable external name.
            pub fn name(self) -> &'static str {
                match self { $(Sig::$variant => $name,)+ }
            }

            /// Trace tag emitted when the EWMA falls below the floor.
            pub fn low_tag(self) -> &'static str {
                match self { $(Sig::$variant => $low,)+ }
            }

            /// Trace tag emitted when the EWMA crosses back above the
            /// rearm point (floor × 1.02) or above the ceiling.
            pub fn high_tag(self) -> &'static str {
                match self { $(Sig::$variant => $high,)+ }
            }
        }
    };
}

signals! {
    /// EWMA of per-fetch `group_fetch_util_pct` samples (percent).
    GroupFetchUtil => "group_fetch_util_ewma"
        / "signal.group_fetch_util.low"
        / "signal.group_fetch_util.recovered",
    /// EWMA of logical requests per driver batch (queue depth at submit).
    QueueDepth => "driver_queue_depth_ewma"
        / "signal.queue_depth.low"
        / "signal.queue_depth.high",
    /// EWMA of dirty blocks collected per sync sweep (writeback backlog).
    DirtyBacklog => "cache_dirty_backlog_ewma"
        / "signal.dirty_backlog.low"
        / "signal.dirty_backlog.high",
}

/// EWMA smoothing divisor: `ewma += (sample - ewma) / 8`, computed in
/// fixed-point milli-units with the step rounded away from zero so a
/// constant sample stream converges exactly (integer truncation would
/// stall the EWMA once the gap fell under 8 milli-units).
const SIGNAL_EWMA_SHIFT: i64 = 8;

/// The fixed-point EWMA increment for a gap `d = sample - ewma`, rounded
/// away from zero (see [`SIGNAL_EWMA_SHIFT`]). Shared by the signal
/// registry and the per-CG utilization EWMAs so both smooth identically.
fn ewma_step(d: i64) -> i64 {
    if d >= 0 {
        (d + SIGNAL_EWMA_SHIFT - 1) / SIGNAL_EWMA_SHIFT
    } else {
        -((-d + SIGNAL_EWMA_SHIFT - 1) / SIGNAL_EWMA_SHIFT)
    }
}

/// Mount-time geometry + initial occupancy for the per-CG register table
/// (see [`Obs::configure_cg_table`]).
#[derive(Debug, Clone)]
pub struct CgTableConfig {
    /// First block covered by cylinder group 0.
    pub first_block: u64,
    /// Blocks per cylinder group (header + data).
    pub cg_size: u64,
    /// Sectors per block, for mapping trace-event LBAs onto groups.
    pub sectors_per_block: u64,
    /// Per-group `(data block capacity, blocks already allocated)`.
    pub groups: Vec<(u64, u64)>,
}

/// One cylinder group's live registers.
struct CgCell {
    data_blocks: u64,
    /// Allocated data blocks. Signed: concurrent alloc/free deltas can
    /// transiently observe below zero; reads clamp.
    used: AtomicI64,
    read_ios: AtomicU64,
    write_ios: AtomicU64,
    read_sectors: AtomicU64,
    write_sectors: AtomicU64,
    /// `(ewma_milli, samples)` of group-fetch utilization resolved
    /// against extents in this group. A mutex (not two atomics) so the
    /// read-modify-write EWMA fold never loses concurrent samples; the
    /// resolve path is warm, not hot.
    util: Mutex<(i64, u64)>,
}

/// Geometry-indexed table of [`CgCell`]s.
struct CgTable {
    first_block: u64,
    cg_size: u64,
    sectors_per_block: u64,
    cells: Vec<CgCell>,
}

impl CgTable {
    fn new(cfg: CgTableConfig) -> CgTable {
        CgTable {
            first_block: cfg.first_block,
            cg_size: cfg.cg_size.max(1),
            sectors_per_block: cfg.sectors_per_block.max(1),
            cells: cfg
                .groups
                .into_iter()
                .map(|(data_blocks, used)| CgCell {
                    data_blocks,
                    used: AtomicI64::new(used as i64),
                    read_ios: AtomicU64::new(0),
                    write_ios: AtomicU64::new(0),
                    read_sectors: AtomicU64::new(0),
                    write_sectors: AtomicU64::new(0),
                    util: Mutex::new((0, 0)),
                })
                .collect(),
        }
    }

    fn cg_of_sector(&self, lba: u64) -> Option<usize> {
        let block = lba / self.sectors_per_block;
        if block < self.first_block {
            return None;
        }
        let cg = ((block - self.first_block) / self.cg_size) as usize;
        (cg < self.cells.len()).then_some(cg)
    }

    fn bump_io(&self, lba: u64, sectors: u64, is_write: bool) {
        if let Some(cg) = self.cg_of_sector(lba) {
            let c = &self.cells[cg];
            if is_write {
                c.write_ios.fetch_add(1, Ordering::Relaxed);
                c.write_sectors.fetch_add(sectors, Ordering::Relaxed);
            } else {
                c.read_ios.fetch_add(1, Ordering::Relaxed);
                c.read_sectors.fetch_add(sectors, Ordering::Relaxed);
            }
        }
    }
}

/// Point-in-time copy of one cylinder group's registers (see
/// [`Obs::cg_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgStat {
    /// Cylinder group number.
    pub cg: u32,
    /// Data blocks the group tracks.
    pub data_blocks: u64,
    /// Data blocks currently allocated (gauge; clamped at zero).
    pub used: u64,
    /// Disk read requests whose start sector fell in this group.
    pub read_ios: u64,
    /// Disk write requests whose start sector fell in this group.
    pub write_ios: u64,
    /// Sectors read by those requests.
    pub read_sectors: u64,
    /// Sectors written by those requests.
    pub write_sectors: u64,
    /// Group-fetch utilization EWMA for fetches resolved here,
    /// milli-percent (0 before the first sample).
    pub util_ewma_milli: u64,
    /// Utilization samples folded in.
    pub util_samples: u64,
}

/// Hysteresis: after a floor crossing, the signal re-arms only once the
/// EWMA climbs back above `floor * SIGNAL_REARM`.
const SIGNAL_REARM: f64 = 1.02;

/// A signal value in milli-units, rounded — the integer form used for
/// trace-event operands and JSON so output stays deterministic.
fn milli(v: f64) -> u64 {
    if v <= 0.0 { 0 } else { (v * 1000.0).round() as u64 }
}

#[derive(Debug, Clone, Copy, Default)]
struct SignalState {
    /// EWMA in fixed-point milli-units (exact, platform-independent;
    /// signed so samples near zero can round either way).
    ewma_milli: i64,
    samples: u64,
    floor: Option<f64>,
    ceiling: Option<f64>,
    /// Currently below the floor (set on crossing, cleared on re-arm).
    low: bool,
    /// Currently above the ceiling.
    high: bool,
    /// Crossings that bumped `signal_low_events` for this signal.
    low_count: u64,
    /// Crossings that bumped `signal_high_events` for this signal.
    high_count: u64,
}

impl SignalState {
    fn ewma(&self) -> f64 {
        self.ewma_milli as f64 / 1000.0
    }
}

/// Read-only view of one signal's smoothed state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalView {
    /// Current EWMA value (0.0 before the first sample).
    pub ewma: f64,
    /// Samples folded in so far.
    pub samples: u64,
    /// True while the EWMA sits below the armed floor.
    pub low: bool,
    /// True while the EWMA sits above the armed ceiling.
    pub high: bool,
}

/// Serializable copy of the whole counter and histogram registry at one
/// instant.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Which stack this came from, e.g. `"cffs"` or `"ffs"`.
    pub label: String,
    /// Simulated time at the snapshot, nanoseconds.
    pub sim_ns: u64,
    /// `(counter name, value)` in registry order.
    pub counters: Vec<(String, u64)>,
    /// `(histogram name, snapshot)` in registry order. Empty when parsed
    /// from files written before histograms existed.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl StatsSnapshot {
    /// Value of a counter by name (0 if the name is absent — snapshots
    /// parsed from older files may lack newer counters).
    pub fn get(&self, c: Ctr) -> u64 {
        self.get_named(c.name())
    }

    /// Value of a counter by external name.
    pub fn get_named(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Histogram snapshot by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Latency histogram for one op kind, if present.
    pub fn op_latency(&self, op: OpKind) -> Option<&HistogramSnapshot> {
        self.histogram(&format!("op_ns_{}", op.name()))
    }

    /// JSON summary of per-op latency — `{op: {count, mean_ns, p50_ns,
    /// p90_ns, p99_ns}}` for every op kind that ran (empty object when
    /// this snapshot carries no histograms). This is what puts
    /// per-op-kind percentiles into every `BENCH_*.json` phase row.
    pub fn op_latency_summary(&self) -> Json {
        let mut ops = Vec::new();
        for op in OpKind::ALL {
            if let Some(h) = self.op_latency(op) {
                if h.count() > 0 {
                    ops.push((
                        op.name().to_string(),
                        obj![
                            ("count", Json::Int(h.count() as i64)),
                            ("mean_ns", Json::Int(h.mean() as i64)),
                            ("p50_ns", Json::Int(h.quantile(0.50) as i64)),
                            ("p90_ns", Json::Int(h.quantile(0.90) as i64)),
                            ("p99_ns", Json::Int(h.quantile(0.99) as i64)),
                        ],
                    ));
                }
            }
        }
        Json::Obj(ops)
    }

    /// Counter- and bucket-wise difference `self - earlier` (saturating),
    /// for measuring one phase of a longer run.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let empty = HistogramSnapshot::default();
        StatsSnapshot {
            label: self.label.clone(),
            sim_ns: self.sim_ns.saturating_sub(earlier.sim_ns),
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.get_named(n))))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| {
                    (n.clone(), h.delta(earlier.histogram(n).unwrap_or(&empty)))
                })
                .collect(),
        }
    }

    /// Counter- and bucket-wise sum `self + other` (saturating), for
    /// folding the per-volume registries of a volume set into one
    /// aggregate snapshot. `label` is kept from `self`; `sim_ns` is the
    /// max of the two (volumes advance in simulated parallel, so their
    /// windows overlap rather than concatenate). Histogram names absent
    /// from one side are carried through unchanged.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        let mut histograms = self.histograms.clone();
        for (n, h) in &other.histograms {
            match histograms.iter_mut().find(|(name, _)| name == n) {
                Some((_, mine)) => *mine = mine.merge(h),
                None => histograms.push((n.clone(), h.clone())),
            }
        }
        StatsSnapshot {
            label: self.label.clone(),
            sim_ns: self.sim_ns.max(other.sim_ns),
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), v.saturating_add(other.get_named(n))))
                .collect(),
            histograms,
        }
    }

    pub fn from_json(j: &Json) -> Result<StatsSnapshot, JsonError> {
        let label = String::from(j.want("label")?.as_str().ok_or_else(|| {
            JsonError("label must be a string".into())
        })?);
        let sim_ns = j
            .want("sim_ns")?
            .as_u64()
            .ok_or_else(|| JsonError("sim_ns must be a u64".into()))?;
        let counters_obj = j.want("counters")?;
        let members = match counters_obj {
            Json::Obj(m) => m,
            _ => return Err(JsonError("counters must be an object".into())),
        };
        let mut counters = Vec::with_capacity(members.len());
        for (name, val) in members {
            let v = val
                .as_u64()
                .ok_or_else(|| JsonError(format!("counter {name:?} must be a u64")))?;
            counters.push((name.clone(), v));
        }
        // Optional for forward compatibility: snapshots written before
        // histograms existed simply have none.
        let mut histograms = Vec::new();
        if let Some(Json::Obj(members)) = j.get("histograms") {
            for (name, val) in members {
                histograms.push((name.clone(), HistogramSnapshot::from_json(val)?));
            }
        }
        Ok(StatsSnapshot {
            label,
            sim_ns,
            counters,
            histograms,
        })
    }
}

impl ToJson for StatsSnapshot {
    fn to_json(&self) -> Json {
        obj![
            ("label", Json::Str(self.label.clone())),
            ("sim_ns", Json::Int(self.sim_ns as i64)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Int(*v as i64)))
                        .collect()
                )
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_json()))
                        .collect()
                )
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let obs = Obs::new();
        obs.bump(Ctr::DiskRequests);
        obs.add(Ctr::DiskBytesRead, 4096);
        obs.add(Ctr::DiskBytesRead, 4096);
        assert_eq!(obs.get(Ctr::DiskRequests), 1);
        assert_eq!(obs.get(Ctr::DiskBytesRead), 8192);

        let snap = obs.snapshot("test", 123);
        assert_eq!(snap.get(Ctr::DiskBytesRead), 8192);
        assert_eq!(snap.get(Ctr::CacheMisses), 0);
        assert_eq!(snap.counters.len(), Ctr::COUNT);
    }

    #[test]
    fn counter_names_round_trip() {
        for c in Ctr::ALL {
            assert_eq!(Ctr::from_name(c.name()), Some(c));
        }
        assert_eq!(Ctr::from_name("no_such_counter"), None);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let obs = Obs::new();
        obs.add(Ctr::DiskRequests, 5);
        let before = obs.snapshot("s", 100);
        obs.add(Ctr::DiskRequests, 3);
        obs.add(Ctr::CacheMisses, 2);
        let after = obs.snapshot("s", 250);
        let d = after.delta(&before);
        assert_eq!(d.sim_ns, 150);
        assert_eq!(d.get(Ctr::DiskRequests), 3);
        assert_eq!(d.get(Ctr::CacheMisses), 2);
        assert_eq!(d.get(Ctr::DiskBytesRead), 0);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let obs = Obs::new();
        obs.add(Ctr::DriverSgSegments, 7);
        obs.add(Ctr::FsGroupFetches, 2);
        let snap = obs.snapshot("cffs", 999_999_999_999);
        let text = snap.to_json().to_string_pretty();
        let back = StatsSnapshot::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn trace_ring_wraps_keeping_newest() {
        let mut ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.record(Event {
                t_ns: i,
                tag: "t",
                a: i,
                b: 0,
                span: 0,
                op: "",
                dur_ns: 0,
            });
        }
        assert_eq!(ring.total_recorded(), 10);
        let evs = ring.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest-first, newest retained"
        );
        assert_eq!(ring.last(2).iter().map(|e| e.a).collect::<Vec<_>>(), vec![8, 9]);
        // Asking for more than retained returns everything retained.
        assert_eq!(ring.last(100).len(), 4);
    }

    #[test]
    fn trace_through_obs_handle() {
        let obs = Obs::with_trace_capacity(8);
        obs.trace(10, "disk.read", 100, 4096);
        obs.trace(20, "disk.write", 200, 8192);
        let evs = obs.recent_events(10);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].tag, "disk.write");
        let line = evs[0].to_jsonl();
        let j = json::parse(&line).unwrap();
        assert_eq!(j.get("tag").unwrap().as_str().unwrap(), "disk.read");
        assert_eq!(j.get("b").unwrap().as_u64().unwrap(), 4096);
        // No span was open: attribution fields are present but empty.
        assert_eq!(j.get("span").unwrap().as_u64().unwrap(), 0);
        assert_eq!(j.get("op").unwrap().as_str().unwrap(), "");
        assert_eq!(j.get("dur_ns").unwrap().as_u64().unwrap(), 0);
    }

    #[test]
    fn op_kind_names_round_trip() {
        for op in OpKind::ALL {
            assert_eq!(OpKind::from_name(op.name()), Some(op));
            assert_eq!(op.tag(), format!("op.{}", op.name()));
        }
        assert_eq!(OpKind::from_name("no_such_op"), None);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(histo_bucket_of(0), 0);
        assert_eq!(histo_bucket_of(1), 1);
        assert_eq!(histo_bucket_of(2), 2);
        assert_eq!(histo_bucket_of(3), 2);
        assert_eq!(histo_bucket_of(4), 3);
        assert_eq!(histo_bucket_of(u64::MAX), HISTO_BUCKETS - 1);
        for i in 1..HISTO_BUCKETS - 1 {
            assert_eq!(histo_bucket_of(histo_bucket_lo(i)), i);
            assert_eq!(histo_bucket_of(histo_bucket_hi(i)), i);
        }

        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 1111);
        assert_eq!(s.mean(), 1111 / 6);
        // p50 of {0,1,5,5,100,1000}: 3rd value = 5, bucket [4,8) → hi 7.
        assert_eq!(s.quantile(0.5), 7);
        // p100 lands in 1000's bucket [512,1024) → hi 1023.
        assert_eq!(s.quantile(1.0), 1023);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn histogram_snapshot_delta_and_json() {
        let h = Histogram::new();
        h.record(3);
        h.record(300);
        let before = h.snapshot();
        h.record(3);
        let after = h.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.count(), 1);
        assert_eq!(d.sum, 3);
        assert_eq!(d.quantile(0.5), 3, "only the new sample remains");

        let text = after.to_json().to_string_pretty();
        let back = HistogramSnapshot::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, after);
    }

    #[test]
    fn spans_attribute_events_and_do_not_nest() {
        let obs = Obs::new();
        obs.set_clock_ns(100);
        {
            let outer = obs.span(OpKind::DropCaches);
            assert_eq!(outer.id(), Some(SpanId(1)));
            {
                // Nested entry point (drop_caches → sync): inert guard,
                // attribution stays with the outer op.
                let inner = obs.span(OpKind::Sync);
                assert_eq!(inner.id(), None);
                obs.trace(150, "disk.write", 42, 8);
            }
            assert_eq!(
                obs.current_span(),
                Some((SpanId(1), OpKind::DropCaches)),
                "inner drop must not close the outer span"
            );
            obs.set_clock_ns(400);
        }
        assert_eq!(obs.current_span(), None);

        let evs = obs.recent_events(10);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].tag, "disk.write");
        assert_eq!(evs[0].span, 1);
        assert_eq!(evs[0].op, "drop_caches");
        assert_eq!(evs[1].tag, "op.drop_caches");
        assert_eq!(evs[1].span, 1);
        assert_eq!(evs[1].t_ns, 100);
        assert_eq!(evs[1].dur_ns, 300);

        // Latency was recorded for the outer op only.
        let snap = obs.snapshot("t", 400);
        assert_eq!(snap.op_latency(OpKind::DropCaches).unwrap().count(), 1);
        assert_eq!(snap.op_latency(OpKind::Sync).unwrap().count(), 0);

        // Span ids are deterministic: next op gets id 2.
        let g = obs.span(OpKind::Read);
        assert_eq!(g.id(), Some(SpanId(2)));
    }

    #[test]
    fn snapshot_histograms_round_trip_and_delta() {
        let obs = Obs::new();
        obs.histos().disk_req_sectors.record(8);
        obs.histos().disk_req_sectors.record(128);
        let snap = obs.snapshot("cffs", 10);
        assert_eq!(snap.histograms.len(), Histos::names().len());
        assert_eq!(snap.histogram("disk_req_sectors").unwrap().count(), 2);

        let text = snap.to_json().to_string_pretty();
        let back = StatsSnapshot::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);

        obs.histos().disk_req_sectors.record(8);
        let d = obs.snapshot("cffs", 20).delta(&snap);
        assert_eq!(d.histogram("disk_req_sectors").unwrap().count(), 1);

        // Old files without a "histograms" key still parse.
        let old = obj![
            ("label", Json::Str("cffs".into())),
            ("sim_ns", Json::Int(5)),
            ("counters", Json::Obj(vec![("disk_requests".into(), Json::Int(3))])),
        ];
        let parsed = StatsSnapshot::from_json(&old).unwrap();
        assert!(parsed.histograms.is_empty());
        assert_eq!(parsed.get(Ctr::DiskRequests), 3);
    }

    #[test]
    fn signal_ewma_crosses_floor_with_hysteresis() {
        let obs = Obs::new();
        obs.set_signal_floor(Sig::GroupFetchUtil, 80.0);
        obs.signal_sample(Sig::GroupFetchUtil, 100.0);
        let v = obs.signal(Sig::GroupFetchUtil);
        assert_eq!(v.ewma, 100.0, "first sample seeds the EWMA");
        assert!(!v.low);

        // Decay: repeated zero-utilization fetches drag the EWMA down.
        let mut crossed_at = None;
        for i in 0..30 {
            obs.signal_sample(Sig::GroupFetchUtil, 0.0);
            if obs.signal(Sig::GroupFetchUtil).low && crossed_at.is_none() {
                crossed_at = Some(i);
            }
        }
        assert!(crossed_at.is_some(), "EWMA must eventually cross the floor");
        assert_eq!(obs.get(Ctr::SignalLowEvents), 1, "one crossing, no re-fire");
        let evs = obs.recent_events(100);
        assert!(
            evs.iter().any(|e| e.tag == "signal.group_fetch_util.low"),
            "crossing must land in the trace ring"
        );

        // Recovery: good samples lift the EWMA past floor * 1.02.
        for _ in 0..40 {
            obs.signal_sample(Sig::GroupFetchUtil, 100.0);
        }
        let v = obs.signal(Sig::GroupFetchUtil);
        assert!(!v.low, "re-armed after recovery");
        assert_eq!(obs.get(Ctr::SignalHighEvents), 1);
        assert!(obs
            .recent_events(200)
            .iter()
            .any(|e| e.tag == "signal.group_fetch_util.recovered"));

        // Deterministic serialization: milli-unit integers.
        let j = obs.signals_json();
        let util = j.get("group_fetch_util_ewma").unwrap();
        assert!(util.get("ewma_milli").unwrap().as_u64().unwrap() > 80_000);
    }

    #[test]
    fn counters_are_monotonic_under_concurrency() {
        let obs = Obs::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let obs = &obs;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        obs.bump(Ctr::CacheLookups);
                    }
                });
            }
        });
        assert_eq!(obs.get(Ctr::CacheLookups), 40_000);
    }

    /// Regression for the parked-EWMA bug: with truncating integer steps,
    /// a constant sample stream whose gap to the EWMA is under 8
    /// milli-units never moves, so the EWMA can neither converge nor
    /// cross a threshold sitting in that gap. The away-from-zero step
    /// must converge *exactly*.
    #[test]
    fn signal_ewma_converges_exactly_on_constant_stream() {
        let obs = Obs::new();
        obs.signal_sample(Sig::DirtyBacklog, 100.0);
        for _ in 0..200 {
            obs.signal_sample(Sig::DirtyBacklog, 37.5);
        }
        assert_eq!(obs.signal(Sig::DirtyBacklog).ewma, 37.5, "must converge exactly");

        // From below, too (negative steps round away from zero).
        let obs = Obs::new();
        obs.signal_sample(Sig::DirtyBacklog, 1.0);
        for _ in 0..200 {
            obs.signal_sample(Sig::DirtyBacklog, 37.5);
        }
        assert_eq!(obs.signal(Sig::DirtyBacklog).ewma, 37.5);
    }

    /// A signal seeded a hair above its floor and fed samples a hair
    /// below it must still cross: the per-sample delta here is 6
    /// milli-units, which truncating division would round to a zero step
    /// forever.
    #[test]
    fn signal_parked_just_under_floor_still_crosses() {
        let obs = Obs::new();
        obs.set_signal_floor(Sig::GroupFetchUtil, 80.0);
        obs.signal_sample(Sig::GroupFetchUtil, 80.004);
        assert!(!obs.signal(Sig::GroupFetchUtil).low);
        for _ in 0..10 {
            obs.signal_sample(Sig::GroupFetchUtil, 79.998);
        }
        let v = obs.signal(Sig::GroupFetchUtil);
        assert!(v.low, "sub-milli-step decay must still cross the floor, ewma={}", v.ewma);
        assert_eq!(obs.get(Ctr::SignalLowEvents), 1);
    }

    /// Span state is per thread: four threads each open, attribute, and
    /// close their own span concurrently without clobbering each other.
    #[test]
    fn spans_are_per_thread() {
        let obs = Obs::new();
        obs.set_clock_ns(1_000);
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let obs = Arc::clone(&obs);
                s.spawn(move || {
                    let g = obs.span(OpKind::Read);
                    assert!(g.id().is_some(), "each thread gets its own outermost span");
                    // A disk request inside this thread's span.
                    obs.trace_io(1_000 + i, "disk.read", i, 8, 50);
                    assert_eq!(
                        obs.current_span().map(|(_, op)| op),
                        Some(OpKind::Read),
                        "span stays open across a sibling thread's close"
                    );
                });
            }
        });
        assert_eq!(obs.current_span(), None, "main thread never had a span");
        let snap = obs.snapshot("t", 2_000);
        assert_eq!(snap.op_latency(OpKind::Read).unwrap().count(), 4);
        assert_eq!(snap.get(Ctr::AttrServiceNs), 4 * 50);
    }

    /// The adopt/fold protocol ships attribution from a worker thread
    /// back into the submitter's span.
    #[test]
    fn adopted_span_attribution_folds_back() {
        let obs = Obs::new();
        obs.set_clock_ns(100);
        let g = obs.span(OpKind::Write);
        assert!(g.id().is_some());
        let ctx = obs.span_ctx();
        assert_eq!(ctx.span, 1);

        let delta = std::thread::scope(|s| {
            let obs = Arc::clone(&obs);
            s.spawn(move || {
                obs.adopt_span(ctx);
                // Gap 100→150 queues, 200ns services.
                obs.trace_io(150, "disk.write", 7, 8, 200);
                obs.end_adopt()
            })
            .join()
            .unwrap()
        });
        assert_eq!(delta.queue_ns, 50);
        assert_eq!(delta.service_ns, 200);
        assert_eq!(delta.last_end, 350);
        obs.fold_attr(delta);
        obs.set_clock_ns(400);
        drop(g);

        let snap = obs.snapshot("t", 400);
        assert_eq!(snap.get(Ctr::AttrQueueNs), 50);
        assert_eq!(snap.get(Ctr::AttrServiceNs), 200);
        assert_eq!(snap.get(Ctr::AttrOpNs), 300 - 250);
        // The worker's event carries the adopted span id.
        let ev = obs.recent_events(10).into_iter().find(|e| e.tag == "disk.write").unwrap();
        assert_eq!(ev.span, 1);
        assert_eq!(ev.op, "write");
    }

    /// `lock_timed` charges nothing on the uncontended fast path, so
    /// single-threaded runs stay deterministic.
    #[test]
    fn lock_timed_is_free_when_uncontended() {
        let obs = Obs::new();
        let m = Mutex::new(0u32);
        for _ in 0..100 {
            *obs.lock_timed(&m, Ctr::LockWaitNsCache) += 1;
        }
        assert_eq!(*m.lock().unwrap(), 100);
        assert_eq!(obs.get(Ctr::LockWaitNsCache), 0);
    }
}

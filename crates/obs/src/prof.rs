//! Simulated-time profiler: fold [`SpanRecord`]s into collapsed-stack
//! flamegraph format, and summarize a phase's time-attribution split.
//!
//! Folding answers "where did simulated time go" for a whole run: every
//! nanosecond of the window lands in exactly one leaf frame —
//! `{root};{op};disk_req/service` (mechanical service), `{root};{op};
//! disk_req/queue` (waiting behind earlier requests), `{root};{op}`
//! (in-memory op work), `{root};(none);disk_req/service` (disk activity
//! outside any span, e.g. mount), `{root};idle` (no span open, no
//! request in flight), or `{root};(evicted)` (history lost to trace-ring
//! wrap) — so a fold's total weight always equals the window's elapsed
//! simulated nanoseconds.
//!
//! Records come either from a full-run span log
//! ([`Obs::enable_span_log`](crate::Obs::enable_span_log)) or are
//! reconstructed from the trace ring by [`spans_from_events`], which
//! marks spans whose history was partially overwritten as
//! `truncated` rather than silently under-attributing them.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::obj;
use crate::{Ctr, Event, OpKind, SpanRecord, StatsSnapshot};

/// A collapsed-stack fold: `stack -> weight in simulated nanoseconds`.
/// Stacks are `;`-separated frames, rendered in sorted order so output
/// is byte-stable for a deterministic run.
#[derive(Debug, Clone, Default)]
pub struct Fold {
    lines: BTreeMap<String, u64>,
}

impl Fold {
    /// Add weight to a stack (zero weights are dropped).
    pub fn add(&mut self, stack: String, weight_ns: u64) {
        if weight_ns > 0 {
            *self.lines.entry(stack).or_insert(0) += weight_ns;
        }
    }

    /// Total weight across all stacks.
    pub fn total_ns(&self) -> u64 {
        self.lines.values().sum()
    }

    /// True when no stack carries weight.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// `(stack, weight)` pairs in sorted order.
    pub fn lines(&self) -> impl Iterator<Item = (&str, u64)> {
        self.lines.iter().map(|(s, &w)| (s.as_str(), w))
    }

    /// Collapsed-stack text: one `stack weight` line per entry, sorted.
    pub fn collapse(&self) -> String {
        let mut out = String::new();
        for (stack, w) in &self.lines {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }

    /// Self-contained SVG flamegraph (icicle layout, deterministic
    /// colors and ordering). Suitable for opening directly in a browser.
    pub fn svg(&self) -> String {
        let mut root = Frame::default();
        for (stack, &w) in &self.lines {
            root.insert(stack.split(';'), w);
        }
        let total = root.total_ns().max(1);

        const WIDTH: f64 = 1200.0;
        const ROW: f64 = 17.0;
        let depth = root.depth();
        let height = (depth as f64 + 2.0) * ROW + 4.0;

        let mut svg = String::new();
        svg.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" \
             height=\"{height}\" font-family=\"monospace\" font-size=\"11\">\n"
        ));
        svg.push_str(&format!(
            "<rect x=\"0\" y=\"0\" width=\"{WIDTH}\" height=\"{height}\" \
             fill=\"#f8f8f8\"/>\n"
        ));
        // Root bar spans the whole run.
        emit_frame(&mut svg, "all", total, total, 0.0, 0.0, WIDTH, ROW);
        let mut x = 0.0;
        for (name, child) in &root.children {
            let w = child.total_ns();
            emit_subtree(&mut svg, name, child, w, total, x, ROW, WIDTH, ROW);
            x += WIDTH * (w as f64 / total as f64);
        }
        svg.push_str("</svg>\n");
        svg
    }
}

#[derive(Debug, Default)]
struct Frame {
    self_ns: u64,
    children: BTreeMap<String, Frame>,
}

impl Frame {
    fn insert<'a>(&mut self, mut frames: std::str::Split<'a, char>, w: u64) {
        match frames.next() {
            Some(f) => self.children.entry(f.to_string()).or_default().insert(frames, w),
            None => self.self_ns += w,
        }
    }

    fn total_ns(&self) -> u64 {
        self.self_ns + self.children.values().map(Frame::total_ns).sum::<u64>()
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Frame::depth).max().unwrap_or(0)
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_subtree(
    svg: &mut String,
    name: &str,
    frame: &Frame,
    w: u64,
    total: u64,
    x: f64,
    y: f64,
    width: f64,
    row: f64,
) {
    emit_frame(svg, name, w, total, x, y, width, row);
    let mut cx = x;
    for (cname, child) in &frame.children {
        let cw = child.total_ns();
        emit_subtree(svg, cname, child, cw, total, cx, y + row, width, row);
        cx += width * (cw as f64 / total as f64);
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_frame(
    svg: &mut String,
    name: &str,
    w: u64,
    total: u64,
    x: f64,
    y: f64,
    width: f64,
    row: f64,
) {
    let px = width * (w as f64 / total as f64);
    if px < 0.1 {
        return;
    }
    let pct = 100.0 * w as f64 / total as f64;
    svg.push_str(&format!(
        "<g><title>{name} ({w} ns, {pct:.2}%)</title>\
         <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{px:.2}\" height=\"{h:.2}\" \
         fill=\"{fill}\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>",
        h = row - 1.0,
        fill = color_for(name),
    ));
    // Label only when the box can fit a few characters.
    let chars = (px / 7.0) as usize;
    if chars >= 3 {
        let label: String = name.chars().take(chars).collect();
        svg.push_str(&format!(
            "<text x=\"{tx:.2}\" y=\"{ty:.2}\">{label}</text>",
            tx = x + 2.0,
            ty = y + row - 5.0,
        ));
    }
    svg.push_str("</g>\n");
}

/// Deterministic warm-palette color keyed by frame name (FNV-1a hash).
fn color_for(name: &str) -> &'static str {
    const PALETTE: [&str; 12] = [
        "#e5573f", "#e8743f", "#eb8f3f", "#edaa40", "#f0c541", "#d9b33c",
        "#e06448", "#db824a", "#e39a45", "#ce5a36", "#f2b04a", "#e6803c",
    ];
    if name == "idle" {
        return "#c8d0d8";
    }
    if name == "(evicted)" {
        return "#b0a8c0";
    }
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    PALETTE[(h % PALETTE.len() as u64) as usize]
}

/// Reconstruct [`SpanRecord`]s from retained trace-ring events.
///
/// Spans are materialized from their `op.*` close events (which carry
/// the open time and latency) plus the `disk.*` events stamped with
/// their span id. When `wrapped` is true the ring overwrote its oldest
/// entries, so any span opening at or before the first retained event's
/// timestamp may have lost disk events — those are reported with
/// `truncated: true` instead of silently under-attributing. A span
/// whose close event has not been recorded yet (still open at dump
/// time) is also reported truncated, with its duration measured only up
/// to its last retained event.
pub fn spans_from_events(events: &[Event], wrapped: bool) -> Vec<SpanRecord> {
    let window_start = if wrapped {
        events.first().map(|e| e.t_ns).unwrap_or(0)
    } else {
        0
    };

    // Group stamped events by span id, preserving first-seen order.
    let mut order: Vec<u64> = Vec::new();
    let mut by_span: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    let mut out: Vec<SpanRecord> = Vec::new();
    for ev in events {
        if ev.span == 0 {
            // Unattributed disk activity becomes its own record inline,
            // keeping output ordered by ring position.
            if ev.dur_ns > 0 && ev.tag.starts_with("disk.") {
                out.push(SpanRecord {
                    op: None,
                    t0_ns: ev.t_ns,
                    dur_ns: ev.dur_ns,
                    queue_ns: 0,
                    service_ns: ev.dur_ns,
                    truncated: false,
                });
            }
            continue;
        }
        if !by_span.contains_key(&ev.span) {
            order.push(ev.span);
        }
        by_span.entry(ev.span).or_default().push(ev);
    }

    for id in order {
        let evs = &by_span[&id];
        let close = evs.iter().find(|e| e.tag.starts_with("op."));
        let (op_name, t0, dur, closed) = match close {
            Some(c) => (c.op, c.t_ns, c.dur_ns, true),
            None => {
                // Still-open span: measure what the window shows.
                let t0 = evs.first().map(|e| e.t_ns).unwrap_or(0);
                let end = evs
                    .iter()
                    .map(|e| e.t_ns.saturating_add(e.dur_ns))
                    .max()
                    .unwrap_or(t0);
                (evs[0].op, t0, end.saturating_sub(t0), false)
            }
        };
        let truncated = !closed || (wrapped && t0 <= window_start);
        // Queue gaps accumulate against the later of span open and the
        // window start, so truncated spans never charge evicted time.
        let start = t0.max(window_start);
        let mut prev_end = start;
        let mut queue_ns = 0u64;
        let mut service_ns = 0u64;
        for ev in evs.iter().filter(|e| e.dur_ns > 0 && e.tag.starts_with("disk.")) {
            queue_ns += ev.t_ns.saturating_sub(prev_end);
            service_ns += ev.dur_ns;
            prev_end = prev_end.max(ev.t_ns.saturating_add(ev.dur_ns));
        }
        out.push(SpanRecord {
            op: OpKind::from_name(op_name),
            t0_ns: t0,
            dur_ns: dur,
            queue_ns,
            service_ns,
            truncated,
        });
    }
    out
}

/// Fold ring events into a collapsed-stack [`Fold`] rooted at `root`.
/// `total_recorded` is [`Obs::events_recorded`](crate::Obs::events_recorded)
/// (detects wrap); `elapsed_ns` is the run's elapsed simulated time. The
/// fold's total weight equals `elapsed_ns`: time before the retained
/// window lands in `{root};(evicted)`, uncovered time in `{root};idle`.
pub fn fold_ring(events: &[Event], total_recorded: u64, root: &str, elapsed_ns: u64) -> Fold {
    let wrapped = total_recorded > events.len() as u64;
    let window_start = if wrapped {
        events.first().map(|e| e.t_ns).unwrap_or(0)
    } else {
        0
    };
    let records = spans_from_events(events, wrapped);
    let mut fold = Fold::default();
    fold.add(format!("{root};(evicted)"), window_start.min(elapsed_ns));
    fold_clamped(&mut fold, &records, root, window_start, elapsed_ns);
    fold
}

/// Fold span-log records into `fold` under `root`, with `elapsed_ns`
/// the window's duration. Exact (no eviction window): leftover time
/// becomes `{root};idle`.
pub fn fold_log_into(fold: &mut Fold, records: &[SpanRecord], root: &str, elapsed_ns: u64) {
    fold_clamped(fold, records, root, 0, elapsed_ns);
}

/// Convenience wrapper over [`fold_log_into`] for a single window.
pub fn fold_log(records: &[SpanRecord], root: &str, elapsed_ns: u64) -> Fold {
    let mut fold = Fold::default();
    fold_log_into(&mut fold, records, root, elapsed_ns);
    fold
}

/// Shared folding core: each record's duration (clamped to start at
/// `window_start`) splits into service, queue, and self frames; the
/// window's uncovered remainder becomes `{root};idle`.
///
/// Records may overlap in simulated time (concurrent client threads
/// under the threaded driver run parallel virtual timelines) and may
/// arrive out of order (unattributed requests are logged inline, spans
/// close in any order). Conservation — every nanosecond in exactly one
/// leaf — is kept by attributing along a frontier: records are taken in
/// start order and each claims only the part of its window no earlier
/// record claimed. For the non-overlapping records a single-threaded
/// run produces, this is exactly the old per-record accounting.
fn fold_clamped(
    fold: &mut Fold,
    records: &[SpanRecord],
    root: &str,
    window_start: u64,
    window_end: u64,
) {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.t0_ns.max(window_start), r.t0_ns));
    let mut covered = 0u64;
    let mut frontier = window_start;
    for r in sorted {
        let end = r.t0_ns.saturating_add(r.dur_ns);
        let start = r.t0_ns.max(frontier);
        let dur = end.saturating_sub(start);
        frontier = frontier.max(end);
        covered = covered.saturating_add(dur);
        let base = match (r.op, r.truncated) {
            (Some(op), false) => format!("{root};{}", op.name()),
            (Some(op), true) => format!("{root};{}:truncated", op.name()),
            (None, _) => format!("{root};(none)"),
        };
        let service = r.service_ns.min(dur);
        let queue = r.queue_ns.min(dur.saturating_sub(service));
        fold.add(format!("{base};disk_req/service"), service);
        fold.add(format!("{base};disk_req/queue"), queue);
        fold.add(base, dur.saturating_sub(service).saturating_sub(queue));
    }
    let window = window_end.saturating_sub(window_start);
    fold.add(format!("{root};idle"), window.saturating_sub(covered));
}

/// A phase's simulated time decomposed into four disjoint buckets. The
/// buckets come from the `attr_*_ns` counters (accumulated as each span
/// closes, so they survive trace-ring wrap); idle is the remainder of
/// elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attribution {
    /// In-memory op work: span latency minus queueing and service.
    pub op_ns: u64,
    /// Disk requests waiting behind earlier requests, inside spans.
    pub queue_ns: u64,
    /// Mechanical disk service time (in-span and unattributed).
    pub service_ns: u64,
    /// Elapsed time not covered by the other buckets.
    pub idle_ns: u64,
    /// Window duration the percentages are taken against.
    pub total_ns: u64,
}

impl Attribution {
    /// Build from a phase's counter delta ([`StatsSnapshot::delta`]).
    /// When spans straddle the phase boundary the attributed sum can
    /// exceed `sim_ns` (attribution lands in the phase a span *closes*
    /// in); the total widens to keep the buckets a partition.
    pub fn from_delta(d: &StatsSnapshot) -> Attribution {
        let op_ns = d.get(Ctr::AttrOpNs);
        let queue_ns = d.get(Ctr::AttrQueueNs);
        let service_ns = d.get(Ctr::AttrServiceNs);
        let attributed = op_ns + queue_ns + service_ns;
        let total_ns = d.sim_ns.max(attributed);
        Attribution {
            op_ns,
            queue_ns,
            service_ns,
            idle_ns: total_ns - attributed,
            total_ns,
        }
    }

    /// A bucket's share of the total, in percent rounded to 2 decimals.
    pub fn pct(&self, part: u64) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        let raw = 100.0 * part as f64 / self.total_ns as f64;
        (raw * 100.0).round() / 100.0
    }

    /// The `time_attribution` object embedded in every BENCH phase row:
    /// four `*_ns` buckets plus percentages that sum to 100 ± rounding.
    pub fn to_json(&self) -> Json {
        obj![
            ("op_ns", Json::Int(self.op_ns as i64)),
            ("queue_ns", Json::Int(self.queue_ns as i64)),
            ("service_ns", Json::Int(self.service_ns as i64)),
            ("idle_ns", Json::Int(self.idle_ns as i64)),
            ("total_ns", Json::Int(self.total_ns as i64)),
            ("op_pct", Json::Float(self.pct(self.op_ns))),
            ("queue_pct", Json::Float(self.pct(self.queue_ns))),
            ("service_pct", Json::Float(self.pct(self.service_ns))),
            ("idle_pct", Json::Float(self.pct(self.idle_ns))),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Obs, OpKind};

    fn ev(t_ns: u64, tag: &'static str, span: u64, op: &'static str, dur_ns: u64) -> Event {
        Event { t_ns, tag, a: 0, b: 0, span, op, dur_ns }
    }

    #[test]
    fn fold_total_equals_elapsed_without_wrap() {
        // Span 1: read, open t=100, latency 400. Two disk reads inside:
        // t=150 dur=100 (queue 50), t=300 dur=100 (queue 50).
        let events = vec![
            ev(150, "disk.read", 1, "read", 100),
            ev(300, "disk.read", 1, "read", 100),
            ev(100, "op.read", 1, "read", 400),
            ev(600, "disk.write", 0, "", 50),
        ];
        let fold = fold_ring(&events, events.len() as u64, "run", 1000);
        assert_eq!(fold.total_ns(), 1000, "{}", fold.collapse());
        let text = fold.collapse();
        assert!(text.contains("run;read;disk_req/service 200\n"), "{text}");
        assert!(text.contains("run;read;disk_req/queue 100\n"), "{text}");
        assert!(text.contains("run;read 100\n"), "{text}");
        assert!(text.contains("run;(none);disk_req/service 50\n"), "{text}");
        // idle = 1000 - 400 (span) - 50 (stray) = 550.
        assert!(text.contains("run;idle 550\n"), "{text}");
    }

    #[test]
    fn wrapped_ring_marks_truncated_and_accounts_evicted() {
        // Pretend 10 events were recorded but only these survive: a span
        // whose close says it opened at t=100, before the first retained
        // event at t=500.
        let events = vec![
            ev(500, "disk.read", 3, "lookup", 100),
            ev(100, "op.lookup", 3, "lookup", 700),
        ];
        let records = spans_from_events(&events, true);
        assert_eq!(records.len(), 1);
        assert!(records[0].truncated);
        assert_eq!(records[0].service_ns, 100);
        // Queue counts only from the window start (500), not from t0.
        assert_eq!(records[0].queue_ns, 0);

        let fold = fold_ring(&events, 10, "run", 1000);
        assert_eq!(fold.total_ns(), 1000, "{}", fold.collapse());
        let text = fold.collapse();
        assert!(text.contains("run;(evicted) 500\n"), "{text}");
        assert!(text.contains("run;lookup:truncated;disk_req/service 100\n"), "{text}");
        // Span covers [500, 800] after clamping; self = 300 - 100.
        assert!(text.contains("run;lookup:truncated 200\n"), "{text}");
        assert!(text.contains("run;idle 200\n"), "{text}");
    }

    #[test]
    fn still_open_span_is_truncated() {
        let events = vec![ev(200, "disk.read", 7, "readdir", 100)];
        let records = spans_from_events(&events, false);
        assert_eq!(records.len(), 1);
        assert!(records[0].truncated, "no close event → truncated");
        assert_eq!(records[0].op, Some(OpKind::Readdir));
        assert_eq!(records[0].dur_ns, 100);
    }

    #[test]
    fn span_log_matches_live_accounting() {
        let obs = Obs::new();
        obs.enable_span_log();
        obs.set_clock_ns(100);
        {
            let _g = obs.span(OpKind::Read);
            obs.trace_io(150, "disk.read", 1, 8, 100);
            obs.set_clock_ns(400);
        }
        let log = obs.span_log().unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].op, Some(OpKind::Read));
        assert_eq!(log[0].dur_ns, 300);
        assert_eq!(log[0].queue_ns, 50);
        assert_eq!(log[0].service_ns, 100);
        assert!(!log[0].truncated);

        // Counters saw the same split.
        let snap = obs.snapshot("t", 400);
        assert_eq!(snap.get(Ctr::AttrQueueNs), 50);
        assert_eq!(snap.get(Ctr::AttrServiceNs), 100);
        assert_eq!(snap.get(Ctr::AttrOpNs), 150);

        let fold = fold_log(&log, "t", 400);
        assert_eq!(fold.total_ns(), 400);
        // Ring reconstruction agrees with the live log.
        let ring = fold_ring(&obs.recent_events(100), obs.events_recorded(), "t", 400);
        assert_eq!(ring.collapse(), fold.collapse());
    }

    #[test]
    fn attribution_percentages_sum_to_100() {
        let obs = Obs::new();
        obs.set_clock_ns(0);
        {
            let _g = obs.span(OpKind::Create);
            obs.trace_io(10, "disk.write", 1, 8, 30);
            obs.set_clock_ns(70);
        }
        let snap = obs.snapshot("t", 210);
        let a = Attribution::from_delta(&snap);
        assert_eq!(a.op_ns + a.queue_ns + a.service_ns + a.idle_ns, a.total_ns);
        assert_eq!(a.total_ns, 210);
        let sum = a.pct(a.op_ns) + a.pct(a.queue_ns) + a.pct(a.service_ns) + a.pct(a.idle_ns);
        assert!((sum - 100.0).abs() < 0.05, "{sum}");
        let j = a.to_json();
        assert_eq!(j.get("service_ns").unwrap().as_u64(), Some(30));
        assert!(j.get("service_pct").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn svg_renders_every_named_frame() {
        let mut fold = Fold::default();
        fold.add("run;read;disk_req/service".into(), 600);
        fold.add("run;idle".into(), 400);
        let svg = fold.svg();
        assert!(svg.starts_with("<svg "));
        assert!(svg.contains("disk_req/service"));
        assert!(svg.contains("idle"));
        assert!(svg.ends_with("</svg>\n"));
    }
}

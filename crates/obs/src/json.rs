//! Minimal JSON value type, writer, and recursive-descent parser.
//!
//! The build environment has no registry access, so serde is unavailable;
//! this module is the workspace's single serialization substrate. Object
//! member order is preserved (members are a `Vec`, not a map) so emitted
//! files diff cleanly run-to-run.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (not routed through f64) so u64 nanosecond
    /// and byte counters round-trip losslessly.
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parse or conversion failure, with a human-readable reason.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Member of an object by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`] but an error naming the missing key.
    pub fn want(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing key {key:?}")))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric value as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Indented rendering (two spaces per level) for files meant to be read.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact single-line rendering (`to_string()` comes with it).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // Keep the float/integer distinction on round-trip.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return err("invalid low surrogate");
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => return err("invalid \\u escape"),
                            }
                        }
                        other => {
                            return err(format!("bad escape {:?}", other.map(|c| c as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one complete UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| JsonError("invalid utf-8".into()))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read 4 hex digits at the current position; leaves `pos` past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError("invalid \\u escape".into()))?;
        let cp = u32::from_str_radix(digits, 16)
            .map_err(|_| JsonError("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| JsonError(format!("invalid number {text:?}")))
        } else {
            // Exact integer parse first so u64-sized counters survive.
            text.parse::<i64>()
                .map(Json::Int)
                .or_else(|_| text.parse::<f64>().map(Json::Float))
                .map_err(|_| JsonError(format!("invalid number {text:?}")))
        }
    }
}

/// Types that render themselves as a [`Json`] value.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// Types reconstructible from a [`Json`] value.
pub trait FromJson: Sized {
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

macro_rules! impl_json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                j.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| JsonError(format!("expected {}", stringify!($t))))
            }
        }
    )+};
}
impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                j.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| JsonError(format!("expected {}", stringify!($t))))
            }
        }
    )+};
}
impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_f64().ok_or_else(|| JsonError("expected number".into()))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_bool().ok_or_else(|| JsonError("expected bool".into()))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError("expected string".into()))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()
            .ok_or_else(|| JsonError("expected array".into()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

/// Build a `Json::Obj` tersely: `obj![("k", v.to_json()), ...]`.
#[macro_export]
macro_rules! obj {
    ($(($k:expr, $v:expr)),* $(,)?) => {
        $crate::json::Json::Obj(vec![$(($k.to_string(), $v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structure() {
        let doc = obj![
            ("name", Json::Str("cffs".into())),
            ("n", Json::Int(-42)),
            ("big", Json::Int(u64::MAX as i64 >> 1)),
            ("x", Json::Float(2.5)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ];
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
        let pretty = doc.to_string_pretty();
        assert_eq!(parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let j = parse(r#"{"s": "a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(j.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndAé");
        let j = parse("\"\\u0041\\u00e9\\ud83d\\ude00x\"").unwrap();
        assert_eq!(j.as_str().unwrap(), "Aé\u{1F600}x");
        // Round-trip a string containing multibyte chars written raw.
        let original = Json::Str("héllo → wörld".into());
        assert_eq!(parse(&original.to_string()).unwrap(), original);
    }

    #[test]
    fn integers_stay_exact() {
        let ns: u64 = 1_234_567_890_123_456;
        let j = ns.to_json();
        let back = u64::from_json(&parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(back, ns);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn float_round_trip_keeps_type() {
        let j = parse("[1.0, 1]").unwrap();
        let items = j.as_arr().unwrap();
        assert_eq!(items[0], Json::Float(1.0));
        assert_eq!(items[1], Json::Int(1));
    }
}

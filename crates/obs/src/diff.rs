//! Regression attribution between two `BENCH_*.json` payloads.
//!
//! [`diff_reports`] compares two bench runs row by row (rows matched by
//! `(fs, phase)`, exactly like `bench_gate`) and attributes every moved
//! number to the counter, histogram, latency summary, or
//! time-attribution bucket that moved — turning "the gate failed" or
//! "the trajectory drifted" into a ranked list of *what* changed.
//!
//! Everything is integer math over the parsed JSON (float fields are
//! compared exactly and scaled to milli-units), so the report is
//! byte-deterministic for the same pair of inputs: the simulated
//! timeline is deterministic, and so must be the tool that explains it.

use crate::json::Json;
use crate::{obj, HistogramSnapshot};

/// Every row anywhere in a payload: top-level `rows`, plus `rows`
/// nested one level down in arrays (sweeps like E7/E13). Mirrors the
/// `bench_gate` walk so the two tools can never disagree about what a
/// row is.
fn collect_rows(j: &Json) -> Vec<&Json> {
    fn push_rows<'a>(node: &'a Json, out: &mut Vec<&'a Json>) {
        if let Some(Json::Arr(rows)) = node.get("rows") {
            out.extend(rows.iter());
        }
    }
    let mut out = Vec::new();
    push_rows(j, &mut out);
    if let Json::Obj(members) = j {
        for (_, v) in members {
            if let Json::Arr(items) = v {
                for item in items {
                    push_rows(item, &mut out);
                }
            }
        }
    }
    out
}

fn row_key(row: &Json) -> Option<(String, String)> {
    Some((
        row.get("fs")?.as_str()?.to_string(),
        row.get("phase")?.as_str()?.to_string(),
    ))
}

/// Relative change `a -> b` in milli-units (`None` when `a` is zero and
/// `b` is not — an appearance, infinitely large in relative terms).
fn delta_milli(a: f64, b: f64) -> Option<i64> {
    if a == 0.0 {
        if b == 0.0 { Some(0) } else { None }
    } else {
        Some(((b - a) / a * 1000.0).round() as i64)
    }
}

/// Sort rank of one attribution: appearances first, then by relative
/// magnitude, ties broken by kind and name so the report is stable.
fn rank(e: &Json) -> (i64, String, String) {
    let mag = match e.get("delta_milli") {
        Some(Json::Int(d)) => -d.abs(),
        _ => i64::MIN, // Null: change from zero, infinitely large.
    };
    (
        mag,
        e.get("kind").and_then(Json::as_str).unwrap_or("").to_string(),
        e.get("name").and_then(Json::as_str).unwrap_or("").to_string(),
    )
}

fn entry(kind: &str, name: &str, a: f64, b: f64) -> Json {
    let num = |v: f64| {
        if v.fract() == 0.0 && v.abs() < 9e15 { Json::Int(v as i64) } else { Json::Float(v) }
    };
    obj![
        ("kind", Json::Str(kind.to_string())),
        ("name", Json::Str(name.to_string())),
        ("a", num(a)),
        ("b", num(b)),
        (
            "delta_milli",
            match delta_milli(a, b) {
                Some(d) => Json::Int(d),
                None => Json::Null,
            }
        ),
    ]
}

/// Keys of `a`'s object in order, followed by keys only `b` has, in
/// `b`'s order — a deterministic union walk.
fn union_keys<'a>(a: Option<&'a Json>, b: Option<&'a Json>) -> Vec<&'a str> {
    let mut keys: Vec<&str> = Vec::new();
    for j in [a, b].into_iter().flatten() {
        if let Json::Obj(members) = j {
            for (k, _) in members {
                if !keys.contains(&k.as_str()) {
                    keys.push(k);
                }
            }
        }
    }
    keys
}

/// Attribute every change between two matched rows. One entry per moved
/// counter, per moved latency-summary field, per moved time-attribution
/// bucket — and **exactly one entry per changed histogram**, carrying
/// its count/mean/p99 before and after.
fn diff_row(a: &Json, b: &Json) -> Vec<Json> {
    let mut out: Vec<Json> = Vec::new();

    // Counters (integer registry under counters.counters).
    let ctrs = |r: &Json| r.get("counters").and_then(|c| c.get("counters")).cloned();
    let (ca, cb) = (ctrs(a), ctrs(b));
    for k in union_keys(ca.as_ref(), cb.as_ref()) {
        let va = ca.as_ref().and_then(|c| c.get(k)).and_then(Json::as_f64).unwrap_or(0.0);
        let vb = cb.as_ref().and_then(|c| c.get(k)).and_then(Json::as_f64).unwrap_or(0.0);
        if va != vb {
            out.push(entry("counter", k, va, vb));
        }
    }

    // Histograms: one attribution per histogram whose snapshot moved.
    let hists = |r: &Json| r.get("counters").and_then(|c| c.get("histograms")).cloned();
    let (ha, hb) = (hists(a), hists(b));
    for k in union_keys(ha.as_ref(), hb.as_ref()) {
        let snap = |h: &Option<Json>| {
            h.as_ref()
                .and_then(|h| h.get(k))
                .and_then(|j| HistogramSnapshot::from_json(j).ok())
                .unwrap_or_default()
        };
        let (sa, sb) = (snap(&ha), snap(&hb));
        if sa == sb {
            continue;
        }
        let mut e = entry("histogram", k, sa.mean() as f64, sb.mean() as f64);
        if let Json::Obj(fields) = &mut e {
            fields.push(("count_a".to_string(), Json::Int(sa.count() as i64)));
            fields.push(("count_b".to_string(), Json::Int(sb.count() as i64)));
            fields.push(("p99_a".to_string(), Json::Int(sa.quantile(0.99) as i64)));
            fields.push(("p99_b".to_string(), Json::Int(sb.quantile(0.99) as i64)));
        }
        out.push(e);
    }

    // Per-op latency summaries (the user-facing numbers the gate vets).
    let (la, lb) = (a.get("latency_ns").cloned(), b.get("latency_ns").cloned());
    for op in union_keys(la.as_ref(), lb.as_ref()) {
        for field in ["count", "mean_ns", "p50_ns", "p90_ns", "p99_ns"] {
            let get = |l: &Option<Json>| {
                l.as_ref()
                    .and_then(|l| l.get(op))
                    .and_then(|s| s.get(field))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            let (va, vb) = (get(&la), get(&lb));
            if va != vb {
                out.push(entry("latency", &format!("{op}.{field}"), va, vb));
            }
        }
    }

    // Time-attribution buckets (where the phase's nanoseconds went).
    let (ta, tb) = (a.get("time_attribution").cloned(), b.get("time_attribution").cloned());
    for k in union_keys(ta.as_ref(), tb.as_ref()) {
        let get = |t: &Option<Json>| {
            t.as_ref().and_then(|t| t.get(k)).and_then(Json::as_f64).unwrap_or(0.0)
        };
        let (va, vb) = (get(&ta), get(&tb));
        if va != vb {
            out.push(entry("time_attribution", k, va, vb));
        }
    }

    out.sort_by_key(rank);
    out
}

/// Compare two parsed `BENCH_*.json` payloads and attribute every moved
/// number. Returns a structured report: per-row ranked attributions,
/// changed top-level scalars, and the rows present on only one side.
pub fn diff_reports(a: &Json, b: &Json) -> Json {
    let rows_a = collect_rows(a);
    let rows_b = collect_rows(b);
    let mut rows_out: Vec<Json> = Vec::new();
    let mut only_a: Vec<Json> = Vec::new();
    let mut total = 0usize;
    for ra in &rows_a {
        let Some(key) = row_key(ra) else { continue };
        match rows_b.iter().find(|r| row_key(r).as_ref() == Some(&key)) {
            Some(rb) => {
                let attrs = diff_row(ra, rb);
                if !attrs.is_empty() {
                    total += attrs.len();
                    rows_out.push(obj![
                        ("fs", Json::Str(key.0)),
                        ("phase", Json::Str(key.1)),
                        ("attributions", Json::Arr(attrs)),
                    ]);
                }
            }
            None => only_a.push(Json::Str(format!("{}/{}", key.0, key.1))),
        }
    }
    let only_b: Vec<Json> = rows_b
        .iter()
        .filter_map(|r| row_key(r))
        .filter(|key| !rows_a.iter().any(|r| row_key(r).as_ref() == Some(key)))
        .map(|key| Json::Str(format!("{}/{}", key.0, key.1)))
        .collect();

    // Top-level scalars (recovery_ratio, scaling ratios, moved-block
    // tallies, ...) that moved between the runs.
    let mut toplevel: Vec<Json> = Vec::new();
    for k in union_keys(Some(a), Some(b)) {
        let scalar = |j: &Json| match j.get(k) {
            Some(Json::Int(_)) | Some(Json::Float(_)) => j.get(k).and_then(Json::as_f64),
            _ => None,
        };
        let (va, vb) = (scalar(a), scalar(b));
        if let (Some(va), Some(vb)) = (va, vb) {
            if va != vb {
                toplevel.push(entry("toplevel", k, va, vb));
            }
        }
    }
    toplevel.sort_by_key(rank);
    total += toplevel.len();

    obj![
        (
            "experiment",
            Json::Str(
                a.get("experiment")
                    .or_else(|| b.get("experiment"))
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string()
            )
        ),
        ("total_attributions", Json::Int(total as i64)),
        ("toplevel", Json::Arr(toplevel)),
        ("rows", Json::Arr(rows_out)),
        ("only_in_a", Json::Arr(only_a)),
        ("only_in_b", Json::Arr(only_b)),
    ]
}

fn render_entry(out: &mut String, e: &Json) {
    let gs = |k: &str| e.get(k).and_then(Json::as_str).unwrap_or("?");
    let gn = |k: &str| e.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let delta = match e.get("delta_milli") {
        Some(Json::Int(d)) => format!("{:+.1}%", *d as f64 / 10.0),
        _ => "new".to_string(),
    };
    match gs("kind") {
        "histogram" => {
            out.push_str(&format!(
                "    histogram {:<28} mean {} -> {} ({})  count {} -> {}  p99 {} -> {}\n",
                gs("name"),
                gn("a"),
                gn("b"),
                delta,
                gn("count_a"),
                gn("count_b"),
                gn("p99_a"),
                gn("p99_b"),
            ));
        }
        kind => {
            out.push_str(&format!(
                "    {:<9} {:<34} {} -> {} ({})\n",
                kind,
                gs("name"),
                gn("a"),
                gn("b"),
                delta,
            ));
        }
    }
}

/// Plain-text rendering of a [`diff_reports`] report.
pub fn render_diff(report: &Json) -> String {
    let mut out = String::new();
    let total = report.get("total_attributions").and_then(Json::as_u64).unwrap_or(0);
    out.push_str(&format!(
        "bench diff: experiment {}  ({} attributed deltas)\n",
        report.get("experiment").and_then(Json::as_str).unwrap_or("?"),
        total,
    ));
    if total == 0 {
        out.push_str("  runs are identical\n");
        return out;
    }
    if let Some(Json::Arr(top)) = report.get("toplevel") {
        if !top.is_empty() {
            out.push_str("  top-level:\n");
            for e in top {
                render_entry(&mut out, e);
            }
        }
    }
    if let Some(Json::Arr(rows)) = report.get("rows") {
        for row in rows {
            out.push_str(&format!(
                "  {}/{}:\n",
                row.get("fs").and_then(Json::as_str).unwrap_or("?"),
                row.get("phase").and_then(Json::as_str).unwrap_or("?"),
            ));
            if let Some(Json::Arr(attrs)) = row.get("attributions") {
                for e in attrs {
                    render_entry(&mut out, e);
                }
            }
        }
    }
    for (key, label) in [("only_in_a", "only in A"), ("only_in_b", "only in B")] {
        if let Some(Json::Arr(keys)) = report.get(key) {
            for k in keys {
                out.push_str(&format!("  {}: row {}\n", label, k.as_str().unwrap_or("?")));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn payload(p90: u64, reads: u64, bucket: u64) -> Json {
        parse(&format!(
            r#"{{
                "experiment": "unit",
                "recovery_ratio": 1.0,
                "rows": [{{
                    "fs": "C-FFS",
                    "phase": "read",
                    "latency_ns": {{"read": {{"count": 500, "mean_ns": 100, "p50_ns": 64, "p90_ns": {p90}, "p99_ns": 1023}}}},
                    "time_attribution": {{"service_pct": 90.0, "queue_pct": 10.0}},
                    "counters": {{
                        "counters": {{"disk_reads": {reads}, "disk_writes": 7}},
                        "histograms": {{"op_ns_read": {{"count": {bucket}, "sum": {bucket}, "buckets": [{bucket}]}}}}
                    }}
                }}]
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_payloads_diff_empty() {
        let a = payload(1023, 40, 3);
        let report = diff_reports(&a, &a);
        assert_eq!(report.get("total_attributions"), Some(&Json::Int(0)));
        assert!(render_diff(&report).contains("identical"));
    }

    #[test]
    fn every_changed_histogram_gets_an_attribution() {
        let a = payload(1023, 40, 3);
        let b = payload(2047, 55, 9);
        let report = diff_reports(&a, &b);
        let rows = match report.get("rows") {
            Some(Json::Arr(r)) => r,
            _ => panic!("rows"),
        };
        let attrs = match rows[0].get("attributions") {
            Some(Json::Arr(a)) => a,
            _ => panic!("attributions"),
        };
        let kinds: Vec<&str> = attrs
            .iter()
            .map(|e| e.get("kind").and_then(Json::as_str).unwrap())
            .collect();
        assert!(kinds.contains(&"histogram"), "{kinds:?}");
        assert!(kinds.contains(&"counter"), "{kinds:?}");
        assert!(kinds.contains(&"latency"), "{kinds:?}");
        let h = attrs
            .iter()
            .find(|e| e.get("kind").and_then(Json::as_str) == Some("histogram"))
            .unwrap();
        assert_eq!(h.get("name").and_then(Json::as_str), Some("op_ns_read"));
        assert_eq!(h.get("count_a"), Some(&Json::Int(3)));
        assert_eq!(h.get("count_b"), Some(&Json::Int(9)));
    }

    #[test]
    fn diff_is_deterministic_and_symmetric_on_row_presence() {
        let a = payload(1023, 40, 3);
        let b = payload(2047, 55, 9);
        let r1 = diff_reports(&a, &b).to_string();
        let r2 = diff_reports(&a, &b).to_string();
        assert_eq!(r1, r2);
        let text1 = render_diff(&diff_reports(&a, &b));
        let text2 = render_diff(&diff_reports(&a, &b));
        assert_eq!(text1, text2);
    }

    #[test]
    fn toplevel_scalars_and_missing_rows_are_reported() {
        let a = payload(1023, 40, 3);
        let mut b = payload(1023, 40, 3);
        if let Json::Obj(members) = &mut b {
            for (k, v) in members.iter_mut() {
                if k == "recovery_ratio" {
                    *v = Json::Float(0.5);
                }
                if k == "rows" {
                    *v = Json::Arr(Vec::new());
                }
            }
        }
        let report = diff_reports(&a, &b);
        let top = match report.get("toplevel") {
            Some(Json::Arr(t)) => t,
            _ => panic!("toplevel"),
        };
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].get("name").and_then(Json::as_str), Some("recovery_ratio"));
        let only_a = match report.get("only_in_a") {
            Some(Json::Arr(o)) => o,
            _ => panic!("only_in_a"),
        };
        assert_eq!(only_a.len(), 1);
        let text = render_diff(&report);
        assert!(text.contains("only in A"), "{text}");
    }
}

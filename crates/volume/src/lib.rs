#![warn(missing_docs)]

//! # cffs-volume — scale-out volume sets
//!
//! Mounts N independent C-FFS disks (each with its own simulated disk,
//! threaded driver, buffer-cache shards, and cylinder groups) behind one
//! [`ConcurrentFs`] namespace, following the scale-out direction in the
//! ROADMAP (CFS-style sharded metadata zones):
//!
//! * **Directory sharding.** The directory *skeleton* is replicated on
//!   every volume (a `mkdir` fans out to all N), while the *files* of a
//!   directory live only on the directory's **home volume** — a stable
//!   hash of its path. Everything the paper's explicit grouping buys
//!   (directory blocks co-located with the small files they name) is
//!   preserved per volume, because a directory's files never scatter.
//! * **Inode partitioning.** Volume-local inos never use bits 40–47 (the
//!   embedded encoding keeps a byte address below 2^40, the external
//!   encoding a 32-bit slot; the generation lives in bits 48–62). A
//!   volume set tags every ino it hands out with its volume index in
//!   those bits, so inos are globally unique and any handle, block, or
//!   fsck finding can be attributed to its volume. Volume 0's tag is the
//!   identity, so a 1-volume set is bit-compatible with a bare [`Cffs`].
//! * **Large-file striping.** A file whose size stays at or below the
//!   configured threshold lives entirely on its home volume. The first
//!   write that extends past the threshold *promotes* it: bytes `[0, T)`
//!   stay in the home-volume anchor (no data moves), and each subsequent
//!   stripe unit `[T+(k-1)·S, T+k·S)` becomes a part file on volume
//!   `(home+k) mod N` under the hidden `.stripe` directory, so large
//!   reads draw bandwidth from every disk at once.
//! * **Virtual-time fan-out.** Each logical op pins every participating
//!   volume's clock to the same start time and completes at the max of
//!   their finish times, so multi-volume work overlaps in simulated time
//!   exactly like the per-thread clock discipline of the concurrent
//!   stack — aggregate throughput can genuinely scale with volume count.
//!
//! Lock hierarchy (documented in DESIGN.md §11): `dirs` → `names` →
//! `stripes` → per-volume internals. A volume-set lock is never taken
//! while a volume-internal lock is held.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use cffs_core::fsck::{self, FsckReport};
use cffs_core::{Cffs, CffsConfig, CgUsage, MkfsParams};
use cffs_disksim::{Disk, SimTime};
use cffs_fslib::{
    Attr, ConcurrentFs, DirEntry, FileKind, FsError, FsResult, Ino, IoStats, StatFs,
};
use cffs_obs::{Ctr, Obs, OpKind, StatsSnapshot};
use cffs_regroup::{RegroupConfig, RegroupOutcome};

/// Bit position of the volume tag inside a global ino.
pub const VOL_SHIFT: u32 = 40;
/// Mask of the volume-tag bits (8 bits: up to [`MAX_VOLS`] volumes).
pub const VOL_MASK: u64 = 0xFF << VOL_SHIFT;
/// Most volumes a set can hold (the tag is 8 bits).
pub const MAX_VOLS: usize = 255;

/// Hidden per-volume directory holding stripe part files; filtered from
/// root `readdir`/`lookup` so it never appears in the namespace.
pub const STRIPE_DIR: &str = ".stripe";

/// Tag a volume-local ino with its volume index.
#[inline]
pub fn tag(vol: usize, local: Ino) -> Ino {
    debug_assert_eq!(local & VOL_MASK, 0, "volume-local ino uses tag bits");
    local | ((vol as u64) << VOL_SHIFT)
}

/// The volume index encoded in a global ino.
#[inline]
pub fn vol_of(global: Ino) -> usize {
    ((global & VOL_MASK) >> VOL_SHIFT) as usize
}

/// Strip the volume tag, recovering the volume-local ino.
#[inline]
pub fn local_of(global: Ino) -> Ino {
    global & !VOL_MASK
}

/// FNV-1a hash of a path — the stable home-volume shard function.
pub fn hash64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn home_of(path: &str, nvols: usize) -> usize {
    if path.is_empty() {
        0
    } else {
        (hash64(path) % nvols as u64) as usize
    }
}

fn join(dir: &str, name: &str) -> String {
    format!("{dir}/{name}")
}

fn part_name(hash: u64, k: usize) -> String {
    format!("s{hash:016x}.{k}")
}

/// Configuration of a [`VolumeSet`]: the per-volume file-system flavour
/// plus the striping policy.
#[derive(Debug, Clone)]
pub struct VolumeCfg {
    /// Per-volume file-system configuration (all volumes identical).
    pub fs: CffsConfig,
    /// Per-volume mkfs geometry.
    pub mkfs: MkfsParams,
    /// Bytes a file may reach before it is promoted to the striped
    /// layout. Defaults to one 64 KB group extent, so small files — the
    /// paper's subject — always stay whole on their home volume.
    pub stripe_threshold: u64,
    /// Bytes per stripe part beyond the threshold. Defaults to one
    /// 64 KB group extent so each part is one group-fetch unit.
    pub stripe_unit: u64,
}

impl VolumeCfg {
    /// Defaults: 64 KB stripe threshold and unit, default mkfs geometry.
    pub fn new(fs: CffsConfig) -> VolumeCfg {
        VolumeCfg {
            fs,
            mkfs: MkfsParams::default(),
            stripe_threshold: 64 * 1024,
            stripe_unit: 64 * 1024,
        }
    }

    /// Override the mkfs geometry.
    pub fn with_mkfs(mut self, mkfs: MkfsParams) -> VolumeCfg {
        self.mkfs = mkfs;
        self
    }

    /// Override the striping policy (threshold and unit in bytes; the
    /// unit must be non-zero).
    pub fn with_stripes(mut self, threshold: u64, unit: u64) -> VolumeCfg {
        assert!(unit > 0, "stripe unit must be non-zero");
        self.stripe_threshold = threshold;
        self.stripe_unit = unit;
        self
    }
}

/// One mounted volume: the file system plus its observability registry.
struct Volume {
    fs: Cffs,
    obs: Arc<Obs>,
}

/// One directory in the replicated skeleton.
#[derive(Debug, Clone)]
struct DirInfo {
    /// Namespace path, `""` for root, `"/a/b"` otherwise.
    path: String,
    /// Home volume: where this directory's files live.
    home: usize,
    /// This directory's volume-local ino on each volume.
    locals: Vec<Ino>,
}

#[derive(Default)]
struct DirMap {
    infos: Vec<DirInfo>,
    by_global: HashMap<Ino, usize>,
    by_path: HashMap<String, usize>,
}

/// Registry entry of one striped file.
#[derive(Debug, Clone)]
struct StripeMeta {
    /// Parent directory path (for re-resolution after regrouping).
    dir_path: String,
    /// File name within the parent.
    name: String,
    /// Hash of the full path — the stable part-file naming key.
    hash: u64,
    /// Home volume (equals the parent directory's home).
    home: usize,
    /// Anchor's volume-local ino on the home volume (bytes `[0, T)`).
    anchor: Ino,
    /// Logical file size in bytes.
    size: u64,
    /// Part `k+1` (bytes `[T+k·S, T+(k+1)·S)`) lives on volume
    /// `(home+1+k) mod N`; `None` = hole, reads as zeros.
    parts: Vec<Option<Ino>>,
}

/// N independent C-FFS volumes behind one [`ConcurrentFs`] namespace:
/// replicated directory skeleton, hash-sharded file placement, and
/// threshold-triggered large-file striping. See the module docs.
pub struct VolumeSet {
    label: String,
    cfg: VolumeCfg,
    vols: Vec<Volume>,
    /// The set-level registry: op spans, aggregate clocks, `vol_*`
    /// counters, and feed frames hang off this one.
    set_obs: Arc<Obs>,
    dirs: RwLock<DirMap>,
    /// Global file ino → (parent dir path, name), populated on
    /// create/lookup/readdir. Needed to name stripe parts at promotion
    /// time and to re-resolve striped anchors after regrouping. Grows
    /// with the touched-file count; cleared (with every outstanding
    /// handle) by [`VolumeSet::regroup_all`].
    names: Mutex<HashMap<Ino, (String, String)>>,
    stripes: Mutex<HashMap<Ino, StripeMeta>>,
    /// `.stripe` directory's local ino on each volume.
    stripe_dirs: Vec<Ino>,
    /// Set-level flight recorder (`None` without a `--flight` opt-in):
    /// per-volume spans and events merge into its ring tagged with the
    /// volume index, alongside each volume's own per-mount recorder.
    _flight: Option<cffs_obs::flight::FlightGuard>,
}

impl VolumeSet {
    /// Format one fresh file system per disk and assemble them into a
    /// set. Panics if `disks` is empty or holds more than [`MAX_VOLS`].
    pub fn format(disks: Vec<Disk>, cfg: VolumeCfg) -> FsResult<VolumeSet> {
        assert!(!disks.is_empty(), "a volume set needs at least one disk");
        assert!(disks.len() <= MAX_VOLS, "at most {MAX_VOLS} volumes");
        let mut vols = Vec::with_capacity(disks.len());
        for disk in disks {
            let fs = cffs_core::mkfs::mkfs(disk, cfg.mkfs, cfg.fs.clone())?;
            let obs = fs.obs();
            vols.push(Volume { fs, obs });
        }
        let mut stripe_dirs = Vec::with_capacity(vols.len());
        for v in &vols {
            stripe_dirs.push(v.fs.mkdir(v.fs.root(), STRIPE_DIR)?);
        }
        let label = format!("{}-{}v", vols[0].fs.label(), vols.len());
        let mut dirs = DirMap::default();
        dirs.infos.push(DirInfo {
            path: String::new(),
            home: 0,
            locals: vols.iter().map(|v| v.fs.root()).collect(),
        });
        dirs.by_global.insert(tag(0, vols[0].fs.root()), 0);
        dirs.by_path.insert(String::new(), 0);
        let set_obs = Obs::new();
        let t = vols.iter().map(|v| v.obs.clock_ns()).max().unwrap_or(0);
        set_obs.set_clock_ns(t);
        set_obs.arm_default_slos();
        let vol_registries: Vec<Arc<Obs>> = vols.iter().map(|v| Arc::clone(&v.obs)).collect();
        let flight = cffs_obs::flight::arm_global_volumes(&set_obs, &vol_registries, &label);
        Ok(VolumeSet {
            label,
            cfg,
            vols,
            set_obs,
            dirs: RwLock::new(dirs),
            names: Mutex::new(HashMap::new()),
            stripes: Mutex::new(HashMap::new()),
            stripe_dirs,
            _flight: flight,
        })
    }

    /// Number of volumes in the set.
    pub fn nvols(&self) -> usize {
        self.vols.len()
    }

    /// The striping policy and per-volume flavour this set was built
    /// with.
    pub fn cfg(&self) -> &VolumeCfg {
        &self.cfg
    }

    /// The set-level observability registry (also returned by
    /// [`ConcurrentFs::obs`]).
    pub fn set_obs(&self) -> Arc<Obs> {
        Arc::clone(&self.set_obs)
    }

    /// Per-volume observability registries, in volume order — what
    /// `cffs_obs::feed::attach_with_volumes` wants.
    pub fn vol_obs(&self) -> Vec<Arc<Obs>> {
        self.vols.iter().map(|v| Arc::clone(&v.obs)).collect()
    }

    /// Point-in-time snapshot of one volume's registry.
    pub fn vol_snapshot(&self, v: usize, label: &str) -> StatsSnapshot {
        self.vols[v].obs.snapshot(label, self.vols[v].obs.global_clock_ns())
    }

    /// Fold of all per-volume registries into one aggregate snapshot;
    /// `sim_ns` is the set-level elapsed clock (volumes overlap in
    /// simulated time, so their windows merge rather than concatenate).
    pub fn merged_snapshot(&self, label: &str) -> StatsSnapshot {
        let mut out = self.vol_snapshot(0, label);
        for v in 1..self.vols.len() {
            out = out.merge(&self.vol_snapshot(v, label));
        }
        out.sim_ns = self.set_obs.global_clock_ns();
        out
    }

    /// Field-wise sum of every volume's I/O statistics.
    pub fn io_stats(&self) -> IoStats {
        let mut out = IoStats::default();
        for v in &self.vols {
            let s = v.fs.io_stats();
            let d = &mut out.disk;
            d.reads += s.disk.reads;
            d.writes += s.disk.writes;
            d.sectors_read += s.disk.sectors_read;
            d.sectors_written += s.disk.sectors_written;
            d.cache_hits += s.disk.cache_hits;
            d.seek_ns += s.disk.seek_ns;
            d.rotation_ns += s.disk.rotation_ns;
            d.transfer_ns += s.disk.transfer_ns;
            d.overhead_ns += s.disk.overhead_ns;
            d.busy_ns += s.disk.busy_ns;
            let r = &mut out.driver;
            r.logical_requests += s.driver.logical_requests;
            r.physical_requests += s.driver.physical_requests;
            r.coalesced += s.driver.coalesced;
            r.batches += s.driver.batches;
            let c = &mut out.cache;
            c.lookups += s.cache.lookups;
            c.phys_hits += s.cache.phys_hits;
            c.logical_hits += s.cache.logical_hits;
            c.backbinds += s.cache.backbinds;
            c.evictions += s.cache.evictions;
            c.writebacks += s.cache.writebacks;
            c.sync_writes += s.cache.sync_writes;
            c.group_reads += s.cache.group_reads;
            c.group_read_blocks += s.cache.group_read_blocks;
        }
        out
    }

    /// Reset every volume's I/O statistics.
    pub fn reset_io_stats(&self) {
        for v in &self.vols {
            v.fs.reset_io_stats();
        }
    }

    /// One volume's per-cylinder-group usage.
    pub fn cg_usage(&self, v: usize) -> Vec<CgUsage> {
        self.vols[v].fs.cg_usage()
    }

    /// One volume's capacity summary (unclocked; for inspection).
    pub fn statfs_vol(&self, v: usize) -> FsResult<StatFs> {
        self.vols[v].fs.statfs()
    }

    /// Instantaneous driver queue depth per volume.
    pub fn queue_depths(&self) -> Vec<u64> {
        self.vols.iter().map(|v| v.obs.queue_depth()).collect()
    }

    /// Number of files currently in the striped layout.
    pub fn stripe_count(&self) -> usize {
        self.stripes.lock().expect("stripe registry poisoned").len()
    }

    /// Drop every volume's caches (write-back included), simulating a
    /// cold restart of the whole set. Volumes overlap in simulated time.
    pub fn drop_caches_all(&self) -> FsResult<()> {
        let _span = self.set_obs.span(OpKind::DropCaches);
        let t0 = self.set_obs.clock_ns();
        let mut t_end = t0;
        let mut ret = Ok(());
        for v in 0..self.vols.len() {
            let (r, t) = self.on(t0, v, |fs| fs.drop_caches());
            t_end = t_end.max(t);
            if ret.is_ok() {
                ret = r;
            }
        }
        self.set_obs.set_clock_ns(t_end);
        ret
    }

    /// Run one regroup pass per volume (crash-safe within each volume —
    /// the relocation protocol never spans volumes), then re-resolve
    /// every directory, stripe anchor, and part: regrouping renumbers
    /// embedded inos, so — like `FileSystem::rename` — **all outstanding
    /// handles are invalidated**; clients must re-resolve from the root.
    pub fn regroup_all(&mut self, rcfg: &RegroupConfig) -> FsResult<Vec<RegroupOutcome>> {
        let t0 = self.set_obs.clock_ns();
        let mut t_end = t0;
        let mut outs = Vec::with_capacity(self.vols.len());
        for v in 0..self.vols.len() {
            self.vols[v].obs.pin_clock_ns(t0);
            outs.push(cffs_regroup::run(&mut self.vols[v].fs, rcfg)?);
            // Flush the relocations so the volume's crash image is
            // consistent again (same discipline as the single-volume
            // regroup experiments: run, then sync, then fsck).
            self.vols[v].fs.sync()?;
            t_end = t_end.max(self.vols[v].obs.clock_ns());
        }
        self.set_obs.set_clock_ns(t_end);
        self.refresh_maps()?;
        let t = self.vols.iter().map(|v| v.obs.clock_ns()).max().unwrap_or(0);
        self.set_obs.set_clock_ns(t);
        Ok(outs)
    }

    /// Crash image of every volume (the on-disk state if power failed
    /// now), in volume order.
    pub fn crash_images(&self) -> Vec<Disk> {
        self.vols.iter().map(|v| v.fs.crash_image()).collect()
    }

    /// Fsck every volume's crash image (no repairs), in volume order.
    pub fn fsck_all(&self) -> FsResult<Vec<FsckReport>> {
        let mut out = Vec::with_capacity(self.vols.len());
        for mut img in self.crash_images() {
            out.push(fsck::fsck(&mut img, false)?);
        }
        Ok(out)
    }

    // ---- internals ----

    /// Run `f` on volume `v` with its clock pinned to `t0`; returns the
    /// result and the volume's finish time. The caller folds finish
    /// times with max and publishes via `set_clock_ns`, so sub-ops on
    /// different volumes overlap in simulated time.
    fn on<R>(&self, t0: u64, v: usize, f: impl FnOnce(&Cffs) -> R) -> (R, u64) {
        let vol = &self.vols[v];
        vol.obs.pin_clock_ns(t0);
        let r = f(&vol.fs);
        (r, vol.obs.clock_ns())
    }

    /// (home, path, home-volume local ino) of a directory handle.
    fn dir_info(&self, g: Ino) -> FsResult<(usize, String, Ino)> {
        let d = self.dirs.read().expect("dir map poisoned");
        let &i = d.by_global.get(&g).ok_or(FsError::NotDir)?;
        let info = &d.infos[i];
        Ok((info.home, info.path.clone(), info.locals[info.home]))
    }

    /// Global ino of the directory at `path`, if the skeleton knows it.
    fn dir_global(&self, path: &str) -> Option<Ino> {
        let d = self.dirs.read().expect("dir map poisoned");
        d.by_path.get(path).map(|&i| {
            let info = &d.infos[i];
            tag(info.home, info.locals[info.home])
        })
    }

    fn is_dir(&self, g: Ino) -> bool {
        self.dirs.read().expect("dir map poisoned").by_global.contains_key(&g)
    }

    /// Striped read: anchor segment from the home volume, part segments
    /// from their round-robin volumes, all pinned to one start time.
    /// Reads past the logical size are clamped; holes (absent parts,
    /// short anchor) read as zeros.
    fn striped_read(&self, m: &StripeMeta, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let want = if off >= m.size {
            0
        } else {
            (m.size - off).min(buf.len() as u64) as usize
        };
        let (th, su, n) = (self.cfg.stripe_threshold, self.cfg.stripe_unit, self.vols.len());
        let t0 = self.set_obs.clock_ns();
        let mut t_end = t0;
        let mut done = 0usize;
        while done < want {
            let goff = off + done as u64;
            let left = (want - done) as u64;
            let (v, ino, seg_off, seg_len) = if goff < th {
                (m.home, Some(m.anchor), goff, (th - goff).min(left))
            } else {
                let k = ((goff - th) / su) as usize;
                let pstart = th + k as u64 * su;
                let pv = (m.home + 1 + k) % n;
                let pino = m.parts.get(k).copied().flatten();
                (pv, pino, goff - pstart, (pstart + su - goff).min(left))
            };
            let dst = &mut buf[done..done + seg_len as usize];
            match ino {
                Some(local) => {
                    let (r, t) = self.on(t0, v, |fs| fs.read(local, seg_off, dst));
                    t_end = t_end.max(t);
                    let got = r?;
                    dst[got..].fill(0);
                    if v != m.home {
                        // Once on the set registry (op-level view, feed
                        // frames) and once on the serving volume (per-
                        // spindle view, merged snapshots).
                        self.set_obs.bump(Ctr::VolStripePartIos);
                        self.vols[v].obs.bump(Ctr::VolStripePartIos);
                    }
                }
                None => dst.fill(0),
            }
            done += seg_len as usize;
        }
        self.set_obs.set_clock_ns(t_end);
        Ok(want)
    }

    /// Striped write: segments as in [`Self::striped_read`]; missing
    /// parts are created on demand in their volume's `.stripe`
    /// directory. Stops early on a short segment write.
    fn striped_write(&self, m: &mut StripeMeta, off: u64, data: &[u8]) -> FsResult<usize> {
        let (th, su, n) = (self.cfg.stripe_threshold, self.cfg.stripe_unit, self.vols.len());
        let t0 = self.set_obs.clock_ns();
        let mut t_end = t0;
        let mut done = 0usize;
        while done < data.len() {
            let goff = off + done as u64;
            let left = (data.len() - done) as u64;
            let (v, seg_off, seg_len, part_k) = if goff < th {
                (m.home, goff, (th - goff).min(left), None)
            } else {
                let k = ((goff - th) / su) as usize;
                let pstart = th + k as u64 * su;
                ((m.home + 1 + k) % n, goff - pstart, (pstart + su - goff).min(left), Some(k))
            };
            let local = match part_k {
                None => m.anchor,
                Some(k) => {
                    if m.parts.len() <= k {
                        m.parts.resize(k + 1, None);
                    }
                    match m.parts[k] {
                        Some(p) => p,
                        None => {
                            let pname = part_name(m.hash, k + 1);
                            let pdir = self.stripe_dirs[v];
                            let (r, t) = self.on(t0, v, |fs| match fs.create(pdir, &pname) {
                                // A leftover part (e.g. from a crashed
                                // unlink) is adopted, not an error.
                                Err(FsError::Exists) => fs.lookup(pdir, &pname),
                                other => other,
                            });
                            t_end = t_end.max(t);
                            let p = match r {
                                Ok(p) => p,
                                Err(e) => {
                                    self.set_obs.set_clock_ns(t_end);
                                    return Err(e);
                                }
                            };
                            m.parts[k] = Some(p);
                            p
                        }
                    }
                }
            };
            let src = &data[done..done + seg_len as usize];
            let (r, t) = self.on(t0, v, |fs| fs.write(local, seg_off, src));
            t_end = t_end.max(t);
            if part_k.is_some() {
                self.set_obs.bump(Ctr::VolStripePartIos);
                self.vols[v].obs.bump(Ctr::VolStripePartIos);
            }
            let wrote = match r {
                Ok(w) => w,
                Err(e) => {
                    self.set_obs.set_clock_ns(t_end);
                    return Err(e);
                }
            };
            done += wrote;
            if wrote < seg_len as usize {
                break;
            }
        }
        self.set_obs.set_clock_ns(t_end);
        m.size = m.size.max(off + done as u64);
        Ok(done)
    }

    /// Rebuild every map after regrouping renumbered embedded inos: the
    /// skeleton is re-resolved path-by-path on every volume, stripe
    /// anchors and parts are re-looked-up by name, and the file-name map
    /// (whose keys are stale handles) is cleared.
    fn refresh_maps(&mut self) -> FsResult<()> {
        let n = self.vols.len();
        let d = self.dirs.get_mut().expect("dir map poisoned");
        d.by_global.clear();
        d.by_path.clear();
        for i in 0..d.infos.len() {
            for v in 0..n {
                let mut cur = self.vols[v].fs.root();
                for comp in d.infos[i].path.split('/').filter(|c| !c.is_empty()) {
                    cur = self.vols[v].fs.lookup(cur, comp)?;
                }
                d.infos[i].locals[v] = cur;
            }
            let info = &d.infos[i];
            d.by_global.insert(tag(info.home, info.locals[info.home]), i);
            d.by_path.insert(info.path.clone(), i);
        }
        for v in 0..n {
            self.stripe_dirs[v] = self.vols[v].fs.lookup(self.vols[v].fs.root(), STRIPE_DIR)?;
        }
        self.names.get_mut().expect("name map poisoned").clear();
        // Sorted drain keeps the re-resolution op order (and therefore
        // the simulated clocks) deterministic across runs.
        let mut old: Vec<(Ino, StripeMeta)> = self
            .stripes
            .get_mut()
            .expect("stripe registry poisoned")
            .drain()
            .collect();
        old.sort_by_key(|(g, _)| *g);
        for (_, mut m) in old {
            let dlocal = {
                let &di = d
                    .by_path
                    .get(&m.dir_path)
                    .ok_or_else(|| FsError::Corrupt("striped file's directory vanished".into()))?;
                d.infos[di].locals[m.home]
            };
            m.anchor = self.vols[m.home].fs.lookup(dlocal, &m.name)?;
            for k in 0..m.parts.len() {
                if m.parts[k].is_some() {
                    let pv = (m.home + 1 + k) % n;
                    m.parts[k] =
                        Some(self.vols[pv].fs.lookup(self.stripe_dirs[pv], &part_name(m.hash, k + 1))?);
                }
            }
            let g = tag(m.home, m.anchor);
            self.stripes.get_mut().expect("stripe registry poisoned").insert(g, m);
        }
        Ok(())
    }
}

impl ConcurrentFs for VolumeSet {
    fn label(&self) -> &str {
        &self.label
    }

    fn root(&self) -> Ino {
        tag(0, self.vols[0].fs.root())
    }

    fn lookup(&self, dir: Ino, name: &str) -> FsResult<Ino> {
        let _span = self.set_obs.span(OpKind::Lookup);
        let (home, dpath, dlocal) = self.dir_info(dir)?;
        if dpath.is_empty() && name == STRIPE_DIR {
            return Err(FsError::NotFound);
        }
        let t0 = self.set_obs.clock_ns();
        let (r, t) = self.on(t0, home, |fs| fs.lookup(dlocal, name));
        self.set_obs.set_clock_ns(t);
        let local = r?;
        let child_path = join(&dpath, name);
        if let Some(g) = self.dir_global(&child_path) {
            return Ok(g);
        }
        let g = tag(home, local);
        self.names
            .lock()
            .expect("name map poisoned")
            .entry(g)
            .or_insert_with(|| (dpath, name.to_string()));
        Ok(g)
    }

    fn getattr(&self, ino: Ino) -> FsResult<Attr> {
        let _span = self.set_obs.span(OpKind::Getattr);
        if let Ok((home, _, dlocal)) = self.dir_info(ino) {
            let t0 = self.set_obs.clock_ns();
            let (r, t) = self.on(t0, home, |fs| fs.getattr(dlocal));
            self.set_obs.set_clock_ns(t);
            return r.map(|a| Attr { ino, ..a });
        }
        let meta = self.stripes.lock().expect("stripe registry poisoned").get(&ino).cloned();
        match meta {
            None => {
                let (v, local) = (vol_of(ino), local_of(ino));
                let t0 = self.set_obs.clock_ns();
                let (r, t) = self.on(t0, v, |fs| fs.getattr(local));
                self.set_obs.set_clock_ns(t);
                r.map(|a| Attr { ino, ..a })
            }
            Some(m) => {
                let t0 = self.set_obs.clock_ns();
                let (r, mut t_end) = self.on(t0, m.home, |fs| fs.getattr(m.anchor));
                let mut blocks = 0;
                let mut nlink = 1;
                if let Ok(a) = &r {
                    blocks = a.blocks;
                    nlink = a.nlink;
                }
                if r.is_ok() {
                    let n = self.vols.len();
                    for (k, part) in m.parts.iter().enumerate() {
                        if let Some(p) = part {
                            let pv = (m.home + 1 + k) % n;
                            let (pr, t) = self.on(t0, pv, |fs| fs.getattr(*p));
                            t_end = t_end.max(t);
                            if let Ok(pa) = pr {
                                blocks += pa.blocks;
                            }
                        }
                    }
                }
                self.set_obs.set_clock_ns(t_end);
                r.map(|_| Attr { ino, kind: FileKind::File, size: m.size, nlink, blocks })
            }
        }
    }

    fn create(&self, dir: Ino, name: &str) -> FsResult<Ino> {
        let _span = self.set_obs.span(OpKind::Create);
        let (home, dpath, dlocal) = self.dir_info(dir)?;
        if dpath.is_empty() && name == STRIPE_DIR {
            return Err(FsError::Exists);
        }
        let t0 = self.set_obs.clock_ns();
        let (r, t) = self.on(t0, home, |fs| fs.create(dlocal, name));
        self.set_obs.set_clock_ns(t);
        let local = r?;
        let g = tag(home, local);
        self.names
            .lock()
            .expect("name map poisoned")
            .insert(g, (dpath, name.to_string()));
        Ok(g)
    }

    fn mkdir(&self, dir: Ino, name: &str) -> FsResult<Ino> {
        let _span = self.set_obs.span(OpKind::Mkdir);
        let mut d = self.dirs.write().expect("dir map poisoned");
        let &pi = d.by_global.get(&dir).ok_or(FsError::NotDir)?;
        let parent = d.infos[pi].clone();
        if parent.path.is_empty() && name == STRIPE_DIR {
            return Err(FsError::Exists);
        }
        let child_path = join(&parent.path, name);
        let n = self.vols.len();
        let t0 = self.set_obs.clock_ns();
        // The parent's home volume goes first: it is the only volume
        // where `name` could exist as a *file*, so any Exists/BadName
        // surfaces before the skeleton is touched anywhere else.
        let first = parent.home;
        let (r, mut t_end) = self.on(t0, first, |fs| fs.mkdir(parent.locals[first], name));
        let first_local = match r {
            Ok(i) => i,
            Err(e) => {
                self.set_obs.set_clock_ns(t_end);
                return Err(e);
            }
        };
        let mut locals = vec![0 as Ino; n];
        locals[first] = first_local;
        for (v, local) in locals.iter_mut().enumerate() {
            if v == first {
                continue;
            }
            let (r, t) = self.on(t0, v, |fs| fs.mkdir(parent.locals[v], name));
            t_end = t_end.max(t);
            *local = r.map_err(|e| {
                FsError::Corrupt(format!("skeleton mkdir diverged on volume {v}: {e:?}"))
            })?;
        }
        self.set_obs.set_clock_ns(t_end);
        self.set_obs.bump(Ctr::VolDirFanouts);
        let home = home_of(&child_path, n);
        // Mirror on the home volume's registry so merged per-volume
        // snapshots carry the same total as the set registry.
        self.vols[home].obs.bump(Ctr::VolDirFanouts);
        let g = tag(home, locals[home]);
        let idx = d.infos.len();
        d.infos.push(DirInfo { path: child_path.clone(), home, locals });
        d.by_global.insert(g, idx);
        d.by_path.insert(child_path, idx);
        Ok(g)
    }

    fn unlink(&self, dir: Ino, name: &str) -> FsResult<()> {
        let _span = self.set_obs.span(OpKind::Unlink);
        let (home, dpath, dlocal) = self.dir_info(dir)?;
        if dpath.is_empty() && name == STRIPE_DIR {
            return Err(FsError::NotFound);
        }
        if self.dir_global(&join(&dpath, name)).is_some() {
            return Err(FsError::IsDir);
        }
        let t0 = self.set_obs.clock_ns();
        // Resolve the victim first so the stripe registry and name map
        // can be cleaned by handle.
        let (r, t1) = self.on(t0, home, |fs| fs.lookup(dlocal, name));
        let local = match r {
            Ok(i) => i,
            Err(e) => {
                self.set_obs.set_clock_ns(t1);
                return Err(e);
            }
        };
        let g = tag(home, local);
        let meta = self.stripes.lock().expect("stripe registry poisoned").remove(&g);
        let mut t_end = t1;
        if let Some(m) = &meta {
            let n = self.vols.len();
            for (k, part) in m.parts.iter().enumerate() {
                if part.is_some() {
                    let pv = (m.home + 1 + k) % n;
                    let pname = part_name(m.hash, k + 1);
                    let pdir = self.stripe_dirs[pv];
                    let (r, t) = self.on(t0, pv, |fs| fs.unlink(pdir, &pname));
                    t_end = t_end.max(t);
                    // A missing part is a hole that was never written.
                    let _ = r;
                }
            }
        }
        let (r, t) = self.on(t0, home, |fs| fs.unlink(dlocal, name));
        t_end = t_end.max(t);
        self.set_obs.set_clock_ns(t_end);
        self.names.lock().expect("name map poisoned").remove(&g);
        r
    }

    fn read(&self, ino: Ino, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let _span = self.set_obs.span(OpKind::Read);
        if self.is_dir(ino) {
            return Err(FsError::IsDir);
        }
        let meta = self.stripes.lock().expect("stripe registry poisoned").get(&ino).cloned();
        match meta {
            Some(m) => self.striped_read(&m, off, buf),
            None => {
                let (v, local) = (vol_of(ino), local_of(ino));
                let t0 = self.set_obs.clock_ns();
                let (r, t) = self.on(t0, v, |fs| fs.read(local, off, buf));
                self.set_obs.set_clock_ns(t);
                r
            }
        }
    }

    fn write(&self, ino: Ino, off: u64, data: &[u8]) -> FsResult<usize> {
        let _span = self.set_obs.span(OpKind::Write);
        if self.is_dir(ino) {
            return Err(FsError::IsDir);
        }
        let end = off + data.len() as u64;
        let mut reg = self.stripes.lock().expect("stripe registry poisoned");
        if let Some(m) = reg.get_mut(&ino) {
            return self.striped_write(m, off, data);
        }
        if end <= self.cfg.stripe_threshold || self.vols.len() == 1 {
            drop(reg);
            let (v, local) = (vol_of(ino), local_of(ino));
            let t0 = self.set_obs.clock_ns();
            let (r, t) = self.on(t0, v, |fs| fs.write(local, off, data));
            self.set_obs.set_clock_ns(t);
            return r;
        }
        // Promotion: the write ends past the threshold. Bytes [0, T)
        // stay in the (already ≤ T bytes long) home-volume anchor — no
        // data moves, the registry entry is the whole promotion.
        let named = self.names.lock().expect("name map poisoned").get(&ino).cloned();
        let Some((dir_path, name)) = named else {
            // Unknown handle (never seen by create/lookup/readdir):
            // keep it whole on its home volume rather than guess.
            drop(reg);
            let (v, local) = (vol_of(ino), local_of(ino));
            let t0 = self.set_obs.clock_ns();
            let (r, t) = self.on(t0, v, |fs| fs.write(local, off, data));
            self.set_obs.set_clock_ns(t);
            return r;
        };
        let (home, anchor) = (vol_of(ino), local_of(ino));
        let t0 = self.set_obs.clock_ns();
        let (r, t) = self.on(t0, home, |fs| fs.getattr(anchor));
        self.set_obs.set_clock_ns(t);
        let size = r?.size;
        let path = join(&dir_path, &name);
        let mut m = StripeMeta {
            hash: hash64(&path),
            dir_path,
            name,
            home,
            anchor,
            size,
            parts: Vec::new(),
        };
        self.set_obs.bump(Ctr::VolStripePromotions);
        self.vols[home].obs.bump(Ctr::VolStripePromotions);
        let w = self.striped_write(&mut m, off, data);
        reg.insert(ino, m);
        w
    }

    fn readdir(&self, dir: Ino) -> FsResult<Vec<DirEntry>> {
        let _span = self.set_obs.span(OpKind::Readdir);
        let (home, dpath, dlocal) = self.dir_info(dir)?;
        let t0 = self.set_obs.clock_ns();
        let (r, t) = self.on(t0, home, |fs| fs.readdir(dlocal));
        self.set_obs.set_clock_ns(t);
        let entries = r?;
        let d = self.dirs.read().expect("dir map poisoned");
        let mut names = self.names.lock().expect("name map poisoned");
        Ok(entries
            .into_iter()
            .filter_map(|e| {
                if dpath.is_empty() && e.name == STRIPE_DIR {
                    return None;
                }
                let g = match e.kind {
                    FileKind::Dir => match d.by_path.get(&join(&dpath, &e.name)) {
                        Some(&i) => {
                            let info = &d.infos[i];
                            tag(info.home, info.locals[info.home])
                        }
                        None => tag(home, e.ino),
                    },
                    FileKind::File => {
                        let g = tag(home, e.ino);
                        names
                            .entry(g)
                            .or_insert_with(|| (dpath.clone(), e.name.clone()));
                        g
                    }
                };
                Some(DirEntry { name: e.name, ino: g, kind: e.kind })
            })
            .collect())
    }

    fn sync(&self) -> FsResult<()> {
        let _span = self.set_obs.span(OpKind::Sync);
        let t0 = self.set_obs.clock_ns();
        let mut t_end = t0;
        let mut ret = Ok(());
        for v in 0..self.vols.len() {
            let (r, t) = self.on(t0, v, |fs| fs.sync());
            t_end = t_end.max(t);
            if ret.is_ok() {
                ret = r;
            }
        }
        self.set_obs.set_clock_ns(t_end);
        ret
    }

    fn now(&self) -> SimTime {
        SimTime(self.set_obs.clock_ns())
    }

    fn obs(&self) -> Option<Arc<Obs>> {
        Some(Arc::clone(&self.set_obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_disksim::models;

    fn small_set(n: usize) -> VolumeSet {
        let disks = (0..n).map(|_| Disk::new(models::tiny_test_disk())).collect();
        let cfg = VolumeCfg::new(CffsConfig::cffs())
            .with_mkfs(MkfsParams::tiny())
            .with_stripes(8 * 1024, 8 * 1024);
        VolumeSet::format(disks, cfg).expect("format")
    }

    #[test]
    fn ino_tagging_round_trips() {
        for v in [0usize, 1, 7, 254] {
            for local in [cffs_core::layout::INO_ROOT, 0x1234, (1 << 40) - 1] {
                let g = tag(v, local);
                assert_eq!(vol_of(g), v);
                assert_eq!(local_of(g), local);
            }
        }
    }

    #[test]
    fn skeleton_replicates_and_files_shard() {
        let vs = small_set(3);
        let root = vs.root();
        let d1 = vs.mkdir(root, "a").unwrap();
        let d2 = vs.mkdir(d1, "b").unwrap();
        for v in 0..3 {
            // every volume has /a/b
            let mut cur = vs.vols[v].fs.root();
            cur = vs.vols[v].fs.lookup(cur, "a").unwrap();
            vs.vols[v].fs.lookup(cur, "b").unwrap();
        }
        let f = vs.create(d2, "f").unwrap();
        assert_eq!(vol_of(f), home_of("/a/b", 3), "file lives on its dir's home");
        assert_eq!(vs.lookup(d2, "f").unwrap(), f);
        let got = vs.readdir(d2).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ino, f);
        // the hidden stripe dir never shows through the set namespace
        assert!(vs.readdir(root).unwrap().iter().all(|e| e.name != STRIPE_DIR));
        assert!(matches!(vs.lookup(root, STRIPE_DIR), Err(FsError::NotFound)));
    }

    #[test]
    fn small_files_stay_whole_large_files_stripe() {
        let vs = small_set(3);
        let root = vs.root();
        let small = vs.create(root, "small").unwrap();
        vs.write(small, 0, &[7u8; 4096]).unwrap();
        assert_eq!(vs.stripe_count(), 0);
        let big = vs.create(root, "big").unwrap();
        let data: Vec<u8> = (0..40 * 1024u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(vs.write(big, 0, &data).unwrap(), data.len());
        assert_eq!(vs.stripe_count(), 1);
        assert!(vs.set_obs.get(Ctr::VolStripePromotions) == 1);
        assert!(vs.set_obs.get(Ctr::VolStripePartIos) > 0);
        let a = vs.getattr(big).unwrap();
        assert_eq!(a.size, data.len() as u64);
        let mut back = vec![0u8; data.len()];
        assert_eq!(vs.read(big, 0, &mut back).unwrap(), data.len());
        assert_eq!(back, data);
        // unaligned mid-stripe read
        let mut mid = vec![0u8; 5000];
        let got = vs.read(big, 9000, &mut mid).unwrap();
        assert_eq!(got, 5000);
        assert_eq!(&mid[..], &data[9000..14000]);
        // read past EOF clamps
        let mut tail = vec![0u8; 4096];
        let got = vs.read(big, data.len() as u64 - 100, &mut tail).unwrap();
        assert_eq!(got, 100);
        vs.sync().unwrap();
        for rep in vs.fsck_all().unwrap() {
            assert!(rep.clean(), "fsck: {:?}", rep.errors);
        }
    }

    #[test]
    fn sparse_stripe_holes_read_zero() {
        let vs = small_set(2);
        let root = vs.root();
        let f = vs.create(root, "sparse").unwrap();
        // write only far past the threshold: anchor and early parts are holes
        vs.write(f, 30 * 1024, &[9u8; 1024]).unwrap();
        let a = vs.getattr(f).unwrap();
        assert_eq!(a.size, 31 * 1024);
        let mut buf = vec![1u8; 31 * 1024];
        assert_eq!(vs.read(f, 0, &mut buf).unwrap(), 31 * 1024);
        assert!(buf[..30 * 1024].iter().all(|&b| b == 0));
        assert!(buf[30 * 1024..].iter().all(|&b| b == 9));
    }

    #[test]
    fn unlink_removes_stripe_parts() {
        let vs = small_set(3);
        let root = vs.root();
        let f = vs.create(root, "big").unwrap();
        vs.write(f, 0, &vec![3u8; 50 * 1024]).unwrap();
        assert_eq!(vs.stripe_count(), 1);
        vs.unlink(root, "big").unwrap();
        assert_eq!(vs.stripe_count(), 0);
        for v in 0..3 {
            let sd = vs.vols[v].fs.lookup(vs.vols[v].fs.root(), STRIPE_DIR).unwrap();
            assert!(vs.vols[v].fs.readdir(sd).unwrap().is_empty(), "parts left on vol {v}");
        }
        vs.sync().unwrap();
        for rep in vs.fsck_all().unwrap() {
            assert!(rep.clean(), "fsck: {:?}", rep.errors);
        }
    }

    #[test]
    fn regroup_all_renumbers_and_survives() {
        let mut vs = small_set(2);
        let root = vs.root();
        let d = vs.mkdir(root, "proj").unwrap();
        let mut files = Vec::new();
        for i in 0..8 {
            let f = vs.create(d, &format!("f{i}")).unwrap();
            vs.write(f, 0, &[i as u8; 2048]).unwrap();
            files.push(f);
        }
        let big = vs.create(d, "big").unwrap();
        let data: Vec<u8> = (0..24 * 1024u32).map(|i| (i % 253) as u8).collect();
        vs.write(big, 0, &data).unwrap();
        vs.sync().unwrap();
        vs.regroup_all(&RegroupConfig::exhaustive()).unwrap();
        // handles renumbered: re-resolve everything from the root
        let d = vs.lookup(vs.root(), "proj").unwrap();
        for i in 0..8 {
            let f = vs.lookup(d, &format!("f{i}")).unwrap();
            let mut buf = vec![0u8; 2048];
            assert_eq!(vs.read(f, 0, &mut buf).unwrap(), 2048);
            assert!(buf.iter().all(|&b| b == i as u8));
        }
        let big = vs.lookup(d, "big").unwrap();
        let mut back = vec![0u8; data.len()];
        assert_eq!(vs.read(big, 0, &mut back).unwrap(), data.len());
        assert_eq!(back, data);
        for rep in vs.fsck_all().unwrap() {
            assert!(rep.clean(), "fsck: {:?}", rep.errors);
        }
    }

    #[test]
    fn merged_snapshot_sums_volumes() {
        let vs = small_set(2);
        let root = vs.root();
        let f = vs.create(root, "f").unwrap();
        vs.write(f, 0, &[1u8; 1024]).unwrap();
        vs.sync().unwrap();
        let merged = vs.merged_snapshot("set");
        let per: u64 = (0..2).map(|v| vs.vol_snapshot(v, "v").get(Ctr::DiskWrites)).sum();
        assert_eq!(merged.get(Ctr::DiskWrites), per);
        assert_eq!(merged.sim_ns, vs.set_obs.global_clock_ns());
    }
}

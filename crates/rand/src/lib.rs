//! In-repo stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched; this crate implements the (small) API surface the workspace
//! actually uses: `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — high-quality,
//! deterministic, and unrelated to the upstream `StdRng` stream. Nothing in
//! the workspace depends on the exact stream, only on determinism per seed
//! and reasonable statistical quality.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value trait: everything callers draw values through.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of a supported primitive type (`u8`..`u64`, `usize`,
    /// `bool`, or `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

/// Types drawable via [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn sample(rng: &mut impl Rng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample(rng: &mut impl Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut impl Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut impl Rng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut impl Rng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges drawable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut impl Rng) -> T;
}

/// Unbiased draw from `[0, n)` by rejection.
fn uniform_below(rng: &mut impl Rng, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    // Zone rejection: accept draws below the largest multiple of n.
    let zone = u64::MAX - (u64::MAX % n) - if u64::MAX % n == n - 1 { 0 } else { 1 };
    loop {
        let v = rng.next_u64();
        if v <= zone || zone == u64::MAX {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut impl Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for upstream StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5i64..=5);
            assert_eq!(w, 5);
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}

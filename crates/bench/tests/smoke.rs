//! Smoke tests: every reproduction runs end to end at reduced scale and
//! its report contains the structural markers the full run relies on.
//! This keeps `repro_all` from rotting between full benchmark runs.

use cffs_bench::experiments::*;
use cffs_fslib::MetadataMode;
use cffs_workloads::appdev::DevTreeParams;
use cffs_workloads::smallfile::SmallFileParams;

fn small() -> SmallFileParams {
    SmallFileParams { nfiles: 120, ndirs: 8, ..SmallFileParams::default() }
}

#[test]
fn e1_table1() {
    let out = table1::run();
    for needle in ["HP C3653", "Quantum Atlas II", "8.7 ms", "Average seek"] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }
}

#[test]
fn e2_fig2() {
    let out = fig2::run(40);
    assert!(out.contains("64 KB"));
    assert!(out.contains("adjacency converts positioning time"));
}

#[test]
fn e3_table2() {
    let out = table2::run();
    assert!(out.contains("Seagate ST31200N"));
    assert!(out.contains("C-LOOK"));
}

#[test]
fn e4_e5_smallfile_both_modes() {
    for mode in [MetadataMode::Synchronous, MetadataMode::Delayed] {
        let out = smallfile::run(mode, small());
        for fsname in ["FFS", "conventional", "embedded inodes", "explicit grouping", "C-FFS"] {
            assert!(out.contains(fsname), "{mode:?}: missing {fsname}");
        }
        assert!(out.contains("speedup of C-FFS over conventional"));
    }
}

#[test]
fn e4_rows_cover_all_phases() {
    let rows = smallfile::run_all(MetadataMode::Delayed, small());
    assert_eq!(rows.len(), 5 * 4, "5 file systems x 4 phases");
    for r in &rows {
        assert!(r.elapsed.as_nanos() > 0, "{}/{} took zero time", r.fs, r.phase);
        assert!(r.items > 0);
    }
}

#[test]
fn e6_filesize_point() {
    let (create, read) = filesize::point(cffs_core::CffsConfig::cffs(), 4096);
    assert!(create > 0.0 && read > 0.0);
}

#[test]
fn e7_aging_point() {
    let (c, r, util) = aging::point(cffs_core::CffsConfig::cffs(), 0.3, 1500);
    assert!(c > 0.0 && r > 0.0);
    assert!((0.05..0.9).contains(&util), "utilization {util}");
}

#[test]
fn e8_diskreqs() {
    let out = diskreqs::run(small());
    assert!(out.contains("claims vs counters"));
    assert!(out.contains("sync writes per create"));
}

#[test]
fn e9_apps() {
    let out = apps::run(MetadataMode::Synchronous, DevTreeParams::small());
    for phase in ["untar", "copy", "compile", "search", "clean"] {
        assert!(out.contains(phase), "missing {phase}");
    }
    assert!(out.contains("10-300%"));
}

#[test]
fn e10_dirsize() {
    let out = dirsize::run();
    assert!(out.contains("static preallocation"));
    assert!(out.contains("entries"));
}

#[test]
fn e12_postmark() {
    let out = postmark::run(
        MetadataMode::Delayed,
        cffs_workloads::postmark::PostmarkParams::small(),
    );
    for needle in ["pm-create", "pm-transactions", "pm-delete", "C-FFS speedup"] {
        assert!(out.contains(needle), "missing {needle:?}");
    }
}

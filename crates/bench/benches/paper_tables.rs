//! One micro-bench per paper table/figure: each runs a scaled-down
//! version of the corresponding `repro_*` experiment, so `cargo bench`
//! exercises every reproduction end to end and tracks its wall-clock cost.
//! (The full-size runs and the reported numbers live in the `repro_*`
//! binaries; see EXPERIMENTS.md.)

use cffs_bench::experiments;
use cffs_bench::microbench::bench;
use cffs_fslib::MetadataMode;
use cffs_workloads::appdev::DevTreeParams;
use cffs_workloads::smallfile::SmallFileParams;
use std::hint::black_box;

fn main() {
    bench("paper/e1_table1_drives", 200, || {
        black_box(experiments::table1::run())
    });
    bench("paper/e2_fig2_access_time", 200, || {
        black_box(experiments::fig2::run(50))
    });
    bench("paper/e3_table2_testbed", 200, || {
        black_box(experiments::table2::run())
    });

    let sf = SmallFileParams { nfiles: 300, ndirs: 20, ..SmallFileParams::default() };
    bench("paper/e4_smallfile_sync", 500, || {
        black_box(experiments::smallfile::run(MetadataMode::Synchronous, sf))
    });
    bench("paper/e5_smallfile_softdep", 500, || {
        black_box(experiments::smallfile::run(MetadataMode::Delayed, sf))
    });
    bench("paper/e6_filesize_point_8k", 500, || {
        black_box(experiments::filesize::point(
            cffs_core::CffsConfig::cffs(),
            black_box(8192),
        ))
    });
    bench("paper/e7_aging_point", 500, || {
        black_box(experiments::aging::point(cffs_core::CffsConfig::cffs(), 0.5, 2000))
    });
    bench("paper/e8_diskreqs", 500, || {
        black_box(experiments::diskreqs::run(sf))
    });
    let dev = DevTreeParams::small();
    bench("paper/e9_apps", 500, || {
        black_box(experiments::apps::run(MetadataMode::Synchronous, dev))
    });
    bench("paper/e10_dirsize_point", 200, || {
        // One population point of the E10 sweep.
        let fs = cffs::build::on_disk(
            cffs_disksim::models::tiny_test_disk(),
            cffs_core::CffsConfig::cffs(),
        );
        let root = fs.root();
        let dir = fs.mkdir(root, "d").unwrap();
        for i in 0..100 {
            fs.create(dir, &format!("file{i:05}")).unwrap();
        }
        black_box(fs.getattr(dir).unwrap().size)
    });
}

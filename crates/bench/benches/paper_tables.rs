//! One criterion bench per paper table/figure: each runs a scaled-down
//! version of the corresponding `repro_*` experiment, so `cargo bench`
//! exercises every reproduction end to end and tracks its wall-clock cost.
//! (The full-size runs and the reported numbers live in the `repro_*`
//! binaries; see EXPERIMENTS.md.)

use cffs_bench::experiments;
use cffs_fslib::MetadataMode;
use cffs_workloads::appdev::DevTreeParams;
use cffs_workloads::smallfile::SmallFileParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);

    g.bench_function("e1_table1_drives", |b| b.iter(|| black_box(experiments::table1::run())));
    g.bench_function("e2_fig2_access_time", |b| {
        b.iter(|| black_box(experiments::fig2::run(50)))
    });
    g.bench_function("e3_table2_testbed", |b| b.iter(|| black_box(experiments::table2::run())));

    let sf = SmallFileParams { nfiles: 300, ndirs: 20, ..SmallFileParams::default() };
    g.bench_function("e4_smallfile_sync", |b| {
        b.iter(|| black_box(experiments::smallfile::run(MetadataMode::Synchronous, sf)))
    });
    g.bench_function("e5_smallfile_softdep", |b| {
        b.iter(|| black_box(experiments::smallfile::run(MetadataMode::Delayed, sf)))
    });
    g.bench_function("e6_filesize_point_8k", |b| {
        b.iter(|| {
            black_box(experiments::filesize::point(
                cffs_core::CffsConfig::cffs(),
                black_box(8192),
            ))
        })
    });
    g.bench_function("e7_aging_point", |b| {
        b.iter(|| {
            black_box(experiments::aging::point(cffs_core::CffsConfig::cffs(), 0.5, 2000))
        })
    });
    g.bench_function("e8_diskreqs", |b| {
        b.iter(|| black_box(experiments::diskreqs::run(sf)))
    });
    let dev = DevTreeParams::small();
    g.bench_function("e9_apps", |b| {
        b.iter(|| black_box(experiments::apps::run(MetadataMode::Synchronous, dev)))
    });
    g.bench_function("e10_dirsize_point", |b| {
        b.iter(|| {
            // One population point of the E10 sweep.
            let mut fs = cffs::build::on_disk(
                cffs_disksim::models::tiny_test_disk(),
                cffs_core::CffsConfig::cffs(),
            );
            use cffs::prelude::*;
            let root = fs.root();
            let dir = fs.mkdir(root, "d").unwrap();
            for i in 0..100 {
                fs.create(dir, &format!("file{i:05}")).unwrap();
            }
            black_box(fs.getattr(dir).unwrap().size)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

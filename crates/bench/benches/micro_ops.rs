//! Criterion micro-benchmarks of the hot file-system operations, run on
//! both C-FFS and the classic FFS baseline. These measure *implementation*
//! speed (wall-clock of the Rust code), complementing the `repro_*`
//! binaries which report *simulated* time.

use cffs::build;
use cffs::core::CffsConfig;
use cffs::ffs::FfsOptions;
use cffs::prelude::*;
use cffs_disksim::models;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fresh_cffs() -> impl FileSystem {
    build::on_disk(models::tiny_test_disk(), CffsConfig::cffs())
}

fn fresh_ffs() -> impl FileSystem {
    build::ffs_on_disk(models::tiny_test_disk(), FfsOptions::default())
}

fn bench_create(c: &mut Criterion) {
    let mut g = c.benchmark_group("create");
    g.sample_size(20);
    g.bench_function("cffs", |b| {
        b.iter_batched(
            fresh_cffs,
            |mut fs| {
                let root = fs.root();
                let dir = fs.mkdir(root, "d").unwrap();
                for i in 0..200 {
                    black_box(fs.create(dir, &format!("f{i}")).unwrap());
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("ffs", |b| {
        b.iter_batched(
            fresh_ffs,
            |mut fs| {
                let root = fs.root();
                let dir = fs.mkdir(root, "d").unwrap();
                for i in 0..200 {
                    black_box(fs.create(dir, &format!("f{i}")).unwrap());
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup");
    g.sample_size(30);
    let mut fs = fresh_cffs();
    let root = fs.root();
    let dir = fs.mkdir(root, "d").unwrap();
    for i in 0..500 {
        fs.create(dir, &format!("f{i}")).unwrap();
    }
    g.bench_function("cffs_warm_500_entries", |b| {
        b.iter(|| {
            for i in (0..500).step_by(7) {
                black_box(fs.lookup(dir, &format!("f{i}")).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_write_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_read_64k");
    g.sample_size(20);
    let mut fs = fresh_cffs();
    let root = fs.root();
    let ino = fs.create(root, "big").unwrap();
    let data = vec![0xA5u8; 64 * 1024];
    let mut buf = vec![0u8; 64 * 1024];
    g.bench_function("cffs_overwrite_and_read", |b| {
        b.iter(|| {
            fs.write(ino, 0, black_box(&data)).unwrap();
            black_box(fs.read(ino, 0, &mut buf).unwrap());
        })
    });
    g.finish();
}

fn bench_readdir(c: &mut Criterion) {
    let mut g = c.benchmark_group("readdir_1000");
    g.sample_size(20);
    let mut fs = fresh_cffs();
    let root = fs.root();
    let dir = fs.mkdir(root, "big").unwrap();
    for i in 0..1000 {
        fs.create(dir, &format!("entry{i:04}")).unwrap();
    }
    g.bench_function("cffs", |b| b.iter(|| black_box(fs.readdir(dir).unwrap().len())));
    g.finish();
}

criterion_group!(benches, bench_create, bench_lookup, bench_write_read, bench_readdir);
criterion_main!(benches);

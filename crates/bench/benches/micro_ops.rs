//! Micro-benchmarks of the hot file-system operations, run on both C-FFS
//! and the classic FFS baseline. These measure *implementation* speed
//! (wall-clock of the Rust code), complementing the `repro_*` binaries
//! which report *simulated* time.

use cffs::build;
use cffs::core::CffsConfig;
use cffs::ffs::FfsOptions;
use cffs::prelude::*;
use cffs_bench::microbench::{bench, bench_with_setup};
use cffs_disksim::models;
use std::hint::black_box;

fn fresh_cffs() -> impl FileSystem {
    build::on_disk(models::tiny_test_disk(), CffsConfig::cffs())
}

fn fresh_ffs() -> impl FileSystem {
    build::ffs_on_disk(models::tiny_test_disk(), FfsOptions::default())
}

fn bench_create() {
    bench_with_setup("create/cffs", 300, fresh_cffs, |mut fs| {
        let root = fs.root();
        let dir = fs.mkdir(root, "d").unwrap();
        for i in 0..200 {
            black_box(fs.create(dir, &format!("f{i}")).unwrap());
        }
    });
    bench_with_setup("create/ffs", 300, fresh_ffs, |mut fs| {
        let root = fs.root();
        let dir = fs.mkdir(root, "d").unwrap();
        for i in 0..200 {
            black_box(fs.create(dir, &format!("f{i}")).unwrap());
        }
    });
}

fn bench_lookup() {
    let mut fs = fresh_cffs();
    let root = fs.root();
    let dir = fs.mkdir(root, "d").unwrap();
    for i in 0..500 {
        fs.create(dir, &format!("f{i}")).unwrap();
    }
    bench("lookup/cffs_warm_500_entries", 300, || {
        for i in (0..500).step_by(7) {
            black_box(fs.lookup(dir, &format!("f{i}")).unwrap());
        }
    });
}

fn bench_write_read() {
    let mut fs = fresh_cffs();
    let root = fs.root();
    let ino = fs.create(root, "big").unwrap();
    let data = vec![0xA5u8; 64 * 1024];
    let mut buf = vec![0u8; 64 * 1024];
    bench("write_read_64k/cffs_overwrite_and_read", 300, || {
        fs.write(ino, 0, black_box(&data)).unwrap();
        black_box(fs.read(ino, 0, &mut buf).unwrap());
    });
}

fn bench_readdir() {
    let mut fs = fresh_cffs();
    let root = fs.root();
    let dir = fs.mkdir(root, "big").unwrap();
    for i in 0..1000 {
        fs.create(dir, &format!("entry{i:04}")).unwrap();
    }
    bench("readdir_1000/cffs", 300, || {
        black_box(fs.readdir(dir).unwrap().len())
    });
}

fn main() {
    bench_create();
    bench_lookup();
    bench_write_read();
    bench_readdir();
}

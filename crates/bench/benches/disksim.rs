//! Criterion micro-benchmarks of the substrate: disk service-time engine,
//! request scheduling/coalescing, allocation bitmaps.

use cffs_disksim::driver::{Driver, DriverConfig, IoReq, Scheduler};
use cffs_disksim::{models, Disk, SimTime};
use cffs_fslib::Bitmap;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_disk_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("disk_access");
    g.bench_function("random_4k_writes", |b| {
        let mut disk = Disk::new(models::seagate_st31200());
        let buf = vec![0u8; 4096];
        let cap = disk.capacity_sectors() - 8;
        let mut t = SimTime::ZERO;
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos + 987_654_321) % cap;
            t = disk.write(t, black_box(pos), &buf);
            black_box(t)
        })
    });
    g.bench_function("sequential_64k_reads", |b| {
        let mut disk = Disk::new(models::seagate_st31200());
        let mut buf = vec![0u8; 65536];
        let mut t = SimTime::ZERO;
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos + 128) % (disk.capacity_sectors() - 128);
            t = disk.read(t, black_box(pos), &mut buf);
            black_box(t)
        })
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_batch_64");
    for sched in [Scheduler::Fcfs, Scheduler::CLook, Scheduler::Sstf] {
        g.bench_function(format!("{sched:?}"), |b| {
            b.iter_batched(
                || {
                    let drv = Driver::new(
                        Disk::new(models::seagate_st31200()),
                        DriverConfig { scheduler: sched },
                    );
                    let reqs: Vec<IoReq> = (0..64)
                        .map(|i| IoReq::write((i * 997_001) % 2_000_000, vec![0u8; 4096]))
                        .collect();
                    (drv, reqs)
                },
                |(mut drv, reqs)| black_box(drv.submit_batch(reqs).len()),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap");
    g.bench_function("find_free_run_16_fragmented", |b| {
        let mut bm = Bitmap::new(2048);
        for i in (0..2048).step_by(3) {
            bm.set(i);
        }
        b.iter(|| black_box(bm.find_free_run(black_box(700), 2)))
    });
    g.bench_function("alloc_free_cycle", |b| {
        let mut bm = Bitmap::new(2048);
        b.iter(|| {
            let i = bm.find_free(900).unwrap();
            bm.set(i);
            bm.clear(i);
            black_box(i)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_disk_access, bench_scheduler, bench_bitmap);
criterion_main!(benches);

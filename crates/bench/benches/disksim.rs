//! Micro-benchmarks of the substrate: disk service-time engine, request
//! scheduling/coalescing, allocation bitmaps.

use cffs_bench::microbench::{bench, bench_with_setup};
use cffs_disksim::driver::{Driver, DriverConfig, IoReq, Scheduler};
use cffs_disksim::{models, Disk, SimTime};
use cffs_fslib::Bitmap;
use std::hint::black_box;

fn bench_disk_access() {
    {
        let mut disk = Disk::new(models::seagate_st31200());
        let buf = vec![0u8; 4096];
        let cap = disk.capacity_sectors() - 8;
        let mut t = SimTime::ZERO;
        let mut pos = 0u64;
        bench("disk_access/random_4k_writes", 200, || {
            pos = (pos + 987_654_321) % cap;
            t = disk.write(t, black_box(pos), &buf);
            t
        });
    }
    {
        let mut disk = Disk::new(models::seagate_st31200());
        let mut buf = vec![0u8; 65536];
        let cap = disk.capacity_sectors() - 128;
        let mut t = SimTime::ZERO;
        let mut pos = 0u64;
        bench("disk_access/sequential_64k_reads", 200, || {
            pos = (pos + 128) % cap;
            t = disk.read(t, black_box(pos), &mut buf);
            t
        });
    }
}

fn bench_scheduler() {
    for sched in [Scheduler::Fcfs, Scheduler::CLook, Scheduler::Sstf] {
        bench_with_setup(
            &format!("scheduler_batch_64/{sched:?}"),
            200,
            || {
                let drv = Driver::new(
                    Disk::new(models::seagate_st31200()),
                    DriverConfig { scheduler: sched },
                );
                let reqs: Vec<IoReq> = (0..64)
                    .map(|i| IoReq::write((i * 997_001) % 2_000_000, vec![0u8; 4096]))
                    .collect();
                (drv, reqs)
            },
            |(drv, reqs)| black_box(drv.submit_batch(reqs).len()),
        );
    }
}

fn bench_bitmap() {
    {
        let mut bm = Bitmap::new(2048);
        for i in (0..2048).step_by(3) {
            bm.set(i);
        }
        bench("bitmap/find_free_run_16_fragmented", 100, || {
            black_box(bm.find_free_run(black_box(700), 2))
        });
    }
    {
        let mut bm = Bitmap::new(2048);
        bench("bitmap/alloc_free_cycle", 100, || {
            let i = bm.find_free(900).unwrap();
            bm.set(i);
            bm.clear(i);
            i
        });
    }
}

fn main() {
    bench_disk_access();
    bench_scheduler();
    bench_bitmap();
}

#![warn(missing_docs)]

//! # cffs-bench
//!
//! The reproduction harness. Each module under [`experiments`] regenerates
//! one table or figure from the paper (see `DESIGN.md` §3 for the
//! experiment index); the `repro_*` binaries are thin wrappers, and
//! `repro_all` runs the whole suite. Wall-clock micro-benches live under
//! `benches/` (plain `main` harnesses; see [`microbench`]).

pub mod experiments;
pub mod microbench;
pub mod report;

pub use report::{phase_table, speedup};

#![warn(missing_docs)]

//! # cffs-bench
//!
//! The reproduction harness. Each module under [`experiments`] regenerates
//! one table or figure from the paper (see `DESIGN.md` §3 for the
//! experiment index); the `repro_*` binaries are thin wrappers, and
//! `repro_all` runs the whole suite. Wall-clock micro-benches live under
//! `benches/` (plain `main` harnesses; see [`microbench`]).

pub mod experiments;
pub mod microbench;
pub mod report;

pub use report::{phase_table, speedup};

/// Wire the process-global telemetry sinks from a binary's argv — the
/// shared implementation of the `repro_*` flags:
///
/// * `--feed PATH` streams a live JSONL telemetry feed to PATH (watch it
///   with `cffs-top --follow PATH`);
/// * `--flight DIR` arms the forensic flight recorder: every stack
///   mounted afterwards keeps a bounded black box of recent frames,
///   spans, and signal/regroup events, persisted atomically under DIR as
///   `FLIGHT_<label>.jsonl` on every cut and flushed on panic, fsck
///   failure, or bench-writer death (`cffs-inspect postmortem` reads the
///   dumps).
pub fn wire_telemetry(args: &[String]) {
    if let Some(i) = args.iter().position(|a| a == "--feed") {
        let path = args.get(i + 1).expect("--feed needs a path");
        cffs_obs::feed::set_global(path).expect("create telemetry feed");
    }
    if let Some(i) = args.iter().position(|a| a == "--flight") {
        let dir = args.get(i + 1).expect("--flight needs a directory");
        cffs_obs::flight::set_global(dir).expect("create flight directory");
    }
}

//! E12 (extra): PostMark-style server workload on all five file systems.
//! Usage: repro_postmark [--mode sync|softdep|both] [--transactions N]

use cffs_bench::experiments::postmark;
use cffs_fslib::MetadataMode;
use cffs_workloads::postmark::PostmarkParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let params = PostmarkParams {
        transactions: get("--transactions", "10000").parse().expect("--transactions"),
        ..PostmarkParams::default()
    };
    match get("--mode", "both").as_str() {
        "sync" => print!("{}", postmark::run(MetadataMode::Synchronous, params)),
        "softdep" => print!("{}", postmark::run(MetadataMode::Delayed, params)),
        _ => {
            print!("{}", postmark::run(MetadataMode::Synchronous, params));
            print!("{}", postmark::run(MetadataMode::Delayed, params));
        }
    }
}

//! E12 (extra): PostMark-style server workload on all five file systems.
//! Usage: repro_postmark [--mode sync|softdep|both] [--transactions N] [--seed N]

use cffs_bench::experiments::postmark;
use cffs_bench::report::emit_bench;
use cffs_fslib::MetadataMode;
use cffs_workloads::postmark::PostmarkParams;

fn run_mode(mode: MetadataMode, params: PostmarkParams, bench: &str) {
    let (text, json) = postmark::report(mode, params);
    print!("{text}");
    emit_bench(bench, json);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let params = PostmarkParams {
        transactions: get("--transactions", "10000").parse().expect("--transactions"),
        seed: get("--seed", "1997").parse().expect("--seed"),
        ..PostmarkParams::default()
    };
    match get("--mode", "both").as_str() {
        "sync" => run_mode(MetadataMode::Synchronous, params, "POSTMARK_SYNC"),
        "softdep" => run_mode(MetadataMode::Delayed, params, "POSTMARK_SOFTDEP"),
        _ => {
            run_mode(MetadataMode::Synchronous, params, "POSTMARK_SYNC");
            run_mode(MetadataMode::Delayed, params, "POSTMARK_SOFTDEP");
        }
    }
}

//! E8: disk-request accounting — the order-of-magnitude claim, the
//! sync-write reduction, the delete improvement and the blocks-dirtied
//! halving, all read out of the counters.
//! Usage: repro_diskreqs [--files N]

use cffs_bench::experiments::diskreqs;
use cffs_bench::report::emit_bench;
use cffs_workloads::smallfile::SmallFileParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let nfiles = args
        .iter()
        .position(|a| a == "--files")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--files"))
        .unwrap_or(10_000);
    let params = SmallFileParams { nfiles, ..SmallFileParams::default() };
    let (text, json) = diskreqs::report(params);
    print!("{text}");
    emit_bench("DISKREQS", json);
}

//! E4/E5: the small-file micro-benchmark (paper Section 4.2).
//!
//! Usage:
//!   repro_smallfile [--mode sync|softdep|both] [--files N] [--size BYTES]
//!                   [--dirs N] [--order roundrobin|dirmajor] [--seed N]
//!                   [--feed PATH] [--flight DIR]
//!
//! `--feed` streams a live telemetry feed (one tap per measured file
//! system) to PATH; watch it with `cffs-top --follow PATH`.
//! `--flight` arms the forensic flight recorder: each mounted stack
//! keeps a black box persisted under DIR as `FLIGHT_<label>.jsonl`
//! (analyze with `cffs-inspect postmortem`).

use cffs_bench::experiments::smallfile;
use cffs_bench::report::{emit_artifact, emit_bench};
use cffs_fslib::MetadataMode;
use cffs_workloads::smallfile::{Assignment, SmallFileParams};

fn run_mode(mode: MetadataMode, params: SmallFileParams, bench: &str) {
    let (text, json, fold) = smallfile::report_with_folds(mode, params);
    print!("{text}");
    emit_bench(bench, json);
    // Collapsed-stack fold of the C-FFS run (phase;op;queue|service),
    // renderable by any flamegraph tool.
    emit_artifact(&format!("FOLD_{bench}.txt"), &fold.collapse());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    cffs_bench::wire_telemetry(&args);
    let params = SmallFileParams {
        nfiles: get("--files", "10000").parse().expect("--files"),
        file_size: get("--size", "1024").parse().expect("--size"),
        ndirs: get("--dirs", "100").parse().expect("--dirs"),
        order: match get("--order", "roundrobin").as_str() {
            "dirmajor" => Assignment::DirMajor,
            _ => Assignment::RoundRobin,
        },
        seed: get("--seed", "1997").parse().expect("--seed"),
    };
    match get("--mode", "both").as_str() {
        "sync" => run_mode(MetadataMode::Synchronous, params, "SMALLFILE_SYNC"),
        "softdep" => run_mode(MetadataMode::Delayed, params, "SMALLFILE_SOFTDEP"),
        _ => {
            run_mode(MetadataMode::Synchronous, params, "SMALLFILE_SYNC");
            run_mode(MetadataMode::Delayed, params, "SMALLFILE_SOFTDEP");
        }
    }
}

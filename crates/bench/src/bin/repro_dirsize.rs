//! E10: directory growth vs static inode preallocation.

fn main() {
    print!("{}", cffs_bench::experiments::dirsize::run());
}

//! E10: directory growth vs static inode preallocation.

use cffs_bench::experiments::dirsize;
use cffs_bench::report::emit_bench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let (text, json) = dirsize::report();
    print!("{text}");
    emit_bench("DIRSIZE", json);
}

//! CI schema gate for `BENCH_*.json` files.
//!
//! Usage: bench_schema_check <file.json>...
//!
//! Each file must parse with the in-tree JSON reader and carry the
//! observability payload the analysis tooling relies on: a non-empty
//! `rows` array whose rows each have a `counters` snapshot with a
//! `histograms` member and a `latency_ns` summary, with per-op
//! `p50_ns`/`p90_ns`/`p99_ns` present somewhere in the file. Exits
//! nonzero naming the first violation.

use cffs_obs::json::{parse, Json};

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let j = parse(&text).map_err(|e| format!("parse: {e}"))?;
    let rows = j
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("no \"rows\" array")?;
    if rows.is_empty() {
        return Err("\"rows\" is empty".into());
    }
    let mut saw_percentiles = false;
    for (i, row) in rows.iter().enumerate() {
        let counters = row.get("counters").ok_or(format!("row {i}: no \"counters\""))?;
        counters
            .get("histograms")
            .ok_or(format!("row {i}: counters lack \"histograms\""))?;
        let lat = row.get("latency_ns").ok_or(format!("row {i}: no \"latency_ns\""))?;
        let Json::Obj(ops) = lat else {
            return Err(format!("row {i}: \"latency_ns\" is not an object"));
        };
        for (op, summary) in ops {
            for field in ["count", "mean_ns", "p50_ns", "p90_ns", "p99_ns"] {
                summary
                    .get(field)
                    .and_then(Json::as_u64)
                    .ok_or(format!("row {i}: latency_ns.{op}.{field} missing"))?;
            }
            saw_percentiles = true;
        }
    }
    if !saw_percentiles {
        return Err("no row reported any per-op latency percentiles".into());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: bench_schema_check <BENCH_*.json>...");
        std::process::exit(2);
    }
    for path in &args {
        match check(path) {
            Ok(()) => println!("ok {path}"),
            Err(e) => {
                eprintln!("bench_schema_check: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

//! CI schema gate for `BENCH_*.json` files and telemetry feeds.
//!
//! Usage: bench_schema_check <file.json>...
//!        bench_schema_check --feed <feed.jsonl>...
//!
//! `--feed` switches to feed mode: each file is a JSONL telemetry feed
//! (written by a repro binary's `--feed` flag) and every frame must
//! validate against `cffs_obs::feed::validate_frame` — the same checker
//! the feed unit tests use, so the frame schema cannot drift from CI.
//!
//! Each file must parse with the in-tree JSON reader and carry the
//! observability payload the analysis tooling relies on: a non-empty
//! `rows` array whose rows each have a `counters` snapshot with a
//! `histograms` member, a `latency_ns` summary with per-op
//! `p50_ns`/`p90_ns`/`p99_ns` present somewhere in the file, and a
//! `time_attribution` object whose four `*_ns` buckets partition
//! `total_ns` and whose percentages sum to 100 ± rounding. Exits
//! nonzero naming the first violation.

use cffs_obs::json::{parse, Json};

/// Validate one row's `time_attribution` object: buckets must be a
/// partition of `total_ns` and the four percentages must sum to ~100
/// (exactly 0 for an empty window).
fn check_attribution(i: usize, attr: &Json) -> Result<(), String> {
    let field = |name: &str| -> Result<u64, String> {
        attr.get(name)
            .and_then(Json::as_u64)
            .ok_or(format!("row {i}: time_attribution.{name} missing"))
    };
    let (op, queue, service, idle) =
        (field("op_ns")?, field("queue_ns")?, field("service_ns")?, field("idle_ns")?);
    let total = field("total_ns")?;
    if op + queue + service + idle != total {
        return Err(format!(
            "row {i}: time_attribution buckets sum to {} != total_ns {total}",
            op + queue + service + idle
        ));
    }
    let mut pct_sum = 0.0;
    for name in ["op_pct", "queue_pct", "service_pct", "idle_pct"] {
        pct_sum += attr
            .get(name)
            .and_then(Json::as_f64)
            .ok_or(format!("row {i}: time_attribution.{name} missing"))?;
    }
    let expect = if total == 0 { 0.0 } else { 100.0 };
    if (pct_sum - expect).abs() > 0.1 {
        return Err(format!(
            "row {i}: time_attribution percentages sum to {pct_sum}, want {expect} ± 0.1"
        ));
    }
    Ok(())
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let j = parse(&text).map_err(|e| format!("parse: {e}"))?;
    let rows = j
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("no \"rows\" array")?;
    if rows.is_empty() {
        return Err("\"rows\" is empty".into());
    }
    let mut saw_percentiles = false;
    for (i, row) in rows.iter().enumerate() {
        let counters = row.get("counters").ok_or(format!("row {i}: no \"counters\""))?;
        counters
            .get("histograms")
            .ok_or(format!("row {i}: counters lack \"histograms\""))?;
        let lat = row.get("latency_ns").ok_or(format!("row {i}: no \"latency_ns\""))?;
        let Json::Obj(ops) = lat else {
            return Err(format!("row {i}: \"latency_ns\" is not an object"));
        };
        for (op, summary) in ops {
            for field in ["count", "mean_ns", "p50_ns", "p90_ns", "p99_ns"] {
                summary
                    .get(field)
                    .and_then(Json::as_u64)
                    .ok_or(format!("row {i}: latency_ns.{op}.{field} missing"))?;
            }
            saw_percentiles = true;
        }
        let attr = row
            .get("time_attribution")
            .ok_or(format!("row {i}: no \"time_attribution\""))?;
        check_attribution(i, attr)?;
    }
    if !saw_percentiles {
        return Err("no row reported any per-op latency percentiles".into());
    }
    Ok(())
}

/// Feed mode: parse + validate every frame, and require at least one
/// (an empty feed means the producer never cut a frame — a wiring bug,
/// not a quiet success).
fn check_feed(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let frames = cffs_obs::feed::parse_feed(&text)?;
    if frames.is_empty() {
        return Err("feed has no frames".into());
    }
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let feed_mode = args.first().is_some_and(|a| a == "--feed");
    if feed_mode {
        args.remove(0);
    }
    if args.is_empty() {
        eprintln!("usage: bench_schema_check [--feed] <file>...");
        std::process::exit(2);
    }
    for path in &args {
        match if feed_mode { check_feed(path) } else { check(path) } {
            Ok(()) => println!("ok {path}"),
            Err(e) => {
                eprintln!("bench_schema_check: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

//! CI performance gate for `BENCH_*.json` files.
//!
//! Usage: bench_gate <current.json> <baseline.json> [--tolerance-pct N]
//!
//! Compares a freshly produced BENCH payload against a checked-in
//! baseline. Rows are matched by `(fs, phase)`; for every baseline row
//! the gate requires, within the tolerance band (default 25%):
//!
//! * per-op `latency_ns.*.p90_ns` must not regress above
//!   `baseline * (1 + tol)`, widened to one log2 bucket step (p90s land
//!   on bucket edges, so a single-bucket flip is noise) and skipped for
//!   ops with fewer than 200 baseline samples;
//! * the `group_fetch_util_pct` histogram mean must not drop below
//!   `baseline * (1 - tol)` (higher is better, so no upper bound);
//! * the `time_attribution.service_pct` share must not drop below
//!   `baseline * (1 - tol)` — the small-file story is "more of the
//!   phase is mechanical service, less is queueing" and a falling
//!   service share means that attribution regressed;
//! * if both payloads carry a top-level `recovery_ratio`, the current one
//!   must not drop below `baseline * (1 - tol)`;
//! * if both payloads carry a top-level `scaling_ratio` (E14, concurrent
//!   scaling), the current one must not drop below `baseline * (1 - tol)`
//!   **and** must clear the absolute acceptance bar of 2.5× — the
//!   4-thread aggregate must genuinely outrun the 1-thread baseline, not
//!   merely track a degraded baseline; `aggregate_ops_per_sec` gets the
//!   same relative floor;
//! * if both payloads carry a top-level `volume_scaling_ratio` (E16,
//!   scale-out volume sets), the same relative floor applies with an
//!   absolute acceptance bar of 3.0× — the 4-volume aggregate against
//!   the 1-volume baseline;
//! * if both payloads carry the E15 namei fields, the warm dcache hit
//!   rate gets a relative floor plus the absolute ≥ 0.90 acceptance bar,
//!   the warm lookup `namei_warm_p99_ns` gets a ceiling, and the
//!   `namei_p99_speedup` over the no-dcache ablation gets a relative
//!   floor plus the absolute ≥ 5.0 bar.
//!
//! The simulated timeline is deterministic, so unchanged code reproduces
//! the baseline exactly; the band absorbs small intentional shifts.
//! Improvements beyond the band pass but are called out so the baseline
//! gets refreshed. Exits nonzero listing every violation.

use cffs_obs::json::{parse, Json};
use cffs_obs::obj;

struct Gate {
    tol: f64,
    violations: Vec<String>,
    notices: Vec<String>,
    /// One row per vetted bound, pass or fail — the machine-readable
    /// mirror of the text output, emitted as `GATE_REPORT_<stem>.json`
    /// so a CI failure is diagnosable without re-running the gate.
    checks: Vec<Json>,
}

impl Gate {
    /// Record one vetted bound in the machine-readable report.
    fn check(&mut self, what: &str, kind: &str, measured: f64, bound: f64, pass: bool) {
        self.checks.push(obj![
            ("what", Json::Str(what.to_string())),
            ("kind", Json::Str(kind.to_string())),
            ("measured", Json::Float(measured)),
            ("bound", Json::Float(bound)),
            ("pass", Json::Bool(pass)),
        ]);
    }

    /// Record a violation with no measurable bound (a row or field that
    /// disappeared from one payload).
    fn fail(&mut self, what: &str, msg: String) {
        self.checks.push(obj![
            ("what", Json::Str(what.to_string())),
            ("kind", Json::Str("present".to_string())),
            ("measured", Json::Null),
            ("bound", Json::Null),
            ("pass", Json::Bool(false)),
        ]);
        self.violations.push(msg);
    }

    /// `current` must stay at or below `base * (1 + tol)`.
    fn ceil(&mut self, what: &str, current: f64, base: f64) {
        let bound = base * (1.0 + self.tol);
        let pass = current <= bound;
        self.check(what, "ceil", current, bound, pass);
        if !pass {
            self.violations
                .push(format!("{what}: {current:.0} regressed past {base:.0} (+{:.0}%)", self.tol * 100.0));
        } else if current < base * (1.0 - self.tol) {
            self.notices
                .push(format!("{what}: {current:.0} improved well below baseline {base:.0} — refresh the baseline"));
        }
    }

    /// `current` must stay at or above `base * (1 - tol)`.
    fn floor(&mut self, what: &str, current: f64, base: f64) {
        let bound = base * (1.0 - self.tol);
        let pass = current >= bound;
        self.check(what, "floor", current, bound, pass);
        if !pass {
            self.violations
                .push(format!("{what}: {current:.2} dropped below {base:.2} (-{:.0}%)", self.tol * 100.0));
        }
    }

    /// `current` must clear an absolute acceptance bar (no tolerance —
    /// the bar *is* the acceptance criterion).
    fn floor_abs(&mut self, what: &str, current: f64, bar: f64) {
        let pass = current >= bar;
        self.check(what, "floor_abs", current, bar, pass);
        if !pass {
            self.violations.push(format!(
                "{what}: {current:.2} below the absolute acceptance floor {bar:.1}"
            ));
        }
    }

    /// [`Gate::ceil`] for log2-bucket quantiles (the `latency_ns` p90s):
    /// a quantile can only land on a bucket edge, so any ceiling below
    /// the next edge is unreachable and a single-bucket flip is
    /// indistinguishable from sampling noise under multi-threaded
    /// nondeterminism. The band is therefore widened to one bucket step
    /// (2×) in both directions; a genuine ≥ 2-bucket regression still
    /// fails.
    fn ceil_quantile(&mut self, what: &str, current: f64, base: f64) {
        let bound = (base * (1.0 + self.tol)).max(base * 2.0 + 1.0);
        let pass = current <= bound;
        self.check(what, "ceil_quantile", current, bound, pass);
        if !pass {
            self.violations
                .push(format!("{what}: {current:.0} regressed more than one bucket past {base:.0}"));
        } else if current < (base * (1.0 - self.tol)).min(base / 2.0 - 1.0) {
            self.notices
                .push(format!("{what}: {current:.0} improved well below baseline {base:.0} — refresh the baseline"));
        }
    }
}

fn row_key(row: &Json) -> Option<(String, String)> {
    Some((
        row.get("fs")?.as_str()?.to_string(),
        row.get("phase")?.as_str()?.to_string(),
    ))
}

/// Every row anywhere in the payload: top-level `rows`, plus `rows` nested
/// one level down in arrays like E7's `points` or E13's sweeps.
fn collect_rows(j: &Json) -> Vec<&Json> {
    fn push_rows<'a>(node: &'a Json, out: &mut Vec<&'a Json>) {
        if let Some(rows) = node.get("rows").and_then(Json::as_arr) {
            out.extend(rows.iter());
        }
    }
    let mut out = Vec::new();
    push_rows(j, &mut out);
    if let Json::Obj(members) = j {
        for (_, v) in members {
            if let Json::Arr(items) = v {
                for item in items {
                    push_rows(item, &mut out);
                }
            }
        }
    }
    out
}

fn hist_mean(row: &Json, name: &str) -> Option<f64> {
    let h = row.get("counters")?.get("histograms")?.get(name)?;
    let count = h.get("count")?.as_f64()?;
    let sum = h.get("sum")?.as_f64()?;
    if count == 0.0 {
        return None;
    }
    Some(sum / count)
}

fn compare(gate: &mut Gate, current: &Json, baseline: &Json) {
    let cur_rows = collect_rows(current);
    for base_row in collect_rows(baseline) {
        let Some(key) = row_key(base_row) else { continue };
        let Some(cur_row) = cur_rows.iter().find(|r| row_key(r).as_ref() == Some(&key)) else {
            gate.fail(
                &format!("{}/{}", key.0, key.1),
                format!("row ({}, {}) missing from current payload", key.0, key.1),
            );
            continue;
        };
        let tag = format!("{}/{}", key.0, key.1);
        if let Some(Json::Obj(ops)) = base_row.get("latency_ns") {
            for (op, summary) in ops {
                // The p90 of a small sample is bucket noise, not signal:
                // rare ops (a per-run drop_caches, a handful of syncs)
                // swing whole buckets run to run in multi-threaded
                // phases. Vet only ops with a statistically meaningful
                // baseline population.
                let base_count =
                    summary.get("count").and_then(Json::as_f64).unwrap_or(f64::INFINITY);
                if base_count < 200.0 {
                    continue;
                }
                let (Some(base_p90), Some(cur_p90)) = (
                    summary.get("p90_ns").and_then(Json::as_f64),
                    cur_row
                        .get("latency_ns")
                        .and_then(|l| l.get(op))
                        .and_then(|s| s.get("p90_ns"))
                        .and_then(Json::as_f64),
                ) else {
                    gate.fail(
                        &format!("{tag}: {op} p90_ns"),
                        format!("{tag}: latency_ns.{op}.p90_ns missing"),
                    );
                    continue;
                };
                gate.ceil_quantile(&format!("{tag}: {op} p90_ns"), cur_p90, base_p90);
            }
        }
        if let Some(base_util) = hist_mean(base_row, "group_fetch_util_pct") {
            match hist_mean(cur_row, "group_fetch_util_pct") {
                Some(cur_util) => {
                    gate.floor(&format!("{tag}: group_fetch_util_pct mean"), cur_util, base_util)
                }
                None => gate.fail(
                    &format!("{tag}: group_fetch_util_pct mean"),
                    format!("{tag}: group_fetch_util_pct histogram disappeared"),
                ),
            }
        }
        // Attribution floor: the share of a phase spent in mechanical
        // disk service is the bandwidth-exploitation story (service up,
        // queue+seek down). A drop below the band means time shifted
        // back into queueing/idle — an attribution regression.
        let service_pct = |row: &Json| {
            row.get("time_attribution")
                .and_then(|a| a.get("service_pct"))
                .and_then(Json::as_f64)
        };
        if let Some(base_svc) = service_pct(base_row).filter(|&v| v > 0.0) {
            match service_pct(cur_row) {
                Some(cur_svc) => {
                    gate.floor(&format!("{tag}: time_attribution service_pct"), cur_svc, base_svc)
                }
                None => gate.fail(
                    &format!("{tag}: time_attribution service_pct"),
                    format!("{tag}: time_attribution.service_pct disappeared"),
                ),
            }
        }
    }
    if let (Some(base_r), Some(cur_r)) = (
        baseline.get("recovery_ratio").and_then(Json::as_f64),
        current.get("recovery_ratio").and_then(Json::as_f64),
    ) {
        gate.floor("recovery_ratio", cur_r, base_r);
    }
    // Concurrent-scaling floors (E14). The relative band catches drift;
    // the absolute bar is the acceptance criterion itself, so a baseline
    // that decayed across refreshes can never quietly ratify sub-2.5×.
    if let (Some(base_s), Some(cur_s)) = (
        baseline.get("scaling_ratio").and_then(Json::as_f64),
        current.get("scaling_ratio").and_then(Json::as_f64),
    ) {
        gate.floor("scaling_ratio", cur_s, base_s);
        const MIN_SCALING: f64 = 2.5;
        gate.floor_abs("scaling_ratio", cur_s, MIN_SCALING);
    }
    if let (Some(base_a), Some(cur_a)) = (
        baseline.get("aggregate_ops_per_sec").and_then(Json::as_f64),
        current.get("aggregate_ops_per_sec").and_then(Json::as_f64),
    ) {
        gate.floor("aggregate_ops_per_sec", cur_a, base_a);
    }
    // Volume-scaling floor (E16). Same shape as the E14 gate, but the
    // absolute acceptance bar is 3.0×: the 4-volume aggregate must
    // genuinely outrun the 1-volume baseline.
    if let (Some(base_v), Some(cur_v)) = (
        baseline.get("volume_scaling_ratio").and_then(Json::as_f64),
        current.get("volume_scaling_ratio").and_then(Json::as_f64),
    ) {
        gate.floor("volume_scaling_ratio", cur_v, base_v);
        const MIN_VOLUME_SCALING: f64 = 3.0;
        gate.floor_abs("volume_scaling_ratio", cur_v, MIN_VOLUME_SCALING);
    }
    // Namei floors (E15). Same shape as the scaling gate: the relative
    // band catches drift, the absolute bars are the acceptance criteria.
    if let (Some(base_h), Some(cur_h)) = (
        baseline.get("dcache_warm_hit_rate").and_then(Json::as_f64),
        current.get("dcache_warm_hit_rate").and_then(Json::as_f64),
    ) {
        gate.floor("dcache_warm_hit_rate", cur_h, base_h);
        const MIN_HIT_RATE: f64 = 0.90;
        gate.floor_abs("dcache_warm_hit_rate", cur_h, MIN_HIT_RATE);
    }
    if let (Some(base_p), Some(cur_p)) = (
        baseline.get("namei_warm_p99_ns").and_then(Json::as_f64),
        current.get("namei_warm_p99_ns").and_then(Json::as_f64),
    ) {
        gate.ceil("namei_warm_p99_ns", cur_p, base_p);
    }
    if let (Some(base_s), Some(cur_s)) = (
        baseline.get("namei_p99_speedup").and_then(Json::as_f64),
        current.get("namei_p99_speedup").and_then(Json::as_f64),
    ) {
        gate.floor("namei_p99_speedup", cur_s, base_s);
        const MIN_SPEEDUP: f64 = 5.0;
        gate.floor_abs("namei_p99_speedup", cur_s, MIN_SPEEDUP);
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: read {path}: {e}");
        std::process::exit(2);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&String> = Vec::new();
    let mut tol_pct = 25.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance-pct" {
            tol_pct = it.next().map(|s| s.parse().expect("--tolerance-pct")).expect("--tolerance-pct needs a value");
        } else {
            positional.push(a);
        }
    }
    if positional.len() != 2 {
        eprintln!("usage: bench_gate <current.json> <baseline.json> [--tolerance-pct N]");
        std::process::exit(2);
    }
    let current = load(positional[0]);
    let baseline = load(positional[1]);
    let mut gate = Gate {
        tol: tol_pct / 100.0,
        violations: Vec::new(),
        notices: Vec::new(),
        checks: Vec::new(),
    };
    compare(&mut gate, &current, &baseline);
    write_gate_report(&gate, positional[0], positional[1], tol_pct);
    for n in &gate.notices {
        println!("note: {n}");
    }
    if gate.violations.is_empty() {
        println!("ok {} vs {} (±{tol_pct}%)", positional[0], positional[1]);
    } else {
        for v in &gate.violations {
            eprintln!("bench_gate: {v}");
        }
        std::process::exit(1);
    }
}

/// Persist the machine-readable verdict as `GATE_REPORT_<stem>.json`
/// next to the *current* payload (the freshly measured side — CI
/// collects that directory), using the bench artifacts' staging+rename
/// discipline. Failure to write is a warning, not a gate failure: the
/// verdict already went to stdout/stderr and the exit code.
fn write_gate_report(gate: &Gate, current: &str, baseline: &str, tol_pct: f64) {
    let cur = std::path::Path::new(current);
    let stem = cur.file_stem().and_then(|s| s.to_str()).unwrap_or("UNKNOWN");
    let dir = cur.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(std::path::Path::new("."));
    let path = dir.join(format!("GATE_REPORT_{stem}.json"));
    let report = obj![
        ("current", Json::Str(current.to_string())),
        ("baseline", Json::Str(baseline.to_string())),
        ("tolerance_pct", Json::Float(tol_pct)),
        ("pass", Json::Bool(gate.violations.is_empty())),
        (
            "checks_failed",
            Json::Int(gate.checks.iter().filter(|c| c.get("pass") == Some(&Json::Bool(false))).count() as i64)
        ),
        ("checks", Json::Arr(gate.checks.clone())),
        (
            "violations",
            Json::Arr(gate.violations.iter().map(|v| Json::Str(v.clone())).collect())
        ),
        (
            "notices",
            Json::Arr(gate.notices.iter().map(|n| Json::Str(n.clone())).collect())
        ),
    ];
    let tmp = dir.join(format!("GATE_REPORT_{stem}.json.{}.tmp", std::process::id()));
    let res = std::fs::write(&tmp, format!("{}\n", report.to_string_pretty()))
        .and_then(|()| std::fs::rename(&tmp, &path));
    match res {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

//! CI performance gate for `BENCH_*.json` files.
//!
//! Usage: bench_gate <current.json> <baseline.json> [--tolerance-pct N]
//!
//! Compares a freshly produced BENCH payload against a checked-in
//! baseline. Rows are matched by `(fs, phase)`; for every baseline row
//! the gate requires, within the tolerance band (default 25%):
//!
//! * per-op `latency_ns.*.p90_ns` must not regress above
//!   `baseline * (1 + tol)`, widened to one log2 bucket step (p90s land
//!   on bucket edges, so a single-bucket flip is noise) and skipped for
//!   ops with fewer than 200 baseline samples;
//! * the `group_fetch_util_pct` histogram mean must not drop below
//!   `baseline * (1 - tol)` (higher is better, so no upper bound);
//! * the `time_attribution.service_pct` share must not drop below
//!   `baseline * (1 - tol)` — the small-file story is "more of the
//!   phase is mechanical service, less is queueing" and a falling
//!   service share means that attribution regressed;
//! * if both payloads carry a top-level `recovery_ratio`, the current one
//!   must not drop below `baseline * (1 - tol)`;
//! * if both payloads carry a top-level `scaling_ratio` (E14, concurrent
//!   scaling), the current one must not drop below `baseline * (1 - tol)`
//!   **and** must clear the absolute acceptance bar of 2.5× — the
//!   4-thread aggregate must genuinely outrun the 1-thread baseline, not
//!   merely track a degraded baseline; `aggregate_ops_per_sec` gets the
//!   same relative floor;
//! * if both payloads carry a top-level `volume_scaling_ratio` (E16,
//!   scale-out volume sets), the same relative floor applies with an
//!   absolute acceptance bar of 3.0× — the 4-volume aggregate against
//!   the 1-volume baseline;
//! * if both payloads carry the E15 namei fields, the warm dcache hit
//!   rate gets a relative floor plus the absolute ≥ 0.90 acceptance bar,
//!   the warm lookup `namei_warm_p99_ns` gets a ceiling, and the
//!   `namei_p99_speedup` over the no-dcache ablation gets a relative
//!   floor plus the absolute ≥ 5.0 bar.
//!
//! The simulated timeline is deterministic, so unchanged code reproduces
//! the baseline exactly; the band absorbs small intentional shifts.
//! Improvements beyond the band pass but are called out so the baseline
//! gets refreshed. Exits nonzero listing every violation.

use cffs_obs::json::{parse, Json};

struct Gate {
    tol: f64,
    violations: Vec<String>,
    notices: Vec<String>,
}

impl Gate {
    /// `current` must stay at or below `base * (1 + tol)`.
    fn ceil(&mut self, what: &str, current: f64, base: f64) {
        if current > base * (1.0 + self.tol) {
            self.violations
                .push(format!("{what}: {current:.0} regressed past {base:.0} (+{:.0}%)", self.tol * 100.0));
        } else if current < base * (1.0 - self.tol) {
            self.notices
                .push(format!("{what}: {current:.0} improved well below baseline {base:.0} — refresh the baseline"));
        }
    }

    /// `current` must stay at or above `base * (1 - tol)`.
    fn floor(&mut self, what: &str, current: f64, base: f64) {
        if current < base * (1.0 - self.tol) {
            self.violations
                .push(format!("{what}: {current:.2} dropped below {base:.2} (-{:.0}%)", self.tol * 100.0));
        }
    }

    /// [`Gate::ceil`] for log2-bucket quantiles (the `latency_ns` p90s):
    /// a quantile can only land on a bucket edge, so any ceiling below
    /// the next edge is unreachable and a single-bucket flip is
    /// indistinguishable from sampling noise under multi-threaded
    /// nondeterminism. The band is therefore widened to one bucket step
    /// (2×) in both directions; a genuine ≥ 2-bucket regression still
    /// fails.
    fn ceil_quantile(&mut self, what: &str, current: f64, base: f64) {
        if current > (base * (1.0 + self.tol)).max(base * 2.0 + 1.0) {
            self.violations
                .push(format!("{what}: {current:.0} regressed more than one bucket past {base:.0}"));
        } else if current < (base * (1.0 - self.tol)).min(base / 2.0 - 1.0) {
            self.notices
                .push(format!("{what}: {current:.0} improved well below baseline {base:.0} — refresh the baseline"));
        }
    }
}

fn row_key(row: &Json) -> Option<(String, String)> {
    Some((
        row.get("fs")?.as_str()?.to_string(),
        row.get("phase")?.as_str()?.to_string(),
    ))
}

/// Every row anywhere in the payload: top-level `rows`, plus `rows` nested
/// one level down in arrays like E7's `points` or E13's sweeps.
fn collect_rows(j: &Json) -> Vec<&Json> {
    fn push_rows<'a>(node: &'a Json, out: &mut Vec<&'a Json>) {
        if let Some(rows) = node.get("rows").and_then(Json::as_arr) {
            out.extend(rows.iter());
        }
    }
    let mut out = Vec::new();
    push_rows(j, &mut out);
    if let Json::Obj(members) = j {
        for (_, v) in members {
            if let Json::Arr(items) = v {
                for item in items {
                    push_rows(item, &mut out);
                }
            }
        }
    }
    out
}

fn hist_mean(row: &Json, name: &str) -> Option<f64> {
    let h = row.get("counters")?.get("histograms")?.get(name)?;
    let count = h.get("count")?.as_f64()?;
    let sum = h.get("sum")?.as_f64()?;
    if count == 0.0 {
        return None;
    }
    Some(sum / count)
}

fn compare(gate: &mut Gate, current: &Json, baseline: &Json) {
    let cur_rows = collect_rows(current);
    for base_row in collect_rows(baseline) {
        let Some(key) = row_key(base_row) else { continue };
        let Some(cur_row) = cur_rows.iter().find(|r| row_key(r).as_ref() == Some(&key)) else {
            gate.violations.push(format!("row ({}, {}) missing from current payload", key.0, key.1));
            continue;
        };
        let tag = format!("{}/{}", key.0, key.1);
        if let Some(Json::Obj(ops)) = base_row.get("latency_ns") {
            for (op, summary) in ops {
                // The p90 of a small sample is bucket noise, not signal:
                // rare ops (a per-run drop_caches, a handful of syncs)
                // swing whole buckets run to run in multi-threaded
                // phases. Vet only ops with a statistically meaningful
                // baseline population.
                let base_count =
                    summary.get("count").and_then(Json::as_f64).unwrap_or(f64::INFINITY);
                if base_count < 200.0 {
                    continue;
                }
                let (Some(base_p90), Some(cur_p90)) = (
                    summary.get("p90_ns").and_then(Json::as_f64),
                    cur_row
                        .get("latency_ns")
                        .and_then(|l| l.get(op))
                        .and_then(|s| s.get("p90_ns"))
                        .and_then(Json::as_f64),
                ) else {
                    gate.violations.push(format!("{tag}: latency_ns.{op}.p90_ns missing"));
                    continue;
                };
                gate.ceil_quantile(&format!("{tag}: {op} p90_ns"), cur_p90, base_p90);
            }
        }
        if let Some(base_util) = hist_mean(base_row, "group_fetch_util_pct") {
            match hist_mean(cur_row, "group_fetch_util_pct") {
                Some(cur_util) => {
                    gate.floor(&format!("{tag}: group_fetch_util_pct mean"), cur_util, base_util)
                }
                None => gate
                    .violations
                    .push(format!("{tag}: group_fetch_util_pct histogram disappeared")),
            }
        }
        // Attribution floor: the share of a phase spent in mechanical
        // disk service is the bandwidth-exploitation story (service up,
        // queue+seek down). A drop below the band means time shifted
        // back into queueing/idle — an attribution regression.
        let service_pct = |row: &Json| {
            row.get("time_attribution")
                .and_then(|a| a.get("service_pct"))
                .and_then(Json::as_f64)
        };
        if let Some(base_svc) = service_pct(base_row).filter(|&v| v > 0.0) {
            match service_pct(cur_row) {
                Some(cur_svc) => {
                    gate.floor(&format!("{tag}: time_attribution service_pct"), cur_svc, base_svc)
                }
                None => gate
                    .violations
                    .push(format!("{tag}: time_attribution.service_pct disappeared")),
            }
        }
    }
    if let (Some(base_r), Some(cur_r)) = (
        baseline.get("recovery_ratio").and_then(Json::as_f64),
        current.get("recovery_ratio").and_then(Json::as_f64),
    ) {
        gate.floor("recovery_ratio", cur_r, base_r);
    }
    // Concurrent-scaling floors (E14). The relative band catches drift;
    // the absolute bar is the acceptance criterion itself, so a baseline
    // that decayed across refreshes can never quietly ratify sub-2.5×.
    if let (Some(base_s), Some(cur_s)) = (
        baseline.get("scaling_ratio").and_then(Json::as_f64),
        current.get("scaling_ratio").and_then(Json::as_f64),
    ) {
        gate.floor("scaling_ratio", cur_s, base_s);
        const MIN_SCALING: f64 = 2.5;
        if cur_s < MIN_SCALING {
            gate.violations.push(format!(
                "scaling_ratio: {cur_s:.2} below the absolute acceptance floor {MIN_SCALING:.1}"
            ));
        }
    }
    if let (Some(base_a), Some(cur_a)) = (
        baseline.get("aggregate_ops_per_sec").and_then(Json::as_f64),
        current.get("aggregate_ops_per_sec").and_then(Json::as_f64),
    ) {
        gate.floor("aggregate_ops_per_sec", cur_a, base_a);
    }
    // Volume-scaling floor (E16). Same shape as the E14 gate, but the
    // absolute acceptance bar is 3.0×: the 4-volume aggregate must
    // genuinely outrun the 1-volume baseline.
    if let (Some(base_v), Some(cur_v)) = (
        baseline.get("volume_scaling_ratio").and_then(Json::as_f64),
        current.get("volume_scaling_ratio").and_then(Json::as_f64),
    ) {
        gate.floor("volume_scaling_ratio", cur_v, base_v);
        const MIN_VOLUME_SCALING: f64 = 3.0;
        if cur_v < MIN_VOLUME_SCALING {
            gate.violations.push(format!(
                "volume_scaling_ratio: {cur_v:.2} below the absolute acceptance floor {MIN_VOLUME_SCALING:.1}"
            ));
        }
    }
    // Namei floors (E15). Same shape as the scaling gate: the relative
    // band catches drift, the absolute bars are the acceptance criteria.
    if let (Some(base_h), Some(cur_h)) = (
        baseline.get("dcache_warm_hit_rate").and_then(Json::as_f64),
        current.get("dcache_warm_hit_rate").and_then(Json::as_f64),
    ) {
        gate.floor("dcache_warm_hit_rate", cur_h, base_h);
        const MIN_HIT_RATE: f64 = 0.90;
        if cur_h < MIN_HIT_RATE {
            gate.violations.push(format!(
                "dcache_warm_hit_rate: {cur_h:.3} below the absolute acceptance floor {MIN_HIT_RATE:.2}"
            ));
        }
    }
    if let (Some(base_p), Some(cur_p)) = (
        baseline.get("namei_warm_p99_ns").and_then(Json::as_f64),
        current.get("namei_warm_p99_ns").and_then(Json::as_f64),
    ) {
        gate.ceil("namei_warm_p99_ns", cur_p, base_p);
    }
    if let (Some(base_s), Some(cur_s)) = (
        baseline.get("namei_p99_speedup").and_then(Json::as_f64),
        current.get("namei_p99_speedup").and_then(Json::as_f64),
    ) {
        gate.floor("namei_p99_speedup", cur_s, base_s);
        const MIN_SPEEDUP: f64 = 5.0;
        if cur_s < MIN_SPEEDUP {
            gate.violations.push(format!(
                "namei_p99_speedup: {cur_s:.2} below the absolute acceptance floor {MIN_SPEEDUP:.1}"
            ));
        }
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: read {path}: {e}");
        std::process::exit(2);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&String> = Vec::new();
    let mut tol_pct = 25.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance-pct" {
            tol_pct = it.next().map(|s| s.parse().expect("--tolerance-pct")).expect("--tolerance-pct needs a value");
        } else {
            positional.push(a);
        }
    }
    if positional.len() != 2 {
        eprintln!("usage: bench_gate <current.json> <baseline.json> [--tolerance-pct N]");
        std::process::exit(2);
    }
    let current = load(positional[0]);
    let baseline = load(positional[1]);
    let mut gate = Gate { tol: tol_pct / 100.0, violations: Vec::new(), notices: Vec::new() };
    compare(&mut gate, &current, &baseline);
    for n in &gate.notices {
        println!("note: {n}");
    }
    if gate.violations.is_empty() {
        println!("ok {} vs {} (±{tol_pct}%)", positional[0], positional[1]);
    } else {
        for v in &gate.violations {
            eprintln!("bench_gate: {v}");
        }
        std::process::exit(1);
    }
}

//! Fault-injection smoke for the flight recorder.
//!
//! Builds a tiny C-FFS with a black box armed (`--flight DIR`), drives
//! enough traffic to populate the capture window, then corrupts the
//! crash image and runs `fsck` over it. The unclean verdict must flush
//! every armed recorder with reason `fsck_failure`, leaving a
//! `FLIGHT_*.jsonl` dump for `cffs-inspect postmortem` — the round trip
//! `ci.sh` asserts.
//!
//! Usage: `flight_fault_smoke --flight DIR`

use cffs::core::{fsck, mkfs, CffsConfig, MkfsParams};
use cffs_disksim::models;
use cffs_disksim::Disk;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);

    let fs = mkfs::mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), CffsConfig::cffs())
        .expect("mkfs");
    let root = fs.root();
    for d in 0..3 {
        let dir = fs.mkdir(root, &format!("d{d}")).expect("mkdir");
        for f in 0..8 {
            let ino = fs.create(dir, &format!("f{f}")).expect("create");
            fs.write(ino, 0, &vec![0x42u8 ^ f as u8; 3000]).expect("write");
            let mut buf = vec![0u8; 3000];
            fs.read(ino, 0, &mut buf).expect("read");
        }
    }
    fs.sync().expect("sync");

    // Fault injection: scribble over a band of sectors in the metadata
    // region of a crash-consistent copy. The live mount (and its armed
    // recorder) stays untouched; fsck judges the corrupted copy.
    let mut img = fs.crash_image();
    let junk = [0xA5u8; 512];
    for lba in 16..144 {
        img.raw_write(lba, &junk);
    }
    match fsck::fsck(&mut img, false) {
        Ok(report) if report.clean() => {
            eprintln!("error: injected corruption left the image fsck-clean");
            std::process::exit(1);
        }
        Ok(report) => println!("fsck flagged {} errors on the corrupted image", report.errors.len()),
        Err(e) => println!("fsck refused the corrupted image outright: {e}"),
    }
    // Exit without unmounting: a clean drop would cut a final "detach"
    // dump over the `fsck_failure` one, but the point of this smoke is
    // to leave the failure capture as the last word — exactly what an
    // operator aborting after a bad fsck would see.
    std::process::exit(0);
}

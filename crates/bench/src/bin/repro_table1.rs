//! E1: Table 1 — characteristics of three modern (1996) disk drives.

use cffs_bench::experiments::table1;
use cffs_bench::report::emit_bench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let (text, json) = table1::report();
    print!("{text}");
    emit_bench("TABLE1", json);
}

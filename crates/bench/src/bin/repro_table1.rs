//! E1: Table 1 — characteristics of three modern (1996) disk drives.

fn main() {
    print!("{}", cffs_bench::experiments::table1::run());
}

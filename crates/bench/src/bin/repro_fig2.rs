//! E2: Figure 2 — average access time vs request size for the Table 1
//! drives. Usage: repro_fig2 [--samples N]

use cffs_bench::experiments::fig2;
use cffs_bench::report::emit_bench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let samples = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--samples"))
        .unwrap_or(500);
    let (text, json) = fig2::report(samples);
    print!("{text}");
    emit_bench("FIG2", json);
}

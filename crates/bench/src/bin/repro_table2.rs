//! E3: Table 2 — the testbed drive (Seagate ST31200).

use cffs_bench::experiments::table2;
use cffs_bench::report::emit_bench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let (text, json) = table2::report();
    print!("{text}");
    emit_bench("TABLE2", json);
}

//! E3: Table 2 — the testbed drive (Seagate ST31200).

fn main() {
    print!("{}", cffs_bench::experiments::table2::run());
}

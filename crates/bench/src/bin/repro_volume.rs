//! E16 (extra): scale-out volume sets.
//! Usage: repro_volume [--seed N] [--sessions N] [--dirs N] [--files N]
//!                     [--ops N] [--threads N] [--feed PATH] [--flight DIR]
//!
//! Runs the multi-client session workload over volume sets of 1, 2, 4
//! and 8 simulated disks (sharded namespace, threshold striping) and
//! reports aggregate sessions-window ops/s in simulated time. The BENCH
//! payload records the volume scaling ratio (acceptance: the 4-volume
//! aggregate must be >= 3.0x the 1-volume figure, with every volume
//! fsck-clean after churn plus one regroup pass per shard).

use cffs_bench::experiments::volume;
use cffs_bench::report::emit_bench;

fn arg(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{name} needs a number")))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let seed = arg(&args, "--seed").unwrap_or(1997);
    let sessions = arg(&args, "--sessions").unwrap_or(2000) as usize;
    let dirs = arg(&args, "--dirs").unwrap_or(64) as usize;
    let files = arg(&args, "--files").unwrap_or(16) as usize;
    let ops = arg(&args, "--ops").unwrap_or(8) as usize;
    let threads = arg(&args, "--threads").unwrap_or(4) as usize;
    let (text, json) = volume::report(seed, sessions, dirs, files, ops, threads);
    print!("{text}");
    emit_bench("VOLUME", json);
}

//! E13 (extra): online regrouping after adversarial aging.
//! Usage: repro_aging_regroup [--seed N] [--feed PATH]
//!
//! `--feed` streams the run's telemetry (one tap per stage, sharing one
//! feed file) to PATH; replay the aging→regroup arc afterwards with
//! `cffs-top --replay PATH`.
//!
//! Ages a C-FFS image with the adversarial workload, then runs the
//! regrouping engine and reports the mean `group_fetch_util_pct` fresh /
//! aged / recovered, plus a `max_blocks` budget sweep. The BENCH payload
//! records the recovery ratio (acceptance: >= 0.90 of fresh).

use cffs_bench::experiments::aging_regroup;
use cffs_bench::report::emit_bench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--feed") {
        let path = args.get(i + 1).expect("--feed needs a path");
        cffs_obs::feed::set_global(path).expect("create telemetry feed");
    }
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed"))
        .unwrap_or(1997);
    let (text, json) = aging_regroup::report(seed);
    print!("{text}");
    emit_bench("AGING_REGROUP", json);
}

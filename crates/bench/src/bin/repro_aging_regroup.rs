//! E13 (extra): online regrouping after adversarial aging.
//! Usage: repro_aging_regroup [--seed N] [--feed PATH] [--flight DIR]
//!
//! `--feed` streams the run's telemetry (one tap per stage, sharing one
//! feed file) to PATH; replay the aging→regroup arc afterwards with
//! `cffs-top --replay PATH`.
//!
//! Ages a C-FFS image with the adversarial workload, then runs the
//! regrouping engine and reports the mean `group_fetch_util_pct` fresh /
//! aged / recovered, plus a `max_blocks` budget sweep. The BENCH payload
//! records the recovery ratio (acceptance: >= 0.90 of fresh).

use cffs_bench::experiments::aging_regroup;
use cffs_bench::report::emit_bench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed"))
        .unwrap_or(1997);
    let (text, json) = aging_regroup::report(seed);
    print!("{text}");
    emit_bench("AGING_REGROUP", json);
}

//! E14 (extra): concurrent scaling on disjoint cylinder groups.
//! Usage: repro_concurrent [--seed N] [--dirs N] [--files N] [--rounds N]
//!                         [--feed PATH] [--flight DIR]
//!
//! Runs the multi-threaded client workload at 1, 2 and 4 threads over
//! fresh C-FFS instances and reports aggregate ops/s in simulated time.
//! The BENCH payload records the scaling ratio (acceptance: the 4-thread
//! aggregate must be >= 2.5x the 1-thread figure, with group-fetch
//! utilization unchanged and every image fsck-clean).

use cffs_bench::experiments::concurrent;
use cffs_bench::report::emit_bench;

fn arg(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{name} needs a number")))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let seed = arg(&args, "--seed").unwrap_or(1997);
    let dirs = arg(&args, "--dirs").unwrap_or(4) as usize;
    let files = arg(&args, "--files").unwrap_or(24) as usize;
    let rounds = arg(&args, "--rounds").unwrap_or(20) as usize;
    let (text, json) = concurrent::report(seed, dirs, files, rounds);
    print!("{text}");
    emit_bench("CONCURRENT", json);
}

//! E15 (extra): million-file namei with and without the namespace cache.
//! Usage: repro_namei [--seed N] [--branches N] [--dirs N] [--files N]
//!                    [--sample N] [--rounds N] [--feed PATH] [--flight DIR]
//!
//! Builds a deep tree (default 64 x 64 x 256 = ~10^6 files) on fresh
//! C-FFS instances — once with the dcache sized to the namespace, once
//! with it off — and resolves seeded full paths cold and warm. Reports
//! lookup p50/p90/p99 in simulated ns plus per-phase host wall-clock.
//! The BENCH payload records the warm hit rate and the p99 speedup
//! (acceptance: >= 0.90 hit rate and >= 5x lower warm p99, both images
//! fsck-clean).

use cffs_bench::experiments::namei;
use cffs_bench::report::emit_bench;

fn arg(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{name} needs a number")))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let seed = arg(&args, "--seed").unwrap_or(1997);
    let branches = arg(&args, "--branches").unwrap_or(64) as usize;
    let dirs = arg(&args, "--dirs").unwrap_or(64) as usize;
    let files = arg(&args, "--files").unwrap_or(256) as usize;
    let sample = arg(&args, "--sample").unwrap_or(4096) as usize;
    let rounds = arg(&args, "--rounds").unwrap_or(3) as usize;
    let (text, json) = namei::report(seed, branches, dirs, files, sample, rounds);
    print!("{text}");
    emit_bench("NAMEI", json);
}

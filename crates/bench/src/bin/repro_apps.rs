//! E9: the software-development application suite (paper: "10-300%").
//! Usage: repro_apps [--mode sync|softdep|both]

use cffs_bench::experiments::apps;
use cffs_fslib::MetadataMode;
use cffs_workloads::appdev::DevTreeParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "both".to_string());
    let params = DevTreeParams::default();
    match mode.as_str() {
        "sync" => print!("{}", apps::run(MetadataMode::Synchronous, params)),
        "softdep" => print!("{}", apps::run(MetadataMode::Delayed, params)),
        _ => {
            print!("{}", apps::run(MetadataMode::Synchronous, params));
            print!("{}", apps::run(MetadataMode::Delayed, params));
        }
    }
}

//! E9: the software-development application suite (paper: "10-300%").
//! Usage: repro_apps [--mode sync|softdep|both] [--seed N]

use cffs_bench::experiments::apps;
use cffs_bench::report::emit_bench;
use cffs_fslib::MetadataMode;
use cffs_workloads::appdev::DevTreeParams;

fn run_mode(mode: MetadataMode, params: DevTreeParams, bench: &str) {
    let (text, json) = apps::report(mode, params);
    print!("{text}");
    emit_bench(bench, json);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let mode = get("--mode", "both");
    let params = DevTreeParams {
        seed: get("--seed", "3").parse().expect("--seed"),
        ..DevTreeParams::default()
    };
    match mode.as_str() {
        "sync" => run_mode(MetadataMode::Synchronous, params, "APPS_SYNC"),
        "softdep" => run_mode(MetadataMode::Delayed, params, "APPS_SOFTDEP"),
        _ => {
            run_mode(MetadataMode::Synchronous, params, "APPS_SYNC");
            run_mode(MetadataMode::Delayed, params, "APPS_SOFTDEP");
        }
    }
}

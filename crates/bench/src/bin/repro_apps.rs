//! E9: the software-development application suite (paper: "10-300%").
//! Usage: repro_apps [--mode sync|softdep|both]

use cffs_bench::experiments::apps;
use cffs_bench::report::emit_bench;
use cffs_fslib::MetadataMode;
use cffs_workloads::appdev::DevTreeParams;

fn run_mode(mode: MetadataMode, params: DevTreeParams, bench: &str) {
    let (text, json) = apps::report(mode, params);
    print!("{text}");
    emit_bench(bench, json);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "both".to_string());
    let params = DevTreeParams::default();
    match mode.as_str() {
        "sync" => run_mode(MetadataMode::Synchronous, params, "APPS_SYNC"),
        "softdep" => run_mode(MetadataMode::Delayed, params, "APPS_SOFTDEP"),
        _ => {
            run_mode(MetadataMode::Synchronous, params, "APPS_SYNC");
            run_mode(MetadataMode::Delayed, params, "APPS_SOFTDEP");
        }
    }
}

//! E7: file-system aging ([Herrin93] program) — performance vs target
//! utilization. Usage: repro_aging [--ops N]

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--ops"))
        .unwrap_or(20_000);
    print!("{}", cffs_bench::experiments::aging::run(ops));
}

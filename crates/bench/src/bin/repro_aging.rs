//! E7: file-system aging ([Herrin93] program) — performance vs target
//! utilization. Usage: repro_aging [--ops N]

use cffs_bench::experiments::aging;
use cffs_bench::report::emit_bench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--ops"))
        .unwrap_or(20_000);
    let (text, json) = aging::report(ops);
    print!("{text}");
    emit_bench("AGING", json);
}

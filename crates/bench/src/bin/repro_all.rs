//! Run every reproduction (E1–E10) and print the combined report — the
//! source material for `EXPERIMENTS.md`.
//!
//! Usage: repro_all [--quick]
//!
//! `--quick` scales the workloads down (1/10 of the files, fewer aging
//! ops) for a fast smoke run; the default matches the paper's sizes.

use cffs_bench::experiments::*;
use cffs_fslib::MetadataMode;
use cffs_workloads::appdev::DevTreeParams;
use cffs_workloads::postmark::PostmarkParams;
use cffs_workloads::smallfile::SmallFileParams;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sf = if quick {
        SmallFileParams { nfiles: 1000, ndirs: 50, ..SmallFileParams::default() }
    } else {
        SmallFileParams::default()
    };
    let aging_ops = if quick { 5_000 } else { 20_000 };
    let fig2_samples = if quick { 100 } else { 500 };

    println!("C-FFS reproduction — full experiment suite");
    println!("==========================================");
    println!("\n==== E1: Table 1 — 1996 drive characteristics ====\n");
    print!("{}", table1::run());
    println!("\n==== E2: Figure 2 — access time vs request size ====\n");
    print!("{}", fig2::run(fig2_samples));
    println!("\n==== E3: Table 2 — testbed drive ====\n");
    print!("{}", table2::run());
    print!("{}", smallfile::run(MetadataMode::Synchronous, sf)); // E4
    print!("{}", smallfile::run(MetadataMode::Delayed, sf)); // E5
    print!("{}", filesize::run()); // E6
    print!("{}", aging::run(aging_ops)); // E7
    print!("{}", diskreqs::run(sf)); // E8
    print!("{}", apps::run(MetadataMode::Synchronous, DevTreeParams::default())); // E9
    print!("{}", apps::run(MetadataMode::Delayed, DevTreeParams::default())); // E9
    print!("{}", dirsize::run()); // E10
    print!("{}", ablation::run()); // E11 (extra)
    let pm = if quick {
        PostmarkParams { nfiles: 500, transactions: 1000, ..PostmarkParams::default() }
    } else {
        PostmarkParams::default()
    };
    print!("{}", postmark::run(MetadataMode::Synchronous, pm)); // E12 (extra)
}

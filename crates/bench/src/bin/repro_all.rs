//! Run every reproduction (E1–E10) and print the combined report — the
//! source material for `EXPERIMENTS.md`. Each experiment also writes its
//! `BENCH_*.json` payload (counters included) next to the text output;
//! set `BENCH_OUT_DIR` to redirect them.
//!
//! Usage: repro_all [--quick]
//!
//! `--quick` scales the workloads down (1/10 of the files, fewer aging
//! ops) for a fast smoke run; the default matches the paper's sizes.

use cffs_bench::experiments::*;
use cffs_bench::report::emit_bench;
use cffs_fslib::MetadataMode;
use cffs_workloads::appdev::DevTreeParams;
use cffs_workloads::postmark::PostmarkParams;
use cffs_workloads::smallfile::SmallFileParams;

fn show(bench: &str, r: (String, cffs_obs::json::Json)) {
    print!("{}", r.0);
    emit_bench(bench, r.1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let sf = if quick {
        SmallFileParams { nfiles: 1000, ndirs: 50, ..SmallFileParams::default() }
    } else {
        SmallFileParams::default()
    };
    let aging_ops = if quick { 5_000 } else { 20_000 };
    let fig2_samples = if quick { 100 } else { 500 };

    println!("C-FFS reproduction — full experiment suite");
    println!("==========================================");
    println!("\n==== E1: Table 1 — 1996 drive characteristics ====\n");
    show("TABLE1", table1::report());
    println!("\n==== E2: Figure 2 — access time vs request size ====\n");
    show("FIG2", fig2::report(fig2_samples));
    println!("\n==== E3: Table 2 — testbed drive ====\n");
    show("TABLE2", table2::report());
    show("SMALLFILE_SYNC", smallfile::report(MetadataMode::Synchronous, sf)); // E4
    show("SMALLFILE_SOFTDEP", smallfile::report(MetadataMode::Delayed, sf)); // E5
    show("FILESIZE", filesize::report()); // E6
    show("AGING", aging::report(aging_ops)); // E7
    show("DISKREQS", diskreqs::report(sf)); // E8
    show("APPS_SYNC", apps::report(MetadataMode::Synchronous, DevTreeParams::default())); // E9
    show("APPS_SOFTDEP", apps::report(MetadataMode::Delayed, DevTreeParams::default())); // E9
    show("DIRSIZE", dirsize::report()); // E10
    show("ABLATION", ablation::report()); // E11 (extra)
    let pm = if quick {
        PostmarkParams { nfiles: 500, transactions: 1000, ..PostmarkParams::default() }
    } else {
        PostmarkParams::default()
    };
    show("POSTMARK_SYNC", postmark::report(MetadataMode::Synchronous, pm)); // E12 (extra)
}

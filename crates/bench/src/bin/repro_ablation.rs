//! Ablation sweeps of C-FFS design choices (group size, read threshold,
//! scheduler, cache size, access order).

fn main() {
    print!("{}", cffs_bench::experiments::ablation::run());
}

//! Ablation sweeps of C-FFS design choices (group size, read threshold,
//! scheduler, cache size, access order).

use cffs_bench::experiments::ablation;
use cffs_bench::report::emit_bench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let (text, json) = ablation::report();
    print!("{text}");
    emit_bench("ABLATION", json);
}

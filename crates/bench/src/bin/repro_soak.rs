//! Soak driver: open-ended churn to watch live with `cffs-top`.
//! Usage: repro_soak [--rounds N] [--dirs N] [--files N] [--seed N]
//!                   [--feed PATH] [--flight DIR] [--host-ms N]
//!
//! Runs the [`cffs_workloads::soak`] workload on a fresh C-FFS image.
//! With `--feed`, telemetry streams to PATH — at the deterministic
//! simulated cadence by default, or sampled every N wall-clock
//! milliseconds with `--host-ms` (the mode to pair with
//! `cffs-top --follow PATH` in a second terminal).
//!
//! Unlike the repro_* experiments this emits no BENCH payload: the soak
//! produces activity to watch, not a number to gate on.

use cffs::build;
use cffs_core::CffsConfig;
use cffs_disksim::models;
use cffs_fslib::MetadataMode;
use cffs_workloads::soak::{self, SoakParams};

fn arg(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{name} needs a number")))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let p = SoakParams {
        rounds: arg(&args, "--rounds").unwrap_or(8) as usize,
        ndirs: arg(&args, "--dirs").unwrap_or(6) as usize,
        files_per_dir: arg(&args, "--files").unwrap_or(24) as usize,
        seed: arg(&args, "--seed").unwrap_or(1997),
        ..SoakParams::default()
    };
    let mut fs = build::on_disk(
        models::tiny_test_disk(),
        CffsConfig::cffs().with_mode(MetadataMode::Delayed),
    );
    let obs = fs.obs();
    let _feed = match arg(&args, "--host-ms") {
        Some(ms) => cffs_obs::feed::tap_global(
            &obs,
            "soak",
            cffs_obs::feed::Cadence::Host(std::time::Duration::from_millis(ms)),
        ),
        None => cffs_obs::feed::tap_global_sim(&obs, "soak"),
    };
    let r = soak::run(&mut fs, &p, |i| {
        eprintln!("soak: round {}/{} done", i + 1, p.rounds);
    })
    .expect("soak run");
    println!(
        "soak: {} rounds, {} ops, {} bytes, {} simulated",
        r.rounds,
        r.ops,
        r.bytes,
        cffs_disksim::SimDuration::from_nanos(fs.now().as_nanos()),
    );
}

//! E6: throughput vs file size — where the grouping advantage decays.

use cffs_bench::experiments::filesize;
use cffs_bench::report::emit_bench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cffs_bench::wire_telemetry(&args);
    let (text, json) = filesize::report();
    print!("{text}");
    emit_bench("FILESIZE", json);
}

//! E6: throughput vs file size — where the grouping advantage decays.

fn main() {
    print!("{}", cffs_bench::experiments::filesize::run());
}

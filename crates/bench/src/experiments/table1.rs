//! E1 — Table 1: characteristics of three modern (1996) disk drives.
//!
//! The paper uses this table to argue that per-byte costs (bandwidth)
//! improve much faster than per-request costs (seek + rotation). The
//! printed figures come straight from the drive models; the seek figures
//! visible in the paper's text (0.6/1.0 ms single, 8.7/8.0/7.9 ms average,
//! 16.5/19.0/18.0 ms maximum) are reproduced exactly.

use cffs_disksim::models;
use cffs_disksim::DiskModel;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::{obj, Obs};

fn row(label: &str, f: impl Fn(&DiskModel) -> String, drives: &[DiskModel]) -> String {
    let mut s = format!("{label:<28}");
    for d in drives {
        s.push_str(&format!("{:>22}", f(d)));
    }
    s.push('\n');
    s
}

/// Render the table.
pub fn run() -> String {
    let drives = models::table1_drives();
    let mut out = String::new();
    out.push_str(&row("", |d| d.name.clone(), &drives));
    out.push_str(&"-".repeat(28 + drives.len() * 22));
    out.push('\n');
    out.push_str(&row(
        "Formatted capacity",
        |d| format!("{:.2} GB", d.capacity_bytes() as f64 / 1e9),
        &drives,
    ));
    out.push_str(&row("Rotation speed", |d| format!("{} RPM", d.rpm), &drives));
    out.push_str(&row(
        "Revolution time",
        |d| format!("{:.2} ms", d.revolution().as_millis_f64()),
        &drives,
    ));
    out.push_str(&row(
        "Sectors per track",
        |d| {
            let spts: Vec<u32> = d.geometry.zones.iter().map(|z| z.sectors_per_track).collect();
            format!("{}-{}", spts.iter().min().unwrap(), spts.iter().max().unwrap())
        },
        &drives,
    ));
    out.push_str(&row(
        "Media transfer rate",
        |d| {
            let outer = d.media_rate_at(0);
            let inner = d.media_rate_at(d.geometry.total_cylinders() - 1);
            format!("{inner:.1}-{outer:.1} MB/s")
        },
        &drives,
    ));
    out.push_str(&row(
        "Seek < 1 cylinder",
        |d| format!("{:.1} ms", d.seek.single().as_millis_f64()),
        &drives,
    ));
    out.push_str(&row(
        "Average seek",
        |d| format!("{:.1} ms", d.seek.average().as_millis_f64()),
        &drives,
    ));
    out.push_str(&row(
        "Maximum seek",
        |d| format!("{:.1} ms", d.seek.full_stroke().as_millis_f64()),
        &drives,
    ));
    out.push_str(&row("Bus bandwidth", |d| format!("{:.0} MB/s", d.bus_mb_per_s), &drives));

    // The paper's trend point: HP C2247 (1992) vs HP C3653 (1996).
    let old = models::hp_c2247();
    let new = models::hp_c3653();
    let spt_ratio = new.geometry.zones[0].sectors_per_track as f64
        / old.geometry.zones[0].sectors_per_track as f64;
    let access_old = old.seek.average().as_millis_f64() + old.revolution().as_millis_f64() / 2.0;
    let access_new = new.seek.average().as_millis_f64() + new.revolution().as_millis_f64() / 2.0;
    out.push_str(&format!(
        "\nTrend (paper, Section 2): the {} records {:.1}x the sectors per track of the\n\
         {} of a few years earlier, while the older drive's average access time\n\
         was only {:.0}% higher ({:.1} ms vs {:.1} ms) — bandwidth improves much faster\n\
         than access time.\n",
        new.name,
        spt_ratio,
        old.name,
        (access_old / access_new - 1.0) * 100.0,
        access_old,
        access_new,
    ));
    out
}

/// Text report plus JSON payload (the drive models themselves; the
/// counter snapshot is all-zero because a spec table does no I/O).
pub fn report() -> (String, Json) {
    let drives = models::table1_drives();
    let json = obj![
        ("experiment", "table1".to_json()),
        ("drives", Json::Arr(drives.iter().map(|d| d.to_json()).collect())),
        ("counters", Obs::new().snapshot("static-table", 0).to_json()),
    ];
    (run(), json)
}

//! E13 — online regrouping after adversarial aging.
//!
//! The aging sweep (E7) shows grouping erodes as the disk churns; this
//! experiment closes the loop: it ages a C-FFS image with the adversarial
//! workload (create/delete storms, hostile size mixes, cross-directory
//! renames), then runs the online regrouping engine and measures how much
//! of the freshly-mkfs'd grouping quality comes back.
//!
//! The quality signal is the mean of `group_fetch_util_pct` — the fraction
//! of each whole-group fetch that is actually consumed before the blocks
//! leave the cache. The measured access pattern reads one directory's
//! files at a time with a cache drop between directories, so every block
//! a group fetch pulled in for *this* directory but never served counts
//! as wasted inside the measured window. On a fresh image each extent
//! holds exactly one directory's files and utilization is near 100%; on
//! the aged image extents mix directories and holes; after regrouping the
//! per-directory extents are re-formed.
//!
//! Acceptance (ISSUE 4): the recovered mean must be ≥ 90% of the fresh
//! mean. The BENCH payload records fresh/aged/recovered plus the engine's
//! work counters and a budget sweep (cost vs. benefit of `max_blocks`).

use crate::report::{header, rows_json};
use cffs::build;
use cffs_core::{Cffs, CffsConfig};
use cffs_disksim::models;
use cffs_fslib::{FileKind, FileSystem, FsResult, Ino, MetadataMode, BLOCK_SIZE};
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;
use cffs_regroup::{AutotriggerConfig, RegroupConfig, RegroupMode, RegroupOutcome};
use cffs_workloads::aging::{age_adversarial, AdversarialParams};
use cffs_workloads::runner::{cold_boundary, measure};
use cffs_workloads::PhaseResult;

/// Directories the population (and the churn) lives in.
const NDIRS: usize = 8;
/// Long-lived files seeded per directory before the churn starts.
const FILES_PER_DIR: usize = 12;

fn adv_params(seed: u64) -> AdversarialParams {
    AdversarialParams { rounds: 3, storm_files: 120, ndirs: NDIRS, seed }
}

/// Seed the long-lived population in the same `adv*` directories the
/// adversarial workload churns, so the churn fragments *around* files
/// that survive it.
fn populate(fs: &mut Cffs, seed: u64) -> FsResult<()> {
    let root = fs.root();
    for d in 0..NDIRS {
        let dir = fs.mkdir(root, &format!("adv{d:03}"))?;
        for f in 0..FILES_PER_DIR {
            // Mostly one-block files with a sprinkling of 3-block ones —
            // the population explicit grouping serves best.
            let size = if f % 5 == 4 { 3 * BLOCK_SIZE } else { BLOCK_SIZE };
            let body: Vec<u8> = (0..size)
                .map(|j| ((seed as usize ^ (d * 7919 + f * 131 + j)) % 251) as u8)
                .collect();
            let ino = fs.create(dir, &format!("base{f:04}"))?;
            fs.write(ino, 0, &body)?;
        }
    }
    fs.sync()
}

/// A deterministic aged instance: fresh mkfs, population, adversarial
/// churn. Equal seeds give byte-identical images, so budget-sweep points
/// all start from the same layout.
fn aged_instance(seed: u64) -> Cffs {
    let mut fs =
        build::on_disk(models::tiny_test_disk(), CffsConfig::cffs().with_mode(MetadataMode::Delayed));
    populate(&mut fs, seed).expect("populate");
    age_adversarial(&mut fs, adv_params(seed), |_, _| Ok(())).expect("adversarial aging");
    fs
}

/// Read every file, one directory at a time, cold. Returns the phase row
/// and the mean `group_fetch_util_pct` over the measured window.
///
/// The per-directory `drop_caches` inside the measured body is load-
/// bearing: it resolves every outstanding group fetch *within* the
/// measured counter delta, so members fetched for a directory but never
/// read are charged as wasted here rather than leaking into the next
/// phase's snapshot.
fn grouped_read(fs: &mut Cffs, phase: &str) -> (PhaseResult, u64) {
    // Enumerate up front so the measured region is pure file reads.
    let (dir_files, nfiles, nbytes) = list_dir_files(fs);
    cold_boundary(fs).expect("cold boundary");
    let row = measure(fs, phase, nfiles, nbytes, |fs| {
        for files in &dir_files {
            for &(ino, sz) in files {
                let mut buf = vec![0u8; sz];
                fs.read(ino, 0, &mut buf)?;
            }
            fs.drop_caches()?;
        }
        Ok(())
    })
    .expect("read phase");
    let util = row
        .counters
        .as_ref()
        .and_then(|c| c.histogram("group_fetch_util_pct"))
        .map(|h| h.mean())
        .unwrap_or(0);
    (row, util)
}

/// Per-directory `(ino, size)` file lists in sorted directory order,
/// plus total file and byte counts.
fn list_dir_files(fs: &mut Cffs) -> (Vec<Vec<(Ino, usize)>>, u64, u64) {
    let root = fs.root();
    let mut dirs: Vec<(String, Ino)> = fs
        .readdir(root)
        .expect("readdir root")
        .into_iter()
        .filter(|e| e.kind == FileKind::Dir)
        .map(|e| (e.name, e.ino))
        .collect();
    dirs.sort();
    let mut dir_files: Vec<Vec<(Ino, usize)>> = Vec::new();
    let (mut nfiles, mut nbytes) = (0u64, 0u64);
    for (_, dino) in &dirs {
        let mut files = Vec::new();
        for e in fs.readdir(*dino).expect("readdir") {
            if e.kind == FileKind::File {
                let sz = fs.getattr(e.ino).expect("getattr").size as usize;
                nfiles += 1;
                nbytes += sz as u64;
                files.push((e.ino, sz));
            }
        }
        dir_files.push(files);
    }
    (dir_files, nfiles, nbytes)
}

/// One budget-sweep point: regroup a fresh aged instance under `cfg`.
fn sweep_point(seed: u64, cfg: &RegroupConfig, phase: &str) -> (RegroupOutcome, u64) {
    let mut fs = aged_instance(seed);
    let outcome = cffs_regroup::run(&mut fs, cfg).expect("regroup");
    fs.sync().expect("sync");
    let (_, util) = grouped_read(&mut fs, phase);
    (outcome, util)
}

/// What the signal-driven loop did on its own aged instance.
struct AutotriggerResult {
    fires: usize,
    blocks_moved: usize,
    low_events: u64,
    util_pct: u64,
    row: PhaseResult,
}

/// Close the ROADMAP policy loop on a separate aged instance: simulate
/// live traffic (cold per-directory reads), and between directories give
/// the engine an idle moment via [`cffs_regroup::autotrigger`]. Nothing
/// here invokes the regrouper explicitly — passes fire only because the
/// `group_fetch_util_ewma` signal decays below the floor, and they run
/// [`RegroupMode::IdleOnly`] against the blocks the traffic just made
/// resident. After the traffic rounds, the end state is measured with
/// the same cold grouped read as every other stage.
fn autotrigger_run(seed: u64) -> AutotriggerResult {
    let mut fs = aged_instance(seed);
    let cfg = AutotriggerConfig::default();
    let obs = fs.obs();
    // The stage the feed exists to show: the utilization EWMA decaying
    // until the floor crossing fires budgeted regroup passes live.
    let _feed = cffs_obs::feed::tap_global_sim(&obs, "autotrigger");
    let (mut fires, mut blocks_moved) = (0usize, 0usize);
    // Each round reads every directory cold; the aged layout's mixed
    // extents feed low-utilization samples into the EWMA until the
    // trigger fires often enough to re-form the groups.
    const ROUNDS: usize = 6;
    for _ in 0..ROUNDS {
        let (dir_files, _, _) = list_dir_files(&mut fs);
        cold_boundary(&mut fs).expect("cold boundary");
        for files in &dir_files {
            for &(ino, sz) in files {
                let mut buf = vec![0u8; sz];
                fs.read(ino, 0, &mut buf).expect("read");
            }
            // Idle moment: the directory's blocks are still resident.
            if let Some(o) = cffs_regroup::autotrigger(&mut fs, &cfg).expect("autotrigger") {
                fires += 1;
                blocks_moved += o.blocks_moved;
            }
            fs.drop_caches().expect("drop");
        }
    }
    let (row, util_pct) = grouped_read(&mut fs, "autotrigger-read");
    AutotriggerResult {
        fires,
        blocks_moved,
        low_events: obs.get(cffs_obs::Ctr::SignalLowEvents),
        util_pct,
        row,
    }
}

/// Run the experiment: fresh reference, aged measurement, budget sweep,
/// exhaustive recovery. Returns the text report and the BENCH payload.
pub fn report(seed: u64) -> (String, Json) {
    // Fresh reference: the same population on a never-churned image.
    let mut fresh_fs =
        build::on_disk(models::tiny_test_disk(), CffsConfig::cffs().with_mode(MetadataMode::Delayed));
    populate(&mut fresh_fs, seed).expect("populate");
    let (fresh_row, fresh_util) = {
        // Stream each stage into the telemetry feed when the repro binary
        // set one up with --feed (each tap is a no-op otherwise). The
        // taps share the global sink, so the whole run replays as one
        // fresh → aged → regrouped → autotrigger feed in cffs-top.
        let obs = fresh_fs.obs();
        let _feed = cffs_obs::feed::tap_global_sim(&obs, "fresh-read");
        grouped_read(&mut fresh_fs, "fresh-read")
    };

    // Aged, before any regrouping.
    let mut fs = aged_instance(seed);
    let (aged_row, aged_util) = {
        let obs = fs.obs();
        let _feed = cffs_obs::feed::tap_global_sim(&obs, "aged-read");
        grouped_read(&mut fs, "aged-read")
    };

    // Budget sweep: cost (blocks moved) vs. benefit (recovered util),
    // each point regrouping its own copy of the same aged image.
    let budgets: [usize; 2] = [64, 256];
    let mut sweep: Vec<Json> = Vec::new();
    let mut sweep_text = String::new();
    for &b in &budgets {
        let cfg = RegroupConfig { max_blocks: b, mode: RegroupMode::Aggressive };
        let (o, util) = sweep_point(seed, &cfg, &format!("regroup-b{b}"));
        sweep.push(obj![
            ("max_blocks", Json::Int(b as i64)),
            ("util_pct", Json::Int(util as i64)),
            ("blocks_moved", Json::Int(o.blocks_moved as i64)),
            ("groups_formed", Json::Int(o.groups_formed as i64)),
            ("budget_exhausted", Json::Bool(o.budget_exhausted)),
        ]);
        sweep_text.push_str(&format!(
            "{:<22} {:>10} {:>14} {:>14}\n",
            format!("regroup max_blocks={b}"),
            format!("{util}%"),
            o.blocks_moved,
            o.groups_formed,
        ));
    }

    // Exhaustive pass on the measured instance — the acceptance row.
    let (rec_row, rec_util, outcome) = {
        let obs = fs.obs();
        let _feed = cffs_obs::feed::tap_global_sim(&obs, "regrouped-read");
        let outcome = cffs_regroup::run(&mut fs, &RegroupConfig::exhaustive()).expect("regroup");
        fs.sync().expect("sync");
        let (row, util) = grouped_read(&mut fs, "regrouped-read");
        (row, util, outcome)
    };
    let ratio = rec_util as f64 / (fresh_util.max(1)) as f64;

    // Signal-driven recovery: no explicit regroup call, only the
    // `group_fetch_util_ewma` floor firing budgeted IdleOnly passes.
    let auto = autotrigger_run(seed);
    let auto_ratio = auto.util_pct as f64 / (fresh_util.max(1)) as f64;

    let mut out = header(&format!(
        "online regrouping after adversarial aging (seed {seed}, 64 MB disk)"
    ));
    out.push_str(&format!(
        "{:<22} {:>10} {:>14} {:>14}\n",
        "stage", "gf util", "blocks moved", "groups formed"
    ));
    out.push_str(&"-".repeat(64));
    out.push('\n');
    out.push_str(&format!("{:<22} {:>10}\n", "fresh mkfs", format!("{fresh_util}%")));
    out.push_str(&format!("{:<22} {:>10}\n", "aged", format!("{aged_util}%")));
    out.push_str(&sweep_text);
    out.push_str(&format!(
        "{:<22} {:>10} {:>14} {:>14}\n",
        "regroup exhaustive",
        format!("{rec_util}%"),
        outcome.blocks_moved,
        outcome.groups_formed,
    ));
    out.push_str(&format!(
        "{:<22} {:>10} {:>14} {:>14}\n",
        "autotrigger (signal)",
        format!("{}%", auto.util_pct),
        auto.blocks_moved,
        format!("{} fires", auto.fires),
    ));
    out.push_str(&format!(
        "\nrecovery: {:.2}x of the fresh group-fetch utilization (target >= 0.90)\n",
        ratio
    ));
    out.push_str(&format!(
        "autotrigger: {} fires on group_fetch_util_ewma decay ({} low crossings), \
         {:.2}x of fresh\n",
        auto.fires, auto.low_events, auto_ratio
    ));

    let json = obj![
        ("experiment", "aging_regroup".to_json()),
        ("seed", Json::Int(seed as i64)),
        ("fresh_util_pct", Json::Int(fresh_util as i64)),
        ("aged_util_pct", Json::Int(aged_util as i64)),
        ("recovered_util_pct", Json::Int(rec_util as i64)),
        ("recovery_ratio", ratio.to_json()),
        ("blocks_moved", Json::Int(outcome.blocks_moved as i64)),
        ("groups_formed", Json::Int(outcome.groups_formed as i64)),
        ("dirs_regrouped", Json::Int(outcome.dirs_regrouped as i64)),
        ("budget_sweep", Json::Arr(sweep)),
        (
            "autotrigger",
            obj![
                ("fires", Json::Int(auto.fires as i64)),
                ("blocks_moved", Json::Int(auto.blocks_moved as i64)),
                ("signal_low_events", Json::Int(auto.low_events as i64)),
                ("util_pct", Json::Int(auto.util_pct as i64)),
                ("recovery_ratio", auto_ratio.to_json()),
            ]
        ),
        ("rows", rows_json(&[fresh_row, aged_row, rec_row, auto.row])),
    ];
    (out, json)
}

/// Render the experiment.
pub fn run(seed: u64) -> String {
    report(seed).0
}

//! E3 — Table 2: the testbed disk (Seagate ST31200).
//!
//! Every file-system experiment in the paper (and in this reproduction)
//! runs on this drive. "The disk driver ... supports scatter/gather I/O
//! and uses a C-LOOK scheduling algorithm. The disk prefetches sequential
//! disk data into its on-board cache" — both are modeled (see
//! `cffs_disksim::driver` and `cffs_disksim::cache`).

use cffs_disksim::models;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::{obj, Obs};

/// Render the table.
pub fn run() -> String {
    let d = models::seagate_st31200();
    let spts: Vec<u32> = d.geometry.zones.iter().map(|z| z.sectors_per_track).collect();
    let mut out = String::new();
    let mut push = |k: &str, v: String| out.push_str(&format!("{k:<28}{v}\n"));
    push("Drive", d.name.clone());
    push("Formatted capacity", format!("{:.2} GB", d.capacity_bytes() as f64 / 1e9));
    push("Cylinders", format!("{}", d.geometry.total_cylinders()));
    push("Data surfaces", format!("{}", d.geometry.heads));
    push("Rotation speed", format!("{} RPM", d.rpm));
    push("Revolution time", format!("{:.2} ms", d.revolution().as_millis_f64()));
    push(
        "Sectors per track",
        format!("{}-{}", spts.iter().min().unwrap(), spts.iter().max().unwrap()),
    );
    push(
        "Media transfer rate",
        format!(
            "{:.1}-{:.1} MB/s",
            d.media_rate_at(d.geometry.total_cylinders() - 1),
            d.media_rate_at(0)
        ),
    );
    push("Track-to-track seek", format!("{:.1} ms", d.seek.single().as_millis_f64()));
    push("Average seek", format!("{:.1} ms", d.seek.average().as_millis_f64()));
    push("Maximum seek", format!("{:.1} ms", d.seek.full_stroke().as_millis_f64()));
    push("Head switch", format!("{:.2} ms", d.head_switch.as_millis_f64()));
    push("Controller overhead", format!("{:.2} ms", d.controller_overhead.as_millis_f64()));
    push("Bus bandwidth", format!("{:.0} MB/s", d.bus_mb_per_s));
    push(
        "On-board cache",
        format!(
            "{} KB, {} segments, read-ahead {} KB",
            d.cache.segments as u64 * d.cache.segment_sectors * 512 / 1024,
            d.cache.segments,
            d.cache.read_ahead * 512 / 1024
        ),
    );
    push("Driver scheduling", "C-LOOK, scatter/gather".to_string());
    out
}

/// Text report plus JSON payload (the testbed model itself; the counter
/// snapshot is all-zero because a spec table does no I/O).
pub fn report() -> (String, Json) {
    let json = obj![
        ("experiment", "table2".to_json()),
        ("drive", models::seagate_st31200().to_json()),
        ("counters", Obs::new().snapshot("static-table", 0).to_json()),
    ];
    (run(), json)
}

//! E14 — concurrent scaling on disjoint cylinder groups.
//!
//! N client threads share one `Cffs` instance, each driving a seeded
//! session against its own directory set (directories spread round-robin
//! across cylinder groups, so threads allocate from different CGs and the
//! per-CG sharding is on the hot path). Thread clocks are virtual: each
//! thread's CPU work advances its own simulated timeline, disk requests
//! serialize through the shared driver worker, and a run's elapsed time
//! is the cross-thread high-water mark. Aggregate throughput therefore
//! scales with threads exactly as far as the stack's sharding lets
//! cache-hit work overlap — which is the property under test.
//!
//! Acceptance (ISSUE 6): at 4 threads, aggregate ops/s on disjoint CGs
//! must be ≥ 2.5× the 1-thread figure, with the `group_fetch_util_pct`
//! mean unchanged and every end-state image fsck-clean.

use crate::report::{header, rows_json};
use cffs::build;
use cffs_core::{fsck, Cffs, CffsConfig};
use cffs_disksim::models;
use cffs_fslib::MetadataMode;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;
use cffs_workloads::concurrent::{self, ConcurrentParams};
use cffs_workloads::PhaseResult;

/// Thread counts measured, in order. The first and last are the
/// acceptance pair (1-thread baseline, 4-thread claim).
const POINTS: [usize; 3] = [1, 2, 4];

/// One measured point of the scaling curve.
struct Point {
    nthreads: usize,
    ops: u64,
    ops_per_sec: f64,
    util_pct: u64,
    fsck_clean: bool,
    row: PhaseResult,
}

/// Run the workload at `nthreads` on a fresh instance and capture the
/// counter delta as a phase row (the same shape `measure` produces, but
/// built by hand: the multi-threaded run drives `ConcurrentFs`, not the
/// single-threaded `FileSystem` trait that `measure` wraps).
fn point(p: &ConcurrentParams) -> Point {
    let fs = build::on_disk(
        models::tiny_test_disk(),
        CffsConfig::cffs().with_mode(MetadataMode::Delayed),
    );
    let obs = Cffs::obs(&fs);
    Cffs::reset_io_stats(&fs);
    let label = Cffs::label(&fs).to_string();
    let before = obs.snapshot(&label, obs.global_clock_ns());
    let start_ns = obs.global_clock_ns();
    let host_t0 = std::time::Instant::now();

    // Telemetry: a manual-cadence tap (when the repro binary set up a
    // feed with --feed) cutting one frame per phase barrier. The phases
    // themselves are multi-threaded, so frames are cut only at the
    // quiescent hook points — and the per-thread op rows still show the
    // fan-out because client threads bind slots 1..=N.
    let feed = cffs_obs::feed::tap_global(
        &obs,
        &format!("concurrent-{}t", p.nthreads),
        cffs_obs::feed::Cadence::Manual,
    );
    let r = concurrent::run_with_phase_hook(&fs, p, |phase| {
        if let Some(tap) = &feed {
            tap.frame(&format!("concurrent-{}t/{phase}", p.nthreads));
        }
    })
    .expect("concurrent run");
    // Cold grouped re-read (single-threaded, unmeasured): drop the cache,
    // then walk every thread's directories reading each surviving file,
    // so the end-state layout actually exercises group fetches and the
    // `group_fetch_util_pct` histogram has samples from *this* run. The
    // trailing drop retires outstanding fetches inside the counter
    // window (same discipline as E13's grouped read).
    Cffs::drop_caches(&fs).expect("drop caches");
    let root = Cffs::root(&fs);
    let mut buf = vec![0u8; 4096];
    for t in 0..p.nthreads {
        for d in 0..p.dirs_per_thread {
            let dir =
                Cffs::lookup(&fs, root, &format!("t{t}_d{d}")).expect("thread dir survives");
            for e in Cffs::readdir(&fs, dir).expect("readdir") {
                Cffs::read(&fs, e.ino, 0, &mut buf).expect("cold read");
            }
        }
    }
    Cffs::drop_caches(&fs).expect("drop caches");

    let counters = obs.snapshot(&label, obs.global_clock_ns()).delta(&before);
    let util_pct =
        counters.histogram("group_fetch_util_pct").map(|h| h.mean()).unwrap_or(0);
    let row = PhaseResult {
        fs: label,
        phase: format!("concurrent-{}t", p.nthreads),
        start_ns,
        elapsed: r.elapsed,
        items: r.total_ops(),
        bytes: r.bytes,
        io: Cffs::io_stats(&fs),
        counters: Some(counters),
        host_ns: host_t0.elapsed().as_nanos() as u64,
    };
    let mut img = fs.crash_image();
    let fsck_clean = fsck::fsck(&mut img, false).map(|rep| rep.clean()).unwrap_or(false);
    Point {
        nthreads: p.nthreads,
        ops: r.total_ops(),
        ops_per_sec: r.ops_per_sec(),
        util_pct,
        fsck_clean,
        row,
    }
}

/// Run the experiment. `dirs_per_thread`/`files_per_dir` scale the work
/// (CI smoke passes reduced values). Returns the text report and the
/// BENCH payload.
pub fn report(
    seed: u64,
    dirs_per_thread: usize,
    files_per_dir: usize,
    read_rounds: usize,
) -> (String, Json) {
    let points: Vec<Point> = POINTS
        .iter()
        .map(|&n| {
            point(&ConcurrentParams {
                nthreads: n,
                dirs_per_thread,
                files_per_dir,
                file_size: 4096,
                shared_dirs: 0,
                shared_files_per_thread: 0,
                read_rounds,
                seed,
            })
        })
        .collect();

    let base = &points[0];
    let top = &points[points.len() - 1];
    let scaling_ratio = top.ops_per_sec / base.ops_per_sec.max(f64::MIN_POSITIVE);

    let mut out = header(&format!(
        "concurrent scaling on disjoint CGs (seed {seed}, {dirs_per_thread} dirs/thread × {files_per_dir} files)"
    ));
    out.push_str(&format!(
        "{:<10} {:>10} {:>14} {:>12} {:>10} {:>8}\n",
        "threads", "ops", "agg ops/s", "elapsed", "gf util", "fsck"
    ));
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for pt in &points {
        out.push_str(&format!(
            "{:<10} {:>10} {:>14.0} {:>12} {:>10} {:>8}\n",
            pt.nthreads,
            pt.ops,
            pt.ops_per_sec,
            format!("{}", pt.row.elapsed),
            format!("{}%", pt.util_pct),
            if pt.fsck_clean { "clean" } else { "DIRTY" },
        ));
    }
    out.push_str(&format!(
        "\nscaling: {scaling_ratio:.2}x aggregate ops/s at {} threads vs 1 (target >= 2.5)\n",
        top.nthreads
    ));

    let json = obj![
        ("experiment", "concurrent".to_json()),
        ("seed", Json::Int(seed as i64)),
        ("dirs_per_thread", Json::Int(dirs_per_thread as i64)),
        ("files_per_dir", Json::Int(files_per_dir as i64)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|pt| {
                        obj![
                            ("nthreads", Json::Int(pt.nthreads as i64)),
                            ("total_ops", Json::Int(pt.ops as i64)),
                            ("ops_per_sec", pt.ops_per_sec.to_json()),
                            ("elapsed_ns", Json::Int(pt.row.elapsed.as_nanos() as i64)),
                            ("util_pct", Json::Int(pt.util_pct as i64)),
                            ("fsck_clean", Json::Bool(pt.fsck_clean)),
                        ]
                    })
                    .collect(),
            )
        ),
        ("scaling_ratio", scaling_ratio.to_json()),
        ("aggregate_ops_per_sec", top.ops_per_sec.to_json()),
        ("rows", rows_json(&points.into_iter().map(|p| p.row).collect::<Vec<_>>())),
    ];
    (out, json)
}

/// Render the experiment at full scale.
pub fn run(seed: u64) -> String {
    report(seed, 4, 24, 20).0
}

//! E10 — directory growth versus static inode preallocation.
//!
//! The cost side of embedded inodes: "a potential down-side of embedded
//! inodes is that the directory size can increase substantially" (entries
//! grow from ~16 bytes to ~144 bytes for short names). The benefit side,
//! via [Forin94]: eliminating the statically (over-)allocated inode tables
//! returns their disk space to data. This experiment measures both on real
//! images.

use crate::report::header;
use cffs::build;
use cffs_core::CffsConfig;
use cffs_disksim::models;
use cffs_ffs::{mkfs as ffs_mkfs, FfsOptions, MkfsParams};
use cffs_disksim::Disk;
use cffs_fslib::BLOCK_SIZE;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::{obj, StatsSnapshot};

/// Directory populations measured.
pub const POPULATIONS: [usize; 4] = [10, 100, 1000, 10_000];

/// Bytes of directory data per entry at population `n`, plus the stack's
/// counter snapshot for the population run.
fn dir_bytes_per_entry(cfg: CffsConfig, n: usize) -> (f64, StatsSnapshot) {
    let fs = build::on_disk(models::seagate_st31200(), cfg);
    let root = fs.root();
    let dir = fs.mkdir(root, "d").expect("mkdir");
    for i in 0..n {
        fs.create(dir, &format!("file{i:05}")).expect("create");
    }
    let size = fs.getattr(dir).expect("getattr").size;
    let snap = fs.obs().snapshot(fs.config().label.as_str(), fs.now().as_nanos());
    (size as f64 / n as f64, snap)
}

/// Run once, rendering both the text report and the JSON payload.
pub fn report() -> (String, Json) {
    let mut points: Vec<Json> = Vec::new();
    let mut out = header("directory size and inode-capacity trade (E10)");
    out.push_str(&format!(
        "{:<12} {:>22} {:>22}\n",
        "entries", "embedded (B/entry)", "external (B/entry)"
    ));
    out.push_str(&"-".repeat(58));
    out.push('\n');
    for n in POPULATIONS {
        let (emb, emb_snap) = dir_bytes_per_entry(CffsConfig::cffs(), n);
        let (ext, ext_snap) = dir_bytes_per_entry(CffsConfig::conventional(), n);
        points.push(obj![
            ("entries", n.to_json()),
            ("embedded_bytes_per_entry", emb.to_json()),
            ("external_bytes_per_entry", ext.to_json()),
            ("embedded_counters", emb_snap.to_json()),
            ("external_counters", ext_snap.to_json()),
        ]);
        out.push_str(&format!("{n:<12} {emb:>22.1} {ext:>22.1}\n"));
    }

    // Capacity: static FFS inode tables vs the dynamic external file.
    let ffs = ffs_mkfs::mkfs(
        Disk::new(models::seagate_st31200()),
        MkfsParams::default(),
        FfsOptions::default(),
    )
    .expect("mkfs");
    let sb = ffs.superblock().clone();
    let itable_blocks = sb.itable_blocks as u64 * sb.cg_count as u64;
    let cffs = build::on_disk(models::seagate_st31200(), CffsConfig::cffs());
    let st = cffs.statfs().expect("statfs");
    out.push_str(&format!(
        "\nstatic preallocation [Forin94]:\n\
         - FFS reserves {} blocks ({:.1} MB, {:.2}% of the disk) for inode tables\n\
           whether or not the inodes are ever used, capping files at {}.\n\
         - C-FFS reserves none: inodes live in directories (or the external\n\
           inode file, currently {} block(s)); the file count is bounded only\n\
           by space ({} of {} blocks free after mkfs).\n",
        itable_blocks,
        itable_blocks as f64 * BLOCK_SIZE as f64 / 1e6,
        itable_blocks as f64 * 100.0 / sb.total_blocks as f64,
        sb.total_inodes(),
        cffs.superblock().exfile.blocks,
        st.free_blocks,
        st.total_blocks,
    ));
    out.push_str(
        "\nThe ~9x directory growth is the price of removing a physical level of\n\
         indirection; the paper's position is that directories remain small\n\
         relative to data, while every (cold) open saves a disk access.\n",
    );
    let json = obj![
        ("experiment", "dirsize".to_json()),
        ("points", Json::Arr(points)),
    ];
    (out, json)
}

/// Render the report.
pub fn run() -> String {
    report().0
}

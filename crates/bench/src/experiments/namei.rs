//! E15 — million-file namei with and without the namespace cache.
//!
//! Builds the deep tree from [`cffs_workloads::namei`] on a fresh C-FFS
//! twice — once with the sharded dcache sized to hold the whole
//! namespace, once with it disabled (the paper's configuration) — and
//! measures three phases on each: `create` (build the tree), `cold`
//! (resolve a seeded path sample from an empty cache) and `warm`
//! (re-resolve the same sample for several rounds, everything cached).
//!
//! Acceptance (ISSUE 8): in the warm phase the dcache point must show a
//! `lookup` p99 at least 5× lower in simulated time than the ablation,
//! with a ≥ 0.90 dcache hit rate, and both end-state images must be
//! fsck-clean. `bench_gate` enforces the floors against the checked-in
//! `BENCH_NAMEI.json` baseline — and as absolute bars, so a decayed
//! baseline can never quietly ratify a regression.
//!
//! Every phase row also carries `host_ns`, the harness wall-clock cost
//! of the phase: the simulated-latency story above is deterministic, and
//! the host timing says what the benchmark run itself cost — the knob
//! the warm path's host-CPU work (hashing, shard probes) shows up on.

use crate::report::{header, rows_json};
use cffs::build;
use cffs_core::{fsck, CffsConfig};
use cffs_disksim::models;
use cffs_fslib::{FileSystem, MetadataMode};
use cffs_obs::json::{Json, ToJson};
use cffs_obs::{obj, Ctr, OpKind};
use cffs_workloads::namei::{self, NameiParams};
use cffs_workloads::runner::{cold_boundary, measure};
use cffs_workloads::PhaseResult;

/// One configuration's measured run.
struct RunOut {
    label: String,
    rows: Vec<PhaseResult>,
    /// Warm-phase dcache hit rate (positive + negative hits over probes);
    /// 0 when the cache is disabled.
    warm_hit_rate: f64,
    /// Warm-phase `lookup` p99, simulated nanoseconds.
    warm_p99_ns: u64,
    /// Warm-phase `lookup` p50 / p90, simulated nanoseconds.
    warm_p50_ns: u64,
    warm_p90_ns: u64,
    fsck_clean: bool,
}

/// Pick the drive for the tree size: the full million-file tree needs
/// the 1 GB testbed disk; CI smoke scales fit the 64 MB test drive.
fn disk_for(p: &NameiParams) -> cffs_disksim::DiskModel {
    if p.total_files() >= 100_000 {
        models::seagate_st31200()
    } else {
        models::tiny_test_disk()
    }
}

fn run_point(cfg: CffsConfig, p: &NameiParams) -> RunOut {
    let mut fs = build::on_disk(disk_for(p), cfg);
    let label = fs.label().to_string();
    let obs = FileSystem::obs(&fs);
    let _feed = obs.as_ref().and_then(|o| cffs_obs::feed::tap_global_sim(o, &label));

    let mut rows = Vec::new();
    let total = p.total_files() + p.total_dirs();
    let bytes = p.total_files() * p.file_size as u64;
    rows.push(
        measure(&mut fs, "create", total, bytes, |fs| {
            namei::build_tree(fs, p).map(|_| ())
        })
        .expect("create phase"),
    );

    cold_boundary(&mut fs).expect("cold boundary");
    let paths = namei::sample_paths(p);
    let mut buf = vec![0u8; p.file_size.max(1)];
    rows.push(
        measure(&mut fs, "cold", paths.len() as u64, 0, |fs| {
            namei::resolve_round(fs, &paths, &mut buf).map(|_| ())
        })
        .expect("cold phase"),
    );

    let mut buf = vec![0u8; p.file_size.max(1)];
    let warm = measure(&mut fs, "warm", (paths.len() * p.rounds) as u64, 0, |fs| {
        for _ in 0..p.rounds {
            namei::resolve_round(fs, &paths, &mut buf)?;
        }
        Ok(())
    })
    .expect("warm phase");

    let (warm_hit_rate, warm_p50_ns, warm_p90_ns, warm_p99_ns) = match &warm.counters {
        Some(c) => {
            let hits = c.get(Ctr::DcacheHits) + c.get(Ctr::DcacheNegHits);
            let probes = hits + c.get(Ctr::DcacheMisses);
            let rate = if probes == 0 { 0.0 } else { hits as f64 / probes as f64 };
            let lk = c.op_latency(OpKind::Lookup);
            (
                rate,
                lk.map(|h| h.quantile(0.50)).unwrap_or(0),
                lk.map(|h| h.quantile(0.90)).unwrap_or(0),
                lk.map(|h| h.quantile(0.99)).unwrap_or(0),
            )
        }
        None => (0.0, 0, 0, 0),
    };
    rows.push(warm);

    let mut img = fs.crash_image();
    let fsck_clean = fsck::fsck(&mut img, false).map(|rep| rep.clean()).unwrap_or(false);
    RunOut { label, rows, warm_hit_rate, warm_p50_ns, warm_p90_ns, warm_p99_ns, fsck_clean }
}

/// Run the experiment at the given scale. Returns the text report and
/// the BENCH payload. `branches`/`dirs_per_branch` scale the tree width
/// (CI smoke passes reduced values); `files_per_dir` should stay at the
/// default 256 — shrinking it collapses leaf directories to a block or
/// two and the scan-vs-probe gap the gate measures disappears.
pub fn report(
    seed: u64,
    branches: usize,
    dirs_per_branch: usize,
    files_per_dir: usize,
    sample: usize,
    rounds: usize,
) -> (String, Json) {
    let p = NameiParams {
        branches,
        dirs_per_branch,
        files_per_dir,
        file_size: 0,
        sample,
        rounds,
        seed,
    };
    // Cache sized 25% over the namespace so eviction never competes with
    // the acceptance measurement; capacity pressure is the dcache unit
    // tests' concern, not E15's.
    let entries = ((p.total_files() + p.total_dirs()) as usize * 5) / 4;
    let mut on_cfg =
        CffsConfig::cffs().with_mode(MetadataMode::Delayed).with_dcache(entries);
    on_cfg.label = "C-FFS+dcache".to_string();
    let on = run_point(on_cfg, &p);
    let off = run_point(CffsConfig::cffs().with_mode(MetadataMode::Delayed), &p);

    let speedup = off.warm_p99_ns as f64 / (on.warm_p99_ns as f64).max(f64::MIN_POSITIVE);

    let mut out = header(&format!(
        "million-file namei: {} files in {}x{} dirs of {} (sample {}, {} warm rounds, seed {seed})",
        p.total_files(),
        branches,
        dirs_per_branch,
        files_per_dir,
        sample,
        rounds
    ));
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>12} {:>9} {:>10} {:>6}\n",
        "fs", "lookup p50", "p90", "p99 (ns)", "hit rate", "warm host", "fsck"
    ));
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for r in [&on, &off] {
        let warm_host_ms =
            r.rows.last().map(|row| row.host_ns as f64 / 1e6).unwrap_or(0.0);
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>12} {:>9.3} {:>8.1}ms {:>6}\n",
            r.label,
            r.warm_p50_ns,
            r.warm_p90_ns,
            r.warm_p99_ns,
            r.warm_hit_rate,
            warm_host_ms,
            if r.fsck_clean { "clean" } else { "DIRTY" },
        ));
    }
    out.push_str(&format!(
        "\nwarm lookup p99: {speedup:.2}x lower with the dcache (target >= 5.0)\n"
    ));

    let json = obj![
        ("experiment", "namei".to_json()),
        ("seed", Json::Int(seed as i64)),
        ("branches", Json::Int(branches as i64)),
        ("dirs_per_branch", Json::Int(dirs_per_branch as i64)),
        ("files_per_dir", Json::Int(files_per_dir as i64)),
        ("total_files", Json::Int(p.total_files() as i64)),
        ("sample", Json::Int(sample as i64)),
        ("rounds", Json::Int(rounds as i64)),
        ("dcache_entries", Json::Int(entries as i64)),
        ("dcache_warm_hit_rate", on.warm_hit_rate.to_json()),
        ("namei_warm_p50_ns", Json::Int(on.warm_p50_ns as i64)),
        ("namei_warm_p90_ns", Json::Int(on.warm_p90_ns as i64)),
        ("namei_warm_p99_ns", Json::Int(on.warm_p99_ns as i64)),
        ("namei_warm_p99_ns_nodcache", Json::Int(off.warm_p99_ns as i64)),
        ("namei_p99_speedup", speedup.to_json()),
        ("fsck_clean", Json::Bool(on.fsck_clean && off.fsck_clean)),
        (
            "rows",
            rows_json(
                &on.rows.into_iter().chain(off.rows).collect::<Vec<_>>(),
            )
        ),
    ];
    (out, json)
}

/// Render the experiment at full scale: the million-file tree.
pub fn run(seed: u64) -> String {
    report(seed, 64, 64, 256, 4096, 3).0
}

//! E7 — file-system aging (Section 4.3).
//!
//! "To get a handle on the impact of file system fragmentation on the
//! performance of C-FFS, we use an aging program similar to that described
//! in [Herrin93]." The disk is churned with creates and deletes biased
//! toward a target utilization, then the small-file benchmark's create and
//! read phases run on the aged image. Sweeping the target utilization
//! shows how free-space fragmentation erodes (but does not eliminate) the
//! grouping advantage: carving contiguous 16-block extents gets harder,
//! groups fill with holes, and whole-group reads shrink.

use crate::report::header;
use cffs::build;
use cffs_core::CffsConfig;
use cffs_disksim::models;
use cffs_fslib::{FileSystem, MetadataMode};
use cffs_workloads::aging::{age, AgingParams};
use cffs_workloads::sizes::Empirical1993;
use cffs_workloads::smallfile::{self, Assignment, SmallFileParams};

/// Utilization targets swept.
pub const UTILIZATIONS: [f64; 5] = [0.10, 0.30, 0.50, 0.70, 0.85];

/// One aged measurement: create+read throughput (files/s) after aging to
/// `util` on the 64 MB test disk.
pub fn point(cfg: CffsConfig, util: f64, ops: usize) -> (f64, f64, f64) {
    let mut fs = build::on_disk(models::tiny_test_disk(), cfg);
    let outcome = age(
        &mut fs,
        AgingParams { utilization: util, ops, ndirs: 20, seed: 1997 },
        &Empirical1993,
    )
    .expect("aging run");
    fs.drop_caches().expect("cache drop");
    // Now the measured workload: fresh dirs, small files, on the aged
    // disk. The file count is fixed *per row* (same for both file
    // systems), scaled down only at the highest utilization where the
    // 64 MB disk cannot hold 500 extra files plus grouping slack.
    let params = SmallFileParams {
        nfiles: if util > 0.75 { 250 } else { 500 },
        file_size: 1024,
        ndirs: 20,
        order: Assignment::RoundRobin,
    };
    let rs = smallfile::run(&mut fs, params).expect("aged benchmark");
    let create = rs.iter().find(|r| r.phase == "create").expect("create row");
    let read = rs.iter().find(|r| r.phase == "read").expect("read row");
    (create.items_per_sec(), read.items_per_sec(), outcome.final_utilization)
}

/// Render the sweep.
pub fn run(ops: usize) -> String {
    let mut out = header(&format!(
        "aging ([Herrin93] program, {ops} ops, 64 MB disk): small-file rates on the aged image"
    ));
    out.push_str(&format!(
        "{:<12} {:>10} {:>14} {:>12} {:>14} {:>12}\n",
        "target util", "actual", "conv create/s", "conv read/s", "cffs create/s", "cffs read/s"
    ));
    out.push_str(&"-".repeat(78));
    out.push('\n');
    for util in UTILIZATIONS {
        let (conv_c, conv_r, _) = point(
            CffsConfig::conventional().with_mode(MetadataMode::Delayed),
            util,
            ops,
        );
        let (cffs_c, cffs_r, actual) =
            point(CffsConfig::cffs().with_mode(MetadataMode::Delayed), util, ops);
        out.push_str(&format!(
            "{:<12} {:>9.0}% {:>14.0} {:>12.0} {:>14.0} {:>12.0}\n",
            format!("{:.0}%", util * 100.0),
            actual * 100.0,
            conv_c,
            conv_r,
            cffs_c,
            cffs_r,
        ));
    }
    out.push_str(
        "\nThe grouping read advantage persists on an aged disk but narrows with\n\
         utilization: contiguous 16-block extents become scarce, so more files\n\
         fall back to ungrouped allocation.\n",
    );
    out
}

//! E7 — file-system aging (Section 4.3).
//!
//! "To get a handle on the impact of file system fragmentation on the
//! performance of C-FFS, we use an aging program similar to that described
//! in [Herrin93]." The disk is churned with creates and deletes biased
//! toward a target utilization, then the small-file benchmark's create and
//! read phases run on the aged image. Sweeping the target utilization
//! shows how free-space fragmentation erodes (but does not eliminate) the
//! grouping advantage: carving contiguous 16-block extents gets harder,
//! groups fill with holes, and whole-group reads shrink.

use crate::report::{header, rows_json};
use cffs::build;
use cffs_core::CffsConfig;
use cffs_disksim::models;
use cffs_fslib::MetadataMode;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;
use cffs_workloads::aging::{age, AgingParams};
use cffs_workloads::sizes::Empirical1993;
use cffs_workloads::smallfile::{self, Assignment, SmallFileParams};
use cffs_workloads::PhaseResult;

/// Utilization targets swept.
pub const UTILIZATIONS: [f64; 5] = [0.10, 0.30, 0.50, 0.70, 0.85];

/// One aged measurement: the full phase rows plus the actual utilization
/// the aging program reached.
pub fn point_rows(cfg: CffsConfig, util: f64, ops: usize) -> (Vec<PhaseResult>, f64) {
    let mut fs = build::on_disk(models::tiny_test_disk(), cfg);
    let outcome = age(
        &mut fs,
        AgingParams { utilization: util, ops, ndirs: 20, seed: 1997 },
        &Empirical1993,
    )
    .expect("aging run");
    fs.drop_caches().expect("cache drop");
    // Now the measured workload: fresh dirs, small files, on the aged
    // disk. The file count is fixed *per row* (same for both file
    // systems), scaled down only at the highest utilization where the
    // 64 MB disk cannot hold 500 extra files plus grouping slack.
    let params = SmallFileParams {
        nfiles: if util > 0.75 { 250 } else { 500 },
        file_size: 1024,
        ndirs: 20,
        order: Assignment::RoundRobin,
        ..SmallFileParams::default()
    };
    let rs = smallfile::run(&mut fs, params).expect("aged benchmark");
    (rs, outcome.final_utilization)
}

fn rates(rows: &[PhaseResult]) -> (f64, f64) {
    let create = rows.iter().find(|r| r.phase == "create").expect("create row");
    let read = rows.iter().find(|r| r.phase == "read").expect("read row");
    (create.items_per_sec(), read.items_per_sec())
}

/// One aged measurement: create+read throughput (files/s) after aging to
/// `util` on the 64 MB test disk.
pub fn point(cfg: CffsConfig, util: f64, ops: usize) -> (f64, f64, f64) {
    let (rows, actual) = point_rows(cfg, util, ops);
    let (c, r) = rates(&rows);
    (c, r, actual)
}

/// Run the sweep once, rendering both the text report and the JSON payload.
pub fn report(ops: usize) -> (String, Json) {
    let mut points: Vec<Json> = Vec::new();
    let mut out = header(&format!(
        "aging ([Herrin93] program, {ops} ops, 64 MB disk): small-file rates on the aged image"
    ));
    out.push_str(&format!(
        "{:<12} {:>10} {:>14} {:>12} {:>14} {:>12}\n",
        "target util", "actual", "conv create/s", "conv read/s", "cffs create/s", "cffs read/s"
    ));
    out.push_str(&"-".repeat(78));
    out.push('\n');
    for util in UTILIZATIONS {
        let (conv_rows, _) = point_rows(
            CffsConfig::conventional().with_mode(MetadataMode::Delayed),
            util,
            ops,
        );
        let (cffs_rows, actual) =
            point_rows(CffsConfig::cffs().with_mode(MetadataMode::Delayed), util, ops);
        let (conv_c, conv_r) = rates(&conv_rows);
        let (cffs_c, cffs_r) = rates(&cffs_rows);
        points.push(obj![
            ("target_utilization", util.to_json()),
            ("actual_utilization", actual.to_json()),
            ("conventional", rows_json(&conv_rows)),
            ("cffs", rows_json(&cffs_rows)),
        ]);
        out.push_str(&format!(
            "{:<12} {:>9.0}% {:>14.0} {:>12.0} {:>14.0} {:>12.0}\n",
            format!("{:.0}%", util * 100.0),
            actual * 100.0,
            conv_c,
            conv_r,
            cffs_c,
            cffs_r,
        ));
    }
    out.push_str(
        "\nThe grouping read advantage persists on an aged disk but narrows with\n\
         utilization: contiguous 16-block extents become scarce, so more files\n\
         fall back to ungrouped allocation.\n",
    );
    let json = obj![
        ("experiment", "aging".to_json()),
        ("ops", ops.to_json()),
        ("points", Json::Arr(points)),
    ];
    (out, json)
}

/// Render the sweep.
pub fn run(ops: usize) -> String {
    report(ops).0
}

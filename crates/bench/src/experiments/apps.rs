//! E9 — the software-development application suite.
//!
//! "Preliminary experience with software-development applications shows
//! performance improvements ranging from 10-300 percent." The suite
//! (untar / copy / compile / search / clean) runs on all five file
//! systems; the report prints per-phase elapsed times and the C-FFS
//! improvement over the conventional baseline in the paper's percentage
//! form.

use crate::report::{header, phase_table, rows_json, speedup};
use cffs::build;
use cffs_fslib::MetadataMode;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;
use cffs_workloads::appdev::{self, DevTreeParams};
use cffs_workloads::PhaseResult;

/// Run the suite on all five file systems.
pub fn run_all(mode: MetadataMode, params: DevTreeParams) -> Vec<PhaseResult> {
    let mut all = Vec::new();
    for mut fs in build::all_five(mode) {
        all.extend(appdev::run(fs.as_mut(), params).expect("suite run"));
    }
    all
}

/// Run once, rendering both the text report and the JSON payload.
pub fn report(mode: MetadataMode, params: DevTreeParams) -> (String, Json) {
    let rows = run_all(mode, params);
    let json = obj![
        ("experiment", "apps".to_json()),
        ("mode", format!("{mode:?}").to_json()),
        (
            "params",
            obj![
                ("dirs", params.dirs.to_json()),
                ("files_per_dir", params.files_per_dir.to_json()),
                ("headers", params.headers.to_json()),
            ]
        ),
        ("rows", rows_json(&rows)),
    ];
    let mut out = header(&format!(
        "software-development suite ({} dirs x {} files + {} headers, metadata={:?})",
        params.dirs, params.files_per_dir, params.headers, mode
    ));
    out.push_str(&phase_table(&rows));
    out.push_str("\nC-FFS improvement over conventional (paper: 10-300%):\n");
    for phase in ["untar", "copy", "compile", "search", "clean"] {
        let base = rows
            .iter()
            .find(|r| r.fs == "conventional" && r.phase == phase)
            .expect("baseline row");
        let new = rows.iter().find(|r| r.fs == "C-FFS" && r.phase == phase).expect("cffs row");
        out.push_str(&format!(
            "  {phase:<10} +{:.0}%\n",
            (speedup(base, new) - 1.0) * 100.0
        ));
    }
    (out, json)
}

/// Render the report.
pub fn run(mode: MetadataMode, params: DevTreeParams) -> String {
    report(mode, params).0
}

//! One module per reproduced table/figure. Each exposes a `run` function
//! returning the formatted report, so the `repro_*` binaries and
//! `repro_all` share one implementation.
//!
//! | module | experiment | paper artifact |
//! |---|---|---|
//! | [`table1`] | E1 | Table 1: 1996 drive characteristics |
//! | [`fig2`] | E2 | Figure 2: access time vs request size |
//! | [`table2`] | E3 | Table 2: testbed drive (Seagate ST31200) |
//! | [`smallfile`] | E4/E5 | small-file benchmark, sync + soft updates |
//! | [`filesize`] | E6 | throughput vs file size |
//! | [`aging`] | E7 | performance after aging vs utilization |
//! | [`diskreqs`] | E8 | disk-request and sync-write accounting |
//! | [`apps`] | E9 | software-development application suite |
//! | [`dirsize`] | E10 | directory growth and inode-capacity trade |
//! | [`ablation`] | E11 (extra) | design-choice sweeps: group size, read threshold, scheduler, cache size, access order, prefetch |
//! | [`postmark`] | E12 (extra) | PostMark-style server workload |
//! | [`aging_regroup`] | E13 (extra) | online regrouping after adversarial aging |
//! | [`concurrent`] | E14 (extra) | multi-threaded scaling on disjoint cylinder groups |
//! | [`namei`] | E15 (extra) | million-file deep-tree name resolution, namespace cache vs scan |
//! | [`volume`] | E16 (extra) | scale-out volume sets: multi-disk striping, sharded metadata, multi-client sessions |

pub mod ablation;
pub mod aging;
pub mod aging_regroup;
pub mod apps;
pub mod concurrent;
pub mod dirsize;
pub mod diskreqs;
pub mod fig2;
pub mod filesize;
pub mod namei;
pub mod postmark;
pub mod smallfile;
pub mod table1;
pub mod table2;
pub mod volume;

//! E8 — disk-request accounting.
//!
//! The paper's mechanism claims, checked directly against the counters:
//!
//! * "The improvement comes directly from reducing the number of disk
//!   accesses required by an order of magnitude" (read phase).
//! * Embedded inodes remove one synchronous write per create/delete —
//!   "for file systems that use synchronous writes to ensure proper
//!   sequencing, this can result in a two-fold performance improvement
//!   [Ganger94]" — and give "a 250% increase in file deletion throughput".
//! * "Embedding inodes halves the number of blocks actually dirtied when
//!   removing the files because there are no separate inode blocks."

use crate::experiments::smallfile::{rows_payload, run_all};
use crate::report::header;
use cffs_fslib::MetadataMode;
use cffs_obs::json::Json;
use cffs_workloads::smallfile::SmallFileParams;
use cffs_workloads::PhaseResult;

fn find<'a>(rows: &'a [PhaseResult], fs: &str, phase: &str) -> &'a PhaseResult {
    rows.iter().find(|r| r.fs == fs && r.phase == phase).expect("row present")
}

/// Run once, rendering both the text report and the JSON payload.
pub fn report(params: SmallFileParams) -> (String, Json) {
    let rows = run_all(MetadataMode::Synchronous, params);
    let mut json = rows_payload(MetadataMode::Synchronous, params, &rows);
    if let Json::Obj(m) = &mut json {
        if let Some(e) = m.iter_mut().find(|(k, _)| k == "experiment") {
            e.1 = Json::Str("diskreqs".to_string());
        }
    }
    let mut out = header(&format!(
        "disk-request accounting ({} x {} B, synchronous metadata)",
        params.nfiles, params.file_size
    ));
    out.push_str(&format!(
        "{:<18} {:>10} {:>12} {:>12} {:>12} {:>14}\n",
        "file system", "phase", "disk reads", "disk writes", "sync writes", "group reads"
    ));
    out.push_str(&"-".repeat(82));
    out.push('\n');
    for r in &rows {
        out.push_str(&format!(
            "{:<18} {:>10} {:>12} {:>12} {:>12} {:>14}\n",
            r.fs,
            r.phase,
            r.io.disk.reads,
            r.io.disk.writes,
            r.io.cache.sync_writes,
            r.io.cache.group_reads,
        ));
    }

    let conv_read = find(&rows, "conventional", "read");
    let cffs_read = find(&rows, "C-FFS", "read");
    let conv_create = find(&rows, "conventional", "create");
    let emb_create = find(&rows, "embedded inodes", "create");
    let conv_del = find(&rows, "conventional", "delete");
    let emb_del = find(&rows, "embedded inodes", "delete");

    out.push_str(&format!(
        "\nclaims vs counters:\n\
         - read-phase disk requests: {} -> {} ({:.1}x reduction; paper: order of magnitude)\n\
         - sync writes per create: {:.2} -> {:.2} (embedding removes one of two)\n\
         - delete throughput: {:.0}/s -> {:.0}/s (+{:.0}%; paper: +250%)\n\
         - blocks dirtied during delete: {} -> {} ({:.2}x; paper: halved)\n",
        conv_read.disk_requests(),
        cffs_read.disk_requests(),
        conv_read.disk_requests() as f64 / cffs_read.disk_requests() as f64,
        conv_create.io.cache.sync_writes as f64 / params.nfiles as f64,
        emb_create.io.cache.sync_writes as f64 / params.nfiles as f64,
        conv_del.items_per_sec(),
        emb_del.items_per_sec(),
        (emb_del.items_per_sec() / conv_del.items_per_sec() - 1.0) * 100.0,
        conv_del.io.cache.writebacks + conv_del.io.cache.sync_writes,
        emb_del.io.cache.writebacks + emb_del.io.cache.sync_writes,
        (conv_del.io.cache.writebacks + conv_del.io.cache.sync_writes) as f64
            / (emb_del.io.cache.writebacks + emb_del.io.cache.sync_writes).max(1) as f64,
    ));
    (out, json)
}

/// Render the accounting report.
pub fn run(params: SmallFileParams) -> String {
    report(params).0
}

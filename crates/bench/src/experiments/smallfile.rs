//! E4/E5 — the small-file micro-benchmark (paper Section 4.2).
//!
//! Four phases (create/read/overwrite/delete) over 10 000 × 1 KB files in
//! 100 directories, accessed round-robin, on five file systems: classic
//! FFS, and C-FFS with {neither, embedding, grouping, both}. E4 runs with
//! the conventional synchronous metadata ordering; E5 delays all metadata
//! writes — the paper's soft-updates emulation ("[Ganger94] shows that
//! this will accurately predict the performance impact of soft updates").

use crate::report::{header, phase_table, rows_json, speedup};
use cffs::build;
use cffs_fslib::MetadataMode;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::{obj, prof, SpanRecord};
use cffs_workloads::smallfile::{self, SmallFileParams};
use cffs_workloads::PhaseResult;

/// Run the benchmark on all five file systems.
pub fn run_all(mode: MetadataMode, params: SmallFileParams) -> Vec<PhaseResult> {
    run_all_with_folds(mode, params).0
}

/// Run the benchmark on all five file systems and also collect a
/// collapsed-stack fold of the C-FFS run: its span log is segmented by
/// each phase's simulated-time window, so the fold reads
/// `{phase};{op};disk_req/{queue,service}` with per-phase `idle` frames;
/// setup and cold-boundary work between phases folds under
/// `(unmeasured)`.
pub fn run_all_with_folds(
    mode: MetadataMode,
    params: SmallFileParams,
) -> (Vec<PhaseResult>, prof::Fold) {
    let mut all = Vec::new();
    let mut fold = prof::Fold::default();
    for mut fs in build::all_five(mode) {
        let obs = fs.obs();
        // Stream this file system's run into the telemetry feed when the
        // repro binary set one up with --feed (no-op otherwise).
        let _feed = obs.as_ref().and_then(|o| cffs_obs::feed::tap_global_sim(o, fs.label()));
        let want_fold = fs.label() == "C-FFS";
        if want_fold {
            if let Some(o) = &obs {
                o.enable_span_log();
            }
        }
        let rows = smallfile::run(fs.as_mut(), params).expect("benchmark run");
        if want_fold {
            if let Some(log) = obs.as_ref().and_then(|o| o.span_log()) {
                fold_phases(&mut fold, &log, &rows);
            }
        }
        all.extend(rows);
    }
    (all, fold)
}

/// Window the span log by each phase's `[start, start + elapsed)` and
/// fold each window under the phase's name; records between phases
/// (directory setup, cold boundaries) fold under `(unmeasured)` with no
/// idle frame (their windows are gaps, not measured intervals).
fn fold_phases(fold: &mut prof::Fold, log: &[SpanRecord], rows: &[PhaseResult]) {
    let mut unmeasured: Vec<SpanRecord> = Vec::new();
    'records: for &rec in log {
        for r in rows {
            let start = r.start_ns;
            let end = start + r.elapsed.as_nanos();
            if rec.t0_ns >= start && rec.t0_ns < end {
                continue 'records;
            }
        }
        unmeasured.push(rec);
    }
    for r in rows {
        let start = r.start_ns;
        let end = start + r.elapsed.as_nanos();
        let recs: Vec<SpanRecord> = log
            .iter()
            .filter(|s| s.t0_ns >= start && s.t0_ns < end)
            .copied()
            .collect();
        prof::fold_log_into(fold, &recs, &r.phase, r.elapsed.as_nanos());
    }
    let covered: u64 = unmeasured.iter().map(|s| s.dur_ns).sum();
    prof::fold_log_into(fold, &unmeasured, "(unmeasured)", covered);
}

/// JSON payload for one metadata mode's rows.
pub fn rows_payload(mode: MetadataMode, params: SmallFileParams, rows: &[PhaseResult]) -> Json {
    obj![
        ("experiment", "smallfile".to_json()),
        ("mode", format!("{mode:?}").to_json()),
        (
            "params",
            obj![
                ("nfiles", params.nfiles.to_json()),
                ("file_size", params.file_size.to_json()),
                ("ndirs", params.ndirs.to_json()),
                ("seed", params.seed.to_json()),
            ]
        ),
        ("rows", rows_json(rows)),
    ]
}

/// Run one metadata mode and render both the text report and the JSON
/// payload from the same pass.
pub fn report(mode: MetadataMode, params: SmallFileParams) -> (String, Json) {
    let (text, json, _) = report_with_folds(mode, params);
    (text, json)
}

/// [`report`], plus the C-FFS run's collapsed-stack fold (for
/// `FOLD_SMALLFILE_*.txt` artifacts).
pub fn report_with_folds(
    mode: MetadataMode,
    params: SmallFileParams,
) -> (String, Json, prof::Fold) {
    let (all, fold) = run_all_with_folds(mode, params);
    let json = rows_payload(mode, params, &all);
    let mut out = header(&format!(
        "small-file benchmark: {} x {} B in {} dirs, metadata={:?}",
        params.nfiles, params.file_size, params.ndirs, mode
    ));
    out.push_str(&phase_table(&all));
    out.push_str("\nspeedup of C-FFS over conventional (same code base, techniques off):\n");
    for phase in ["create", "read", "overwrite", "delete"] {
        let base = all
            .iter()
            .find(|r| r.fs == "conventional" && r.phase == phase)
            .expect("baseline row");
        let new = all.iter().find(|r| r.fs == "C-FFS" && r.phase == phase).expect("cffs row");
        out.push_str(&format!(
            "  {phase:<10} {:>5.2}x   (disk requests: {} -> {})\n",
            speedup(base, new),
            base.disk_requests(),
            new.disk_requests()
        ));
    }
    (out, json, fold)
}

/// Render the report for one metadata mode.
pub fn run(mode: MetadataMode, params: SmallFileParams) -> String {
    report(mode, params).0
}

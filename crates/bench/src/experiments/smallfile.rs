//! E4/E5 — the small-file micro-benchmark (paper Section 4.2).
//!
//! Four phases (create/read/overwrite/delete) over 10 000 × 1 KB files in
//! 100 directories, accessed round-robin, on five file systems: classic
//! FFS, and C-FFS with {neither, embedding, grouping, both}. E4 runs with
//! the conventional synchronous metadata ordering; E5 delays all metadata
//! writes — the paper's soft-updates emulation ("[Ganger94] shows that
//! this will accurately predict the performance impact of soft updates").

use crate::report::{header, phase_table, rows_json, speedup};
use cffs::build;
use cffs_fslib::MetadataMode;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;
use cffs_workloads::smallfile::{self, SmallFileParams};
use cffs_workloads::PhaseResult;

/// Run the benchmark on all five file systems.
pub fn run_all(mode: MetadataMode, params: SmallFileParams) -> Vec<PhaseResult> {
    let mut all = Vec::new();
    for mut fs in build::all_five(mode) {
        all.extend(smallfile::run(fs.as_mut(), params).expect("benchmark run"));
    }
    all
}

/// JSON payload for one metadata mode's rows.
pub fn rows_payload(mode: MetadataMode, params: SmallFileParams, rows: &[PhaseResult]) -> Json {
    obj![
        ("experiment", "smallfile".to_json()),
        ("mode", format!("{mode:?}").to_json()),
        (
            "params",
            obj![
                ("nfiles", params.nfiles.to_json()),
                ("file_size", params.file_size.to_json()),
                ("ndirs", params.ndirs.to_json()),
                ("seed", params.seed.to_json()),
            ]
        ),
        ("rows", rows_json(rows)),
    ]
}

/// Run one metadata mode and render both the text report and the JSON
/// payload from the same pass.
pub fn report(mode: MetadataMode, params: SmallFileParams) -> (String, Json) {
    let all = run_all(mode, params);
    let json = rows_payload(mode, params, &all);
    let mut out = header(&format!(
        "small-file benchmark: {} x {} B in {} dirs, metadata={:?}",
        params.nfiles, params.file_size, params.ndirs, mode
    ));
    out.push_str(&phase_table(&all));
    out.push_str("\nspeedup of C-FFS over conventional (same code base, techniques off):\n");
    for phase in ["create", "read", "overwrite", "delete"] {
        let base = all
            .iter()
            .find(|r| r.fs == "conventional" && r.phase == phase)
            .expect("baseline row");
        let new = all.iter().find(|r| r.fs == "C-FFS" && r.phase == phase).expect("cffs row");
        out.push_str(&format!(
            "  {phase:<10} {:>5.2}x   (disk requests: {} -> {})\n",
            speedup(base, new),
            base.disk_requests(),
            new.disk_requests()
        ));
    }
    (out, json)
}

/// Render the report for one metadata mode.
pub fn run(mode: MetadataMode, params: SmallFileParams) -> String {
    report(mode, params).0
}

//! E12 (extra) — a PostMark-style server workload.
//!
//! PostMark appeared the same year as the paper and measures exactly the
//! population C-FFS targets: small short-lived files under steady
//! create/delete/read/append churn (mail, news, web). Not a paper
//! artifact — included because a 1997 reviewer would have asked for it.

use crate::report::{header, phase_table, rows_json, speedup};
use cffs::build;
use cffs_fslib::MetadataMode;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;
use cffs_workloads::postmark::{self, PostmarkParams};
use cffs_workloads::PhaseResult;

/// Run PostMark on all five file systems.
pub fn run_all(mode: MetadataMode, params: PostmarkParams) -> Vec<PhaseResult> {
    let mut all = Vec::new();
    for mut fs in build::all_five(mode) {
        all.extend(postmark::run(fs.as_mut(), params).expect("postmark run"));
    }
    all
}

/// Run once, rendering both the text report and the JSON payload.
pub fn report(mode: MetadataMode, params: PostmarkParams) -> (String, Json) {
    let rows = run_all(mode, params);
    let json = obj![
        ("experiment", "postmark".to_json()),
        ("mode", format!("{mode:?}").to_json()),
        (
            "params",
            obj![
                ("nfiles", params.nfiles.to_json()),
                ("transactions", params.transactions.to_json()),
                ("min_size", params.min_size.to_json()),
                ("max_size", params.max_size.to_json()),
            ]
        ),
        ("rows", rows_json(&rows)),
    ];
    let mut out = header(&format!(
        "PostMark-style workload ({} files, {} transactions, {}-{} B, metadata={:?})",
        params.nfiles, params.transactions, params.min_size, params.max_size, mode
    ));
    out.push_str(&phase_table(&rows));
    out.push_str("\nC-FFS speedup over conventional:\n");
    for phase in ["pm-create", "pm-transactions", "pm-delete"] {
        let base = rows
            .iter()
            .find(|r| r.fs == "conventional" && r.phase == phase)
            .expect("baseline row");
        let new = rows.iter().find(|r| r.fs == "C-FFS" && r.phase == phase).expect("cffs row");
        out.push_str(&format!(
            "  {phase:<16} {:>5.2}x   ({} -> {} disk requests)\n",
            speedup(base, new),
            base.disk_requests(),
            new.disk_requests()
        ));
    }
    (out, json)
}

/// Render the report.
pub fn run(mode: MetadataMode, params: PostmarkParams) -> String {
    report(mode, params).0
}

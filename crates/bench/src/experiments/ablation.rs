//! Ablations of the design choices DESIGN.md calls out.
//!
//! Each sweep holds the small-file workload fixed and varies exactly one
//! knob on C-FFS (or its substrate):
//!
//! * **group size** — the paper fixes 64 KB (16 blocks); what do 4/8/16
//!   block extents buy?
//! * **group-read threshold** — fetch the whole group on a miss only when
//!   it has at least N live members ("in most cases").
//! * **driver scheduler** — the testbed used C-LOOK; FCFS and SSTF for
//!   contrast.
//! * **buffer-cache size** — the grouping win needs groups to *survive*
//!   between the accesses they amortize.
//! * **access order** — round-robin vs directory-major across the
//!   benchmark's 100 directories (the locality-vs-adjacency knob).

use crate::report::header;
use cffs::build;
use cffs::core::CffsConfig;
use cffs_cache::CacheConfig;
use cffs_disksim::driver::Scheduler;
use cffs_disksim::models;
use cffs_fslib::MetadataMode;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::{obj, StatsSnapshot};
use cffs_workloads::smallfile::{self, Assignment, SmallFileParams};

fn params(order: Assignment) -> SmallFileParams {
    SmallFileParams { nfiles: 2000, ndirs: 100, order, ..SmallFileParams::default() }
}

/// Files/s (and counter delta) of one phase for a config.
fn phase_rate(cfg: CffsConfig, p: SmallFileParams, phase: &str) -> (f64, Option<StatsSnapshot>) {
    let mut fs = build::on_disk(models::seagate_st31200(), cfg);
    let rs = smallfile::run(&mut fs, p).expect("run");
    let row = rs.iter().find(|r| r.phase == phase).expect("phase row");
    (row.items_per_sec(), row.counters.clone())
}

/// Read-phase files/s for a config.
fn read_rate(cfg: CffsConfig, p: SmallFileParams) -> (f64, Option<StatsSnapshot>) {
    phase_rate(cfg, p, "read")
}

/// Create-phase files/s for a config (sync metadata).
fn create_rate(cfg: CffsConfig, p: SmallFileParams) -> (f64, Option<StatsSnapshot>) {
    phase_rate(cfg, p, "create")
}

fn sweep_point(knob: &str, value: impl ToJson, rate: f64, snap: Option<StatsSnapshot>) -> Json {
    let mut j = obj![
        ("knob", knob.to_json()),
        ("value", value.to_json()),
        ("files_per_sec", rate.to_json()),
    ];
    if let (Json::Obj(m), Some(s)) = (&mut j, snap) {
        m.push(("counters".to_string(), s.to_json()));
    }
    j
}

/// Run all sweeps once, rendering the text report and the JSON payload.
pub fn report() -> (String, Json) {
    let mut points: Vec<Json> = Vec::new();
    let mut out = header("ablations (2000 x 1 KB files, 100 dirs)");

    out.push_str("group size (delayed metadata; read phase, files/s):\n");
    for blocks in [4u8, 8, 12, 16] {
        let mut cfg = CffsConfig::cffs().with_mode(MetadataMode::Delayed);
        cfg.group_blocks = blocks;
        let (r, snap) = read_rate(cfg, params(Assignment::RoundRobin));
        points.push(sweep_point("group_blocks", blocks, r, snap));
        out.push_str(&format!("  {:>3} blocks ({:>3} KB)  {r:>8.0}\n", blocks, blocks as u32 * 4));
    }

    out.push_str("\ngroup-read threshold (min live members; read files/s):\n");
    for min in [1u32, 2, 4, 8] {
        let mut cfg = CffsConfig::cffs().with_mode(MetadataMode::Delayed);
        cfg.group_read_min = min;
        let (r, snap) = read_rate(cfg, params(Assignment::RoundRobin));
        points.push(sweep_point("group_read_min", min, r, snap));
        out.push_str(&format!("  >= {min:>2} live          {r:>8.0}\n"));
    }

    out.push_str("\ndriver scheduler (sync metadata; create files/s):\n");
    for sched in [Scheduler::Fcfs, Scheduler::CLook, Scheduler::Sstf] {
        let mut cfg = CffsConfig::cffs();
        cfg.scheduler = sched;
        let (r, snap) = create_rate(cfg, params(Assignment::RoundRobin));
        points.push(sweep_point("scheduler", format!("{sched:?}"), r, snap));
        out.push_str(&format!("  {sched:<8?}          {r:>8.0}\n"));
    }

    out.push_str("\nbuffer-cache size (delayed metadata; read files/s):\n");
    for mb in [2usize, 4, 8, 16, 32] {
        let mut cfg = CffsConfig::cffs().with_mode(MetadataMode::Delayed);
        cfg.cache = CacheConfig { nbufs: mb * 256, ..CacheConfig::default() };
        let (r, snap) = read_rate(cfg, params(Assignment::RoundRobin));
        points.push(sweep_point("cache_mb", mb, r, snap));
        out.push_str(&format!("  {mb:>3} MB             {r:>8.0}\n"));
    }

    out.push_str("\naccess order (delayed metadata; read files/s, C-FFS vs conventional):\n");
    for (name, order) in [("round-robin", Assignment::RoundRobin), ("dir-major", Assignment::DirMajor)] {
        let (c, c_snap) = read_rate(CffsConfig::cffs().with_mode(MetadataMode::Delayed), params(order));
        let (v, v_snap) = read_rate(
            CffsConfig::conventional().with_mode(MetadataMode::Delayed),
            params(order),
        );
        points.push(sweep_point("order_cffs", name, c, c_snap));
        points.push(sweep_point("order_conventional", name, v, v_snap));
        out.push_str(&format!(
            "  {name:<12} cffs {c:>7.0}  conventional {v:>7.0}  ({:.2}x)\n",
            c / v
        ));
    }
    out.push_str("\nprefetching extension (8 MB sequential read in 8 KB calls; the paper's\nimplementation had none):\n");
    for pf in [0u32, 8, 32] {
        let mut cfg = CffsConfig::cffs().with_mode(MetadataMode::Delayed);
        cfg.prefetch_blocks = pf;
        let fs = build::on_disk(models::seagate_st31200(), cfg);
        let f = fs.create(fs.root(), "big").expect("create");
        fs.write(f, 0, &vec![5u8; 8 << 20]).expect("write");
        fs.drop_caches().expect("drop");
        fs.reset_io_stats();
        let before = fs.obs().snapshot("cffs", fs.now().as_nanos());
        let t0 = fs.now();
        let mut buf = vec![0u8; 8192];
        let mut off = 0u64;
        while fs.read(f, off, &mut buf).expect("read") > 0 {
            off += 8192;
        }
        let secs = (fs.now() - t0).as_secs_f64();
        let snap = fs.obs().snapshot("cffs", fs.now().as_nanos()).delta(&before);
        points.push(sweep_point("prefetch_blocks", pf, 8.0 / secs, Some(snap)));
        out.push_str(&format!(
            "  {:>3} blocks ahead   {:>6.2} MB/s  ({} disk reads)\n",
            pf,
            8.0 / secs,
            fs.io_stats().disk.reads
        ));
    }

    out.push_str(
        "\nReadings: bigger extents amortize positioning further (diminishing past\n\
         ~32 KB at this file size); an aggressive read threshold costs little on a\n\
         fresh disk but protects aged ones; C-LOOK vs FCFS matters most for the\n\
         sync-write storms; the grouping advantage needs the cache to hold the\n\
         round-robin working set (~6.4 MB here) and collapses below it; and with\n\
         dir-major access even the conventional layout is disk-sequential, which\n\
         is exactly the paper's point about locality vs adjacency. FS-level\n\
         prefetch peaks at a moderate depth: small windows let the drive's own\n\
         on-board read-ahead run ahead of the host between requests, while very\n\
         deep windows serialize everything into long media transfers.\n",
    );
    let json = obj![
        ("experiment", "ablation".to_json()),
        ("points", Json::Arr(points)),
    ];
    (out, json)
}

/// Render all sweeps.
pub fn run() -> String {
    report().0
}

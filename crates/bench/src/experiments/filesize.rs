//! E6 — throughput as a function of file size.
//!
//! Grouping targets *small* files: a group extent is 64 KB, and files that
//! outgrow it are moved to ordinary clustered allocation. This sweep
//! creates and reads back files of 1 KB – 256 KB (scaling the count so
//! total payload stays constant) and shows where the grouping advantage
//! decays: the win is largest well below the group size and approaches the
//! plain-clustering result past it — the paper's crossover.

use crate::report::{header, rows_json};
use cffs::build;
use cffs_core::CffsConfig;
use cffs_disksim::models;
use cffs_fslib::MetadataMode;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;
use cffs_workloads::smallfile::{self, Assignment, SmallFileParams};
use cffs_workloads::PhaseResult;

/// File sizes swept, in KB.
pub const SIZES_KB: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Total payload per point, in bytes.
const TOTAL_BYTES: usize = 20 << 20;

/// All phase rows (with counter snapshots) for one variant at one size.
pub fn point_rows(cfg: CffsConfig, size: usize) -> Vec<PhaseResult> {
    let nfiles = (TOTAL_BYTES / size).clamp(50, 20_000);
    let ndirs = (nfiles / 100).clamp(4, 100);
    let params =
        SmallFileParams { nfiles, file_size: size, ndirs, order: Assignment::RoundRobin, ..SmallFileParams::default() };
    let mut fs = build::on_disk(models::seagate_st31200(), cfg);
    smallfile::run(&mut fs, params).expect("sweep run")
}

fn rates(rows: &[PhaseResult]) -> (f64, f64) {
    let create = rows.iter().find(|r| r.phase == "create").expect("create row");
    let read = rows.iter().find(|r| r.phase == "read").expect("read row");
    (create.mb_per_sec(), read.mb_per_sec())
}

/// Create + read throughput (MB/s) for one variant at one file size.
pub fn point(cfg: CffsConfig, size: usize) -> (f64, f64) {
    rates(&point_rows(cfg, size))
}

/// Run the sweep once, rendering both the text report and the JSON payload.
pub fn report() -> (String, Json) {
    let mut points: Vec<Json> = Vec::new();
    let mut out = header("throughput vs file size (create / read, MB/s)");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}\n",
        "size", "conv create", "conv read", "cffs create", "cffs read", "read speedup", "create speedup"
    ));
    out.push_str(&"-".repeat(92));
    out.push('\n');
    for kb in SIZES_KB {
        let size = kb * 1024;
        let conv_rows = point_rows(
            CffsConfig::conventional().with_mode(MetadataMode::Delayed),
            size,
        );
        let cffs_rows = point_rows(CffsConfig::cffs().with_mode(MetadataMode::Delayed), size);
        let (conv_c, conv_r) = rates(&conv_rows);
        let (cffs_c, cffs_r) = rates(&cffs_rows);
        points.push(obj![
            ("size_kb", kb.to_json()),
            ("conventional", rows_json(&conv_rows)),
            ("cffs", rows_json(&cffs_rows)),
        ]);
        out.push_str(&format!(
            "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>13.2}x {:>13.2}x\n",
            format!("{kb} KB"),
            conv_c,
            conv_r,
            cffs_c,
            cffs_r,
            cffs_r / conv_r,
            cffs_c / conv_c,
        ));
    }
    out.push_str(
        "\nGrouping pays below the 64 KB group size and converges to plain clustering\n\
         above it (large files take the unchanged FFS-style path, as the paper\n\
         prescribes). Metadata writes are delayed here to isolate the data path.\n",
    );
    let json = obj![
        ("experiment", "filesize".to_json()),
        ("points", Json::Arr(points)),
    ];
    (out, json)
}

/// Render the sweep.
pub fn run() -> String {
    report().0
}

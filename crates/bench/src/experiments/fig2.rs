//! E2 — Figure 2: average access time as a function of request size.
//!
//! The paper plots, for the three Table 1 drives, how the average time to
//! service a request grows with its size. The crossover logic behind
//! C-FFS lives in this curve: going from 4 KB to 64 KB multiplies the data
//! moved by 16 while the service time grows far less, because positioning
//! dominates small requests.
//!
//! Measured, not computed: each point issues random-position reads on a
//! fresh simulated drive (on-board cache disabled — random positions defeat
//! it anyway, and the paper's curve is about mechanics).

use cffs_disksim::cache::OnboardCacheConfig;
use cffs_disksim::{models, Disk, SimTime};
use cffs_obs::json::{Json, ToJson};
use cffs_obs::{obj, StatsSnapshot};

/// Sizes plotted, in KB.
pub const SIZES_KB: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// One measured point: average access time (ms) of `n` random reads of
/// `size` bytes, plus the disk's counter snapshot for the run.
pub fn point(model: cffs_disksim::DiskModel, size: usize, n: usize) -> (f64, StatsSnapshot) {
    let mut model = model;
    model.cache = OnboardCacheConfig::disabled();
    let name = model.name.clone();
    let mut disk = Disk::new(model);
    let cap = disk.capacity_sectors();
    let sectors = (size / cffs_disksim::SECTOR_SIZE) as u64;
    let mut buf = vec![0u8; size];
    let mut t = SimTime::ZERO;
    // Deterministic quasi-random positions (golden-ratio stride).
    let mut pos = 0u64;
    let stride = (cap as f64 * 0.618_033_988_75) as u64 | 1;
    let t0 = t;
    for _ in 0..n {
        pos = (pos + stride) % (cap - sectors);
        t = disk.read(t, pos, &mut buf);
    }
    let snap = disk.obs().snapshot(&name, (t - t0).as_nanos());
    ((t - t0).as_millis_f64() / n as f64, snap)
}

/// Average access time (ms) of `n` random reads of `size` bytes.
pub fn avg_access_ms(model: cffs_disksim::DiskModel, size: usize, n: usize) -> f64 {
    point(model, size, n).0
}

/// Run the figure once, rendering the table and the JSON payload.
pub fn report(samples: usize) -> (String, Json) {
    let mut points: Vec<Json> = Vec::new();
    let drives = models::table1_drives();
    let mut out = String::new();
    out.push_str(&format!("{:<10}", "size"));
    for d in &drives {
        out.push_str(&format!("{:>24}", d.name));
    }
    out.push('\n');
    out.push_str(&format!("{:<10}", ""));
    for _ in &drives {
        out.push_str(&format!("{:>14} {:>9}", "ms/req", "MB/s"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(10 + drives.len() * 24));
    out.push('\n');
    for kb in SIZES_KB {
        out.push_str(&format!("{:<10}", format!("{kb} KB")));
        for d in &drives {
            let (ms, snap) = point(d.clone(), kb * 1024, samples);
            let mbps = kb as f64 / 1024.0 / (ms / 1000.0);
            points.push(obj![
                ("drive", d.name.to_json()),
                ("size_kb", kb.to_json()),
                ("ms_per_req", ms.to_json()),
                ("mb_per_sec", mbps.to_json()),
                ("counters", snap.to_json()),
            ]);
            out.push_str(&format!("{ms:>14.2} {mbps:>9.2}"));
        }
        out.push('\n');
    }
    // The argument in one number: 4 KB → 64 KB on the first drive.
    let d = &drives[0];
    let t4 = avg_access_ms(d.clone(), 4 * 1024, samples);
    let t64 = avg_access_ms(d.clone(), 64 * 1024, samples);
    out.push_str(&format!(
        "\n16x the data (4 KB -> 64 KB) costs only {:.2}x the time on the {} —\n\
         adjacency converts positioning time into useful transfer.\n",
        t64 / t4,
        d.name
    ));
    let json = obj![
        ("experiment", "fig2".to_json()),
        ("samples", samples.to_json()),
        ("points", Json::Arr(points)),
    ];
    (out, json)
}

/// Render the figure as a table (ms per request, and effective MB/s).
pub fn run(samples: usize) -> String {
    report(samples).0
}

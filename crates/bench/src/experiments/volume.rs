//! E16 — scale-out volume sets: multi-disk striping + sharded metadata.
//!
//! The multi-client session driver (`workloads::multiclient`) replays
//! thousands of seeded sessions with Zipf-skewed directory popularity
//! against a [`VolumeSet`] of 1, 2, 4 and 8 independent simulated disks.
//! Directories shard across volumes by path hash, files larger than the
//! stripe threshold spread in group-sized parts, and every volume's
//! caches are dropped at the populate barrier so the measured sessions
//! window is cold and disk-bound. Thread count is held fixed across
//! points: any throughput gain comes from the extra spindles, i.e. from
//! the sharded namespace letting per-volume disk timelines overlap.
//!
//! Acceptance (ISSUE 9): aggregate sessions-window ops/s at 4 volumes
//! must be ≥ 3.0× the 1-volume figure, and every volume must fsck clean
//! after the churn phase plus one regroup pass per shard.

use crate::report::{header, rows_json};
use cffs_core::CffsConfig;
use cffs_disksim::{models, Disk};
use cffs_fslib::{ConcurrentFs, MetadataMode};
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;
use cffs_regroup::RegroupConfig;
use cffs_volume::{VolumeCfg, VolumeSet};
use cffs_workloads::multiclient::{self, MulticlientParams};
use cffs_workloads::PhaseResult;

/// Volume counts measured, in order. The acceptance pair is 1 volume
/// (baseline) vs 4 volumes (the ≥ 3.0× claim); 8 shows the tail of the
/// curve.
const POINTS: [usize; 4] = [1, 2, 4, 8];

/// One measured point of the scaling curve.
struct Point {
    nvols: usize,
    session_ops: u64,
    ops_per_sec: f64,
    stripes: usize,
    fsck_clean: bool,
    row: PhaseResult,
}

/// Run the workload against a fresh `nvols`-disk set and capture the
/// merged per-volume counter delta as a phase row. Thread count and all
/// workload parameters are identical across points — only the number of
/// spindles changes.
fn point(nvols: usize, p: &MulticlientParams) -> Point {
    let disks: Vec<Disk> =
        (0..nvols).map(|_| Disk::new(models::tiny_test_disk())).collect();
    // Each volume is one scale-out node's slice: a 4 MB cache (so the
    // session working set does not fit on one node and the window stays
    // disk-bound) and a namespace cache (so flat per-op lookup CPU does
    // not drown the spindle overlap under test).
    let mut fs_cfg = CffsConfig::cffs().with_mode(MetadataMode::Delayed);
    fs_cfg.cache.nbufs = 1024;
    fs_cfg.dcache_entries = 4096;
    let mut vs =
        VolumeSet::format(disks, VolumeCfg::new(fs_cfg)).expect("format volume set");
    let set_obs = vs.set_obs();
    vs.reset_io_stats();
    let label = ConcurrentFs::label(&vs).to_string();
    let before = vs.merged_snapshot(&label);
    let start_ns = set_obs.global_clock_ns();
    let host_t0 = std::time::Instant::now();

    // Telemetry: a manual-cadence tap carrying the per-volume registries,
    // so every frame has a `volumes` row set (ops, queue depth, group-
    // fetch utilization per spindle). Frames are cut at the quiescent
    // phase barriers; the populate hook also drops every volume's caches
    // so the sessions window starts cold.
    let feed = cffs_obs::feed::tap_global_volumes(
        &set_obs,
        &vs.vol_obs(),
        &format!("volume-{nvols}v"),
        cffs_obs::feed::Cadence::Manual,
    );
    let r = multiclient::run_with_phase_hook(&vs, p, |phase| {
        if phase == "populate" {
            vs.drop_caches_all().expect("drop caches");
        }
        if let Some(tap) = &feed {
            tap.frame(&format!("volume-{nvols}v/{phase}"));
        }
    })
    .expect("multiclient run");
    drop(feed);

    let counters = vs.merged_snapshot(&label).delta(&before);
    let row = PhaseResult {
        fs: label,
        phase: format!("volume-{nvols}v"),
        start_ns,
        elapsed: r.elapsed,
        items: r.total_ops(),
        bytes: r.bytes,
        io: vs.io_stats(),
        counters: Some(counters),
        host_ns: host_t0.elapsed().as_nanos() as u64,
    };
    let stripes = vs.stripe_count();

    // Acceptance tail: one regroup pass per shard, then fsck every
    // volume's crash image — clean on all spindles or the point fails.
    vs.regroup_all(&RegroupConfig::exhaustive()).expect("regroup every shard");
    let fsck_clean = vs
        .fsck_all()
        .map(|reps| reps.iter().all(|rep| rep.clean()))
        .unwrap_or(false);
    Point {
        nvols,
        session_ops: r.total_session_ops(),
        ops_per_sec: r.ops_per_sec(),
        stripes,
        fsck_clean,
        row,
    }
}

/// Run the experiment. `sessions`/`ndirs`/`files_per_dir`/
/// `ops_per_session` scale the work (CI smoke passes reduced values);
/// `nthreads` is the fixed client-thread count. Returns the text report
/// and the BENCH payload.
pub fn report(
    seed: u64,
    sessions: usize,
    ndirs: usize,
    files_per_dir: usize,
    ops_per_session: usize,
    nthreads: usize,
) -> (String, Json) {
    let p = MulticlientParams {
        nthreads,
        sessions,
        ndirs,
        files_per_dir,
        ops_per_session,
        seed,
        ..MulticlientParams::default()
    };
    let points: Vec<Point> = POINTS.iter().map(|&n| point(n, &p)).collect();

    let base = &points[0];
    let four = points.iter().find(|pt| pt.nvols == 4).unwrap_or(&points[points.len() - 1]);
    let scaling_ratio = four.ops_per_sec / base.ops_per_sec.max(f64::MIN_POSITIVE);

    let mut out = header(&format!(
        "scale-out volume sets (seed {seed}, {sessions} sessions × {ops_per_session} ops, {ndirs} dirs × {files_per_dir} files, {nthreads} threads)"
    ));
    out.push_str(&format!(
        "{:<10} {:>12} {:>14} {:>12} {:>9} {:>8}\n",
        "volumes", "session ops", "agg ops/s", "elapsed", "stripes", "fsck"
    ));
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for pt in &points {
        out.push_str(&format!(
            "{:<10} {:>12} {:>14.0} {:>12} {:>9} {:>8}\n",
            pt.nvols,
            pt.session_ops,
            pt.ops_per_sec,
            format!("{}", pt.row.elapsed),
            pt.stripes,
            if pt.fsck_clean { "clean" } else { "DIRTY" },
        ));
    }
    out.push_str(&format!(
        "\nscaling: {scaling_ratio:.2}x aggregate ops/s at 4 volumes vs 1 (target >= 3.0)\n"
    ));

    let json = obj![
        ("experiment", "volume".to_json()),
        ("seed", Json::Int(seed as i64)),
        ("sessions", Json::Int(sessions as i64)),
        ("ndirs", Json::Int(ndirs as i64)),
        ("files_per_dir", Json::Int(files_per_dir as i64)),
        ("ops_per_session", Json::Int(ops_per_session as i64)),
        ("nthreads", Json::Int(nthreads as i64)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|pt| {
                        obj![
                            ("nvols", Json::Int(pt.nvols as i64)),
                            ("total_ops", Json::Int(pt.row.items as i64)),
                            ("session_ops", Json::Int(pt.session_ops as i64)),
                            ("ops_per_sec", pt.ops_per_sec.to_json()),
                            ("elapsed_ns", Json::Int(pt.row.elapsed.as_nanos() as i64)),
                            ("stripes", Json::Int(pt.stripes as i64)),
                            ("fsck_clean", Json::Bool(pt.fsck_clean)),
                        ]
                    })
                    .collect(),
            )
        ),
        ("scaling_ratio", scaling_ratio.to_json()),
        ("volume_scaling_ratio", scaling_ratio.to_json()),
        ("aggregate_ops_per_sec", four.ops_per_sec.to_json()),
        ("rows", rows_json(&points.into_iter().map(|pt| pt.row).collect::<Vec<_>>())),
    ];
    (out, json)
}

/// Render the experiment at full scale.
pub fn run(seed: u64) -> String {
    report(seed, 2000, 64, 16, 8, 4).0
}

//! Minimal wall-clock micro-bench harness.
//!
//! The environment has no registry access, so criterion is unavailable;
//! the `benches/` targets use this instead. It reports mean ns/iter after
//! a warmup pass — enough to spot order-of-magnitude regressions, which is
//! all the micro-benches are for (the *simulated*-time numbers come from
//! the `repro_*` binaries).

use std::hint::black_box;
use std::time::Instant;

/// Run `f` repeatedly and print `name: <mean> ns/iter (<iters> iters)`.
///
/// The iteration count adapts so each measurement takes roughly
/// `target_ms` of wall clock (min 10 iterations).
pub fn bench<T>(name: &str, target_ms: u64, mut f: impl FnMut() -> T) {
    // Warmup + calibration: time a small probe batch.
    let probe = 5;
    let start = Instant::now();
    for _ in 0..probe {
        black_box(f());
    }
    let per_iter = (start.elapsed().as_nanos() / probe as u128).max(1);
    let iters = ((target_ms as u128 * 1_000_000) / per_iter).clamp(10, 1_000_000) as u64;

    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let mean = start.elapsed().as_nanos() / iters as u128;
    println!("{name}: {mean} ns/iter ({iters} iters)");
}

/// Like [`bench`], but `setup` runs outside the timed region each
/// iteration (for destructive bodies that consume their input).
pub fn bench_with_setup<S, T>(
    name: &str,
    target_ms: u64,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> T,
) {
    let probe = 3;
    let mut probe_ns: u128 = 0;
    for _ in 0..probe {
        let input = setup();
        let start = Instant::now();
        black_box(f(input));
        probe_ns += start.elapsed().as_nanos();
    }
    let per_iter = (probe_ns / probe as u128).max(1);
    let iters = ((target_ms as u128 * 1_000_000) / per_iter).clamp(5, 100_000) as u64;

    let mut total: u128 = 0;
    for _ in 0..iters {
        let input = setup();
        let start = Instant::now();
        black_box(f(input));
        total += start.elapsed().as_nanos();
    }
    println!("{name}: {} ns/iter ({iters} iters)", total / iters as u128);
}

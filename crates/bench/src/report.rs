//! Report formatting shared by all reproduction binaries.

use cffs_workloads::PhaseResult;

/// Format a phase-result table: one row per (fs, phase), with simulated
/// time, rate, and physical disk requests.
pub fn phase_table(rows: &[PhaseResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>10} {:>12} {:>12} {:>10} {:>12}\n",
        "file system", "phase", "elapsed", "files/s", "MB/s", "disk reqs"
    ));
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>10} {:>12} {:>12.1} {:>10.2} {:>12}\n",
            r.fs,
            r.phase,
            format!("{}", r.elapsed),
            r.items_per_sec(),
            r.mb_per_sec(),
            r.disk_requests(),
        ));
    }
    out
}

/// Speedup of `new` over `base` by elapsed time, as a factor.
pub fn speedup(base: &PhaseResult, new: &PhaseResult) -> f64 {
    base.elapsed.as_secs_f64() / new.elapsed.as_secs_f64()
}

/// A section header line.
pub fn header(title: &str) -> String {
    format!("\n==== {title} ====\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_disksim::SimDuration;
    use cffs_fslib::IoStats;

    fn row(fs: &str, phase: &str, secs: f64) -> PhaseResult {
        PhaseResult {
            fs: fs.into(),
            phase: phase.into(),
            elapsed: SimDuration::from_secs_f64(secs),
            items: 100,
            bytes: 102_400,
            io: IoStats::default(),
        }
    }

    #[test]
    fn speedup_is_ratio_of_times() {
        let base = row("conventional", "read", 10.0);
        let new = row("C-FFS", "read", 2.0);
        assert!((speedup(&base, &new) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn table_has_header_and_rows() {
        let t = phase_table(&[row("a", "create", 1.0), row("b", "create", 2.0)]);
        assert!(t.contains("file system"));
        assert_eq!(t.lines().count(), 4);
    }
}

//! Report formatting shared by all reproduction binaries.

use cffs_obs::json::{Json, ToJson};
use cffs_workloads::PhaseResult;

/// Format a phase-result table: one row per (fs, phase), with simulated
/// time, rate, and physical disk requests.
pub fn phase_table(rows: &[PhaseResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>10} {:>12} {:>12} {:>10} {:>12}\n",
        "file system", "phase", "elapsed", "files/s", "MB/s", "disk reqs"
    ));
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>10} {:>12} {:>12.1} {:>10.2} {:>12}\n",
            r.fs,
            r.phase,
            format!("{}", r.elapsed),
            r.items_per_sec(),
            r.mb_per_sec(),
            r.disk_requests(),
        ));
    }
    out
}

/// Speedup of `new` over `base` by elapsed time, as a factor.
pub fn speedup(base: &PhaseResult, new: &PhaseResult) -> f64 {
    base.elapsed.as_secs_f64() / new.elapsed.as_secs_f64()
}

/// A section header line.
pub fn header(title: &str) -> String {
    format!("\n==== {title} ====\n\n")
}

/// JSON array of phase rows (each with its full counter snapshot delta).
pub fn rows_json(rows: &[PhaseResult]) -> Json {
    Json::Arr(rows.iter().map(|r| r.to_json()).collect())
}

/// Write a reproduction result to `BENCH_<NAME>.json` in the directory
/// named by `BENCH_OUT_DIR` (default: the current directory). Returns the
/// path written. Every `repro_*` binary calls this with a payload that
/// carries the simulated-time results *and* the observability counter
/// snapshots, so runs are machine-comparable.
pub fn write_bench(name: &str, payload: Json) -> std::io::Result<std::path::PathBuf> {
    write_artifact(&format!("BENCH_{name}.json"), &(payload.to_string_pretty() + "\n"))
}

/// Monotonic disambiguator for staging-file names within this process.
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Write a named artifact into `BENCH_OUT_DIR` atomically: the content
/// lands in a staging file first and is renamed into place, so a crash
/// mid-write can never leave a half-written file that poisons
/// `bench_gate` baselines or fold consumers.
///
/// The staging name is `<name>.<pid>.<seq>.tmp` — unique per process
/// *and* per call. A fixed `<name>.tmp` races when two writers emit the
/// same artifact concurrently (parallel CI shards into a shared
/// `BENCH_OUT_DIR`, or threaded tests): writer A's rename can steal
/// writer B's half-written staging file, publishing a torn artifact.
/// With unique staging names each writer renames only bytes it wrote
/// completely; the final rename still serializes on the kernel, so the
/// artifact is always one writer's intact content.
pub fn write_artifact(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    std::fs::create_dir_all(&dir)?;
    let path = std::path::Path::new(&dir).join(name);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = std::path::Path::new(&dir)
        .join(format!("{name}.{}.{seq}.tmp", std::process::id()));
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// [`write_artifact`] with `emit_bench`'s hard-error policy: CI consumes
/// these files, so a failed write refuses to claim success.
pub fn emit_artifact(name: &str, content: &str) {
    match write_artifact(name, content) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!(
                "error: cannot write {name}: {e}\n\
                 (point BENCH_OUT_DIR at a writable directory)"
            );
            // Salvage the run's telemetry before dying: the flight
            // recorders (if `--flight` armed any) hold the final frames
            // this exit would otherwise lose. No-op when none are armed.
            cffs_obs::flight::dump_all("bench_write_failure");
            std::process::exit(1);
        }
    }
}

/// Write and report on stdout. Failing to persist the BENCH artifact is a
/// hard error: CI gates consume these files, so degrading to a notice
/// would let a mis-set `BENCH_OUT_DIR` silently skip the perf gate. The
/// text report has already been printed by the time this runs, so nothing
/// is lost — the run just refuses to claim success.
pub fn emit_bench(name: &str, payload: Json) {
    match write_bench(name, payload) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!(
                "error: cannot write BENCH_{name}.json: {e}\n\
                 (point BENCH_OUT_DIR at a writable directory)"
            );
            // Same salvage as emit_artifact: flush the black boxes so
            // the partial run's telemetry survives the hard exit.
            cffs_obs::flight::dump_all("bench_write_failure");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_disksim::SimDuration;
    use cffs_fslib::IoStats;

    fn row(fs: &str, phase: &str, secs: f64) -> PhaseResult {
        PhaseResult {
            fs: fs.into(),
            phase: phase.into(),
            start_ns: 0,
            elapsed: SimDuration::from_secs_f64(secs),
            items: 100,
            bytes: 102_400,
            io: IoStats::default(),
            counters: None,
            host_ns: 0,
        }
    }

    #[test]
    fn speedup_is_ratio_of_times() {
        let base = row("conventional", "read", 10.0);
        let new = row("C-FFS", "read", 2.0);
        assert!((speedup(&base, &new) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn table_has_header_and_rows() {
        let t = phase_table(&[row("a", "create", 1.0), row("b", "create", 2.0)]);
        assert!(t.contains("file system"));
        assert_eq!(t.lines().count(), 4);
    }

    /// Tests below mutate the process-wide `BENCH_OUT_DIR`; serialize them.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn write_bench_creates_missing_output_dir() {
        let _guard = ENV_LOCK.lock().unwrap();
        // A nested, not-yet-existing BENCH_OUT_DIR must be created rather
        // than failing the write.
        let dir = std::env::temp_dir()
            .join(format!("cffs-bench-test-{}", std::process::id()))
            .join("nested");
        std::env::set_var("BENCH_OUT_DIR", &dir);
        let path = write_bench("REPORT_TEST", Json::Int(1)).expect("write succeeds");
        std::env::remove_var("BENCH_OUT_DIR");
        assert!(path.starts_with(&dir));
        let body = std::fs::read_to_string(&path).expect("file exists");
        assert_eq!(body.trim(), "1");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }

    #[test]
    fn write_bench_is_atomic_no_tmp_left_behind() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("cffs-bench-atomic-{}", std::process::id()));
        std::env::set_var("BENCH_OUT_DIR", &dir);
        let path = write_bench("ATOMIC_TEST", Json::Int(7)).expect("write succeeds");
        let fold = write_artifact("FOLD_TEST.txt", "run;idle 10\n").expect("write succeeds");
        std::env::remove_var("BENCH_OUT_DIR");
        assert_eq!(std::fs::read_to_string(&path).unwrap().trim(), "7");
        assert_eq!(std::fs::read_to_string(&fold).unwrap(), "run;idle 10\n");
        // The temp staging files were renamed away, not left to be
        // mistaken for real artifacts.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_of_same_artifact_never_tear() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("cffs-bench-race-{}", std::process::id()));
        std::env::set_var("BENCH_OUT_DIR", &dir);
        // Two payloads, same artifact name, distinguishable and large
        // enough that a stolen half-written staging file would show as a
        // mixed or truncated body.
        let a = "A".repeat(64 * 1024) + "\n";
        let b = "B".repeat(64 * 1024) + "\n";
        std::thread::scope(|s| {
            let ha = s.spawn(|| {
                for _ in 0..50 {
                    write_artifact("RACE_TEST.json", &a).expect("writer A");
                }
            });
            let hb = s.spawn(|| {
                for _ in 0..50 {
                    write_artifact("RACE_TEST.json", &b).expect("writer B");
                }
            });
            ha.join().unwrap();
            hb.join().unwrap();
        });
        std::env::remove_var("BENCH_OUT_DIR");
        // Last-writer-wins is fine; a torn mix of both writers is not.
        let body = std::fs::read_to_string(dir.join("RACE_TEST.json")).unwrap();
        assert!(
            body == a || body == b,
            "artifact must be exactly one writer's content (got {} bytes, first byte {:?})",
            body.len(),
            body.as_bytes().first(),
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "staging files renamed away: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_bench_surfaces_unwritable_output_dir() {
        let _guard = ENV_LOCK.lock().unwrap();
        // BENCH_OUT_DIR nested under a regular file cannot be created;
        // the error must surface (emit_bench turns it into exit(1)).
        let file = std::env::temp_dir().join(format!("cffs-bench-block-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        let dir = file.join("nested");
        std::env::set_var("BENCH_OUT_DIR", &dir);
        let res = write_bench("REPORT_TEST", Json::Int(1));
        std::env::remove_var("BENCH_OUT_DIR");
        assert!(res.is_err(), "writing under a regular file must fail");
        std::fs::remove_file(&file).ok();
    }
}

//! C-FFS directory blocks with embedded inodes.
//!
//! Entry layout (8-byte aligned, never crossing a 512-byte chunk):
//!
//! ```text
//! +--------+---------+-------+----------+------------------+-------------+
//! | reclen | namelen | flags | ext_slot | name (pad to 8)  | inode 128 B |
//! |  u16   |   u8    |  u8   |   u32    |                  | (embedded   |
//! |        |         |       |          |                  |  entries)   |
//! +--------+---------+-------+----------+------------------+-------------+
//! ```
//!
//! * `flags == 0`: free space (reclen reclaimable).
//! * `EMBEDDED` entries carry the file's inode image immediately after the
//!   padded name. Entry + inode share one 512-byte chunk, i.e. one disk
//!   sector — the disk's sector-write atomicity therefore updates name and
//!   inode together, the property Section 3 of the paper builds on.
//! * External entries (multi-link files, or every file when embedding is
//!   disabled) store a slot index into the external inode file instead.
//!
//! With embedding, a short-named file costs 144 bytes of directory space
//! versus 16 conventional — the directory-size growth the paper's
//! "Directory sizes" discussion weighs against the access savings.

use cffs_fslib::codec::{get_u16, get_u32, put_u16, put_u32};
use cffs_fslib::inode::{Inode, INODE_SIZE};
use cffs_fslib::{FileKind, FsError, FsResult, BLOCK_SIZE};

/// Chunk size within which an entry must fit (one sector).
pub const DIRBLKSIZ: usize = 512;

/// Fixed part of an entry before the name.
pub const ENTRY_HEADER: usize = 8;

const FLAG_USED: u8 = 0x01;
const FLAG_EMBEDDED: u8 = 0x02;
const FLAG_DIR: u8 = 0x04;

/// Where an entry keeps its inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryLoc {
    /// Slot in the external inode file.
    External(u32),
    /// Inode image at this byte offset within the same block.
    Embedded(usize),
}

/// A decoded entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CEntry {
    /// Byte offset of the entry within the block.
    pub offset: usize,
    /// Entry kind.
    pub kind: FileKind,
    /// Inode location.
    pub loc: EntryLoc,
    /// Generation stamp of an embedded inode (low 15 bits of the image's
    /// generation field; 0 for external entries).
    pub gen: u16,
    /// The name.
    pub name: String,
}

fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Bytes an external entry needs.
pub fn external_len(namelen: usize) -> usize {
    ENTRY_HEADER + pad8(namelen)
}

/// Bytes an embedded entry needs.
pub fn embedded_len(namelen: usize) -> usize {
    external_len(namelen) + INODE_SIZE
}

/// Offset of the inode image inside an embedded entry.
pub fn image_offset(entry_off: usize, namelen: usize) -> usize {
    entry_off + external_len(namelen)
}

/// Initialize an empty directory block.
pub fn init_block(buf: &mut [u8]) {
    buf[..BLOCK_SIZE].fill(0);
    for chunk in 0..BLOCK_SIZE / DIRBLKSIZ {
        put_u16(buf, chunk * DIRBLKSIZ, DIRBLKSIZ as u16);
    }
}

fn kind_of(flags: u8) -> FileKind {
    if flags & FLAG_DIR != 0 {
        FileKind::Dir
    } else {
        FileKind::File
    }
}

/// Walk all records; `f(off, flags, namelen, reclen)`; return `false` from
/// `f` to stop early.
fn walk(buf: &[u8], mut f: impl FnMut(usize, u8, usize, usize) -> bool) -> FsResult<()> {
    for chunk in 0..BLOCK_SIZE / DIRBLKSIZ {
        let base = chunk * DIRBLKSIZ;
        let mut off = base;
        while off < base + DIRBLKSIZ {
            let reclen = get_u16(buf, off) as usize;
            if reclen < ENTRY_HEADER || off + reclen > base + DIRBLKSIZ || !reclen.is_multiple_of(8) {
                return Err(FsError::Corrupt(format!("bad reclen {reclen} at offset {off}")));
            }
            let flags = buf[off + 3];
            let namelen = buf[off + 2] as usize;
            if flags & FLAG_USED != 0 {
                let need = if flags & FLAG_EMBEDDED != 0 {
                    embedded_len(namelen)
                } else {
                    external_len(namelen)
                };
                if need > reclen {
                    return Err(FsError::Corrupt(format!("entry overflows reclen at {off}")));
                }
            }
            if !f(off, flags, namelen, reclen) {
                return Ok(());
            }
            off += reclen;
        }
    }
    Ok(())
}

fn decode(buf: &[u8], off: usize, flags: u8, namelen: usize) -> FsResult<CEntry> {
    let name = std::str::from_utf8(&buf[off + ENTRY_HEADER..off + ENTRY_HEADER + namelen])
        .map_err(|_| FsError::Corrupt(format!("undecodable name at {off}")))?
        .to_string();
    let (loc, gen) = if flags & FLAG_EMBEDDED != 0 {
        let img = image_offset(off, namelen);
        let gen = (get_u32(buf, img + cffs_fslib::inode::GENERATION_OFFSET) & 0x7FFF) as u16;
        (EntryLoc::Embedded(img), gen)
    } else {
        (EntryLoc::External(get_u32(buf, off + 4)), 0)
    };
    Ok(CEntry { offset: off, kind: kind_of(flags), loc, gen, name })
}

/// List used entries.
pub fn list(buf: &[u8]) -> FsResult<Vec<CEntry>> {
    let mut out = Vec::new();
    let mut err = None;
    walk(buf, |off, flags, namelen, _| {
        if flags & FLAG_USED != 0 {
            match decode(buf, off, flags, namelen) {
                Ok(e) => out.push(e),
                Err(e) => {
                    err = Some(e);
                    return false;
                }
            }
        }
        true
    })?;
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Find a used entry by name.
pub fn find(buf: &[u8], name: &str) -> FsResult<Option<CEntry>> {
    let mut found = None;
    let mut err = None;
    walk(buf, |off, flags, namelen, _| {
        if flags & FLAG_USED != 0
            && namelen == name.len()
            && &buf[off + ENTRY_HEADER..off + ENTRY_HEADER + namelen] == name.as_bytes()
        {
            match decode(buf, off, flags, namelen) {
                Ok(e) => found = Some(e),
                Err(e) => err = Some(e),
            }
            return false;
        }
        true
    })?;
    match err {
        Some(e) => Err(e),
        None => Ok(found),
    }
}

/// Decode and validate the entry starting at `off` (an inode-number
/// dereference). Fails with [`FsError::StaleHandle`] if no entry starts
/// there or it is free.
pub fn entry_at(buf: &[u8], off: usize) -> FsResult<CEntry> {
    let mut hit = None;
    walk(buf, |o, flags, namelen, _| {
        if o == off {
            if flags & FLAG_USED != 0 {
                hit = decode(buf, o, flags, namelen).ok();
            }
            return false;
        }
        o < off
    })?;
    hit.ok_or(FsError::StaleHandle)
}

/// Would an entry of `len` bytes fit somewhere in this block?
pub fn has_space_for(buf: &[u8], len: usize) -> FsResult<bool> {
    let mut found = false;
    walk(buf, |_, flags, namelen, reclen| {
        let used = if flags & FLAG_USED == 0 {
            0
        } else if flags & FLAG_EMBEDDED != 0 {
            embedded_len(namelen)
        } else {
            external_len(namelen)
        };
        if reclen - used >= len {
            found = true;
            return false;
        }
        true
    })?;
    Ok(found)
}

/// Find a slot of `need` bytes; returns the offset to write the new entry
/// at, carving slack or claiming a free record as needed.
fn claim(buf: &mut [u8], need: usize) -> FsResult<Option<usize>> {
    let mut slot = None;
    walk(buf, |off, flags, namelen, reclen| {
        let used = if flags & FLAG_USED == 0 {
            0
        } else if flags & FLAG_EMBEDDED != 0 {
            embedded_len(namelen)
        } else {
            external_len(namelen)
        };
        if reclen - used >= need {
            slot = Some((off, used, reclen));
            return false;
        }
        true
    })?;
    let Some((off, used, reclen)) = slot else { return Ok(None) };
    if used == 0 {
        // Claim the free record whole.
        Ok(Some(off))
    } else {
        // Split the slack off the used entry.
        put_u16(buf, off, used as u16);
        put_u16(buf, off + used, (reclen - used) as u16);
        buf[off + used + 2] = 0;
        buf[off + used + 3] = 0;
        Ok(Some(off + used))
    }
}

fn write_header(buf: &mut [u8], off: usize, namelen: usize, flags: u8, ext_slot: u32, name: &str) {
    // reclen at `off` is already correct (claim left it there).
    buf[off + 2] = namelen as u8;
    buf[off + 3] = flags;
    put_u32(buf, off + 4, ext_slot);
    buf[off + ENTRY_HEADER..off + ENTRY_HEADER + namelen].copy_from_slice(name.as_bytes());
    // Zero name padding for determinism.
    let pad_end = off + external_len(namelen);
    buf[off + ENTRY_HEADER + namelen..pad_end].fill(0);
}

/// Insert an entry referencing an external inode slot. Returns its offset,
/// or `None` if the block is full.
pub fn insert_external(
    buf: &mut [u8],
    name: &str,
    slot: u32,
    kind: FileKind,
) -> FsResult<Option<usize>> {
    let Some(off) = claim(buf, external_len(name.len()))? else { return Ok(None) };
    let mut flags = FLAG_USED;
    if kind == FileKind::Dir {
        flags |= FLAG_DIR;
    }
    write_header(buf, off, name.len(), flags, slot, name);
    Ok(Some(off))
}

/// Insert an entry with an embedded inode image. Returns `(entry_offset,
/// image_offset)`, or `None` if the block is full.
pub fn insert_embedded(
    buf: &mut [u8],
    name: &str,
    kind: FileKind,
    inode: &Inode,
) -> FsResult<Option<(usize, usize)>> {
    let Some(off) = claim(buf, embedded_len(name.len()))? else { return Ok(None) };
    let mut flags = FLAG_USED | FLAG_EMBEDDED;
    if kind == FileKind::Dir {
        flags |= FLAG_DIR;
    }
    write_header(buf, off, name.len(), flags, 0, name);
    let img = image_offset(off, name.len());
    inode.write_to(buf, img);
    Ok(Some((off, img)))
}

/// Rewrite an embedded entry as an external reference in place (inode
/// externalization for hard links). The entry keeps its offset and reclen;
/// the stale inode image bytes become slack.
///
/// # Panics
/// Panics if the entry at `off` is not a used, embedded entry — callers
/// must have just decoded it.
pub fn convert_to_external(buf: &mut [u8], off: usize, slot: u32) {
    let flags = buf[off + 3];
    assert!(
        flags & FLAG_USED != 0 && flags & FLAG_EMBEDDED != 0,
        "convert_to_external on a non-embedded entry"
    );
    buf[off + 3] = flags & !FLAG_EMBEDDED;
    put_u32(buf, off + 4, slot);
}

/// Remove the entry named `name`. Returns the removed entry.
pub fn remove(buf: &mut [u8], name: &str) -> FsResult<Option<CEntry>> {
    let mut target: Option<(usize, Option<usize>, u8, usize, usize)> = None;
    let mut prev: Option<usize> = None;
    walk(buf, |off, flags, namelen, reclen| {
        if off % DIRBLKSIZ == 0 {
            prev = None;
        }
        if flags & FLAG_USED != 0
            && namelen == name.len()
            && &buf[off + ENTRY_HEADER..off + ENTRY_HEADER + namelen] == name.as_bytes()
        {
            target = Some((off, prev, flags, namelen, reclen));
            return false;
        }
        prev = Some(off);
        true
    })?;
    let Some((off, prev, flags, namelen, reclen)) = target else { return Ok(None) };
    let entry = decode(buf, off, flags, namelen)?;
    match prev {
        Some(p) => {
            let p_reclen = get_u16(buf, p) as usize;
            put_u16(buf, p, (p_reclen + reclen) as u16);
        }
        None => {
            buf[off + 2] = 0;
            buf[off + 3] = 0;
        }
    }
    Ok(Some(entry))
}

/// True if the block holds no used entries.
pub fn is_empty(buf: &[u8]) -> FsResult<bool> {
    let mut any = false;
    walk(buf, |_, flags, _, _| {
        if flags & FLAG_USED != 0 {
            any = true;
            return false;
        }
        true
    })?;
    Ok(!any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block() -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE];
        init_block(&mut b);
        b
    }

    fn inode(size: u64) -> Inode {
        let mut i = Inode::new(FileKind::File);
        i.size = size;
        i.direct[0] = 4242;
        i
    }

    #[test]
    fn fresh_block_is_empty() {
        let b = block();
        assert!(is_empty(&b).unwrap());
        assert!(list(&b).unwrap().is_empty());
    }

    #[test]
    fn embedded_insert_find_read_inode() {
        let mut b = block();
        let ino = inode(777);
        let (off, img) = insert_embedded(&mut b, "hello.c", FileKind::File, &ino)
            .unwrap()
            .unwrap();
        let e = find(&b, "hello.c").unwrap().unwrap();
        assert_eq!(e.offset, off);
        assert_eq!(e.loc, EntryLoc::Embedded(img));
        assert_eq!(Inode::read_from(&b, img), Some(ino));
    }

    #[test]
    fn embedded_entry_and_inode_share_a_sector() {
        let mut b = block();
        // Fill with entries of varying name lengths; every entry must sit
        // inside one 512-byte chunk.
        for i in 0..40 {
            let name = format!("{}{}", "x".repeat(1 + (i * 7) % 60), i);
            if let Some((off, img)) =
                insert_embedded(&mut b, &name, FileKind::File, &inode(i as u64)).unwrap()
            {
                let end = img + INODE_SIZE;
                assert_eq!(off / DIRBLKSIZ, (end - 1) / DIRBLKSIZ, "entry '{name}' crosses a sector");
            }
        }
    }

    #[test]
    fn capacity_matches_paper_scale() {
        // Short names: 144-byte entries → 3 per chunk, 24 per 4 KB block.
        let mut b = block();
        let mut n = 0;
        while insert_embedded(&mut b, &format!("f{n:03}"), FileKind::File, &inode(0))
            .unwrap()
            .is_some()
        {
            n += 1;
        }
        assert_eq!(n, 24);
    }

    #[test]
    fn external_entries_are_compact() {
        let mut b = block();
        let mut n = 0u32;
        while insert_external(&mut b, &format!("f{n:04}"), n, FileKind::File)
            .unwrap()
            .is_some()
        {
            n += 1;
        }
        // 16-byte entries, 32 per chunk, 256 per block — FFS-like density.
        assert_eq!(n, 256);
    }

    #[test]
    fn mixed_entries_round_trip() {
        let mut b = block();
        insert_embedded(&mut b, "emb", FileKind::File, &inode(1)).unwrap().unwrap();
        insert_external(&mut b, "ext", 9, FileKind::Dir).unwrap().unwrap();
        let mut names: Vec<(String, FileKind)> =
            list(&b).unwrap().into_iter().map(|e| (e.name, e.kind)).collect();
        names.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            names,
            vec![("emb".to_string(), FileKind::File), ("ext".to_string(), FileKind::Dir)]
        );
        assert_eq!(find(&b, "ext").unwrap().unwrap().loc, EntryLoc::External(9));
    }

    #[test]
    fn remove_frees_space() {
        let mut b = block();
        for i in 0..24 {
            insert_embedded(&mut b, &format!("f{i:03}"), FileKind::File, &inode(0))
                .unwrap()
                .unwrap();
        }
        assert!(insert_embedded(&mut b, "extra", FileKind::File, &inode(0)).unwrap().is_none());
        let e = remove(&mut b, "f005").unwrap().unwrap();
        assert_eq!(e.name, "f005");
        assert!(insert_embedded(&mut b, "extra", FileKind::File, &inode(0)).unwrap().is_some());
    }

    #[test]
    fn entry_at_validates_offsets() {
        let mut b = block();
        let (off, _) = insert_embedded(&mut b, "real", FileKind::File, &inode(5)).unwrap().unwrap();
        assert_eq!(entry_at(&b, off).unwrap().name, "real");
        // Mid-entry offsets and free records are stale.
        assert_eq!(entry_at(&b, off + 8).unwrap_err(), FsError::StaleHandle);
        remove(&mut b, "real").unwrap();
        assert_eq!(entry_at(&b, off).unwrap_err(), FsError::StaleHandle);
    }

    #[test]
    fn convert_to_external_preserves_name_and_kind() {
        let mut b = block();
        let (off, _) = insert_embedded(&mut b, "linked", FileKind::File, &inode(3)).unwrap().unwrap();
        convert_to_external(&mut b, off, 42);
        let e = find(&b, "linked").unwrap().unwrap();
        assert_eq!(e.loc, EntryLoc::External(42));
        assert_eq!(e.kind, FileKind::File);
        assert_eq!(e.offset, off);
    }

    #[test]
    fn update_inode_image_in_place() {
        let mut b = block();
        let (_, img) = insert_embedded(&mut b, "grow", FileKind::File, &inode(0)).unwrap().unwrap();
        let mut ino2 = inode(8192);
        ino2.blocks = 2;
        ino2.write_to(&mut b, img);
        assert_eq!(find(&b, "grow").unwrap().unwrap().loc, EntryLoc::Embedded(img));
        assert_eq!(Inode::read_from(&b, img).unwrap().size, 8192);
    }

    #[test]
    fn corrupt_reclen_detected() {
        let mut b = block();
        insert_external(&mut b, "x", 1, FileKind::File).unwrap().unwrap();
        put_u16(&mut b, 0, 12); // not a multiple of 8
        assert!(matches!(list(&b), Err(FsError::Corrupt(_))));
    }

    proptest! {
        #[test]
        fn random_ops_match_model(
            ops in proptest::collection::vec((0u8..3, 0usize..30, any::<bool>()), 0..120)
        ) {
            use std::collections::BTreeMap;
            let mut b = block();
            let mut model: BTreeMap<String, bool> = BTreeMap::new(); // name -> embedded?
            for (op, name_i, emb) in ops {
                let name = format!("n{name_i}");
                match op {
                    0 => {
                        if let std::collections::btree_map::Entry::Vacant(slot) =
                            model.entry(name.clone())
                        {
                            let ok = if emb {
                                insert_embedded(&mut b, &name, FileKind::File, &inode(1))
                                    .unwrap().is_some()
                            } else {
                                insert_external(&mut b, &name, 7, FileKind::File)
                                    .unwrap().is_some()
                            };
                            if ok { slot.insert(emb); }
                        }
                    }
                    1 => {
                        let got = remove(&mut b, &name).unwrap().is_some();
                        prop_assert_eq!(got, model.remove(&name).is_some());
                    }
                    _ => {
                        let got = find(&b, &name).unwrap();
                        match model.get(&name) {
                            Some(&emb) => {
                                let e = got.unwrap();
                                prop_assert_eq!(
                                    matches!(e.loc, EntryLoc::Embedded(_)), emb);
                            }
                            None => prop_assert!(got.is_none()),
                        }
                    }
                }
            }
            let listed: Vec<String> = {
                let mut v: Vec<String> =
                    list(&b).unwrap().into_iter().map(|e| e.name).collect();
                v.sort();
                v
            };
            let expect: Vec<String> = model.into_keys().collect();
            prop_assert_eq!(listed, expect);
        }
    }
}

#![warn(missing_docs)]

//! # cffs-core — the Co-locating Fast File System
//!
//! The paper's contribution (Ganger & Kaashoek, USENIX 1997), implemented
//! from scratch on the simulated disk:
//!
//! * **Embedded inodes** ([`dirent`]): the inode of a single-link file
//!   lives *inside* its directory entry. A name and its inode never cross
//!   a 512-byte sector boundary, so one sector write updates both
//!   atomically — eliminating one of the two ordering-constrained
//!   synchronous writes of conventional create/delete, and eliminating the
//!   separate inode-block read on every cold `open`. Files with multiple
//!   hard links (and the root) keep their inode in the **external inode
//!   file** ([`exfile`]), a dynamically growable, never-shrinking,
//!   never-moving file of inode slots, as the paper specifies.
//! * **Explicit grouping** ([`groups`]): data blocks of small files named
//!   by the same directory are carved from 64 KB (16-block) physically
//!   contiguous group extents. A cache miss on any member block fetches
//!   the group's live blocks with one scatter/gather request; delayed
//!   write-back coalesces adjacent dirty members into single writes. The
//!   directory's own blocks are grouped with its files' blocks, so a
//!   directory scan plus small-file reads costs one disk access in the
//!   common case — the embedded-inode/grouping synergy the paper notes.
//! * **Four variants** ([`CffsConfig`]): both techniques toggle
//!   independently, reproducing the paper's conventional / embedded-only /
//!   grouping-only / C-FFS comparison on one code base.
//! * **Application-directed grouping** ([`fs::Cffs::group_hint`]): the
//!   Section 6 "future work" interface — co-locate named files (e.g. the
//!   pieces of one hypertext document) regardless of access order.
//! * An [`fsck`] that finds embedded inodes by walking the namespace
//!   (inodes have no static home) and rebuilds bitmaps, group descriptors
//!   and link counts.

pub mod dirent;
pub mod exfile;
pub mod fs;
pub mod fsck;
pub mod groups;
pub mod layout;
pub mod mkfs;

pub use fs::{Cffs, CffsConfig, CgUsage};
pub use fsck::{fsck, FsckReport};
pub use mkfs::MkfsParams;

//! The external inode file.
//!
//! C-FFS keeps most inodes embedded in directories, but some need a stable,
//! location-independent home: files with multiple hard links (several names
//! must reference one inode) and the root directory (no parent to embed
//! in). These live in the *external inode file* — the paper describes it as
//! "similar to the IFILE in BSD-LFS [Seltzer93]", with two differences it
//! names explicitly: it **grows as needed but does not shrink**, and its
//! **blocks do not move once they have been allocated** (external inode
//! numbers must stay valid forever).
//!
//! The file's own inode lives in the superblock. This module owns the slot
//! arithmetic and the in-core free-slot pool; block mapping goes through
//! the owning file system.
//!
//! When embedded inodes are disabled (the paper's "conventional" variant),
//! *every* inode is external, and this file plays the role of a dynamically
//! allocated inode table.

use cffs_fslib::inode::INODE_SIZE;
use cffs_fslib::BLOCK_SIZE;
use std::collections::BTreeSet;

/// Inode slots per external-file block.
pub const SLOTS_PER_BLOCK: u32 = (BLOCK_SIZE / INODE_SIZE) as u32;

/// Logical block of the external file holding `slot`.
pub fn slot_lbn(slot: u32) -> u64 {
    (slot / SLOTS_PER_BLOCK) as u64
}

/// Byte offset of `slot`'s image within its block.
pub fn slot_off(slot: u32) -> usize {
    (slot % SLOTS_PER_BLOCK) as usize * INODE_SIZE
}

/// In-core free-slot pool, rebuilt at mount by scanning the file.
/// Lowest-numbered slots are handed out first, keeping the file dense and
/// its working set small.
#[derive(Debug, Default)]
pub struct SlotPool {
    free: BTreeSet<u32>,
    slots: u32,
}

impl SlotPool {
    /// Start a pool over a file that currently holds `slots` slots, with
    /// `free` of them unoccupied.
    pub fn new(slots: u32, free: impl IntoIterator<Item = u32>) -> Self {
        SlotPool { free: free.into_iter().collect(), slots }
    }

    /// Total slots the file holds.
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// Free slots currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Take the lowest free slot, if any.
    pub fn take(&mut self) -> Option<u32> {
        let s = *self.free.iter().next()?;
        self.free.remove(&s);
        Some(s)
    }

    /// Return a slot to the pool.
    ///
    /// # Panics
    /// Panics on double-free or out-of-range slots.
    pub fn put(&mut self, slot: u32) {
        assert!(slot < self.slots, "slot {slot} beyond file end {}", self.slots);
        assert!(self.free.insert(slot), "double free of external slot {slot}");
    }

    /// Grow the file by one block's worth of slots; they all become free.
    /// Returns the new slot range.
    pub fn grow(&mut self) -> std::ops::Range<u32> {
        let start = self.slots;
        self.slots += SLOTS_PER_BLOCK;
        for s in start..self.slots {
            self.free.insert(s);
        }
        start..self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_math() {
        assert_eq!(SLOTS_PER_BLOCK, 32);
        assert_eq!(slot_lbn(0), 0);
        assert_eq!(slot_off(0), 0);
        assert_eq!(slot_lbn(31), 0);
        assert_eq!(slot_off(31), 31 * 128);
        assert_eq!(slot_lbn(32), 1);
        assert_eq!(slot_off(32), 0);
    }

    #[test]
    fn pool_hands_out_lowest_first() {
        let mut p = SlotPool::new(64, [40, 3, 17]);
        assert_eq!(p.take(), Some(3));
        assert_eq!(p.take(), Some(17));
        p.put(3);
        assert_eq!(p.take(), Some(3));
        assert_eq!(p.take(), Some(40));
        assert_eq!(p.take(), None);
    }

    #[test]
    fn grow_adds_a_block_of_slots() {
        let mut p = SlotPool::new(32, []);
        assert_eq!(p.take(), None);
        assert_eq!(p.grow(), 32..64);
        assert_eq!(p.slots(), 64);
        assert_eq!(p.available(), 32);
        assert_eq!(p.take(), Some(32));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_put_panics() {
        let mut p = SlotPool::new(32, [5]);
        p.put(5);
    }
}

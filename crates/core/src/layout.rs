//! On-disk layout of C-FFS.
//!
//! ```text
//! block 0            boot block (unused)
//! block 1            superblock (includes the external inode file's inode)
//! block 2 ...        cylinder group 0
//!   +0               CG header: block bitmap + group descriptor table
//!   +1 ...           data blocks (files, directories, indirect blocks,
//!                    external-inode-file blocks, group extents)
//! ...
//! ```
//!
//! There is **no static inode table** — that is the point. Embedded inodes
//! live in directory blocks; external inodes live in the external inode
//! file, whose own inode sits in the superblock. Disk capacity otherwise
//! consumed by preallocated inodes becomes data space (the paper's
//! [Forin94] observation).
//!
//! ## Inode numbering
//!
//! An inode number encodes where the inode image lives:
//!
//! * **External**: bit 63 set; low bits are the slot index in the external
//!   inode file. The root directory is external slot 0.
//! * **Embedded**: `block * 512 + entry_offset / 8`, plus a 15-bit
//!   generation stamp in bits 48–62 — the physical directory block, the
//!   8-aligned byte offset of the *entry* that contains the inode, and a
//!   guard that must match the stored inode's generation so recycled
//!   slots reject stale handles. When an entry moves (rename) or is
//!   externalized (link), the inode number changes; the VFS contract
//!   surfaces this.

use cffs_fslib::codec::{get_u32, get_u64, put_u32, put_u64};
use cffs_fslib::inode::Inode;
use cffs_fslib::{Bitmap, FsError, FsResult, Ino, BLOCK_SIZE};

/// Superblock magic ("CFFS").
pub const SB_MAGIC: u32 = 0x5346_4643;
/// CG header magic.
pub const CG_MAGIC: u32 = 0x4743_4643;

/// Block number of the superblock.
pub const SB_BLOCK: u64 = 1;
/// First block of cylinder group 0.
pub const FIRST_CG_BLOCK: u64 = 2;

/// Blocks per group extent (64 KB), the paper's grouping unit.
pub const GROUP_BLOCKS: usize = 16;

/// External-inode flag bit in an inode number.
pub const EXT_FLAG: Ino = 1 << 63;
/// The root directory: external slot 0.
pub const INO_ROOT: Ino = EXT_FLAG;

/// Mask for the generation stamp carried in embedded inode numbers
/// (bits 48..63, below the external flag).
pub const GEN_MASK: u64 = 0x7FFF;
/// Bit position of the generation stamp.
pub const GEN_SHIFT: u32 = 48;

/// Where an inode number says the inode image lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InoRef {
    /// Slot index in the external inode file.
    External(u32),
    /// Directory block + byte offset of the containing entry.
    Embedded {
        /// Physical block number of the directory block.
        blk: u64,
        /// Byte offset of the entry within the block (8-aligned).
        off: usize,
        /// Generation stamp: must match the stored inode's generation
        /// (low 15 bits), so a recycled location can never satisfy a
        /// stale handle.
        gen: u16,
    },
}

/// Encode an embedded inode number: location + generation stamp.
pub fn embedded_ino(blk: u64, off: usize, gen: u16) -> Ino {
    debug_assert!(off.is_multiple_of(8) && off < BLOCK_SIZE);
    ((gen as u64 & GEN_MASK) << GEN_SHIFT) | (blk * 512 + (off / 8) as u64)
}

/// Encode an external inode number.
pub fn external_ino(slot: u32) -> Ino {
    EXT_FLAG | slot as u64
}

/// Decode an inode number.
pub fn decode_ino(ino: Ino) -> InoRef {
    if ino & EXT_FLAG != 0 {
        InoRef::External((ino & !EXT_FLAG) as u32)
    } else {
        let loc = ino & !(GEN_MASK << GEN_SHIFT);
        InoRef::Embedded {
            blk: loc / 512,
            off: (loc % 512) as usize * 8,
            gen: ((ino >> GEN_SHIFT) & GEN_MASK) as u16,
        }
    }
}

/// The mounted superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Total file-system blocks.
    pub total_blocks: u64,
    /// Number of cylinder groups.
    pub cg_count: u32,
    /// Blocks per cylinder group (header + data).
    pub cg_size: u32,
    /// The external inode file's inode.
    pub exfile: Inode,
    /// Number of inode slots the external file currently holds.
    pub exfile_slots: u32,
    /// Clean-unmount flag.
    pub clean: bool,
}

impl Superblock {
    /// Data blocks per cylinder group (all but the header).
    pub fn data_per_cg(&self) -> u32 {
        self.cg_size - 1
    }

    /// First block of cylinder group `cg`.
    pub fn cg_start(&self, cg: u32) -> u64 {
        FIRST_CG_BLOCK + cg as u64 * self.cg_size as u64
    }

    /// The header block of cylinder group `cg`.
    pub fn cg_header_block(&self, cg: u32) -> u64 {
        self.cg_start(cg)
    }

    /// First data block of cylinder group `cg`.
    pub fn cg_data_start(&self, cg: u32) -> u64 {
        self.cg_start(cg) + 1
    }

    /// Which cylinder group a block belongs to, if any.
    pub fn block_cg(&self, blk: u64) -> Option<u32> {
        if blk < FIRST_CG_BLOCK {
            return None;
        }
        let cg = ((blk - FIRST_CG_BLOCK) / self.cg_size as u64) as u32;
        (cg < self.cg_count).then_some(cg)
    }

    /// Maximum group descriptors a CG header can hold.
    pub fn max_groups_per_cg(&self) -> usize {
        let desc_off = CgHeader::desc_table_offset(self.data_per_cg() as usize);
        ((BLOCK_SIZE - desc_off) / GroupDescDisk::SIZE).min(self.data_per_cg() as usize / GROUP_BLOCKS)
    }

    /// Serialize into a superblock image.
    pub fn write_to(&self, buf: &mut [u8]) {
        buf[..BLOCK_SIZE].fill(0);
        put_u32(buf, 0, SB_MAGIC);
        put_u64(buf, 4, self.total_blocks);
        put_u32(buf, 12, self.cg_count);
        put_u32(buf, 16, self.cg_size);
        put_u32(buf, 20, self.exfile_slots);
        put_u32(buf, 24, if self.clean { 1 } else { 0 });
        put_u32(buf, 28, BLOCK_SIZE as u32);
        self.exfile.write_to(buf, 64);
    }

    /// Deserialize, validating magic and geometry.
    pub fn read_from(buf: &[u8]) -> FsResult<Self> {
        if get_u32(buf, 0) != SB_MAGIC {
            return Err(FsError::Corrupt("bad C-FFS superblock magic".into()));
        }
        if get_u32(buf, 28) != BLOCK_SIZE as u32 {
            return Err(FsError::Corrupt("unsupported block size".into()));
        }
        let exfile = Inode::read_from(buf, 64)
            .ok_or_else(|| FsError::Corrupt("missing external inode file".into()))?;
        let sb = Superblock {
            total_blocks: get_u64(buf, 4),
            cg_count: get_u32(buf, 12),
            cg_size: get_u32(buf, 16),
            exfile,
            exfile_slots: get_u32(buf, 20),
            clean: get_u32(buf, 24) != 0,
        };
        if sb.cg_count == 0 || sb.cg_size < 2 {
            return Err(FsError::Corrupt("degenerate cylinder-group geometry".into()));
        }
        Ok(sb)
    }
}

/// On-disk group descriptor (16 bytes).
///
/// `start_idx` is the extent's first block as a data-block index within the
/// cylinder group; `owner` is the owning directory's inode number;
/// `member_valid` has bit *i* set when slot *i* holds live data;
/// `nslots` is the extent length in blocks (≤ [`GROUP_BLOCKS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupDescDisk {
    /// Extent start (data-block index within the CG).
    pub start_idx: u32,
    /// Owning directory inode.
    pub owner: u64,
    /// Live-slot bitmap.
    pub member_valid: u16,
    /// Extent length in blocks.
    pub nslots: u8,
}

impl GroupDescDisk {
    /// Serialized size.
    pub const SIZE: usize = 16;

    fn write_to(&self, buf: &mut [u8], off: usize) {
        put_u32(buf, off, self.start_idx);
        put_u64(buf, off + 4, self.owner);
        cffs_fslib::codec::put_u16(buf, off + 12, self.member_valid);
        buf[off + 14] = self.nslots;
        buf[off + 15] = 1; // in-use marker
    }

    fn read_from(buf: &[u8], off: usize) -> Option<Self> {
        if buf[off + 15] == 0 {
            return None;
        }
        Some(GroupDescDisk {
            start_idx: get_u32(buf, off),
            owner: get_u64(buf, off + 4),
            member_valid: cffs_fslib::codec::get_u16(buf, off + 12),
            nslots: buf[off + 14],
        })
    }
}

/// In-memory form of a C-FFS cylinder-group header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgHeader {
    /// Group index.
    pub cg: u32,
    /// Data-block allocation bitmap.
    pub block_bitmap: Bitmap,
    /// Group descriptors, indexed by table slot (`None` = free slot).
    pub groups: Vec<Option<GroupDescDisk>>,
}

const CG_OFF_BITMAP: usize = 64;

impl CgHeader {
    /// Byte offset of the descriptor table for a given bitmap width.
    fn desc_table_offset(data_blocks: usize) -> usize {
        let bm = data_blocks.div_ceil(8);
        // Keep the table 16-aligned.
        (CG_OFF_BITMAP + bm + 15) & !15
    }

    /// A fresh header with everything free.
    pub fn new(cg: u32, data_blocks: u32, max_groups: usize) -> Self {
        CgHeader {
            cg,
            block_bitmap: Bitmap::new(data_blocks as usize),
            groups: vec![None; max_groups],
        }
    }

    /// Serialize into a header block.
    ///
    /// # Panics
    /// Panics if bitmap + descriptor table overflow the block (geometry is
    /// validated at mkfs).
    pub fn write_to(&self, buf: &mut [u8]) {
        buf[..BLOCK_SIZE].fill(0);
        put_u32(buf, 0, CG_MAGIC);
        put_u32(buf, 4, self.cg);
        put_u32(buf, 8, self.block_bitmap.len() as u32);
        put_u32(buf, 12, self.groups.len() as u32);
        self.block_bitmap.write_bytes(&mut buf[CG_OFF_BITMAP..]);
        let table = Self::desc_table_offset(self.block_bitmap.len());
        assert!(
            table + self.groups.len() * GroupDescDisk::SIZE <= BLOCK_SIZE,
            "group descriptor table overflows CG header"
        );
        for (i, g) in self.groups.iter().enumerate() {
            if let Some(g) = g {
                g.write_to(buf, table + i * GroupDescDisk::SIZE);
            }
        }
    }

    /// Deserialize and validate.
    pub fn read_from(buf: &[u8], expect_cg: u32) -> FsResult<Self> {
        if get_u32(buf, 0) != CG_MAGIC {
            return Err(FsError::Corrupt(format!("bad CG magic in group {expect_cg}")));
        }
        let cg = get_u32(buf, 4);
        if cg != expect_cg {
            return Err(FsError::Corrupt(format!("CG index {cg} where {expect_cg} expected")));
        }
        let ndata = get_u32(buf, 8) as usize;
        let ngroups = get_u32(buf, 12) as usize;
        let table = Self::desc_table_offset(ndata);
        if table + ngroups * GroupDescDisk::SIZE > BLOCK_SIZE {
            return Err(FsError::Corrupt(format!("CG {cg} descriptor table overflows")));
        }
        let block_bitmap = Bitmap::from_bytes(&buf[CG_OFF_BITMAP..], ndata);
        let groups = (0..ngroups)
            .map(|i| GroupDescDisk::read_from(buf, table + i * GroupDescDisk::SIZE))
            .collect();
        Ok(CgHeader { cg, block_bitmap, groups })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_fslib::FileKind;

    #[test]
    fn ino_encoding_round_trips() {
        assert_eq!(decode_ino(external_ino(0)), InoRef::External(0));
        assert_eq!(decode_ino(external_ino(12345)), InoRef::External(12345));
        assert_eq!(decode_ino(INO_ROOT), InoRef::External(0));
        for (blk, off, gen) in
            [(2u64, 0usize, 0u16), (100, 8, 1), (255_000, 4088, 0x7FFF), (7, 512, 1234)]
        {
            let ino = embedded_ino(blk, off, gen);
            assert_eq!(decode_ino(ino), InoRef::Embedded { blk, off, gen });
            assert_eq!(ino & EXT_FLAG, 0);
        }
    }

    #[test]
    fn superblock_round_trip() {
        let mut exfile = Inode::new(FileKind::File);
        exfile.size = 4096;
        exfile.direct[0] = 2;
        exfile.blocks = 1;
        let sb = Superblock {
            total_blocks: 10_000,
            cg_count: 5,
            cg_size: 1999,
            exfile,
            exfile_slots: 32,
            clean: true,
        };
        let mut buf = vec![0u8; BLOCK_SIZE];
        sb.write_to(&mut buf);
        assert_eq!(Superblock::read_from(&buf).unwrap(), sb);
    }

    #[test]
    fn superblock_rejects_garbage() {
        assert!(Superblock::read_from(&vec![0u8; BLOCK_SIZE]).is_err());
    }

    #[test]
    fn cg_header_round_trip_with_groups() {
        let mut h = CgHeader::new(7, 2047, 127);
        h.block_bitmap.set_run(100, 16);
        h.groups[3] = Some(GroupDescDisk {
            start_idx: 100,
            owner: external_ino(5),
            member_valid: 0b1010_0001,
            nslots: 16,
        });
        h.groups[126] = Some(GroupDescDisk {
            start_idx: 200,
            owner: embedded_ino(55, 16, 3),
            member_valid: 0xFFFF,
            nslots: 16,
        });
        let mut buf = vec![0u8; BLOCK_SIZE];
        h.write_to(&mut buf);
        let back = CgHeader::read_from(&buf, 7).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn default_geometry_fits() {
        // 2048-block groups: bitmap 256 B, up to 127 descriptors.
        let sb = Superblock {
            total_blocks: 255_000,
            cg_count: 124,
            cg_size: 2048,
            exfile: Inode::new(FileKind::File),
            exfile_slots: 0,
            clean: true,
        };
        assert_eq!(sb.max_groups_per_cg(), 2047 / 16);
        let h = CgHeader::new(0, sb.data_per_cg(), sb.max_groups_per_cg());
        let mut buf = vec![0u8; BLOCK_SIZE];
        h.write_to(&mut buf); // must not panic
    }

    #[test]
    fn block_cg_mapping() {
        let sb = Superblock {
            total_blocks: 2 + 3 * 100,
            cg_count: 3,
            cg_size: 100,
            exfile: Inode::new(FileKind::File),
            exfile_slots: 0,
            clean: true,
        };
        assert_eq!(sb.block_cg(1), None);
        assert_eq!(sb.block_cg(2), Some(0));
        assert_eq!(sb.block_cg(101), Some(0));
        assert_eq!(sb.block_cg(102), Some(1));
        assert_eq!(sb.block_cg(2 + 300), None);
        assert_eq!(sb.cg_data_start(1), 103);
    }
}

//! C-FFS construction.
//!
//! Formats a disk with: superblock (block 1), per-cylinder-group headers
//! (bitmap + empty group descriptor table), a one-block external inode file
//! whose slot 0 is the root directory. Unlike FFS's `newfs`, there are no
//! inode tables to preallocate — the space is data from day one, the
//! paper's capacity argument [Forin94].

use crate::fs::{Cffs, CffsConfig};
use crate::layout::{CgHeader, Superblock, FIRST_CG_BLOCK, SB_BLOCK};
use cffs_disksim::Disk;
use cffs_fslib::inode::Inode;
use cffs_fslib::{FileKind, FsError, FsResult, BLOCK_SIZE, SECTORS_PER_BLOCK};

/// Geometry parameters for a new C-FFS.
#[derive(Debug, Clone, Copy)]
pub struct MkfsParams {
    /// Blocks per cylinder group (header + data).
    pub cg_size: u32,
}

impl Default for MkfsParams {
    /// 8 MB cylinder groups, matching the FFS baseline's geometry.
    fn default() -> Self {
        MkfsParams { cg_size: 2048 }
    }
}

impl MkfsParams {
    /// Small geometry for unit tests.
    pub fn tiny() -> Self {
        MkfsParams { cg_size: 512 }
    }
}

/// Format `disk` and mount the result.
pub fn mkfs(mut disk: Disk, params: MkfsParams, cfg: CffsConfig) -> FsResult<Cffs> {
    if params.cg_size < 32 {
        return Err(FsError::InvalidArg);
    }
    let total_blocks = disk.capacity_sectors() / SECTORS_PER_BLOCK;
    if total_blocks < FIRST_CG_BLOCK + params.cg_size as u64 {
        return Err(FsError::InvalidArg);
    }
    let cg_count = ((total_blocks - FIRST_CG_BLOCK) / params.cg_size as u64) as u32;

    // The external inode file starts with one block: the first data block
    // of cylinder group 0.
    let mut exfile = Inode::new(FileKind::File);
    let sb_tmp = Superblock {
        total_blocks,
        cg_count,
        cg_size: params.cg_size,
        exfile: exfile.clone(),
        exfile_slots: 0,
        clean: true,
    };
    let exblock = sb_tmp.cg_data_start(0);
    exfile.direct[0] = exblock as u32;
    exfile.size = BLOCK_SIZE as u64;
    exfile.blocks = 1;
    let sb = Superblock {
        exfile,
        exfile_slots: crate::exfile::SLOTS_PER_BLOCK,
        ..sb_tmp
    };

    let mut img = vec![0u8; BLOCK_SIZE];
    sb.write_to(&mut img);
    disk.raw_write(SB_BLOCK * SECTORS_PER_BLOCK, &img);

    for cg in 0..cg_count {
        let mut hdr = CgHeader::new(cg, sb.data_per_cg(), sb.max_groups_per_cg());
        if cg == 0 {
            hdr.block_bitmap.set(0); // the external inode file's block
        }
        hdr.write_to(&mut img);
        disk.raw_write(sb.cg_header_block(cg) * SECTORS_PER_BLOCK, &img);
    }

    // Root directory: external slot 0, empty.
    let mut root = Inode::new(FileKind::Dir);
    root.nlink = 2;
    img.fill(0);
    root.write_to(&mut img, 0);
    disk.raw_write(exblock * SECTORS_PER_BLOCK, &img);

    Cffs::mount(disk, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::INO_ROOT;
    use cffs_disksim::models;

    #[test]
    fn mkfs_and_mount_all_variants() {
        for cfg in [
            CffsConfig::cffs(),
            CffsConfig::conventional(),
            CffsConfig::embedded_only(),
            CffsConfig::grouping_only(),
        ] {
            let disk = Disk::new(models::tiny_test_disk());
            let label = cfg.label.clone();
            let fs = mkfs(disk, MkfsParams::tiny(), cfg).unwrap();
            assert_eq!(fs.root(), INO_ROOT, "{label}");
            assert!(fs.readdir(fs.root()).unwrap().is_empty(), "{label}");
            let st = fs.statfs().unwrap();
            assert!(st.free_blocks > 1000, "{label}");
            assert_eq!(st.total_inodes, u64::MAX, "dynamic inodes ({label})");
        }
    }

    #[test]
    fn root_attr_is_directory() {
        let disk = Disk::new(models::tiny_test_disk());
        let fs = mkfs(disk, MkfsParams::tiny(), CffsConfig::cffs()).unwrap();
        let attr = fs.getattr(fs.root()).unwrap();
        assert_eq!(attr.kind, cffs_fslib::FileKind::Dir);
        assert_eq!(attr.nlink, 2);
    }

    #[test]
    fn remount_preserves_superblock() {
        let disk = Disk::new(models::tiny_test_disk());
        let fs = mkfs(disk, MkfsParams::tiny(), CffsConfig::cffs()).unwrap();
        let sb1 = fs.superblock();
        let disk = fs.unmount().unwrap();
        let fs2 = Cffs::mount(disk, CffsConfig::cffs()).unwrap();
        assert_eq!(fs2.superblock(), sb1);
    }

    #[test]
    fn tiny_cg_rejected() {
        let disk = Disk::new(models::tiny_test_disk());
        assert!(mkfs(disk, MkfsParams { cg_size: 8 }, CffsConfig::cffs()).is_err());
    }
}

//! The mounted C-FFS and its [`FileSystem`] implementation.
//!
//! ## The four variants
//!
//! [`CffsConfig`] toggles the paper's two techniques independently:
//!
//! | constructor | embedded inodes | explicit grouping |
//! |---|---|---|
//! | [`CffsConfig::conventional`] | off | off |
//! | [`CffsConfig::embedded_only`] | on | off |
//! | [`CffsConfig::grouping_only`] | off | on |
//! | [`CffsConfig::cffs`] | on | on |
//!
//! With embedding off, every inode lives in the external inode file and the
//! system behaves like an FFS with a dynamically allocated inode table —
//! the paper's "same file system without these techniques" baseline.
//!
//! ## Metadata ordering
//!
//! In synchronous mode, conventional create/delete each take **two**
//! ordered synchronous writes (inode block, directory block). With embedded
//! inodes the name and inode share one 512-byte sector, so create/delete
//! take **one** synchronous *sector* write and the ordering constraint
//! between name and inode disappears — the paper's Section 3 argument,
//! reproduced literally by [`cffs_cache::BufferCache::flush_sector_sync`].
//!
//! ## Inode renumbering
//!
//! Embedded inode numbers encode physical location, so two operations
//! renumber files: `rename` (the entry moves) and `link` (the inode is
//! externalized). Both return the new number, the in-core caches are
//! purged ([`cffs_cache::BufferCache::purge_ino`]), and group ownership is
//! transferred ([`crate::groups::GroupIndex::reown`]) — the same
//! bookkeeping a C-FFS kernel does against its in-core inode table.

use crate::dirent::{self, CEntry, EntryLoc};
use crate::exfile::{self, SlotPool};
use crate::groups::{FreeOutcome, GroupIndex};
use crate::layout::{
    decode_ino, embedded_ino, external_ino, CgHeader, InoRef, Superblock, GEN_MASK, GROUP_BLOCKS,
    INO_ROOT,
    SB_BLOCK,
};
use cffs_cache::{BufferCache, CacheConfig};
use cffs_dcache::{Dcache, DcacheAnswer};
use cffs_disksim::driver::{Driver, DriverConfig, Scheduler};
use cffs_disksim::{Disk, SimDuration, SimTime};
use cffs_fslib::error::check_name;
use cffs_fslib::inode::{Inode, MAX_FILE_SIZE, NDIRECT, NO_BLOCK, PTRS_PER_BLOCK};
use cffs_fslib::vfs::MetadataMode;
use cffs_fslib::{
    Attr, CpuModel, DirEntry, FileKind, FsError, FsResult, FileSystem, Ino, IoStats, StatFs,
    BLOCK_SIZE,
};
use cffs_obs::{Ctr, Obs, OpKind, SpanGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Configuration of a C-FFS mount.
#[derive(Debug, Clone)]
pub struct CffsConfig {
    /// Embed single-link inodes in directory entries.
    pub embed: bool,
    /// Allocate small-file blocks from per-directory group extents and
    /// read/write them as units.
    pub group: bool,
    /// Minimum live members for a cache miss to trigger a whole-group read.
    pub group_read_min: u32,
    /// Blocks per group extent (1..=16; the paper's unit is 16 = 64 KB).
    /// Exposed for the group-size ablation (`repro_ablation`).
    pub group_blocks: u8,
    /// File-level sequential read-ahead, in blocks (0 = off, matching the
    /// paper's own implementation: "it currently does not support
    /// prefetching"). When a read continues the previous one, the next
    /// `prefetch_blocks` mapped blocks are fetched as one scatter/gather
    /// request — an *extension* beyond the paper, mainly benefiting
    /// ungrouped large files.
    pub prefetch_blocks: u32,
    /// Metadata durability policy.
    pub metadata_mode: MetadataMode,
    /// Buffer-cache sizing.
    pub cache: CacheConfig,
    /// CPU cost model.
    pub cpu: CpuModel,
    /// Disk-driver scheduler.
    pub scheduler: Scheduler,
    /// Namespace-cache (dcache) capacity in entries; 0 disables the
    /// cache entirely (the default — lookups always scan, matching the
    /// paper's implementation and keeping historical baselines exact).
    pub dcache_entries: usize,
    /// Label for reports.
    pub label: String,
}

impl CffsConfig {
    fn base(embed: bool, group: bool, label: &str) -> Self {
        CffsConfig {
            embed,
            group,
            group_read_min: 2,
            group_blocks: GROUP_BLOCKS as u8,
            prefetch_blocks: 0,
            metadata_mode: MetadataMode::Synchronous,
            cache: CacheConfig::default(),
            cpu: CpuModel::default(),
            scheduler: Scheduler::CLook,
            dcache_entries: 0,
            label: label.to_string(),
        }
    }

    /// Both techniques on: C-FFS proper.
    pub fn cffs() -> Self {
        Self::base(true, true, "C-FFS")
    }

    /// Both techniques off: the paper's conventional baseline.
    pub fn conventional() -> Self {
        Self::base(false, false, "conventional")
    }

    /// Embedded inodes only.
    pub fn embedded_only() -> Self {
        Self::base(true, false, "embedded inodes")
    }

    /// Explicit grouping only.
    pub fn grouping_only() -> Self {
        Self::base(false, true, "explicit grouping")
    }

    /// Same configuration with a different metadata mode.
    pub fn with_mode(mut self, mode: MetadataMode) -> Self {
        self.metadata_mode = mode;
        self
    }

    /// Same configuration with a namespace cache of `entries` entries
    /// (0 disables it).
    pub fn with_dcache(mut self, entries: usize) -> Self {
        self.dcache_entries = entries;
        self
    }
}

/// Allocation context for a data block.
#[derive(Debug, Clone, Copy)]
enum AllocCtx {
    /// Ordinary near-inode allocation.
    Plain {
        /// Cylinder group to anchor the search.
        near: u32,
    },
    /// Small-file allocation on behalf of a directory's group.
    Grouped {
        /// The owning directory.
        dir: Ino,
        /// Fallback anchor.
        near: u32,
    },
}

/// Per-cylinder-group occupancy, as reported by [`Cffs::cg_usage`]. The
/// regrouping engine and `cffs-inspect heatmap` both key their per-CG
/// indexes off this snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgUsage {
    /// Cylinder group number.
    pub cg: u32,
    /// Data blocks the group tracks.
    pub data_blocks: u32,
    /// Data blocks currently allocated.
    pub used_blocks: u32,
}

/// Number of operation stripes: public entry points serialize per-inode
/// on a hashed stripe, so operations on distinct files interleave while
/// two racing mutations of one directory stay ordered.
const OP_STRIPES: usize = 64;

/// External-inode-file state: the only superblock fields that change
/// after mkfs, so they live behind their own lock while the geometry
/// stays immutable.
#[derive(Debug)]
struct ExMeta {
    exfile: Inode,
    exfile_slots: u32,
    expool: SlotPool,
}

/// One cylinder group's in-core header plus its dirty flag — the
/// allocation shard. Each CG locks independently, so allocators working
/// in different groups never contend.
#[derive(Debug)]
struct CgSlot {
    hdr: CgHeader,
    dirty: bool,
}

/// Bound on [`NsState::parent_of`]: beyond this many entries the oldest
/// insertions are evicted FIFO. The map is a *hint* (allocation
/// anchoring, group prefetch); losing an entry costs a fallback anchor,
/// never correctness, so million-file trees can't grow it without
/// limit. Sized so every historical workload stays comfortably inside
/// (no eviction means byte-identical timelines).
const NS_PARENT_CAP: usize = 1 << 16;

/// Namespace knowledge, leaf-locked (nothing else is acquired while it
/// is held): child inode -> naming directory, and last logical block
/// read per inode for sequential-read detection.
#[derive(Debug)]
struct NsState {
    parent_of: HashMap<Ino, Ino>,
    /// Insertion order of `parent_of` keys, for FIFO eviction at
    /// [`NS_PARENT_CAP`]. May hold stale keys (removed or renumbered
    /// inodes); eviction skips them.
    parent_fifo: std::collections::VecDeque<Ino>,
    last_read: HashMap<Ino, u64>,
}

impl NsState {
    /// Record `child`'s naming directory, evicting the oldest hints
    /// once the map is full.
    fn note_parent(&mut self, child: Ino, dir: Ino) {
        if self.parent_of.insert(child, dir).is_none() {
            self.parent_fifo.push_back(child);
            while self.parent_of.len() > NS_PARENT_CAP {
                match self.parent_fifo.pop_front() {
                    Some(old) => {
                        self.parent_of.remove(&old);
                    }
                    None => break,
                }
            }
        }
    }
}

/// A mounted C-FFS.
///
/// ## Concurrency model
///
/// `Cffs` is `Send + Sync`: every operation takes `&self` and state is
/// sharded behind interior mutability. The lock hierarchy (acquire
/// strictly downward, see DESIGN.md §10):
///
/// 1. op stripes (per-inode hash, ascending when two are needed)
/// 2. `meta` (external inode file)
/// 3. `groups` (group index)
/// 4. `cg_state[i]` (per-CG header + bitmap; persist callbacks from
///    `groups` lock these, never the reverse)
/// 5. buffer-cache shards, then the driver queue
///
/// `ns` is leaf-scoped: taken and released with no other lock acquired
/// inside. Contention on any of these surfaces in the
/// `lock_wait_ns_*` counters.
pub struct Cffs {
    drv: Driver,
    cache: BufferCache,
    obs: Arc<Obs>,
    /// Immutable geometry snapshot. Its `exfile`/`exfile_slots` fields
    /// are stale after mount; the live copies are in `meta` and merged
    /// back by [`Cffs::superblock`] and `sync`.
    geo: Superblock,
    meta: Mutex<ExMeta>,
    cg_state: Vec<Mutex<CgSlot>>,
    groups: Mutex<GroupIndex>,
    ns: Mutex<NsState>,
    /// Sharded namespace cache ((parent, name) -> ino, with negative
    /// entries). `None` unless `cfg.dcache_entries > 0`. Shard locks
    /// are leaves, like `ns`.
    dcache: Option<Dcache>,
    /// Rotor for spreading new directories across cylinder groups (the
    /// FFS policy; C-FFS keeps it, per the paper's "what is not
    /// different" discussion of allocation).
    dir_rotor: AtomicU32,
    /// Per-mount generation counter for freshly embedded inodes (wraps
    /// in 1..=0x7FFF; 15 bits travel in the inode number as a
    /// stale-handle guard).
    gen_counter: AtomicU32,
    op_stripes: Vec<Mutex<()>>,
    cfg: CffsConfig,
    /// Armed flight recorder for this mount (`None` unless the process
    /// opted in via `cffs_obs::flight::set_global`, i.e. `--flight`).
    /// Held so unmount cuts a final frame and detaches the pacer.
    _flight: Option<cffs_obs::flight::FlightGuard>,
}

impl std::fmt::Debug for Cffs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cffs")
            .field("label", &self.cfg.label)
            .field("cg_count", &self.geo.cg_count)
            .finish_non_exhaustive()
    }
}

// The whole point: one mount, many worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Cffs>();
};

impl Cffs {
    /// Mount an existing C-FFS from `disk`.
    pub fn mount(disk: Disk, cfg: CffsConfig) -> FsResult<Cffs> {
        let drv = Driver::new(disk, DriverConfig { scheduler: cfg.scheduler });
        let mut buf = vec![0u8; BLOCK_SIZE];
        drv.read(SB_BLOCK * cffs_fslib::SECTORS_PER_BLOCK, &mut buf);
        let sb = Superblock::read_from(&buf)?;
        let mut cgs = Vec::with_capacity(sb.cg_count as usize);
        for cg in 0..sb.cg_count {
            drv.read(sb.cg_header_block(cg) * cffs_fslib::SECTORS_PER_BLOCK, &mut buf);
            cgs.push(CgHeader::read_from(&buf, cg)?);
        }
        let groups = GroupIndex::build(&sb, &cgs);
        // One Obs handle for the whole stack: the disk owns it, the
        // driver delegates to it, and the cache is rebound onto it here.
        let obs = drv.obs();
        // Per-CG telemetry registers: geometry + current occupancy. The
        // allocator keeps the gauge live from here on (bitmap set/clear
        // sites call cg_used_delta under the CG lock).
        obs.configure_cg_table(cffs_obs::CgTableConfig {
            first_block: crate::layout::FIRST_CG_BLOCK,
            cg_size: sb.cg_size as u64,
            sectors_per_block: cffs_fslib::SECTORS_PER_BLOCK,
            groups: cgs
                .iter()
                .map(|h| (h.block_bitmap.len() as u64, h.block_bitmap.used() as u64))
                .collect(),
        });
        let mut cache = BufferCache::new(cfg.cache);
        cache.set_obs(obs.clone());
        // Shard the cache on the cylinder-group stride so threads working
        // in disjoint CGs take disjoint shard locks.
        cache.shard_by_cg(sb.cg_size as u64, (sb.cg_count as usize).min(16));
        let meta = ExMeta {
            exfile: sb.exfile.clone(),
            exfile_slots: sb.exfile_slots,
            expool: SlotPool::new(0, []),
        };
        let cg_state = cgs
            .into_iter()
            .map(|hdr| Mutex::new(CgSlot { hdr, dirty: false }))
            .collect();
        // Per-op latency objectives (burn is derived lazily from the op
        // histograms, so arming costs the hot path nothing) and the
        // forensic black box (no-op without a `--flight` opt-in).
        obs.arm_default_slos();
        let flight = cffs_obs::flight::arm_global(&obs, &cfg.label);
        let obs_for_dcache = obs.clone();
        let fs = Cffs {
            drv,
            cache,
            obs,
            geo: sb,
            meta: Mutex::new(meta),
            cg_state,
            groups: Mutex::new(groups),
            ns: Mutex::new(NsState {
                parent_of: HashMap::new(),
                parent_fifo: std::collections::VecDeque::new(),
                last_read: HashMap::new(),
            }),
            dcache: (cfg.dcache_entries > 0).then(|| {
                let mut dc = Dcache::new(cfg.dcache_entries);
                dc.set_obs(obs_for_dcache.clone());
                dc
            }),
            dir_rotor: AtomicU32::new(0),
            gen_counter: AtomicU32::new(0),
            op_stripes: (0..OP_STRIPES).map(|_| Mutex::new(())).collect(),
            cfg,
            _flight: flight,
        };
        fs.scan_exfile()?;
        Ok(fs)
    }

    // ----- locking ------------------------------------------------------

    /// The operation stripe an inode hashes to.
    fn stripe(ino: Ino) -> usize {
        ((ino ^ (ino >> 17)).wrapping_mul(0x9E37_79B9) % OP_STRIPES as u64) as usize
    }

    /// Serialize with other operations on the same inode. Contention is
    /// charged to `lock_wait_ns_alloc` (the FS-core bucket).
    fn op_lock(&self, ino: Ino) -> MutexGuard<'_, ()> {
        self.obs.lock_timed(&self.op_stripes[Self::stripe(ino)], Ctr::LockWaitNsAlloc)
    }

    /// Acquire the stripes of two inodes in ascending order (one guard
    /// when they collide) — the deadlock-free shape for `rename`/`link`.
    fn op_lock2(&self, a: Ino, b: Ino) -> (MutexGuard<'_, ()>, Option<MutexGuard<'_, ()>>) {
        let (sa, sb) = (Self::stripe(a), Self::stripe(b));
        if sa == sb {
            return (self.op_lock(a), None);
        }
        let (lo, hi) = if sa < sb { (sa, sb) } else { (sb, sa) };
        let g1 = self.obs.lock_timed(&self.op_stripes[lo], Ctr::LockWaitNsAlloc);
        let g2 = self.obs.lock_timed(&self.op_stripes[hi], Ctr::LockWaitNsAlloc);
        (g1, Some(g2))
    }

    fn lock_meta(&self) -> MutexGuard<'_, ExMeta> {
        self.obs.lock_timed(&self.meta, Ctr::LockWaitNsAlloc)
    }

    fn lock_cg(&self, cg: u32) -> MutexGuard<'_, CgSlot> {
        self.obs.lock_timed(&self.cg_state[cg as usize], Ctr::LockWaitNsAlloc)
    }

    fn lock_groups(&self) -> MutexGuard<'_, GroupIndex> {
        self.obs.lock_timed(&self.groups, Ctr::LockWaitNsAlloc)
    }

    fn lock_ns(&self) -> MutexGuard<'_, NsState> {
        self.obs.lock_timed(&self.ns, Ctr::LockWaitNsAlloc)
    }

    /// The namespace cache, when configured (`cfg.dcache_entries > 0`).
    fn dcache(&self) -> Option<&Dcache> {
        self.dcache.as_ref()
    }

    /// Sync everything and hand the disk back.
    pub fn unmount(self) -> FsResult<Disk> {
        self.sync()?;
        Ok(self.drv.into_disk())
    }

    /// Snapshot the disk as a crash would leave it (dirty cache excluded).
    pub fn crash_image(&self) -> Disk {
        self.drv.with_disk(|d| d.clone_image())
    }

    /// Snapshot the disk as a crash *during its most recent write* would
    /// leave it: only the first `keep_sectors` sectors of that write
    /// landed. `None` if nothing was ever written. Sector atomicity is
    /// preserved — the guarantee embedded inodes are built on.
    pub fn crash_image_torn(&self, keep_sectors: usize) -> Option<Disk> {
        self.drv.with_disk(|d| d.clone_image_torn(keep_sectors))
    }

    /// A point-in-time snapshot of the mounted superblock: the immutable
    /// geometry merged with the current external-inode-file state.
    pub fn superblock(&self) -> Superblock {
        let mut sb = self.geo.clone();
        let m = self.lock_meta();
        sb.exfile = m.exfile.clone();
        sb.exfile_slots = m.exfile_slots;
        sb
    }

    /// The in-core group index (benchmarks, tests). Holds the group lock
    /// for the guard's lifetime — keep it short and take no FS locks
    /// above it (see the hierarchy on [`Cffs`]).
    pub fn group_index(&self) -> MutexGuard<'_, GroupIndex> {
        self.lock_groups()
    }

    /// The active configuration.
    pub fn config(&self) -> &CffsConfig {
        &self.cfg
    }

    /// The stack-wide observability handle (counters + event trace) shared
    /// by the disk, driver, cache, and this file-system layer.
    pub fn obs(&self) -> Arc<Obs> {
        self.obs.clone()
    }

    /// The physical block currently cached for `(ino, lbn)`, if resident —
    /// a layout probe for tests and tooling (a preceding `read` at that
    /// offset binds the identity).
    pub fn cache_block_of(&self, ino: Ino, lbn: u64) -> Option<u64> {
        self.cache.lookup_logical(ino, lbn)
    }

    /// Enable/disable per-request disk trace recording (access-pattern
    /// analysis; off by default).
    pub fn set_disk_trace(&self, on: bool) {
        self.drv.with_disk_mut(|d| d.set_trace(on));
    }

    /// The recorded disk trace (empty when recording is off).
    pub fn disk_trace(&self) -> Vec<cffs_disksim::TraceEntry> {
        self.drv.with_disk(|d| d.trace().to_vec())
    }

    /// Application-directed grouping across directories — the richer form
    /// of [`FileSystem::group_hint`] for documents whose pieces live in
    /// *different* directories (the paper's hypertext example
    /// [Kaashoek96]): relocate the blocks of each small file in `files`
    /// into group extents anchored at `anchor_dir`, so one group fetch
    /// serves the whole document.
    pub fn group_files(&self, anchor_dir: Ino, files: &[Ino]) -> FsResult<()> {
        let _op = self.op_lock(anchor_dir);
        let _span = self.op_span(OpKind::GroupFiles);
        if !self.cfg.group {
            return Ok(());
        }
        self.charge(self.cpu_model().syscall);
        self.require_dir(anchor_dir)?;
        for &ino in files {
            let mut inode = self.read_inode(ino)?;
            if inode.kind != FileKind::File {
                continue;
            }
            self.regroup(anchor_dir, ino, &mut inode)?;
            self.write_inode(ino, &inode, false)?;
        }
        Ok(())
    }

    // ----- online regrouping support (driven by `cffs-regroup`) -----------

    /// Per-cylinder-group occupancy snapshot: the regrouper's and
    /// heatmap's view of how full each CG's data area is.
    pub fn cg_usage(&self) -> Vec<CgUsage> {
        (0..self.geo.cg_count)
            .map(|cg| {
                let s = self.lock_cg(cg);
                CgUsage {
                    cg: s.hdr.cg,
                    data_blocks: s.hdr.block_bitmap.len() as u32,
                    used_blocks: s.hdr.block_bitmap.used() as u32,
                }
            })
            .collect()
    }

    /// The mapped `(lbn, physical block)` pairs of a file — the planner's
    /// input for relocation decisions. Holes are skipped.
    pub fn file_block_map(&self, ino: Ino) -> FsResult<Vec<(u64, u64)>> {
        let _op = self.op_lock(ino);
        let mut inode = self.read_inode(ino)?;
        let nblocks = inode.size.div_ceil(BLOCK_SIZE as u64);
        let mut out = Vec::with_capacity(nblocks as usize);
        for lbn in 0..nblocks {
            if let Some(b) = self.bmap(ino, &mut inode, lbn, None)? {
                out.push((lbn, b));
            }
        }
        Ok(out)
    }

    /// Is this physical block resident in the buffer cache? Idle-only
    /// regrouping uses this to restrict itself to moves that need no
    /// source read I/O.
    pub fn block_resident(&self, blk: u64) -> bool {
        self.cache.contains(blk)
    }

    /// Carve a fresh, *empty* group extent owned by `dir`, probing
    /// cylinder groups outward from the directory's home. Members are
    /// claimed one at a time via [`Cffs::group_claim_slot`] as blocks are
    /// relocated in; an extent left empty is reclaimed under space
    /// pressure (and dissolved by fsck after a crash). Returns the group
    /// key, or `None` when grouping is off or no contiguous run exists.
    pub fn carve_group_for(&self, dir: Ino) -> FsResult<Option<(u32, u32)>> {
        if !self.cfg.group {
            return Ok(None);
        }
        let dnode = self.require_dir(dir)?;
        let near = self.dir_home(dir, &dnode);
        self.charge(self.cpu_model().alloc_op);
        let n = self.geo.cg_count;
        let near = near.min(n - 1);
        let nslots = self.cfg.group_blocks;
        for d in 0..n {
            let cg = (near + d) % n;
            let mut groups = self.lock_groups();
            let mut s = self.lock_cg(cg);
            if let Some(key) = groups.carve_empty(&self.geo, &mut s.hdr, dir, nslots)? {
                s.dirty = true;
                self.obs.bump(Ctr::RegroupGroupsFormed);
                self.obs.cg_used_delta(cg as usize, nslots as i64);
                return Ok(Some(key));
            }
        }
        Ok(None)
    }

    /// Claim the next free member slot of group `key` (lowest slot first,
    /// so consecutive claims produce a physically contiguous run).
    pub fn group_claim_slot(&self, key: (u32, u32)) -> Option<u64> {
        self.lock_groups().alloc_slot_in(
            key,
            |c, i, d, _| {
                let mut s = self.lock_cg(c);
                s.hdr.groups[i as usize] = Some(*d);
                s.dirty = true;
            },
            &self.geo,
        )
    }

    /// Step 1 of the regrouper's crash-safe relocation protocol:
    /// **copy-forward**. The block's contents are placed at the
    /// already-claimed destination `to` and flushed to the media while the
    /// inode still points at the old block. A crash anywhere in or after
    /// this step loses nothing: the logical pointer (and the old block's
    /// contents) are untouched, and the destination is unreferenced until
    /// [`Cffs::relocate_commit`] lands. A resident source buffer is
    /// re-homed in place ([`BufferCache::relocate_phys`]); a cold one is
    /// copied through the cache.
    ///
    /// [`BufferCache::relocate_phys`]: cffs_cache::BufferCache::relocate_phys
    pub fn relocate_copy_forward(&self, ino: Ino, lbn: u64, to: u64) -> FsResult<()> {
        let _op = self.op_lock(ino);
        self.relocate_copy_forward_inner(ino, lbn, to)
    }

    fn relocate_copy_forward_inner(&self, ino: Ino, lbn: u64, to: u64) -> FsResult<()> {
        let mut inode = self.read_inode(ino)?;
        let from = self
            .bmap(ino, &mut inode, lbn, None)?
            .ok_or_else(|| FsError::Corrupt("relocating an unmapped block".into()))?;
        if from == to {
            return Ok(());
        }
        if !self.cache.relocate_phys(&self.drv, from, to) {
            let contents = self.fetch_block(from, ino, lbn)?;
            self.cache.modify_block(&self.drv, to, false, false, |d| {
                d.copy_from_slice(&contents)
            })?;
            self.charge(self.cpu_model().copy_cost(BLOCK_SIZE));
        }
        self.cache.flush_block_sync(&self.drv, to)
    }

    /// Step 2 of the protocol: **pointer rewrite, then free**. The block
    /// pointer for `lbn` is switched to `to` and forced durable (a single
    /// sector write for embedded inodes, a block write for external ones
    /// or indirect pointers — sector atomicity makes the switch
    /// all-or-nothing), and only then is the old block freed. Every tear
    /// point leaves either the old pointer with the old block intact, or
    /// the new pointer with the copied contents already durable from step
    /// 1 — fsck-clean and byte-identical either way. Callers must run
    /// step 1 first and commit immediately after.
    pub fn relocate_commit(&self, ino: Ino, lbn: u64, to: u64) -> FsResult<()> {
        let _op = self.op_lock(ino);
        self.relocate_commit_inner(ino, lbn, to)
    }

    fn relocate_commit_inner(&self, ino: Ino, lbn: u64, to: u64) -> FsResult<()> {
        let mut inode = self.read_inode(ino)?;
        let from = self
            .bmap(ino, &mut inode, lbn, None)?
            .ok_or_else(|| FsError::Corrupt("committing an unmapped block".into()))?;
        if from == to {
            return Ok(());
        }
        self.map_set(&mut inode, lbn, to)?;
        self.write_inode(ino, &inode, true)?;
        self.flush_map_location(&inode, ino, lbn)?;
        // Relocation never renumbers `ino` itself, so positive entries
        // *resolving to* it stay valid. But if the moved block belongs
        // to a directory, the embedded inodes inside it re-home with
        // it: every child embedded at `from` now answers to a number
        // encoding `to`. Drop everything cached under the directory and
        // transfer each embedded child's external bookkeeping (cache
        // bindings, parent map, and — for child directories — group
        // ownership) to the new number, exactly as rename does when it
        // renumbers an entry.
        if inode.kind == FileKind::Dir {
            if let Some(dc) = self.dcache() {
                dc.purge_dir(ino);
            }
            let entries = {
                let data = self.fetch_block(to, ino, lbn)?;
                dirent::list(&data)?
            };
            for e in &entries {
                if !matches!(e.loc, EntryLoc::Embedded(_)) {
                    continue;
                }
                let old_ino = embedded_ino(from, e.offset, e.gen);
                let new_ino = embedded_ino(to, e.offset, e.gen);
                self.cache.purge_ino(old_ino);
                if let Some(dc) = self.dcache() {
                    dc.purge_ino(old_ino);
                }
                self.lock_ns().parent_of.remove(&old_ino);
                if e.kind == FileKind::Dir {
                    self.renumber_dir(old_ino, new_ino);
                }
                self.lock_ns().note_parent(new_ino, ino);
            }
        }
        self.cache.unbind_logical(ino, lbn);
        self.free_block_any(from);
        self.cache.bind_logical(&self.drv, to, ino, lbn);
        self.obs.bump(Ctr::RegroupBlocksMoved);
        Ok(())
    }

    /// Claim a slot in `group` and relocate `lbn` of `ino` into it
    /// (copy-forward then commit). Returns the new block, or `None` when
    /// the block is unmapped, already inside the target extent, or the
    /// group is full.
    pub fn relocate_block_into(
        &self,
        ino: Ino,
        lbn: u64,
        group: (u32, u32),
    ) -> FsResult<Option<u64>> {
        let _op = self.op_lock(ino);
        let mut inode = self.read_inode(ino)?;
        let Some(from) = self.bmap(ino, &mut inode, lbn, None)? else {
            return Ok(None);
        };
        let g = self.lock_groups().get(group.0, group.1).copied();
        if let Some(g) = g {
            if from >= g.start && from < g.start + g.nslots as u64 {
                return Ok(None);
            }
        }
        let Some(to) = self.group_claim_slot(group) else {
            return Ok(None);
        };
        self.relocate_copy_forward_inner(ino, lbn, to)?;
        self.relocate_commit_inner(ino, lbn, to)?;
        Ok(Some(to))
    }

    /// Force the on-disk location of `lbn`'s block pointer durable,
    /// whatever the metadata mode: the inode's sector/block for direct
    /// pointers, the (already dirty) indirect block otherwise.
    fn flush_map_location(&self, inode: &Inode, ino: Ino, lbn: u64) -> FsResult<()> {
        if (lbn as usize) < NDIRECT {
            return match decode_ino(ino) {
                InoRef::External(slot) => {
                    let (blk, _) = self.exfile_locate(slot)?;
                    self.cache.flush_block_sync(&self.drv, blk)
                }
                InoRef::Embedded { blk, off, .. } => {
                    self.cache.flush_sector_sync(&self.drv, blk, off)
                }
            };
        }
        let l1 = lbn as usize - NDIRECT;
        if l1 < PTRS_PER_BLOCK {
            return self.cache.flush_block_sync(&self.drv, inode.indirect as u64);
        }
        let l2 = l1 - PTRS_PER_BLOCK;
        let dind = inode.dindirect as u64;
        let mid = {
            let data = self.cache.read_block(&self.drv, dind)?;
            cffs_fslib::codec::get_u32(&data, (l2 / PTRS_PER_BLOCK) * 4)
        };
        self.cache.flush_block_sync(&self.drv, mid as u64)
    }

    fn charge(&self, d: SimDuration) {
        self.drv.advance(d);
    }

    /// Open a causal attribution span for one public entry point: every
    /// disk request issued while it is open is stamped with this op (see
    /// [`Obs::span`]; nested entry-point calls stay attributed to the
    /// outermost op).
    fn op_span(&self, op: OpKind) -> SpanGuard {
        self.drv.obs().span(op)
    }

    /// Next generation stamp for a freshly embedded inode.
    fn next_gen(&self) -> u16 {
        let prev = self
            .gen_counter
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |g| Some((g % 0x7FFF) + 1))
            .expect("fetch_update closure always returns Some");
        ((prev % 0x7FFF) + 1) as u16
    }

    /// Rebuild the external-inode free pool by scanning the file.
    fn scan_exfile(&self) -> FsResult<()> {
        let slots = self.lock_meta().exfile_slots;
        let mut free = Vec::new();
        for slot in 0..slots {
            let (blk, off) = self.exfile_locate(slot)?;
            let data = self.cache.read_block(&self.drv, blk)?;
            if Inode::read_from(&data, off).is_none() {
                free.push(slot);
            }
        }
        self.lock_meta().expool = SlotPool::new(slots, free);
        Ok(())
    }

    /// Physical location of external slot `slot`.
    fn exfile_locate(&self, slot: u32) -> FsResult<(u64, usize)> {
        let mut exinode = {
            let m = self.lock_meta();
            if slot >= m.exfile_slots {
                return Err(FsError::StaleHandle);
            }
            m.exfile.clone()
        };
        let lbn = exfile::slot_lbn(slot);
        let blk = self
            .bmap(INO_ROOT, &mut exinode, lbn, None)?
            .ok_or_else(|| FsError::Corrupt("hole in external inode file".into()))?;
        Ok((blk, exfile::slot_off(slot)))
    }

    /// Allocate an external inode slot, growing the file if needed. The
    /// meta lock is held across the growth so two racing allocators
    /// cannot both extend the file.
    fn alloc_external_slot(&self) -> FsResult<u32> {
        self.charge(self.cpu_model().alloc_op);
        let mut m = self.lock_meta();
        if let Some(s) = m.expool.take() {
            return Ok(s);
        }
        // Grow by one block. The external file's blocks never participate
        // in grouping and never move.
        let mut exinode = m.exfile.clone();
        let lbn = exinode.size / BLOCK_SIZE as u64;
        let blk = self
            .bmap(INO_ROOT, &mut exinode, lbn, Some(AllocCtx::Plain { near: 0 }))?
            .ok_or(FsError::NoSpace)?;
        self.cache.modify_block(&self.drv, blk, true, false, |d| d.fill(0))?;
        exinode.size += BLOCK_SIZE as u64;
        m.exfile = exinode;
        let range = m.expool.grow();
        m.exfile_slots = range.end;
        Ok(m.expool.take().expect("just grew"))
    }

    // ----- inode access -------------------------------------------------

    fn read_inode(&self, ino: Ino) -> FsResult<Inode> {
        self.charge(self.cpu_model().block_op);
        match decode_ino(ino) {
            InoRef::External(slot) => {
                self.obs().bump(Ctr::FsExternalInodeOps);
                let (blk, off) = self.exfile_locate(slot)?;
                let data = self.cache.read_block(&self.drv, blk)?;
                Inode::read_from(&data, off).ok_or(FsError::StaleHandle)
            }
            InoRef::Embedded { blk, off, gen } => {
                self.obs().bump(Ctr::FsEmbeddedInodeOps);
                self.fetch_group_for(blk)?;
                let data = self.cache.read_block(&self.drv, blk)?;
                let entry = dirent::entry_at(&data, off)?;
                let EntryLoc::Embedded(img) = entry.loc else {
                    return Err(FsError::StaleHandle);
                };
                let inode = Inode::read_from(&data, img).ok_or(FsError::StaleHandle)?;
                // Generation guard: a recycled entry location cannot
                // satisfy a stale handle.
                if (inode.generation & GEN_MASK as u32) as u16 != gen {
                    return Err(FsError::StaleHandle);
                }
                Ok(inode)
            }
        }
    }

    /// Write an inode image back. `durable` applies the synchronous policy:
    /// a single *sector* write for embedded inodes, a block write for
    /// external ones.
    fn write_inode(&self, ino: Ino, inode: &Inode, durable: bool) -> FsResult<()> {
        self.charge(self.cpu_model().block_op);
        let sync = durable && self.cfg.metadata_mode == MetadataMode::Synchronous;
        if durable {
            self.obs().bump(if sync {
                Ctr::FsSyncMetaWrites
            } else {
                Ctr::FsDelayedMetaWrites
            });
        }
        match decode_ino(ino) {
            InoRef::External(slot) => {
                self.obs().bump(Ctr::FsExternalInodeOps);
                let (blk, off) = self.exfile_locate(slot)?;
                self.cache
                    .modify_block(&self.drv, blk, true, true, |d| inode.write_to(d, off))?;
                if sync {
                    self.cache.flush_block_sync(&self.drv, blk)?;
                }
            }
            InoRef::Embedded { blk, off, gen } => {
                self.obs().bump(Ctr::FsEmbeddedInodeOps);
                let img = {
                    let data = self.cache.read_block(&self.drv, blk)?;
                    let entry = dirent::entry_at(&data, off)?;
                    if entry.gen != gen {
                        return Err(FsError::StaleHandle);
                    }
                    match entry.loc {
                        EntryLoc::Embedded(img) => img,
                        EntryLoc::External(_) => return Err(FsError::StaleHandle),
                    }
                };
                self.cache
                    .modify_block(&self.drv, blk, true, true, |d| inode.write_to(d, img))?;
                if sync {
                    self.cache.flush_sector_sync(&self.drv, blk, off)?;
                }
            }
        }
        Ok(())
    }

    /// Clear an external inode slot and return it to the pool.
    fn free_external_slot(&self, slot: u32, durable: bool) -> FsResult<()> {
        let (blk, off) = self.exfile_locate(slot)?;
        self.cache
            .modify_block(&self.drv, blk, true, true, |d| Inode::clear_slot(d, off))?;
        if durable && self.cfg.metadata_mode == MetadataMode::Synchronous {
            self.cache.flush_block_sync(&self.drv, blk)?;
        }
        self.lock_meta().expool.put(slot);
        Ok(())
    }

    // ----- block allocation -----------------------------------------------

    /// Plain (ungrouped) allocation: probe cylinder groups from `near`,
    /// honoring a previous-block hint; reclaim group slack as a last
    /// resort. Each CG is locked only while probed, so allocators with
    /// different homes proceed in parallel.
    fn alloc_plain(&self, near: u32, hint: Option<u64>) -> FsResult<u64> {
        self.charge(self.cpu_model().alloc_op);
        for pass in 0..2 {
            let n = self.geo.cg_count;
            let near = near.min(n - 1);
            for d in 0..n {
                let cg = (near + d) % n;
                let mut s = self.lock_cg(cg);
                if s.hdr.block_bitmap.free() == 0 {
                    continue;
                }
                let data_start = self.geo.cg_data_start(cg);
                let hint_idx = match hint {
                    Some(h) if self.geo.block_cg(h) == Some(cg) && h + 1 >= data_start => {
                        ((h + 1 - data_start) as usize) % s.hdr.block_bitmap.len()
                    }
                    _ => 0,
                };
                if let Some(idx) = s.hdr.block_bitmap.find_free(hint_idx) {
                    s.hdr.block_bitmap.set(idx);
                    s.dirty = true;
                    self.obs.cg_used_delta(cg as usize, 1);
                    return Ok(data_start + idx as u64);
                }
            }
            if pass == 0 {
                // Space pressure: trim reserved-but-unused group slots.
                self.reclaim_slack();
            }
        }
        Err(FsError::NoSpace)
    }

    /// Trim trailing unused group slots everywhere, returning their blocks
    /// to the free pool.
    fn reclaim_slack(&self) {
        for cg in 0..self.geo.cg_count {
            let released = self.lock_groups().trim_slack(&self.geo, cg, |c, i, d| {
                let mut s = self.lock_cg(c);
                s.hdr.groups[i as usize] = d.copied();
                s.dirty = true;
            });
            for (start, len) in released {
                let data_start = self.geo.cg_data_start(cg);
                {
                    let mut s = self.lock_cg(cg);
                    s.hdr.block_bitmap.clear_run((start - data_start) as usize, len);
                    s.dirty = true;
                    self.obs.cg_used_delta(cg as usize, -(len as i64));
                }
                for b in start..start + len as u64 {
                    self.cache.invalidate_block(&self.drv, b);
                }
            }
        }
    }

    /// Grouped allocation for a small file (or directory block) of `dir`.
    /// Falls back to `None` when no slot or extent is available.
    fn alloc_grouped(&self, dir: Ino, near: u32) -> FsResult<Option<u64>> {
        self.charge(self.cpu_model().alloc_op);
        {
            let mut groups = self.lock_groups();
            if let Some((blk, _)) = groups.alloc_slot(
                dir,
                None,
                |c, i, d, _| {
                    let mut s = self.lock_cg(c);
                    s.hdr.groups[i as usize] = Some(*d);
                    s.dirty = true;
                },
                &self.geo,
            ) {
                return Ok(Some(blk));
            }
        }
        // Carve a fresh extent, probing from the home group outward.
        let n = self.geo.cg_count;
        let near = near.min(n - 1);
        let nslots = self.cfg.group_blocks;
        for d in 0..n {
            let cg = (near + d) % n;
            let mut groups = self.lock_groups();
            let mut s = self.lock_cg(cg);
            if let Some((blk, _)) = groups.carve(&self.geo, &mut s.hdr, dir, nslots)? {
                s.dirty = true;
                self.obs.cg_used_delta(cg as usize, nslots as i64);
                return Ok(Some(blk));
            }
        }
        Ok(None)
    }

    /// Allocate a data block for logical block `lbn` of a file: grouped
    /// when grouping is on, the file has a directory context, and the
    /// block lies inside the small-file range (`lbn < group_blocks` —
    /// blocks past the group size always take the plain clustered path).
    fn alloc_for(&self, ctx: AllocCtx, lbn: u64, hint: Option<u64>) -> FsResult<u64> {
        match ctx {
            AllocCtx::Grouped { dir, near }
                if self.cfg.group && lbn < self.cfg.group_blocks as u64 =>
            {
                if let Some(blk) = self.alloc_grouped(dir, near)? {
                    return Ok(blk);
                }
                self.alloc_plain(near, hint)
            }
            AllocCtx::Grouped { near, .. } | AllocCtx::Plain { near } => {
                self.alloc_plain(near, hint)
            }
        }
    }

    /// Free a block wherever it lives: a group slot (possibly dissolving
    /// the group) or the plain bitmap.
    fn free_block_any(&self, blk: u64) {
        self.charge(self.cpu_model().alloc_op);
        let outcome = self.lock_groups().free_slot(&self.geo, blk, |c, i, d| {
            let mut s = self.lock_cg(c);
            s.hdr.groups[i as usize] = d.copied();
            s.dirty = true;
        });
        match outcome {
            Some(FreeOutcome::SlotFreed) => {
                // The extent stays reserved; only the member bit changed.
            }
            Some(FreeOutcome::Dissolved { start, nslots }) => {
                self.obs.bump(Ctr::FsGroupDissolves);
                let cg = self.geo.block_cg(start).expect("group extent inside a CG");
                let data_start = self.geo.cg_data_start(cg);
                let mut s = self.lock_cg(cg);
                s.hdr.block_bitmap.clear_run((start - data_start) as usize, nslots as usize);
                s.dirty = true;
                self.obs.cg_used_delta(cg as usize, -(nslots as i64));
            }
            None => {
                let cg = self.geo.block_cg(blk).expect("freeing a block outside all CGs");
                let data_start = self.geo.cg_data_start(cg);
                let mut s = self.lock_cg(cg);
                assert!(
                    s.hdr.block_bitmap.clear((blk - data_start) as usize),
                    "double free of block {blk}"
                );
                s.dirty = true;
                self.obs.cg_used_delta(cg as usize, -1);
            }
        }
        self.cache.invalidate_block(&self.drv, blk);
    }

    /// The cylinder group a directory's storage is anchored to: the one
    /// assigned at `mkdir` (stored in the inode's flags, FFS-style
    /// spreading), falling back to the directory's first data block.
    fn dir_home(&self, dir: Ino, dinode: &Inode) -> u32 {
        if dinode.flags != 0 {
            return (dinode.flags - 1).min(self.geo.cg_count - 1);
        }
        if dinode.direct[0] != NO_BLOCK {
            return self.geo.block_cg(dinode.direct[0] as u64).unwrap_or(0);
        }
        match decode_ino(dir) {
            InoRef::Embedded { blk, .. } => self.geo.block_cg(blk).unwrap_or(0),
            InoRef::External(_) => 0,
        }
    }

    /// Pick the cylinder group for a new directory: FFS spreads
    /// directories, preferring emptier groups (round-robin rotor biased by
    /// free space).
    fn pick_dir_cg(&self) -> u32 {
        let n = self.geo.cg_count;
        let rotor = self.dir_rotor.load(Ordering::Relaxed) % n;
        for probe in 0..n {
            let cg = (rotor + probe) % n;
            let ok = {
                let s = self.lock_cg(cg);
                // "Above-average free" in spirit: at least a quarter free.
                s.hdr.block_bitmap.free() * 4 >= s.hdr.block_bitmap.len()
            };
            if ok {
                self.dir_rotor.store((cg + 1) % n, Ordering::Relaxed);
                return cg;
            }
        }
        self.dir_rotor.store((rotor + 1) % n, Ordering::Relaxed);
        rotor
    }

    /// Allocation context for data blocks of file `ino`: anchored at (and,
    /// with grouping on, grouped with) the owning directory.
    fn data_ctx(&self, ino: Ino) -> FsResult<AllocCtx> {
        let parent = self.lock_ns().parent_of.get(&ino).copied();
        match parent {
            Some(dir) => {
                let dinode = self.read_inode(dir)?;
                let near = self.dir_home(dir, &dinode);
                if self.cfg.group {
                    Ok(AllocCtx::Grouped { dir, near })
                } else {
                    Ok(AllocCtx::Plain { near })
                }
            }
            None => {
                let near = match decode_ino(ino) {
                    InoRef::Embedded { blk, .. } => self.geo.block_cg(blk).unwrap_or(0),
                    InoRef::External(_) => 0,
                };
                Ok(AllocCtx::Plain { near })
            }
        }
    }

    // ----- block mapping --------------------------------------------------

    /// Map `lbn` of an inode, optionally allocating (with the given
    /// context). The caller persists the updated inode.
    fn bmap(
        &self,
        ino: Ino,
        inode: &mut Inode,
        lbn: u64,
        alloc: Option<AllocCtx>,
    ) -> FsResult<Option<u64>> {
        self.charge(self.cpu_model().block_op);
        if lbn >= cffs_fslib::inode::MAX_FILE_BLOCKS {
            return Err(FsError::FileTooBig);
        }
        let _ = ino;
        if (lbn as usize) < NDIRECT {
            let cur = inode.direct[lbn as usize];
            if cur != NO_BLOCK {
                return Ok(Some(cur as u64));
            }
            let Some(ctx) = alloc else { return Ok(None) };
            let hint = if lbn > 0 { inode.direct[lbn as usize - 1] } else { NO_BLOCK };
            let blk = self.alloc_for(ctx, lbn, (hint != NO_BLOCK).then_some(hint as u64))?;
            inode.direct[lbn as usize] = blk as u32;
            inode.blocks += 1;
            return Ok(Some(blk));
        }
        let l1 = lbn as usize - NDIRECT;
        let near = match alloc {
            Some(AllocCtx::Plain { near } | AllocCtx::Grouped { near, .. }) => near,
            None => 0,
        };
        if l1 < PTRS_PER_BLOCK {
            let Some((ind, fresh)) =
                self.get_or_alloc_indirect(inode.indirect, near, alloc.is_some())?
            else {
                return Ok(None);
            };
            if fresh {
                inode.indirect = ind as u32;
                inode.blocks += 1;
            }
            return self.indirect_slot(ind, l1, lbn, alloc, inode);
        }
        let l2 = l1 - PTRS_PER_BLOCK;
        let outer = l2 / PTRS_PER_BLOCK;
        let inner = l2 % PTRS_PER_BLOCK;
        let Some((dind, fresh)) =
            self.get_or_alloc_indirect(inode.dindirect, near, alloc.is_some())?
        else {
            return Ok(None);
        };
        if fresh {
            inode.dindirect = dind as u32;
            inode.blocks += 1;
        }
        let data = self.cache.read_block(&self.drv, dind)?;
        let mut mid = cffs_fslib::codec::get_u32(&data, outer * 4);
        if mid == NO_BLOCK {
            if alloc.is_none() {
                return Ok(None);
            }
            let nb = self.alloc_plain(near, Some(dind))?;
            self.cache.modify_block(&self.drv, nb, true, false, |d| d.fill(0))?;
            self.cache.modify_block(&self.drv, dind, true, true, |d| {
                cffs_fslib::codec::put_u32(d, outer * 4, nb as u32)
            })?;
            inode.blocks += 1;
            mid = nb as u32;
        }
        self.indirect_slot(mid as u64, inner, lbn, alloc, inode)
    }

    fn get_or_alloc_indirect(
        &self,
        cur: u32,
        near: u32,
        alloc: bool,
    ) -> FsResult<Option<(u64, bool)>> {
        if cur != NO_BLOCK {
            return Ok(Some((cur as u64, false)));
        }
        if !alloc {
            return Ok(None);
        }
        // Indirect blocks are metadata; never grouped.
        let blk = self.alloc_plain(near, None)?;
        self.cache.modify_block(&self.drv, blk, true, false, |d| d.fill(0))?;
        Ok(Some((blk, true)))
    }

    fn indirect_slot(
        &self,
        ind: u64,
        idx: usize,
        lbn: u64,
        alloc: Option<AllocCtx>,
        inode: &mut Inode,
    ) -> FsResult<Option<u64>> {
        let data = self.cache.read_block(&self.drv, ind)?;
        let cur = cffs_fslib::codec::get_u32(&data, idx * 4);
        if cur != NO_BLOCK {
            return Ok(Some(cur as u64));
        }
        let Some(ctx) = alloc else { return Ok(None) };
        let hint = if idx > 0 {
            let prev =
                cffs_fslib::codec::get_u32(&self.cache.read_block(&self.drv, ind)?, (idx - 1) * 4);
            (prev != NO_BLOCK).then_some(prev as u64)
        } else {
            Some(ind)
        };
        let blk = self.alloc_for(ctx, lbn, hint)?;
        self.cache.modify_block(&self.drv, ind, true, true, |d| {
            cffs_fslib::codec::put_u32(d, idx * 4, blk as u32)
        })?;
        inode.blocks += 1;
        Ok(Some(blk))
    }

    /// Point `lbn` of an inode at a different block (degrouping /
    /// regrouping relocation). The mapping must already exist.
    fn map_set(&self, inode: &mut Inode, lbn: u64, blk: u64) -> FsResult<()> {
        if (lbn as usize) < NDIRECT {
            inode.direct[lbn as usize] = blk as u32;
            return Ok(());
        }
        let l1 = lbn as usize - NDIRECT;
        if l1 < PTRS_PER_BLOCK {
            let ind = inode.indirect as u64;
            self.cache.modify_block(&self.drv, ind, true, true, |d| {
                cffs_fslib::codec::put_u32(d, l1 * 4, blk as u32)
            })?;
            return Ok(());
        }
        let l2 = l1 - PTRS_PER_BLOCK;
        let dind = inode.dindirect as u64;
        let mid = {
            let data = self.cache.read_block(&self.drv, dind)?;
            cffs_fslib::codec::get_u32(&data, (l2 / PTRS_PER_BLOCK) * 4)
        };
        self.cache.modify_block(&self.drv, mid as u64, true, true, |d| {
            cffs_fslib::codec::put_u32(d, (l2 % PTRS_PER_BLOCK) * 4, blk as u32)
        })?;
        Ok(())
    }

    // ----- grouping-aware block fetch -------------------------------------

    /// On a miss for a grouped block, fetch the whole group's live runs as
    /// one scatter/gather request — the explicit-grouping read path.
    fn fetch_group_for(&self, blk: u64) -> FsResult<()> {
        if !self.cfg.group || self.cache.contains(blk) {
            return Ok(());
        }
        let runs = {
            let groups = self.lock_groups();
            match groups.group_of_block(&self.geo, blk) {
                Some(g) if g.live() >= self.cfg.group_read_min => g.live_runs(),
                _ => return Ok(()),
            }
        };
        self.obs.bump(Ctr::FsGroupFetches);
        self.obs.add(Ctr::FsGroupFetchBlocks, runs.iter().map(|&(_, n)| n as u64).sum());
        self.cache.read_group(&self.drv, &runs)
    }

    /// Read a block with logical binding, group-fetching on a miss.
    fn fetch_block(&self, blk: u64, ino: Ino, lbn: u64) -> FsResult<Vec<u8>> {
        self.fetch_group_for(blk)?;
        self.cache.read_block_bound(&self.drv, blk, ino, lbn)
    }

    /// Fetch the next `prefetch_blocks` mapped blocks of a sequentially
    /// read file as one scatter/gather request (blocks already resident
    /// are skipped by the cache).
    fn prefetch_ahead(&self, ino: Ino, inode: &mut Inode, from_lbn: u64) -> FsResult<()> {
        let max_lbn = inode.size.div_ceil(BLOCK_SIZE as u64);
        if from_lbn >= max_lbn {
            return Ok(());
        }
        // Only act at the read-ahead boundary: while the previously
        // prefetched window is still resident, issuing tiny tail fetches
        // would defeat the batching.
        if let Some(b) = self.bmap(ino, inode, from_lbn, None)? {
            if self.cache.contains(b) {
                return Ok(());
            }
        }
        let mut blocks: Vec<u64> = Vec::new();
        for lbn in from_lbn..(from_lbn + self.cfg.prefetch_blocks as u64).min(max_lbn) {
            match self.bmap(ino, inode, lbn, None)? {
                Some(b) if !self.cache.contains(b) => blocks.push(b),
                _ => {}
            }
        }
        if blocks.is_empty() {
            return Ok(());
        }
        blocks.sort_unstable();
        blocks.dedup();
        let mut runs: Vec<(u64, usize)> = Vec::new();
        for b in blocks {
            match runs.last_mut() {
                Some((start, len)) if *start + *len as u64 == b => *len += 1,
                _ => runs.push((b, 1)),
            }
        }
        self.cache.read_group(&self.drv, &runs)
    }


    // ----- degrouping / regrouping ----------------------------------------

    /// When a file outgrows the group size, move its grouped blocks to
    /// plain clustered storage: large files take the normal FFS path, as
    /// the paper prescribes ("placement of data for large files remains
    /// unchanged").
    fn degroup(&self, ino: Ino, inode: &mut Inode) -> FsResult<()> {
        self.obs().bump(Ctr::FsDegroupings);
        let near = match self.data_ctx(ino)? {
            AllocCtx::Plain { near } | AllocCtx::Grouped { near, .. } => near,
        };
        let nblocks = inode.size.div_ceil(BLOCK_SIZE as u64);
        let mut hint: Option<u64> = None;
        for lbn in 0..nblocks {
            let Some(old) = self.bmap(ino, inode, lbn, None)? else { continue };
            if self.lock_groups().group_of_block(&self.geo, old).is_none() {
                hint = Some(old);
                continue;
            }
            let new = self.alloc_plain(near, hint)?;
            hint = Some(new);
            // Copy through the cache.
            let contents = self.fetch_block(old, ino, lbn)?;
            self.cache.modify_block(&self.drv, new, false, false, |d| {
                d.copy_from_slice(&contents)
            })?;
            self.charge(self.cpu_model().copy_cost(BLOCK_SIZE));
            self.map_set(inode, lbn, new)?;
            self.cache.unbind_logical(ino, lbn);
            self.free_block_any(old);
            self.cache.bind_logical(&self.drv, new, ino, lbn);
        }
        Ok(())
    }

    /// Move a (small) file's blocks *into* its directory's groups — the
    /// application-directed grouping path behind
    /// [`FileSystem::group_hint`].
    fn regroup(&self, dir: Ino, ino: Ino, inode: &mut Inode) -> FsResult<()> {
        let dnode = self.read_inode(dir)?;
        let near = self.dir_home(dir, &dnode);
        let nblocks = inode.size.div_ceil(BLOCK_SIZE as u64);
        if nblocks >= self.cfg.group_blocks as u64 {
            return Ok(()); // too large to group
        }
        for lbn in 0..nblocks {
            let Some(old) = self.bmap(ino, inode, lbn, None)? else { continue };
            match self.lock_groups().group_of_block(&self.geo, old).copied() {
                Some(g) if g.owner == dir => continue,
                _ => {}
            }
            let Some(new) = self.alloc_grouped(dir, near)? else { break };
            let contents = self.fetch_block(old, ino, lbn)?;
            self.cache.modify_block(&self.drv, new, false, false, |d| {
                d.copy_from_slice(&contents)
            })?;
            self.charge(self.cpu_model().copy_cost(BLOCK_SIZE));
            self.map_set(inode, lbn, new)?;
            self.cache.unbind_logical(ino, lbn);
            self.free_block_any(old);
            self.cache.bind_logical(&self.drv, new, ino, lbn);
        }
        Ok(())
    }

    /// Free all blocks of an inode from `from_lbn` on (truncate/delete).
    fn free_blocks_from(&self, ino: Ino, inode: &mut Inode, from_lbn: u64) -> FsResult<()> {
        for l in from_lbn..NDIRECT as u64 {
            let slot = inode.direct[l as usize];
            if slot != NO_BLOCK {
                self.cache.unbind_logical(ino, l);
                self.free_block_any(slot as u64);
                inode.direct[l as usize] = NO_BLOCK;
                inode.blocks = inode.blocks.saturating_sub(1);
            }
        }
        if inode.indirect != NO_BLOCK {
            let kept =
                self.free_indirect(ino, inode.indirect as u64, NDIRECT as u64, from_lbn, &mut inode.blocks)?;
            if !kept {
                self.free_block_any(inode.indirect as u64);
                inode.indirect = NO_BLOCK;
                inode.blocks = inode.blocks.saturating_sub(1);
            }
        }
        if inode.dindirect != NO_BLOCK {
            let dind = inode.dindirect as u64;
            let ptrs: Vec<u32> = {
                let data = self.cache.read_block(&self.drv, dind)?;
                (0..PTRS_PER_BLOCK).map(|i| cffs_fslib::codec::get_u32(&data, i * 4)).collect()
            };
            let mut any_kept = false;
            for (outer, &mid) in ptrs.iter().enumerate() {
                if mid == NO_BLOCK {
                    continue;
                }
                let base = NDIRECT as u64 + PTRS_PER_BLOCK as u64 + (outer * PTRS_PER_BLOCK) as u64;
                let kept = self.free_indirect(ino, mid as u64, base, from_lbn, &mut inode.blocks)?;
                if kept {
                    any_kept = true;
                } else {
                    self.free_block_any(mid as u64);
                    inode.blocks = inode.blocks.saturating_sub(1);
                    self.cache.modify_block(&self.drv, dind, true, true, |d| {
                        cffs_fslib::codec::put_u32(d, outer * 4, NO_BLOCK)
                    })?;
                }
            }
            if !any_kept {
                self.free_block_any(dind);
                inode.dindirect = NO_BLOCK;
                inode.blocks = inode.blocks.saturating_sub(1);
            }
        }
        Ok(())
    }

    fn free_indirect(
        &self,
        ino: Ino,
        ind: u64,
        base: u64,
        from_lbn: u64,
        blocks: &mut u32,
    ) -> FsResult<bool> {
        let ptrs: Vec<u32> = {
            let data = self.cache.read_block(&self.drv, ind)?;
            (0..PTRS_PER_BLOCK).map(|i| cffs_fslib::codec::get_u32(&data, i * 4)).collect()
        };
        let mut kept = false;
        for (i, &p) in ptrs.iter().enumerate() {
            if p == NO_BLOCK {
                continue;
            }
            let lbn = base + i as u64;
            if lbn >= from_lbn {
                self.cache.unbind_logical(ino, lbn);
                self.free_block_any(p as u64);
                *blocks = blocks.saturating_sub(1);
                self.cache.modify_block(&self.drv, ind, true, true, |d| {
                    cffs_fslib::codec::put_u32(d, i * 4, NO_BLOCK)
                })?;
            } else {
                kept = true;
            }
        }
        Ok(kept)
    }

    // ----- directory helpers -------------------------------------------

    fn require_dir(&self, ino: Ino) -> FsResult<Inode> {
        let inode = self.read_inode(ino)?;
        if inode.kind != FileKind::Dir {
            return Err(FsError::NotDir);
        }
        Ok(inode)
    }

    /// The inode number an entry in block `blk` denotes.
    fn entry_ino(&self, blk: u64, e: &CEntry) -> Ino {
        match e.loc {
            EntryLoc::Embedded(_) => embedded_ino(blk, e.offset, e.gen),
            EntryLoc::External(slot) => external_ino(slot),
        }
    }

    /// Scan a directory for `name`. Returns `(block, lbn, entry)`.
    fn dir_find(
        &self,
        dirino: Ino,
        dinode: &mut Inode,
        name: &str,
    ) -> FsResult<Option<(u64, u64, CEntry)>> {
        let nblocks = dinode.size / BLOCK_SIZE as u64;
        for lbn in 0..nblocks {
            let blk = self
                .bmap(dirino, dinode, lbn, None)?
                .ok_or_else(|| FsError::Corrupt(format!("hole in directory {dirino}")))?;
            self.charge(self.cpu_model().scan_cost(16));
            let data = self.fetch_block(blk, dirino, lbn)?;
            if let Some(e) = dirent::find(&data, name)? {
                return Ok(Some((blk, lbn, e)));
            }
        }
        Ok(None)
    }

    /// Insert an entry, growing the directory if necessary. Returns
    /// `(block, entry_offset, grew)`. When `grew` is set, the caller must
    /// persist the directory inode *durably* after flushing the entry —
    /// the inode's new block pointer and size are part of the create's
    /// ordered update, or a crash would orphan the new block's entries.
    fn dir_insert(
        &self,
        dirino: Ino,
        dinode: &mut Inode,
        name: &str,
        kind: FileKind,
        payload: InsertPayload<'_>,
    ) -> FsResult<(u64, usize, bool)> {
        let need = match payload {
            InsertPayload::Embedded(_) => dirent::embedded_len(name.len()),
            InsertPayload::External(_) => dirent::external_len(name.len()),
        };
        let nblocks = dinode.size / BLOCK_SIZE as u64;
        for lbn in 0..nblocks {
            let blk = self
                .bmap(dirino, dinode, lbn, None)?
                .ok_or_else(|| FsError::Corrupt(format!("hole in directory {dirino}")))?;
            self.charge(self.cpu_model().scan_cost(16));
            let data = self.fetch_block(blk, dirino, lbn)?;
            if dirent::has_space_for(&data, need)? {
                let (blk, off) = self.dir_insert_into(dirino, lbn, blk, name, kind, payload)?;
                return Ok((blk, off, false));
            }
        }
        // Grow by one block — itself group-allocated when grouping is on,
        // so directory blocks co-locate with their files' data.
        let lbn = nblocks;
        let ctx = AllocCtx::Grouped { dir: dirino, near: self.dir_home(dirino, dinode) };
        let blk = self.bmap(dirino, dinode, lbn, Some(ctx))?.ok_or(FsError::NoSpace)?;
        dinode.size += BLOCK_SIZE as u64;
        self.cache
            .modify_block_bound(&self.drv, blk, dirino, lbn, false, dirent::init_block)?;
        let (blk, off) = self.dir_insert_into(dirino, lbn, blk, name, kind, payload)?;
        Ok((blk, off, true))
    }

    fn dir_insert_into(
        &self,
        dirino: Ino,
        lbn: u64,
        blk: u64,
        name: &str,
        kind: FileKind,
        payload: InsertPayload<'_>,
    ) -> FsResult<(u64, usize)> {
        let res = self
            .cache
            .modify_block_bound(&self.drv, blk, dirino, lbn, true, |d| match payload {
                InsertPayload::Embedded(inode) => {
                    dirent::insert_embedded(d, name, kind, inode).map(|o| o.map(|(e, _)| e))
                }
                InsertPayload::External(slot) => dirent::insert_external(d, name, slot, kind),
            })??;
        let off = res.ok_or(FsError::NoSpace)?;
        Ok((blk, off))
    }

    /// Flush the durability unit for a directory mutation at `(blk, off)`:
    /// one sector with embedded inodes, the whole block otherwise.
    fn dir_durable(&self, blk: u64, off: usize) -> FsResult<()> {
        if self.cfg.metadata_mode != MetadataMode::Synchronous {
            self.obs().bump(Ctr::FsDelayedMetaWrites);
            return Ok(());
        }
        self.obs().bump(Ctr::FsSyncMetaWrites);
        if self.cfg.embed {
            self.cache.flush_sector_sync(&self.drv, blk, off)
        } else {
            self.cache.flush_block_sync(&self.drv, blk)
        }
    }

    /// Durability for a *freshly grown* directory block: the whole block
    /// must reach the disk (its other chunks' free-record headers included),
    /// or a crash leaves garbage chunks around the one flushed sector.
    fn dir_durable_grown(&self, blk: u64, off: usize, grew: bool) -> FsResult<()> {
        if grew && self.cfg.metadata_mode == MetadataMode::Synchronous {
            self.obs().bump(Ctr::FsSyncMetaWrites);
            self.cache.flush_block_sync(&self.drv, blk)
        } else {
            self.dir_durable(blk, off)
        }
    }

    fn dir_is_empty(&self, dirino: Ino, dinode: &mut Inode) -> FsResult<bool> {
        let nblocks = dinode.size / BLOCK_SIZE as u64;
        for lbn in 0..nblocks {
            let blk = self
                .bmap(dirino, dinode, lbn, None)?
                .ok_or_else(|| FsError::Corrupt(format!("hole in directory {dirino}")))?;
            let data = self.fetch_block(blk, dirino, lbn)?;
            if !dirent::is_empty(&data)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Retire an inode number from all in-core indices.
    fn retire_ino(&self, ino: Ino) {
        self.cache.purge_ino(ino);
        if let Some(dc) = self.dcache() {
            // Positive entries resolving to the dead ino, and (for a
            // directory) any entries keyed under it.
            dc.purge_ino(ino);
            dc.purge_dir(ino);
        }
        let mut ns = self.lock_ns();
        ns.parent_of.remove(&ino);
        ns.last_read.remove(&ino);
    }

    /// A directory's inode number changed: transfer group ownership and fix
    /// the parent map.
    fn renumber_dir(&self, old: Ino, new: Ino) {
        // Dcache keys embed the parent ino; entries under the old number
        // can never be probed again (the handle is dead), so drop them.
        if let Some(dc) = self.dcache() {
            dc.purge_dir(old);
        }
        self.lock_groups().reown(
            old,
            new,
            |c, i, d| {
                let mut s = self.lock_cg(c);
                s.hdr.groups[i as usize] = Some(*d);
                s.dirty = true;
            },
            &self.geo,
        );
        let mut ns = self.lock_ns();
        for v in ns.parent_of.values_mut() {
            if *v == old {
                *v = new;
            }
        }
    }

    /// Drop one link from file `ino` (its name is already gone), freeing
    /// storage at zero links. `entry` describes the removed name.
    fn drop_link_of_removed(&self, ino: Ino, was_embedded: bool, mut inode: Inode) -> FsResult<()> {
        if was_embedded {
            // Embedded inodes always have exactly one link: removing the
            // entry removed the inode itself. Free the data.
            self.free_blocks_from(ino, &mut inode, 0)?;
            self.retire_ino(ino);
            return Ok(());
        }
        let InoRef::External(slot) = decode_ino(ino) else { unreachable!("external entry") };
        inode.nlink -= 1;
        if inode.nlink == 0 {
            self.free_blocks_from(ino, &mut inode, 0)?;
            self.free_external_slot(slot, true)?;
            self.retire_ino(ino);
        } else {
            self.write_inode(ino, &inode, true)?;
        }
        Ok(())
    }
}

/// What a new directory entry carries.
#[derive(Clone, Copy)]
enum InsertPayload<'a> {
    /// Embed this inode image.
    Embedded(&'a Inode),
    /// Reference this external slot.
    External(u32),
}

/// The public operations, all `&self`: the concurrent-safe surface.
/// [`FileSystem`] (a `&mut self` trait, kept for the single-threaded
/// workload machinery) delegates here; inherent methods win method
/// resolution, so `fs.read(...)` on a shared handle hits these
/// directly.
impl Cffs {
    /// Label for reports — see [`FileSystem::label`].
    pub fn label(&self) -> &str {
        &self.cfg.label
    }

    /// The root inode — see [`FileSystem::root`].
    pub fn root(&self) -> Ino {
        INO_ROOT
    }

    /// Resolve `name` in a directory — see [`FileSystem::lookup`].
    pub fn lookup(&self, dirino: Ino, name: &str) -> FsResult<Ino> {
        let _op = self.op_lock(dirino);
        let _span = self.op_span(OpKind::Lookup);
        self.charge(self.cpu_model().syscall);
        check_name(name)?;
        // Namespace-cache fast path: a hit (positive or negative) skips
        // the inode read and the whole dirent scan. Entries are only
        // ever created by operations that held this directory's stripe,
        // and every namespace mutation invalidates precisely, so a hit
        // needs no revalidation. A probe costs one dirent-compare.
        if let Some(dc) = self.dcache() {
            match dc.lookup(dirino, name) {
                DcacheAnswer::Pos(ino) => {
                    self.charge(self.cpu_model().scan_cost(1));
                    self.lock_ns().note_parent(ino, dirino);
                    return Ok(ino);
                }
                DcacheAnswer::Neg => {
                    self.charge(self.cpu_model().scan_cost(1));
                    return Err(FsError::NotFound);
                }
                DcacheAnswer::Miss => {}
            }
        }
        let mut dinode = self.require_dir(dirino)?;
        match self.dir_find(dirino, &mut dinode, name)? {
            Some((blk, _, e)) => {
                let ino = self.entry_ino(blk, &e);
                if let Some(dc) = self.dcache() {
                    dc.insert_pos(dirino, name, ino);
                }
                self.lock_ns().note_parent(ino, dirino);
                Ok(ino)
            }
            None => {
                if let Some(dc) = self.dcache() {
                    dc.insert_neg(dirino, name);
                }
                Err(FsError::NotFound)
            }
        }
    }

    /// Attributes of an inode — see [`FileSystem::getattr`].
    pub fn getattr(&self, ino: Ino) -> FsResult<Attr> {
        let _op = self.op_lock(ino);
        let _span = self.op_span(OpKind::Getattr);
        self.charge(self.cpu_model().syscall);
        let inode = self.read_inode(ino)?;
        Ok(Attr {
            ino,
            kind: inode.kind,
            size: inode.size,
            nlink: inode.nlink as u32,
            blocks: inode.blocks as u64,
        })
    }

    /// Create a file — see [`FileSystem::create`].
    pub fn create(&self, dirino: Ino, name: &str) -> FsResult<Ino> {
        let _op = self.op_lock(dirino);
        let _span = self.op_span(OpKind::Create);
        self.charge(self.cpu_model().syscall);
        check_name(name)?;
        let mut dinode = self.require_dir(dirino)?;
        // Create-if-absent fast path: a cached negative entry proves the
        // name absent, so the existence scan can be skipped outright; a
        // cached positive entry is an immediate `Exists`.
        match self.dcache().map(|dc| dc.lookup(dirino, name)) {
            Some(DcacheAnswer::Pos(_)) => return Err(FsError::Exists),
            Some(DcacheAnswer::Neg) => {}
            _ => {
                if self.dir_find(dirino, &mut dinode, name)?.is_some() {
                    return Err(FsError::Exists);
                }
            }
        }
        let mut inode = Inode::new(FileKind::File);
        let ino = if self.cfg.embed {
            inode.generation = self.next_gen() as u32;
            // One entry carries name + inode; one sector write makes both
            // durable atomically.
            let (blk, off, grew) =
                self.dir_insert(dirino, &mut dinode, name, FileKind::File, InsertPayload::Embedded(&inode))?;
            self.dir_durable_grown(blk, off, grew)?;
            self.write_inode(dirino, &dinode, grew)?;
            embedded_ino(blk, off, (inode.generation & GEN_MASK as u32) as u16)
        } else {
            // Conventional ordering: inode first, then the name.
            let slot = self.alloc_external_slot()?;
            let ino = external_ino(slot);
            self.write_inode(ino, &inode, true)?;
            let (blk, off, grew) =
                self.dir_insert(dirino, &mut dinode, name, FileKind::File, InsertPayload::External(slot))?;
            self.dir_durable_grown(blk, off, grew)?;
            self.write_inode(dirino, &dinode, grew)?;
            ino
        };
        if let Some(dc) = self.dcache() {
            dc.insert_pos(dirino, name, ino);
        }
        self.lock_ns().note_parent(ino, dirino);
        Ok(ino)
    }

    /// Create a directory — see [`FileSystem::mkdir`].
    pub fn mkdir(&self, dirino: Ino, name: &str) -> FsResult<Ino> {
        let _op = self.op_lock(dirino);
        let _span = self.op_span(OpKind::Mkdir);
        self.charge(self.cpu_model().syscall);
        check_name(name)?;
        let mut dinode = self.require_dir(dirino)?;
        match self.dcache().map(|dc| dc.lookup(dirino, name)) {
            Some(DcacheAnswer::Pos(_)) => return Err(FsError::Exists),
            Some(DcacheAnswer::Neg) => {}
            _ => {
                if self.dir_find(dirino, &mut dinode, name)?.is_some() {
                    return Err(FsError::Exists);
                }
            }
        }
        let mut inode = Inode::new(FileKind::Dir);
        inode.nlink = 2;
        // FFS directory spreading: assign the new directory a home
        // cylinder group and remember it in the inode.
        inode.flags = self.pick_dir_cg() + 1;
        let ino = if self.cfg.embed {
            inode.generation = self.next_gen() as u32;
            let (blk, off, grew) =
                self.dir_insert(dirino, &mut dinode, name, FileKind::Dir, InsertPayload::Embedded(&inode))?;
            dinode.nlink += 1;
            self.dir_durable_grown(blk, off, grew)?;
            self.write_inode(dirino, &dinode, grew)?;
            embedded_ino(blk, off, (inode.generation & GEN_MASK as u32) as u16)
        } else {
            let slot = self.alloc_external_slot()?;
            let ino = external_ino(slot);
            self.write_inode(ino, &inode, true)?;
            let (blk, off, grew) =
                self.dir_insert(dirino, &mut dinode, name, FileKind::Dir, InsertPayload::External(slot))?;
            dinode.nlink += 1;
            self.dir_durable_grown(blk, off, grew)?;
            self.write_inode(dirino, &dinode, grew)?;
            ino
        };
        if let Some(dc) = self.dcache() {
            dc.insert_pos(dirino, name, ino);
        }
        self.lock_ns().note_parent(ino, dirino);
        Ok(ino)
    }

    /// Remove a file name — see [`FileSystem::unlink`]. Serializes on
    /// the *directory's* stripe only: racing writers of the victim file
    /// synchronize on the shared structures underneath.
    pub fn unlink(&self, dirino: Ino, name: &str) -> FsResult<()> {
        let _op = self.op_lock(dirino);
        let _span = self.op_span(OpKind::Unlink);
        self.charge(self.cpu_model().syscall);
        check_name(name)?;
        let mut dinode = self.require_dir(dirino)?;
        let Some((blk, lbn, entry)) = self.dir_find(dirino, &mut dinode, name)? else {
            return Err(FsError::NotFound);
        };
        if entry.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        let ino = self.entry_ino(blk, &entry);
        let inode = self.read_inode(ino)?;
        let was_embedded = matches!(entry.loc, EntryLoc::Embedded(_));
        let off = entry.offset;
        self.cache
            .modify_block_bound(&self.drv, blk, dirino, lbn, true, |d| dirent::remove(d, name))??;
        // The name is now provably absent: cache the NotFound.
        if let Some(dc) = self.dcache() {
            dc.insert_neg(dirino, name);
        }
        // Name (and, embedded, the inode with it) goes first.
        self.dir_durable(blk, off)?;
        self.drop_link_of_removed(ino, was_embedded, inode)
    }

    /// Remove an empty directory — see [`FileSystem::rmdir`].
    pub fn rmdir(&self, dirino: Ino, name: &str) -> FsResult<()> {
        let _op = self.op_lock(dirino);
        let _span = self.op_span(OpKind::Rmdir);
        self.charge(self.cpu_model().syscall);
        check_name(name)?;
        let mut dinode = self.require_dir(dirino)?;
        let Some((blk, lbn, entry)) = self.dir_find(dirino, &mut dinode, name)? else {
            return Err(FsError::NotFound);
        };
        if entry.kind != FileKind::Dir {
            return Err(FsError::NotDir);
        }
        let child = self.entry_ino(blk, &entry);
        let mut cinode = self.require_dir(child)?;
        if !self.dir_is_empty(child, &mut cinode)? {
            return Err(FsError::DirNotEmpty);
        }
        let was_embedded = matches!(entry.loc, EntryLoc::Embedded(_));
        let off = entry.offset;
        self.cache
            .modify_block_bound(&self.drv, blk, dirino, lbn, true, |d| dirent::remove(d, name))??;
        if let Some(dc) = self.dcache() {
            dc.insert_neg(dirino, name);
        }
        self.dir_durable(blk, off)?;
        self.free_blocks_from(child, &mut cinode, 0)?;
        if !was_embedded {
            let InoRef::External(slot) = decode_ino(child) else { unreachable!() };
            self.free_external_slot(slot, true)?;
        }
        self.retire_ino(child);
        dinode.nlink = dinode.nlink.saturating_sub(1);
        self.write_inode(dirino, &dinode, false)?;
        Ok(())
    }

    /// Add a hard link — see [`FileSystem::link`].
    pub fn link(&self, target: Ino, dirino: Ino, name: &str) -> FsResult<Ino> {
        let _op = self.op_lock2(target, dirino);
        let _span = self.op_span(OpKind::Link);
        self.charge(self.cpu_model().syscall);
        check_name(name)?;
        let mut tinode = self.read_inode(target)?;
        if tinode.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        if tinode.nlink == u16::MAX {
            return Err(FsError::TooManyLinks);
        }
        let mut dinode = self.require_dir(dirino)?;
        if self.dir_find(dirino, &mut dinode, name)?.is_some() {
            return Err(FsError::Exists);
        }
        // An embedded target must be externalized first: several names will
        // reference one inode, so it needs a location-independent home.
        let new_target = match decode_ino(target) {
            InoRef::Embedded { blk, off, .. } => {
                let slot = self.alloc_external_slot()?;
                let ino = external_ino(slot);
                self.write_inode(ino, &tinode, true)?;
                self.cache.modify_block(&self.drv, blk, true, true, |d| {
                    dirent::convert_to_external(d, off, slot)
                })?;
                self.dir_durable(blk, off)?;
                self.cache.purge_ino(target);
                // Externalizing renumbered the target: entries resolving
                // to the old embedded ino are dead.
                if let Some(dc) = self.dcache() {
                    dc.purge_ino(target);
                }
                {
                    let mut ns = self.lock_ns();
                    if let Some(p) = ns.parent_of.remove(&target) {
                        ns.note_parent(ino, p);
                    }
                }
                ino
            }
            InoRef::External(_) => target,
        };
        tinode.nlink += 1;
        self.write_inode(new_target, &tinode, true)?;
        let InoRef::External(slot) = decode_ino(new_target) else { unreachable!() };
        let (blk, off, grew) =
            self.dir_insert(dirino, &mut dinode, name, FileKind::File, InsertPayload::External(slot))?;
        self.dir_durable_grown(blk, off, grew)?;
        self.write_inode(dirino, &dinode, grew)?;
        // The new name exists now (this also kills any negative entry).
        if let Some(dc) = self.dcache() {
            dc.insert_pos(dirino, name, new_target);
        }
        Ok(new_target)
    }

    /// Rename/move an entry — see [`FileSystem::rename`]. Takes both
    /// directory stripes in ascending order.
    pub fn rename(&self, odir: Ino, oname: &str, ndir: Ino, nname: &str) -> FsResult<Ino> {
        let _op = self.op_lock2(odir, ndir);
        let _span = self.op_span(OpKind::Rename);
        self.charge(self.cpu_model().syscall);
        check_name(oname)?;
        check_name(nname)?;
        let mut oinode = self.require_dir(odir)?;
        let Some((oblk, _, oentry)) = self.dir_find(odir, &mut oinode, oname)? else {
            return Err(FsError::NotFound);
        };
        let old_ino = self.entry_ino(oblk, &oentry);
        if odir == ndir && oname == nname {
            return Ok(old_ino);
        }
        let mut ninode = if ndir == odir { oinode.clone() } else { self.require_dir(ndir)? };
        // Clear an existing destination first.
        if let Some((dblk, dlbn, dentry)) = self.dir_find(ndir, &mut ninode, nname)? {
            let dst_ino = self.entry_ino(dblk, &dentry);
            if dst_ino == old_ino {
                // Two names for one (external) inode.
                if ndir == odir {
                    oinode = ninode;
                }
                let inode = self.read_inode(old_ino)?;
                let (rblk, rlbn, rentry) = self
                    .dir_find(odir, &mut oinode, oname)?
                    .ok_or(FsError::NotFound)?;
                let off = rentry.offset;
                self.cache.modify_block_bound(&self.drv, rblk, odir, rlbn, true, |d| {
                    dirent::remove(d, oname)
                })??;
                if let Some(dc) = self.dcache() {
                    dc.insert_neg(odir, oname);
                }
                self.write_inode(odir, &oinode, false)?;
                self.dir_durable(rblk, off)?;
                self.drop_link_of_removed(old_ino, false, inode)?;
                return Ok(old_ino);
            }
            match dentry.kind {
                FileKind::Dir => {
                    if oentry.kind != FileKind::Dir {
                        return Err(FsError::IsDir);
                    }
                    let mut dnode = self.require_dir(dst_ino)?;
                    if !self.dir_is_empty(dst_ino, &mut dnode)? {
                        return Err(FsError::DirNotEmpty);
                    }
                    let was_embedded = matches!(dentry.loc, EntryLoc::Embedded(_));
                    let off = dentry.offset;
                    self.cache.modify_block_bound(&self.drv, dblk, ndir, dlbn, true, |d| {
                        dirent::remove(d, nname)
                    })??;
                    if let Some(dc) = self.dcache() {
                        dc.invalidate(ndir, nname);
                    }
                    self.dir_durable(dblk, off)?;
                    self.free_blocks_from(dst_ino, &mut dnode, 0)?;
                    if !was_embedded {
                        let InoRef::External(slot) = decode_ino(dst_ino) else { unreachable!() };
                        self.free_external_slot(slot, true)?;
                    }
                    self.retire_ino(dst_ino);
                    ninode.nlink = ninode.nlink.saturating_sub(1);
                }
                FileKind::File => {
                    if oentry.kind == FileKind::Dir {
                        return Err(FsError::NotDir);
                    }
                    let inode = self.read_inode(dst_ino)?;
                    let was_embedded = matches!(dentry.loc, EntryLoc::Embedded(_));
                    let off = dentry.offset;
                    self.cache.modify_block_bound(&self.drv, dblk, ndir, dlbn, true, |d| {
                        dirent::remove(d, nname)
                    })??;
                    if let Some(dc) = self.dcache() {
                        dc.invalidate(ndir, nname);
                    }
                    self.dir_durable(dblk, off)?;
                    self.drop_link_of_removed(dst_ino, was_embedded, inode)?;
                }
            }
        }
        // Move the entry: insert the new name first (crash ⇒ extra name,
        // never a lost file), then remove the old.
        let moving = self.read_inode(old_ino)?;
        let new_ino = match oentry.loc {
            EntryLoc::Embedded(_) => {
                let (blk, off, grew) = self.dir_insert(
                    ndir,
                    &mut ninode,
                    nname,
                    oentry.kind,
                    InsertPayload::Embedded(&moving),
                )?;
                self.dir_durable_grown(blk, off, grew)?;
                self.write_inode(ndir, &ninode, grew)?;
                embedded_ino(blk, off, (moving.generation & GEN_MASK as u32) as u16)
            }
            EntryLoc::External(slot) => {
                let (blk, off, grew) = self.dir_insert(
                    ndir,
                    &mut ninode,
                    nname,
                    oentry.kind,
                    InsertPayload::External(slot),
                )?;
                self.dir_durable_grown(blk, off, grew)?;
                self.write_inode(ndir, &ninode, grew)?;
                old_ino
            }
        };
        if ndir == odir {
            oinode = self.require_dir(odir)?;
        }
        let (rblk, rlbn, rentry) =
            self.dir_find(odir, &mut oinode, oname)?.ok_or(FsError::NotFound)?;
        let roff = rentry.offset;
        self.cache
            .modify_block_bound(&self.drv, rblk, odir, rlbn, true, |d| dirent::remove(d, oname))??;
        // The old name is gone and the new one resolves to `new_ino`
        // (replacing any stale positive or negative entries for either).
        if let Some(dc) = self.dcache() {
            dc.insert_neg(odir, oname);
            dc.insert_pos(ndir, nname, new_ino);
        }
        self.write_inode(odir, &oinode, false)?;
        self.dir_durable(rblk, roff)?;
        // Bookkeeping for the renumbered inode.
        if new_ino != old_ino {
            self.cache.purge_ino(old_ino);
            if let Some(dc) = self.dcache() {
                dc.purge_ino(old_ino);
            }
            self.lock_ns().parent_of.remove(&old_ino);
            if oentry.kind == FileKind::Dir {
                self.renumber_dir(old_ino, new_ino);
            }
        }
        self.lock_ns().note_parent(new_ino, ndir);
        if oentry.kind == FileKind::Dir && odir != ndir {
            let mut o = self.require_dir(odir)?;
            o.nlink = o.nlink.saturating_sub(1);
            self.write_inode(odir, &o, false)?;
            let mut n = self.require_dir(ndir)?;
            n.nlink += 1;
            self.write_inode(ndir, &n, false)?;
        }
        Ok(new_ino)
    }

    /// Read file data — see [`FileSystem::read`].
    pub fn read(&self, ino: Ino, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let _op = self.op_lock(ino);
        let _span = self.op_span(OpKind::Read);
        self.charge(self.cpu_model().syscall);
        let mut inode = self.read_inode(ino)?;
        if inode.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        if off >= inode.size {
            return Ok(0);
        }
        let want = buf.len().min((inode.size - off) as usize);
        let mut done = 0usize;
        while done < want {
            let pos = off + done as u64;
            let lbn = pos / BLOCK_SIZE as u64;
            let in_blk = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_blk).min(want - done);
            let blk = match self.cache.lookup_logical(ino, lbn) {
                Some(b) => Some(b),
                None => self.bmap(ino, &mut inode, lbn, None)?,
            };
            match blk {
                Some(b) => {
                    let data = self.fetch_block(b, ino, lbn)?;
                    buf[done..done + n].copy_from_slice(&data[in_blk..in_blk + n]);
                }
                None => buf[done..done + n].fill(0),
            }
            self.charge(self.cpu_model().copy_cost(n));
            done += n;
        }
        // Sequential-read detection + read-ahead (prefetching extension).
        let first_lbn = off / BLOCK_SIZE as u64;
        let last_lbn = (off + done.max(1) as u64 - 1) / BLOCK_SIZE as u64;
        if self.cfg.prefetch_blocks > 0 {
            let sequential =
                first_lbn == 0
                    || self.lock_ns().last_read.get(&ino).is_some_and(|&l| l + 1 >= first_lbn);
            if sequential {
                self.prefetch_ahead(ino, &mut inode, last_lbn + 1)?;
            }
        }
        self.lock_ns().last_read.insert(ino, last_lbn);
        Ok(done)
    }

    /// Write file data — see [`FileSystem::write`].
    pub fn write(&self, ino: Ino, off: u64, data: &[u8]) -> FsResult<usize> {
        let _op = self.op_lock(ino);
        let _span = self.op_span(OpKind::Write);
        self.charge(self.cpu_model().syscall);
        if data.is_empty() {
            return Ok(0);
        }
        if off + data.len() as u64 > MAX_FILE_SIZE {
            return Err(FsError::FileTooBig);
        }
        let mut inode = self.read_inode(ino)?;
        if inode.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        let mut ctx = self.data_ctx(ino)?;
        // Crossing the group-size threshold? Move the file out of its
        // groups before it grows further, and stop group-allocating for
        // it — large files take the plain clustered path.
        let final_blocks = (off + data.len() as u64).div_ceil(BLOCK_SIZE as u64);
        if self.cfg.group && final_blocks > self.cfg.group_blocks as u64 {
            let data_blocks = inode.size.div_ceil(BLOCK_SIZE as u64);
            if data_blocks <= self.cfg.group_blocks as u64 && inode.blocks > 0 {
                self.degroup(ino, &mut inode)?;
            }
            if let AllocCtx::Grouped { near, .. } = ctx {
                ctx = AllocCtx::Plain { near };
            }
        }
        let mut done = 0usize;
        while done < data.len() {
            let pos = off + done as u64;
            let lbn = pos / BLOCK_SIZE as u64;
            let in_blk = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_blk).min(data.len() - done);
            let had_block = self.cache.lookup_logical(ino, lbn).is_some()
                || self.bmap(ino, &mut inode, lbn, None)?.is_some();
            let blk = self.bmap(ino, &mut inode, lbn, Some(ctx))?.ok_or(FsError::NoSpace)?;
            let read_first = had_block && n < BLOCK_SIZE;
            if read_first {
                // A partial overwrite of a grouped block fetches the whole
                // group, exactly like the read path.
                self.fetch_group_for(blk)?;
            }
            let src = &data[done..done + n];
            self.cache
                .modify_block_bound(&self.drv, blk, ino, lbn, read_first, |d| {
                    if !read_first && n < BLOCK_SIZE {
                        d.fill(0);
                    }
                    d[in_blk..in_blk + n].copy_from_slice(src);
                })?;
            self.charge(self.cpu_model().copy_cost(n));
            done += n;
        }
        inode.size = inode.size.max(off + done as u64);
        self.write_inode(ino, &inode, false)?;
        Ok(done)
    }

    /// Truncate/extend a file — see [`FileSystem::truncate`].
    pub fn truncate(&self, ino: Ino, size: u64) -> FsResult<()> {
        let _op = self.op_lock(ino);
        let _span = self.op_span(OpKind::Truncate);
        self.charge(self.cpu_model().syscall);
        if size > MAX_FILE_SIZE {
            return Err(FsError::FileTooBig);
        }
        let mut inode = self.read_inode(ino)?;
        if inode.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        if size < inode.size {
            let keep = size.div_ceil(BLOCK_SIZE as u64);
            self.free_blocks_from(ino, &mut inode, keep)?;
            if !size.is_multiple_of(BLOCK_SIZE as u64) {
                let lbn = size / BLOCK_SIZE as u64;
                if let Some(blk) = self.bmap(ino, &mut inode, lbn, None)? {
                    let cut = (size % BLOCK_SIZE as u64) as usize;
                    self.cache
                        .modify_block_bound(&self.drv, blk, ino, lbn, true, |d| d[cut..].fill(0))?;
                }
            }
        }
        inode.size = size;
        self.write_inode(ino, &inode, false)?;
        Ok(())
    }

    /// List a directory — see [`FileSystem::readdir`].
    pub fn readdir(&self, dirino: Ino) -> FsResult<Vec<DirEntry>> {
        let _op = self.op_lock(dirino);
        let _span = self.op_span(OpKind::Readdir);
        self.charge(self.cpu_model().syscall);
        let mut dinode = self.require_dir(dirino)?;
        let nblocks = dinode.size / BLOCK_SIZE as u64;
        let mut out = Vec::new();
        for lbn in 0..nblocks {
            let blk = self
                .bmap(dirino, &mut dinode, lbn, None)?
                .ok_or_else(|| FsError::Corrupt(format!("hole in directory {dirino}")))?;
            let entries = {
                let data = self.fetch_block(blk, dirino, lbn)?;
                dirent::list(&data)?
            };
            self.charge(self.cpu_model().scan_cost(entries.len()));
            for e in entries {
                let ino = self.entry_ino(blk, &e);
                // A listing proves every mapping it returns: warm the
                // namespace cache with the whole directory.
                if let Some(dc) = self.dcache() {
                    dc.insert_pos(dirino, &e.name, ino);
                }
                self.lock_ns().note_parent(ino, dirino);
                out.push(DirEntry { name: e.name, ino, kind: e.kind });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    /// Flush dirty CG headers, the superblock, and the cache — see
    /// [`FileSystem::sync`].
    pub fn sync(&self) -> FsResult<()> {
        let _span = self.op_span(OpKind::Sync);
        self.charge(self.cpu_model().syscall);
        for cg in 0..self.geo.cg_count {
            let img = {
                let mut s = self.lock_cg(cg);
                if s.dirty {
                    let mut img = vec![0u8; BLOCK_SIZE];
                    s.hdr.write_to(&mut img);
                    s.dirty = false;
                    Some(img)
                } else {
                    None
                }
            };
            if let Some(img) = img {
                self.cache.modify_block(&self.drv, self.geo.cg_header_block(cg), true, false, |d| {
                    d.copy_from_slice(&img)
                })?;
            }
        }
        let sb = self.superblock();
        let mut sb_img = vec![0u8; BLOCK_SIZE];
        sb.write_to(&mut sb_img);
        self.cache
            .modify_block(&self.drv, SB_BLOCK, true, false, |d| d.copy_from_slice(&sb_img))?;
        self.cache.sync(&self.drv)
    }

    /// Space accounting — see [`FileSystem::statfs`].
    pub fn statfs(&self) -> FsResult<StatFs> {
        let _span = self.op_span(OpKind::Statfs);
        Ok(StatFs {
            block_size: BLOCK_SIZE as u32,
            total_blocks: self.geo.total_blocks,
            free_blocks: (0..self.geo.cg_count)
                .map(|cg| self.lock_cg(cg).hdr.block_bitmap.free() as u64)
                .sum(),
            group_slack_blocks: self.lock_groups().total_slack(),
            // Inodes are dynamic: no static table, no preallocation limit.
            total_inodes: u64::MAX,
            free_inodes: u64::MAX,
        })
    }

    /// This thread's simulated clock — see [`FileSystem::now`].
    pub fn now(&self) -> SimTime {
        self.drv.now()
    }

    /// Stack-wide I/O counters — see [`FileSystem::io_stats`].
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            disk: self.drv.disk_stats(),
            driver: self.drv.stats(),
            cache: self.cache.stats(),
        }
    }

    /// Reset I/O counters — see [`FileSystem::reset_io_stats`].
    pub fn reset_io_stats(&self) {
        self.drv.reset_stats();
        self.cache.reset_stats();
    }

    /// Sync then drop clean cache state — see [`FileSystem::drop_caches`].
    pub fn drop_caches(&self) -> FsResult<()> {
        let _span = self.op_span(OpKind::DropCaches);
        self.sync()?;
        self.cache.drop_all(&self.drv)?;
        if let Some(dc) = self.dcache() {
            // Cold boundary: record the epoch's per-shard hit rates
            // into `dcache_hit_pct` and start fresh.
            dc.clear();
        }
        self.drv.with_disk_mut(|d| d.flush_onboard_cache());
        Ok(())
    }

    /// Application-directed grouping — see [`FileSystem::group_hint`].
    pub fn group_hint(&self, dirino: Ino, names: &[&str]) -> FsResult<()> {
        let _op = self.op_lock(dirino);
        let _span = self.op_span(OpKind::GroupHint);
        if !self.cfg.group {
            return Ok(());
        }
        self.charge(self.cpu_model().syscall);
        let mut dinode = self.require_dir(dirino)?;
        for name in names {
            let Some((blk, _, e)) = self.dir_find(dirino, &mut dinode, name)? else {
                return Err(FsError::NotFound);
            };
            if e.kind != FileKind::File {
                continue;
            }
            let ino = self.entry_ino(blk, &e);
            let mut inode = self.read_inode(ino)?;
            self.regroup(dirino, ino, &mut inode)?;
            self.write_inode(ino, &inode, false)?;
        }
        Ok(())
    }

    /// The CPU cost model — see [`FileSystem::cpu_model`].
    pub fn cpu_model(&self) -> CpuModel {
        self.cfg.cpu
    }
}

impl FileSystem for Cffs {
    fn label(&self) -> &str {
        Cffs::label(self)
    }
    fn root(&self) -> Ino {
        Cffs::root(self)
    }
    fn lookup(&mut self, dirino: Ino, name: &str) -> FsResult<Ino> {
        Cffs::lookup(self, dirino, name)
    }
    fn getattr(&mut self, ino: Ino) -> FsResult<Attr> {
        Cffs::getattr(self, ino)
    }
    fn create(&mut self, dirino: Ino, name: &str) -> FsResult<Ino> {
        Cffs::create(self, dirino, name)
    }
    fn mkdir(&mut self, dirino: Ino, name: &str) -> FsResult<Ino> {
        Cffs::mkdir(self, dirino, name)
    }
    fn unlink(&mut self, dirino: Ino, name: &str) -> FsResult<()> {
        Cffs::unlink(self, dirino, name)
    }
    fn rmdir(&mut self, dirino: Ino, name: &str) -> FsResult<()> {
        Cffs::rmdir(self, dirino, name)
    }
    fn link(&mut self, target: Ino, dirino: Ino, name: &str) -> FsResult<Ino> {
        Cffs::link(self, target, dirino, name)
    }
    fn rename(&mut self, odir: Ino, oname: &str, ndir: Ino, nname: &str) -> FsResult<Ino> {
        Cffs::rename(self, odir, oname, ndir, nname)
    }
    fn read(&mut self, ino: Ino, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        Cffs::read(self, ino, off, buf)
    }
    fn write(&mut self, ino: Ino, off: u64, data: &[u8]) -> FsResult<usize> {
        Cffs::write(self, ino, off, data)
    }
    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        Cffs::truncate(self, ino, size)
    }
    fn readdir(&mut self, dirino: Ino) -> FsResult<Vec<DirEntry>> {
        Cffs::readdir(self, dirino)
    }
    fn sync(&mut self) -> FsResult<()> {
        Cffs::sync(self)
    }
    fn statfs(&mut self) -> FsResult<StatFs> {
        Cffs::statfs(self)
    }
    fn now(&self) -> SimTime {
        Cffs::now(self)
    }
    fn io_stats(&self) -> IoStats {
        Cffs::io_stats(self)
    }
    fn reset_io_stats(&mut self) {
        Cffs::reset_io_stats(self)
    }
    fn drop_caches(&mut self) -> FsResult<()> {
        Cffs::drop_caches(self)
    }
    fn group_hint(&mut self, dirino: Ino, names: &[&str]) -> FsResult<()> {
        Cffs::group_hint(self, dirino, names)
    }
    fn cpu_model(&self) -> CpuModel {
        Cffs::cpu_model(self)
    }
    fn obs(&self) -> Option<Arc<Obs>> {
        Some(Cffs::obs(self))
    }
}

impl cffs_fslib::ConcurrentFs for Cffs {
    fn label(&self) -> &str {
        Cffs::label(self)
    }
    fn root(&self) -> Ino {
        Cffs::root(self)
    }
    fn lookup(&self, dirino: Ino, name: &str) -> FsResult<Ino> {
        Cffs::lookup(self, dirino, name)
    }
    fn getattr(&self, ino: Ino) -> FsResult<Attr> {
        Cffs::getattr(self, ino)
    }
    fn create(&self, dirino: Ino, name: &str) -> FsResult<Ino> {
        Cffs::create(self, dirino, name)
    }
    fn mkdir(&self, dirino: Ino, name: &str) -> FsResult<Ino> {
        Cffs::mkdir(self, dirino, name)
    }
    fn unlink(&self, dirino: Ino, name: &str) -> FsResult<()> {
        Cffs::unlink(self, dirino, name)
    }
    fn read(&self, ino: Ino, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        Cffs::read(self, ino, off, buf)
    }
    fn write(&self, ino: Ino, off: u64, data: &[u8]) -> FsResult<usize> {
        Cffs::write(self, ino, off, data)
    }
    fn readdir(&self, dirino: Ino) -> FsResult<Vec<DirEntry>> {
        Cffs::readdir(self, dirino)
    }
    fn sync(&self) -> FsResult<()> {
        Cffs::sync(self)
    }
    fn now(&self) -> SimTime {
        Cffs::now(self)
    }
    fn obs(&self) -> Option<Arc<Obs>> {
        Some(Cffs::obs(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mkfs::{mkfs, MkfsParams};
    use cffs_disksim::models;
    use cffs_fslib::path;

    fn fresh(cfg: CffsConfig) -> Cffs {
        mkfs(Disk::new(models::tiny_test_disk()), MkfsParams::tiny(), cfg).expect("mkfs")
    }

    #[test]
    fn sparse_file_reads_zero_in_holes() {
        let fs = fresh(CffsConfig::cffs());
        let f = fs.create(fs.root(), "sparse").unwrap();
        // Write one byte far out; everything before is a hole.
        fs.write(f, 1_000_000, b"!").unwrap();
        assert_eq!(fs.getattr(f).unwrap().size, 1_000_001);
        let mut buf = vec![0xFFu8; 4096];
        assert_eq!(fs.read(f, 500_000, &mut buf).unwrap(), 4096);
        assert!(buf.iter().all(|&b| b == 0));
        let mut one = [0u8; 1];
        fs.read(f, 1_000_000, &mut one).unwrap();
        assert_eq!(&one, b"!");
        // Holes consume no blocks beyond what was touched.
        assert!(fs.getattr(f).unwrap().blocks < 5);
    }

    #[test]
    fn double_indirect_mapping_works() {
        let fs = fresh(CffsConfig::cffs());
        let f = fs.create(fs.root(), "deep").unwrap();
        // One block far past the single-indirect range (12 + 1024 blocks).
        let off = (12 + 1024 + 5) * BLOCK_SIZE as u64;
        fs.write(f, off, b"deep-data").unwrap();
        fs.sync().unwrap();
        let mut buf = [0u8; 9];
        assert_eq!(fs.read(f, off, &mut buf).unwrap(), 9);
        assert_eq!(&buf, b"deep-data");
        // Truncating to zero releases everything, double-indirect included.
        let st_before = fs.statfs().unwrap();
        fs.truncate(f, 0).unwrap();
        let st_after = fs.statfs().unwrap();
        assert!(st_after.free_blocks > st_before.free_blocks);
        assert_eq!(fs.getattr(f).unwrap().blocks, 0);
    }

    #[test]
    fn truncate_partial_block_zeroes_tail() {
        let fs = fresh(CffsConfig::cffs());
        let f = fs.create(fs.root(), "t").unwrap();
        fs.write(f, 0, &vec![0xAA; 3000]).unwrap();
        fs.truncate(f, 1000).unwrap();
        fs.write(f, 0, b"").unwrap();
        // Extend again: the old tail must not resurface.
        fs.truncate(f, 3000).unwrap();
        let mut buf = vec![0u8; 3000];
        fs.read(f, 0, &mut buf).unwrap();
        assert!(buf[..1000].iter().all(|&b| b == 0xAA));
        assert!(buf[1000..].iter().all(|&b| b == 0), "stale tail leaked");
    }

    #[test]
    fn deep_hierarchy() {
        let mut fs = fresh(CffsConfig::cffs());
        let mut p = String::new();
        for d in 0..24 {
            p.push_str(&format!("/level{d}"));
        }
        let dir = path::mkdir_p(&mut fs, &p).unwrap();
        let f = fs.create(dir, "leaf").unwrap();
        fs.write(f, 0, b"bottom").unwrap();
        assert_eq!(path::read_file(&mut fs, &format!("{p}/leaf")).unwrap(), b"bottom");
    }

    #[test]
    fn max_name_length_roundtrips() {
        let fs = fresh(CffsConfig::cffs());
        let name = "x".repeat(cffs_fslib::MAX_NAME_LEN);
        let f = fs.create(fs.root(), &name).unwrap();
        assert_eq!(fs.lookup(fs.root(), &name).unwrap(), f);
        let over = "x".repeat(cffs_fslib::MAX_NAME_LEN + 1);
        assert_eq!(fs.create(fs.root(), &over), Err(FsError::BadName));
        fs.unlink(fs.root(), &name).unwrap();
    }

    #[test]
    fn exfile_grows_past_one_block() {
        // Conventional variant: every inode is external; 40+ files force
        // the external inode file past its initial 32 slots.
        let fs = fresh(CffsConfig::conventional());
        let root = fs.root();
        let mut inos = Vec::new();
        for i in 0..80 {
            inos.push(fs.create(root, &format!("f{i:02}")).unwrap());
        }
        assert!(fs.superblock().exfile_slots >= 80);
        assert!(fs.superblock().exfile.blocks >= 2);
        // All still resolvable after remount.
        let disk = fs.unmount().unwrap();
        let fs = Cffs::mount(disk, CffsConfig::conventional()).unwrap();
        for i in 0..80 {
            fs.lookup(fs.root(), &format!("f{i:02}")).unwrap();
        }
    }

    #[test]
    fn exfile_slots_are_reused() {
        let fs = fresh(CffsConfig::conventional());
        let root = fs.root();
        let a = fs.create(root, "a").unwrap();
        fs.unlink(root, "a").unwrap();
        let b = fs.create(root, "b").unwrap();
        assert_eq!(a, b, "freed external slot is recycled lowest-first");
    }

    #[test]
    fn rename_into_subdir_and_back() {
        let fs = fresh(CffsConfig::cffs());
        let root = fs.root();
        let sub = fs.mkdir(root, "sub").unwrap();
        let f0 = fs.create(root, "f").unwrap();
        fs.write(f0, 0, b"moving").unwrap();
        let f1 = fs.rename(root, "f", sub, "f2").unwrap();
        let _ = f1;
        let f = fs.rename(sub, "f2", root, "f3").unwrap();
        let mut buf = [0u8; 6];
        fs.read(f, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"moving");
        assert_eq!(fs.readdir(sub).unwrap().len(), 0);
    }

    #[test]
    fn rename_directory_renumbers_and_children_survive() {
        let fs = fresh(CffsConfig::cffs());
        let root = fs.root();
        let d = fs.mkdir(root, "dir").unwrap();
        for i in 0..30 {
            let ino = fs.create(d, &format!("f{i}")).unwrap();
            fs.write(ino, 0, &vec![i as u8; 512]).unwrap();
        }
        let d2 = fs.rename(root, "dir", root, "renamed").unwrap();
        assert_ne!(d, d2, "embedded directory inode is renumbered");
        // All groups re-owned; all children readable.
        assert!(
            fs.group_index().groups_of(d).is_empty(),
            "groups still owned by the dead ino"
        );
        for i in 0..30 {
            let ino = fs.lookup(d2, &format!("f{i}")).unwrap();
            let mut b = vec![0u8; 512];
            fs.read(ino, 0, &mut b).unwrap();
            assert!(b.iter().all(|&x| x == i as u8));
        }
    }

    #[test]
    fn unlink_missing_and_double_unlink() {
        let fs = fresh(CffsConfig::cffs());
        assert_eq!(fs.unlink(fs.root(), "ghost"), Err(FsError::NotFound));
        let _f = fs.create(fs.root(), "once").unwrap();
        fs.unlink(fs.root(), "once").unwrap();
        assert_eq!(fs.unlink(fs.root(), "once"), Err(FsError::NotFound));
    }

    #[test]
    fn stale_ino_after_unlink_is_rejected() {
        let fs = fresh(CffsConfig::cffs());
        let f = fs.create(fs.root(), "gone").unwrap();
        fs.write(f, 0, b"x").unwrap();
        fs.unlink(fs.root(), "gone").unwrap();
        assert!(fs.getattr(f).is_err());
        assert!(fs.read(f, 0, &mut [0u8; 1]).is_err());
        assert!(fs.write(f, 0, b"y").is_err());
    }

    #[test]
    fn write_at_exactly_group_threshold() {
        // A file of exactly group_blocks * 4 KB stays grouped; one byte
        // more triggers degrouping.
        let mut fs = fresh(CffsConfig::cffs());
        let root = fs.root();
        let d = fs.mkdir(root, "d").unwrap();
        let f = fs.create(d, "edge").unwrap();
        let limit = fs.config().group_blocks as usize * BLOCK_SIZE;
        fs.write(f, 0, &vec![1u8; limit]).unwrap();
        let mut probe = [0u8; 1];
        fs.read(f, 0, &mut probe).unwrap();
        let blk = fs.cache_block_of(f, 0).unwrap();
        // Still (at least partially) grouped at the limit is allowed —
        // but one more byte must push it out entirely.
        let _ = blk;
        fs.write(f, limit as u64, b"!").unwrap();
        fs.sync().unwrap();
        for lbn in 0..=(limit / BLOCK_SIZE) as u64 {
            fs.read(f, lbn * BLOCK_SIZE as u64, &mut probe).unwrap();
            if let Some(b) = fs.cache_block_of(f, lbn) {
                assert!(
                    fs.group_index().group_of_block(&fs.superblock(), b).is_none(),
                    "block {b} (lbn {lbn}) still grouped past the threshold"
                );
            }
        }
        // Contents intact.
        let data = path::read_all(&mut fs, f).unwrap();
        assert_eq!(data.len(), limit + 1);
        assert!(data[..limit].iter().all(|&b| b == 1));
    }

    #[test]
    fn readdir_is_sorted_and_complete_at_scale() {
        let fs = fresh(CffsConfig::cffs());
        let d = fs.mkdir(fs.root(), "big").unwrap();
        for i in (0..300).rev() {
            fs.create(d, &format!("e{i:03}")).unwrap();
        }
        let names: Vec<String> = fs.readdir(d).unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 300);
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn io_is_charged_to_the_clock() {
        let fs = fresh(CffsConfig::cffs());
        let t0 = fs.now();
        let f = fs.create(fs.root(), "timed").unwrap();
        fs.write(f, 0, &vec![0u8; 8192]).unwrap();
        fs.sync().unwrap();
        let t1 = fs.now();
        assert!(t1 > t0, "operations must consume simulated time");
        // Synchronous mode: the create alone required at least one disk
        // write worth of time (~ms scale).
        assert!((t1 - t0).as_nanos() > 1_000_000);
    }

    #[test]
    fn group_read_min_zero_variant_still_correct() {
        let mut cfg = CffsConfig::cffs();
        cfg.group_read_min = 1;
        let fs = fresh(cfg);
        let d = fs.mkdir(fs.root(), "d").unwrap();
        let f = fs.create(d, "f").unwrap();
        fs.write(f, 0, b"data").unwrap();
        fs.drop_caches().unwrap();
        let mut b = [0u8; 4];
        fs.read(f, 0, &mut b).unwrap();
        assert_eq!(&b, b"data");
        assert!(fs.io_stats().cache.group_reads > 0);
    }

    #[test]
    fn tiny_group_blocks_config() {
        let mut cfg = CffsConfig::cffs();
        cfg.group_blocks = 4;
        let fs = fresh(cfg);
        let d = fs.mkdir(fs.root(), "d").unwrap();
        for i in 0..10 {
            let f = fs.create(d, &format!("f{i}")).unwrap();
            fs.write(f, 0, &vec![i as u8; 1024]).unwrap();
        }
        fs.sync().unwrap();
        for g in fs.group_index().iter() {
            assert!(g.nslots <= 4, "extent larger than configured");
        }
        // Image still checks out.
        let mut img = fs.unmount().unwrap();
        assert!(crate::fsck::fsck(&mut img, false).unwrap().clean());
    }

    #[test]
    fn prefetch_extension_reduces_requests_for_large_sequential_reads() {
        let run = |prefetch: u32| {
            let mut cfg = CffsConfig::cffs();
            cfg.prefetch_blocks = prefetch;
            let fs = fresh(cfg);
            let f = fs.create(fs.root(), "big").unwrap();
            fs.write(f, 0, &vec![7u8; 512 * 1024]).unwrap();
            fs.drop_caches().unwrap();
            fs.reset_io_stats();
            let t0 = fs.now();
            let mut buf = vec![0u8; 8192];
            let mut off = 0u64;
            while fs.read(f, off, &mut buf).unwrap() > 0 {
                off += 8192;
            }
            assert!(buf.iter().all(|&b| b == 7));
            (fs.io_stats().disk.reads, (fs.now() - t0))
        };
        let (reqs_off, t_off) = run(0);
        let (reqs_on, t_on) = run(16);
        assert!(
            reqs_on * 4 < reqs_off,
            "prefetch should batch reads: {reqs_on} vs {reqs_off}"
        );
        assert!(t_on < t_off, "prefetch should not slow sequential reads down");
    }

    #[test]
    fn prefetch_never_changes_contents() {
        let mut cfg = CffsConfig::cffs();
        cfg.prefetch_blocks = 8;
        let fs = fresh(cfg);
        let d = fs.mkdir(fs.root(), "d").unwrap();
        let a = fs.create(d, "a").unwrap();
        let b = fs.create(d, "b").unwrap();
        fs.write(a, 0, &vec![1u8; 100_000]).unwrap();
        fs.write(b, 0, &vec![2u8; 50_000]).unwrap();
        fs.drop_caches().unwrap();
        // Interleaved sequential reads of both files.
        let mut ba = vec![0u8; 4096];
        for i in 0..12 {
            fs.read(a, i * 4096, &mut ba).unwrap();
            assert!(ba.iter().all(|&x| x == 1), "a at block {i}");
            fs.read(b, i * 4096, &mut ba).unwrap();
            assert!(ba.iter().all(|&x| x == 2), "b at block {i}");
        }
    }

    #[test]
    fn generation_guard_rejects_recycled_slots() {
        let fs = fresh(CffsConfig::cffs());
        let root = fs.root();
        // Create and delete so the next create reuses the same entry slot.
        let old = fs.create(root, "victim").unwrap();
        fs.write(old, 0, b"old data").unwrap();
        fs.unlink(root, "victim").unwrap();
        let new = fs.create(root, "replacement").unwrap();
        fs.write(new, 0, b"new data").unwrap();
        // Same physical slot, different generation → different ino, and
        // the stale handle is rejected instead of aliasing the new file.
        use crate::layout::{decode_ino, InoRef};
        if let (
            InoRef::Embedded { blk: b1, off: o1, gen: g1 },
            InoRef::Embedded { blk: b2, off: o2, gen: g2 },
        ) = (decode_ino(old), decode_ino(new))
        {
            assert_eq!((b1, o1), (b2, o2), "slot should be recycled in this scenario");
            assert_ne!(g1, g2, "generations must differ");
        } else {
            panic!("expected embedded inodes");
        }
        assert_eq!(fs.getattr(old), Err(FsError::StaleHandle));
        assert_eq!(fs.read(old, 0, &mut [0u8; 8]), Err(FsError::StaleHandle));
        assert!(fs.write(old, 0, b"attack").is_err());
        // The new file is untouched.
        let mut buf = [0u8; 8];
        fs.read(new, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"new data");
    }

    #[test]
    fn link_to_directory_rejected() {
        let fs = fresh(CffsConfig::cffs());
        let d = fs.mkdir(fs.root(), "d").unwrap();
        assert_eq!(fs.link(d, fs.root(), "alias"), Err(FsError::IsDir));
    }

    #[test]
    fn zero_byte_files_everywhere() {
        let fs = fresh(CffsConfig::cffs());
        let d = fs.mkdir(fs.root(), "d").unwrap();
        for i in 0..50 {
            fs.create(d, &format!("empty{i}")).unwrap();
        }
        fs.drop_caches().unwrap();
        for i in 0..50 {
            let ino = fs.lookup(d, &format!("empty{i}")).unwrap();
            let a = fs.getattr(ino).unwrap();
            assert_eq!((a.size, a.blocks), (0, 0));
            assert_eq!(fs.read(ino, 0, &mut [0u8; 8]).unwrap(), 0);
        }
        // Zero-byte files consume no data blocks at all: slack = root's
        // group (1 live dir block) + d's group (3 dir blocks for 50
        // embedded entries at 24/block).
        assert_eq!(fs.group_index().total_slack(), 15 + 13);
    }
}

//! Off-line checker for C-FFS.
//!
//! The paper's "File system recovery" discussion: "Although inodes are no
//! longer at statically determined locations, they can all be found
//! (assuming no media corruption) by following the directory hierarchy."
//! That is exactly what this checker does:
//!
//! 1. **Namespace walk** from the root (external slot 0): every embedded
//!    inode is discovered inside its directory block; external references
//!    are counted. Files whose blocks are already claimed by an
//!    earlier-visited file (the debris of a crashed rename, which briefly
//!    holds two embedded copies) are treated as duplicates and dropped in
//!    repair mode.
//! 2. **External inode file scan**: slots holding images that the walk
//!    never referenced are orphans (the expected leak of the ordering
//!    discipline — never a lost name).
//! 3. **Link counts**: embedded inodes must have exactly one link by
//!    construction; external files must match their reference count;
//!    directories carry 2 + child-directories.
//! 4. **Group descriptors**: extents must lie inside their cylinder group
//!    with all blocks reserved in the bitmap; member bits must exactly
//!    match the walk's claims inside the extent.
//! 5. **Bitmaps**: a block is allocated iff it is claimed by a file, the
//!    external inode file, or reserved by a group extent.
//!
//! Repair rebuilds group descriptors and bitmaps from the walk, clears
//! orphans and duplicates, fixes link counts, then re-verifies.

use crate::dirent::{self, EntryLoc};
use crate::exfile;
use crate::layout::{
    decode_ino, embedded_ino, external_ino, CgHeader, GroupDescDisk, InoRef, Superblock,
    GROUP_BLOCKS, INO_ROOT, SB_BLOCK,
};
use cffs_fslib::inode::{Inode, NDIRECT, NO_BLOCK, PTRS_PER_BLOCK};
use cffs_disksim::Disk;
use cffs_fslib::{FileKind, FsError, FsResult, Ino, BLOCK_SIZE, SECTORS_PER_BLOCK};
use std::collections::{HashMap, HashSet};

/// Outcome of a check (and optional repair).
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Problems detected.
    pub errors: Vec<String>,
    /// Actions taken (repair mode).
    pub repairs: Vec<String>,
    /// Live files found by the walk.
    pub files: usize,
    /// Live directories found by the walk.
    pub dirs: usize,
}

impl FsckReport {
    /// True if the image had no inconsistencies.
    pub fn clean(&self) -> bool {
        self.errors.is_empty()
    }
}

fn read_block(disk: &Disk, blk: u64) -> Vec<u8> {
    let mut buf = vec![0u8; BLOCK_SIZE];
    disk.raw_read(blk * SECTORS_PER_BLOCK, &mut buf);
    buf
}

fn write_block(disk: &mut Disk, blk: u64, data: &[u8]) {
    disk.raw_write(blk * SECTORS_PER_BLOCK, data);
}

/// Check (and with `repair`, fix) the C-FFS image on `disk`.
///
/// An inconsistent verdict (a report with errors, or an outright
/// failure) flushes every armed flight recorder first: the black box
/// exists precisely for the runs whose images did not come back clean.
pub fn fsck(disk: &mut Disk, repair: bool) -> FsResult<FsckReport> {
    let res = fsck_inner(disk, repair);
    match &res {
        Ok(report) if !report.clean() => cffs_obs::flight::dump_all("fsck_failure"),
        Err(_) => cffs_obs::flight::dump_all("fsck_failure"),
        Ok(_) => {}
    }
    res
}

fn fsck_inner(disk: &mut Disk, repair: bool) -> FsResult<FsckReport> {
    let sb = Superblock::read_from(&read_block(disk, SB_BLOCK))?;
    let mut c = Checker {
        disk,
        sb,
        repair,
        report: FsckReport::default(),
        claimed: HashMap::new(),
        ext_refs: HashMap::new(),
        inodes: HashMap::new(),
    };
    c.claim_exfile()?;
    c.walk_namespace()?;
    c.check_external_orphans()?;
    c.check_link_counts()?;
    c.check_groups_and_bitmaps()?;
    if repair && !c.report.errors.is_empty() {
        let verify = fsck_inner(c.disk, false)?;
        if !verify.clean() {
            return Err(FsError::Corrupt(format!(
                "repair failed to converge: {:?}",
                verify.errors
            )));
        }
    }
    Ok(c.report)
}

struct Checker<'d> {
    disk: &'d mut Disk,
    sb: Superblock,
    repair: bool,
    report: FsckReport,
    /// blk -> owning ino (u64::MAX = the external inode file itself).
    claimed: HashMap<u64, Ino>,
    /// external slot -> reference count from the namespace.
    ext_refs: HashMap<u32, u32>,
    /// every live inode found (by current number) with child-dir count for
    /// directories.
    inodes: HashMap<Ino, (Inode, u32)>,
}

const EXFILE_OWNER: Ino = u64::MAX;

impl Checker<'_> {
    /// Every data/indirect block an inode maps, in logical order, plus the
    /// indirect blocks themselves.
    fn blocks_of(&self, inode: &Inode) -> (Vec<u64>, Vec<u64>) {
        let mut data = Vec::new();
        let mut meta = Vec::new();
        let nblocks = inode.size.div_ceil(BLOCK_SIZE as u64);
        for lbn in 0..nblocks.min(NDIRECT as u64) {
            let b = inode.direct[lbn as usize];
            if b != NO_BLOCK {
                data.push(b as u64);
            }
        }
        if nblocks > NDIRECT as u64 && inode.indirect != NO_BLOCK {
            meta.push(inode.indirect as u64);
            let img = read_block(self.disk, inode.indirect as u64);
            let upto = (nblocks - NDIRECT as u64).min(PTRS_PER_BLOCK as u64) as usize;
            for i in 0..upto {
                let b = cffs_fslib::codec::get_u32(&img, i * 4);
                if b != NO_BLOCK {
                    data.push(b as u64);
                }
            }
        }
        let l2_total = nblocks.saturating_sub(NDIRECT as u64 + PTRS_PER_BLOCK as u64);
        if l2_total > 0 && inode.dindirect != NO_BLOCK {
            meta.push(inode.dindirect as u64);
            let dimg = read_block(self.disk, inode.dindirect as u64);
            let outers = l2_total.div_ceil(PTRS_PER_BLOCK as u64) as usize;
            for o in 0..outers.min(PTRS_PER_BLOCK) {
                let mid = cffs_fslib::codec::get_u32(&dimg, o * 4);
                if mid == NO_BLOCK {
                    continue;
                }
                meta.push(mid as u64);
                let img = read_block(self.disk, mid as u64);
                let remain = l2_total - (o * PTRS_PER_BLOCK) as u64;
                for i in 0..(remain.min(PTRS_PER_BLOCK as u64) as usize) {
                    let b = cffs_fslib::codec::get_u32(&img, i * 4);
                    if b != NO_BLOCK {
                        data.push(b as u64);
                    }
                }
            }
        }
        (data, meta)
    }

    /// Claim `blk` for `owner`; returns false (and records an error) on a
    /// duplicate or out-of-range claim.
    fn claim(&mut self, owner: Ino, blk: u64) -> bool {
        if blk < self.sb.cg_data_start(0) || blk >= self.sb.total_blocks {
            self.report.errors.push(format!("inode {owner:#x} references invalid block {blk}"));
            return false;
        }
        if let Some(prev) = self.claimed.insert(blk, owner) {
            self.report
                .errors
                .push(format!("block {blk} claimed by {prev:#x} and {owner:#x}"));
            self.claimed.insert(blk, prev);
            return false;
        }
        true
    }

    fn exfile_block(&self, slot: u32) -> Option<u64> {
        let lbn = exfile::slot_lbn(slot);
        let ex = &self.sb.exfile;
        if lbn < NDIRECT as u64 {
            let b = ex.direct[lbn as usize];
            (b != NO_BLOCK).then_some(b as u64)
        } else if ex.indirect != NO_BLOCK {
            let img = read_block(self.disk, ex.indirect as u64);
            let b = cffs_fslib::codec::get_u32(&img, (lbn as usize - NDIRECT) * 4);
            (b != NO_BLOCK).then_some(b as u64)
        } else {
            None
        }
    }

    fn read_external(&self, slot: u32) -> Option<Inode> {
        let blk = self.exfile_block(slot)?;
        Inode::read_from(&read_block(self.disk, blk), exfile::slot_off(slot))
    }

    fn claim_exfile(&mut self) -> FsResult<()> {
        let ex = self.sb.exfile.clone();
        let (data, meta) = self.blocks_of(&ex);
        for b in data.into_iter().chain(meta) {
            self.claim(EXFILE_OWNER, b);
        }
        Ok(())
    }

    fn walk_namespace(&mut self) -> FsResult<()> {
        let Some(root) = self.read_external(0) else {
            self.report.errors.push("root inode missing".into());
            if self.repair {
                let Some(blk) = self.exfile_block(0) else {
                    return Err(FsError::Corrupt("external inode file unreadable".into()));
                };
                let mut img = read_block(self.disk, blk);
                let mut r = Inode::new(FileKind::Dir);
                r.nlink = 2;
                r.write_to(&mut img, 0);
                write_block(self.disk, blk, &img);
                self.report.repairs.push("recreated empty root inode".into());
                return self.walk_namespace();
            }
            return Ok(());
        };
        self.ext_refs.insert(0, 1);
        self.inodes.insert(INO_ROOT, (root.clone(), 0));
        self.report.dirs += 1;
        let mut queue = vec![(INO_ROOT, root)];
        let mut seen_dirs: HashSet<Ino> = [INO_ROOT].into();
        while let Some((dirino, dinode)) = queue.pop() {
            let (dblocks, dmeta) = self.blocks_of(&dinode);
            for b in dblocks.iter().chain(&dmeta) {
                self.claim(dirino, *b);
            }
            let mut child_dirs = 0u32;
            for &blk in &dblocks {
                let mut img = read_block(self.disk, blk);
                let entries = match dirent::list(&img) {
                    Ok(es) => es,
                    Err(_) => {
                        self.report
                            .errors
                            .push(format!("directory {dirino:#x} block {blk} corrupt"));
                        if self.repair {
                            dirent::init_block(&mut img);
                            write_block(self.disk, blk, &img);
                            self.report
                                .repairs
                                .push(format!("reinitialized directory block {blk}"));
                        }
                        continue;
                    }
                };
                let mut dirty = false;
                for e in entries {
                    let (ino, inode) = match e.loc {
                        EntryLoc::Embedded(img_off) => {
                            let ino = embedded_ino(blk, e.offset, e.gen);
                            match Inode::read_from(&img, img_off) {
                                Some(i) if i.kind == e.kind => (ino, i),
                                _ => {
                                    self.report.errors.push(format!(
                                        "embedded inode of '{}' in {dirino:#x} invalid",
                                        e.name
                                    ));
                                    if self.repair {
                                        dirent::remove(&mut img, &e.name)?;
                                        dirty = true;
                                        self.report
                                            .repairs
                                            .push(format!("removed bad entry '{}'", e.name));
                                    }
                                    continue;
                                }
                            }
                        }
                        EntryLoc::External(slot) => {
                            let ino = external_ino(slot);
                            match self.read_external(slot) {
                                Some(i) if i.kind == e.kind => {
                                    *self.ext_refs.entry(slot).or_insert(0) += 1;
                                    (ino, i)
                                }
                                _ => {
                                    self.report.errors.push(format!(
                                        "entry '{}' in {dirino:#x} points at bad external slot {slot}",
                                        e.name
                                    ));
                                    if self.repair {
                                        dirent::remove(&mut img, &e.name)?;
                                        dirty = true;
                                        self.report
                                            .repairs
                                            .push(format!("removed dangling entry '{}'", e.name));
                                    }
                                    continue;
                                }
                            }
                        }
                    };
                    match inode.kind {
                        FileKind::Dir => {
                            if !seen_dirs.insert(ino) {
                                self.report
                                    .errors
                                    .push(format!("directory {ino:#x} reachable twice"));
                                continue;
                            }
                            child_dirs += 1;
                            self.report.dirs += 1;
                            self.inodes.insert(ino, (inode.clone(), 0));
                            queue.push((ino, inode));
                        }
                        FileKind::File => {
                            if self.inodes.contains_key(&ino) {
                                // Same external inode via several names: blocks
                                // already claimed.
                                continue;
                            }
                            // Claim this file's blocks; duplicates mean a
                            // crashed rename left two copies — drop this one.
                            let (data, meta) = self.blocks_of(&inode);
                            let dup = data.iter().chain(&meta).any(|b| self.claimed.contains_key(b));
                            if dup {
                                self.report.errors.push(format!(
                                    "file '{}' in {dirino:#x} duplicates already-claimed blocks",
                                    e.name
                                ));
                                if self.repair {
                                    dirent::remove(&mut img, &e.name)?;
                                    dirty = true;
                                    if let EntryLoc::External(slot) = e.loc {
                                        *self.ext_refs.entry(slot).or_insert(1) -= 1;
                                    }
                                    self.report
                                        .repairs
                                        .push(format!("removed duplicate entry '{}'", e.name));
                                }
                                continue;
                            }
                            for b in data.into_iter().chain(meta) {
                                self.claim(ino, b);
                            }
                            self.report.files += 1;
                            self.inodes.insert(ino, (inode, 0));
                        }
                    }
                }
                if dirty {
                    write_block(self.disk, blk, &img);
                }
            }
            if let Some(entry) = self.inodes.get_mut(&dirino) {
                entry.1 = child_dirs;
            }
        }
        Ok(())
    }

    fn check_external_orphans(&mut self) -> FsResult<()> {
        for slot in 0..self.sb.exfile_slots {
            if self.read_external(slot).is_some() && !self.ext_refs.contains_key(&slot) {
                self.report.errors.push(format!("external inode {slot} is an orphan"));
                if self.repair {
                    // Free its blocks too: nothing references them.
                    if let Some(inode) = self.read_external(slot) {
                        let (data, meta) = self.blocks_of(&inode);
                        for b in data.into_iter().chain(meta) {
                            self.claimed.remove(&b);
                        }
                    }
                    let blk = self.exfile_block(slot).expect("slot readable");
                    let mut img = read_block(self.disk, blk);
                    Inode::clear_slot(&mut img, exfile::slot_off(slot));
                    write_block(self.disk, blk, &img);
                    self.report.repairs.push(format!("cleared orphan external inode {slot}"));
                }
            }
        }
        // Stale reference counts of removed duplicates.
        self.ext_refs.retain(|_, c| *c > 0);
        Ok(())
    }

    fn check_link_counts(&mut self) -> FsResult<()> {
        let mut fixes: Vec<(Ino, u16)> = Vec::new();
        for (&ino, (inode, child_dirs)) in &self.inodes {
            let expect = match (inode.kind, decode_ino(ino)) {
                (FileKind::Dir, _) => 2 + *child_dirs as u16,
                (FileKind::File, InoRef::Embedded { .. }) => 1,
                (FileKind::File, InoRef::External(slot)) => {
                    *self.ext_refs.get(&slot).unwrap_or(&0) as u16
                }
            };
            if inode.nlink != expect {
                self.report
                    .errors
                    .push(format!("inode {ino:#x} has nlink {} but {expect} references", inode.nlink));
                if self.repair {
                    fixes.push((ino, expect));
                }
            }
        }
        for (ino, expect) in fixes {
            let (blk, img_off) = match decode_ino(ino) {
                InoRef::External(slot) => {
                    (self.exfile_block(slot).expect("readable"), exfile::slot_off(slot))
                }
                InoRef::Embedded { blk, off, .. } => {
                    let img = read_block(self.disk, blk);
                    let e = dirent::entry_at(&img, off)?;
                    let EntryLoc::Embedded(io) = e.loc else { continue };
                    (blk, io)
                }
            };
            let mut img = read_block(self.disk, blk);
            if let Some(mut inode) = Inode::read_from(&img, img_off) {
                inode.nlink = expect;
                inode.write_to(&mut img, img_off);
                write_block(self.disk, blk, &img);
                if let Some(entry) = self.inodes.get_mut(&ino) {
                    entry.0.nlink = expect;
                }
                self.report.repairs.push(format!("fixed nlink of inode {ino:#x} to {expect}"));
            }
        }
        Ok(())
    }

    fn check_groups_and_bitmaps(&mut self) -> FsResult<()> {
        for cg in 0..self.sb.cg_count {
            let hdr_blk = self.sb.cg_header_block(cg);
            let Ok(mut hdr) = CgHeader::read_from(&read_block(self.disk, hdr_blk), cg) else {
                self.report.errors.push(format!("cylinder group {cg} header corrupt"));
                continue;
            };
            let data_start = self.sb.cg_data_start(cg);
            let mut dirty = false;
            // Blocks reserved by (valid) group extents.
            let mut reserved: HashSet<u64> = HashSet::new();
            for (i, slot) in hdr.groups.iter_mut().enumerate() {
                let Some(mut desc) = *slot else { continue };
                let start = data_start + desc.start_idx as u64;
                let ok_geometry = desc.nslots as usize <= GROUP_BLOCKS
                    && desc.nslots > 0
                    && desc.start_idx as usize + desc.nslots as usize
                        <= self.sb.data_per_cg() as usize;
                let owner_ok = matches!(
                    self.inodes.get(&desc.owner),
                    Some((inode, _)) if inode.kind == FileKind::Dir
                );
                if !ok_geometry || !owner_ok {
                    self.report.errors.push(format!(
                        "group {cg}/{i} invalid (geometry ok: {ok_geometry}, owner ok: {owner_ok})"
                    ));
                    if self.repair {
                        *slot = None;
                        dirty = true;
                        self.report.repairs.push(format!("deleted group descriptor {cg}/{i}"));
                    }
                    continue;
                }
                // Member bits must match claims inside the extent.
                let mut expect: u16 = 0;
                for s in 0..desc.nslots {
                    if self.claimed.contains_key(&(start + s as u64)) {
                        expect |= 1 << s;
                    }
                }
                if desc.member_valid != expect {
                    self.report.errors.push(format!(
                        "group {cg}/{i} member bits {:#06x}, expected {expect:#06x}",
                        desc.member_valid
                    ));
                    if self.repair {
                        if expect == 0 {
                            *slot = None;
                            self.report.repairs.push(format!("dissolved empty group {cg}/{i}"));
                        } else {
                            desc.member_valid = expect;
                            *slot = Some(desc);
                            self.report.repairs.push(format!("rebuilt member bits of {cg}/{i}"));
                        }
                        dirty = true;
                    }
                }
                let live = if self.repair {
                    slot.as_ref().map(|d| (start, d.nslots)).into_iter().collect::<Vec<_>>()
                } else {
                    vec![(start, desc.nslots)]
                };
                for (s, n) in live {
                    for b in s..s + n as u64 {
                        reserved.insert(b);
                    }
                }
            }
            // Bitmap: allocated ⇔ claimed or group-reserved.
            for idx in 0..hdr.block_bitmap.len() {
                let blk = data_start + idx as u64;
                let should = self.claimed.contains_key(&blk) || reserved.contains(&blk);
                if hdr.block_bitmap.get(idx) != should {
                    self.report.errors.push(format!(
                        "block {blk} bitmap says {} but should be {should}",
                        hdr.block_bitmap.get(idx)
                    ));
                    if self.repair {
                        if should {
                            hdr.block_bitmap.set(idx);
                        } else {
                            hdr.block_bitmap.clear(idx);
                        }
                        dirty = true;
                    }
                }
            }
            if dirty {
                let mut img = vec![0u8; BLOCK_SIZE];
                hdr.write_to(&mut img);
                write_block(self.disk, hdr_blk, &img);
                self.report.repairs.push(format!("rewrote cylinder group {cg} header"));
            }
        }
        // Silence unused-variable warnings for GroupDescDisk import.
        let _ = std::mem::size_of::<GroupDescDisk>();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::CffsConfig;
    use crate::mkfs::{mkfs, MkfsParams};
    use cffs_disksim::models;
    use cffs_fslib::path;

    fn populated(cfg: CffsConfig) -> Disk {
        let disk = Disk::new(models::tiny_test_disk());
        let mut fs = mkfs(disk, MkfsParams::tiny(), cfg).unwrap();
        path::mkdir_p(&mut fs, "/src/lib").unwrap();
        for i in 0..20 {
            path::write_file(&mut fs, &format!("/src/f{i}.c"), &vec![i as u8; 1024]).unwrap();
        }
        path::write_file(&mut fs, "/src/lib/big.bin", &vec![9u8; 150_000]).unwrap();
        let f = path::resolve(&mut fs, "/src/f0.c").unwrap();
        fs.link(f, fs.root(), "hard").unwrap();
        path::remove_file(&mut fs, "/src/f3.c").unwrap();
        fs.unmount().unwrap()
    }

    #[test]
    fn clean_after_workload_all_variants() {
        for cfg in [
            CffsConfig::cffs(),
            CffsConfig::conventional(),
            CffsConfig::embedded_only(),
            CffsConfig::grouping_only(),
        ] {
            let label = cfg.label.clone();
            let mut disk = populated(cfg);
            let report = fsck(&mut disk, false).unwrap();
            assert!(report.clean(), "{label}: {:?}", report.errors);
            assert_eq!(report.files, 20, "{label}"); // 19 files + big.bin
            assert_eq!(report.dirs, 3, "{label}");
        }
    }

    #[test]
    fn orphan_external_inode_detected_and_repaired() {
        let mut disk = populated(CffsConfig::cffs());
        let sb = Superblock::read_from(&read_block(&disk, SB_BLOCK)).unwrap();
        // Write an image into a free slot without referencing it.
        let blk = sb.exfile.direct[0] as u64;
        let mut img = read_block(&disk, blk);
        let slot = 20u32; // tiny fs: well within block 0, unused
        Inode::new(FileKind::File).write_to(&mut img, exfile::slot_off(slot));
        write_block(&mut disk, blk, &img);

        let report = fsck(&mut disk, false).unwrap();
        assert!(report.errors.iter().any(|e| e.contains("orphan")), "{:?}", report.errors);
        fsck(&mut disk, true).unwrap();
        assert!(fsck(&mut disk, false).unwrap().clean());
    }

    #[test]
    fn bitmap_drift_detected_and_repaired() {
        let mut disk = populated(CffsConfig::cffs());
        let sb = Superblock::read_from(&read_block(&disk, SB_BLOCK)).unwrap();
        let hdr_blk = sb.cg_header_block(1);
        let mut hdr = CgHeader::read_from(&read_block(&disk, hdr_blk), 1).unwrap();
        let idx = hdr.block_bitmap.find_free(50).unwrap();
        hdr.block_bitmap.set(idx);
        let mut img = vec![0u8; BLOCK_SIZE];
        hdr.write_to(&mut img);
        write_block(&mut disk, hdr_blk, &img);

        assert!(!fsck(&mut disk, false).unwrap().clean());
        fsck(&mut disk, true).unwrap();
        assert!(fsck(&mut disk, false).unwrap().clean());
    }

    #[test]
    fn torn_create_name_never_dangles_with_embedding() {
        // The embedded-inode atomicity claim: with name and inode in one
        // sector, a crash between "inode write" and "name write" cannot
        // exist. Simulate the worst crash — directory block written, data
        // not — and verify fsck finds a structurally valid file.
        let disk = Disk::new(models::tiny_test_disk());
        let mut fs = mkfs(disk, MkfsParams::tiny(), CffsConfig::cffs()).unwrap();
        path::write_file(&mut fs, "/a.txt", b"x").unwrap();
        let mut crash = fs.crash_image();
        // Synchronous mode: the entry (name+inode) hit the disk at create.
        let report = fsck(&mut crash, true).unwrap();
        // Whatever was lost, repair converges and no name dangles.
        assert!(fsck(&mut crash, false).unwrap().clean());
        let _ = report;
    }

    #[test]
    fn corrupt_dir_block_repaired() {
        let mut disk = populated(CffsConfig::cffs());
        // Find a directory block by walking from the root and smash it.
        let sb = Superblock::read_from(&read_block(&disk, SB_BLOCK)).unwrap();
        let root = Inode::read_from(&read_block(&disk, sb.exfile.direct[0] as u64), 0).unwrap();
        let rblk = root.direct[0] as u64;
        let mut img = read_block(&disk, rblk);
        img[0] = 0xFF;
        img[1] = 0xFF; // absurd reclen
        write_block(&mut disk, rblk, &img);
        assert!(!fsck(&mut disk, false).unwrap().clean());
        fsck(&mut disk, true).unwrap();
        assert!(fsck(&mut disk, false).unwrap().clean());
    }
}

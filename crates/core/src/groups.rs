//! Explicit grouping: the in-core group index and its operations.
//!
//! A *group* is a physically contiguous extent of up to 16 blocks (64 KB)
//! owned by one directory. The blocks of small files named by that
//! directory — and the directory's own blocks — are allocated from slots
//! of the directory's groups, so that reading one member can profitably
//! fetch them all.
//!
//! Lifecycle, following Section 3 of the paper:
//!
//! * **Carving**: when a directory needs a slot and has none free, a
//!   16-block free run in its home cylinder group is claimed whole — all
//!   16 blocks become "reserved" in the block bitmap, and a descriptor in
//!   the CG header records owner + live-member bits.
//! * **Slot allocation** marks a member bit; **freeing** clears it; a group
//!   whose last member goes away is dissolved and its extent returned.
//! * **Slack**: reserved-but-unused slots are not free space, but they are
//!   *reclaimable*: under space pressure, trailing unused slots are trimmed
//!   (the extent shrinks) so ordinary allocation can proceed.
//! * **Ownership** is by directory inode number. Embedded directory inodes
//!   are renumbered by rename, so the index supports bulk re-ownership.
//!
//! The index also answers "which group does block *b* belong to" in
//! `O(log n)` — the read path's entry point for whole-group fetches.

use crate::layout::{CgHeader, GroupDescDisk, Superblock, GROUP_BLOCKS};
use cffs_fslib::{FsResult, Ino};
use std::collections::HashMap;

/// In-core descriptor of one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Group {
    /// Cylinder group holding the extent.
    pub cg: u32,
    /// Descriptor-table slot within the CG header.
    pub idx: u32,
    /// First block of the extent (global block number).
    pub start: u64,
    /// Extent length in blocks.
    pub nslots: u8,
    /// Live-member bitmap (bit i = slot i holds data).
    pub member_valid: u16,
    /// Owning directory.
    pub owner: Ino,
}

impl Group {
    /// Number of live member blocks.
    pub fn live(&self) -> u32 {
        self.member_valid.count_ones()
    }

    /// Number of reserved-but-unused slots.
    pub fn slack(&self) -> u32 {
        self.nslots as u32 - self.live()
    }

    /// First free slot, if any.
    pub fn free_slot(&self) -> Option<u8> {
        (0..self.nslots).find(|&s| self.member_valid & (1 << s) == 0)
    }

    /// The block of slot `s`.
    pub fn slot_block(&self, s: u8) -> u64 {
        self.start + s as u64
    }

    /// The runs of consecutive live blocks, as `(start_block, len)` pairs —
    /// the scatter/gather read plan for this group.
    pub fn live_runs(&self) -> Vec<(u64, usize)> {
        let mut runs = Vec::new();
        let mut s = 0u8;
        while s < self.nslots {
            if self.member_valid & (1 << s) != 0 {
                let start = s;
                while s < self.nslots && self.member_valid & (1 << s) != 0 {
                    s += 1;
                }
                runs.push((self.start + start as u64, (s - start) as usize));
            } else {
                s += 1;
            }
        }
        runs
    }
}

/// The in-core group index for the whole file system.
#[derive(Debug, Default)]
pub struct GroupIndex {
    /// `(cg, idx)` -> group.
    by_slot: HashMap<(u32, u32), Group>,
    /// Owner -> its groups' `(cg, idx)` keys.
    by_owner: HashMap<Ino, Vec<(u32, u32)>>,
    /// Per-CG sorted extent starts for block→group lookup:
    /// `starts[cg]` is sorted by start block.
    starts: Vec<Vec<(u64, (u32, u32))>>,
}

impl GroupIndex {
    /// Build the index from mounted CG headers.
    pub fn build(sb: &Superblock, cgs: &[CgHeader]) -> Self {
        let mut ix = GroupIndex {
            by_slot: HashMap::new(),
            by_owner: HashMap::new(),
            starts: vec![Vec::new(); cgs.len()],
        };
        for (cgno, hdr) in cgs.iter().enumerate() {
            for (i, d) in hdr.groups.iter().enumerate() {
                if let Some(d) = d {
                    let g = Group {
                        cg: cgno as u32,
                        idx: i as u32,
                        start: sb.cg_data_start(cgno as u32) + d.start_idx as u64,
                        nslots: d.nslots,
                        member_valid: d.member_valid,
                        owner: d.owner,
                    };
                    ix.insert(g);
                }
            }
        }
        ix
    }

    fn insert(&mut self, g: Group) {
        self.by_slot.insert((g.cg, g.idx), g);
        self.by_owner.entry(g.owner).or_default().push((g.cg, g.idx));
        let v = &mut self.starts[g.cg as usize];
        let pos = v.partition_point(|&(s, _)| s < g.start);
        v.insert(pos, (g.start, (g.cg, g.idx)));
    }

    fn remove(&mut self, key: (u32, u32)) -> Option<Group> {
        let g = self.by_slot.remove(&key)?;
        if let Some(v) = self.by_owner.get_mut(&g.owner) {
            v.retain(|&k| k != key);
            if v.is_empty() {
                self.by_owner.remove(&g.owner);
            }
        }
        self.starts[g.cg as usize].retain(|&(_, k)| k != key);
        Some(g)
    }

    /// Total group count.
    pub fn len(&self) -> usize {
        self.by_slot.len()
    }

    /// True if no groups exist.
    pub fn is_empty(&self) -> bool {
        self.by_slot.is_empty()
    }

    /// Total reserved-but-unused blocks across all groups.
    pub fn total_slack(&self) -> u64 {
        self.by_slot.values().map(|g| g.slack() as u64).sum()
    }

    /// Look up a group by its table slot.
    pub fn get(&self, cg: u32, idx: u32) -> Option<&Group> {
        self.by_slot.get(&(cg, idx))
    }

    /// The group containing block `blk`, if any.
    pub fn group_of_block(&self, sb: &Superblock, blk: u64) -> Option<&Group> {
        let cg = sb.block_cg(blk)?;
        let v = &self.starts[cg as usize];
        let pos = v.partition_point(|&(s, _)| s <= blk);
        if pos == 0 {
            return None;
        }
        let (_, key) = v[pos - 1];
        let g = &self.by_slot[&key];
        (blk < g.start + g.nslots as u64).then_some(g)
    }

    /// The groups owned by a directory.
    pub fn groups_of(&self, owner: Ino) -> Vec<Group> {
        self.by_owner
            .get(&owner)
            .map(|keys| keys.iter().map(|k| self.by_slot[k]).collect())
            .unwrap_or_default()
    }

    /// Allocate a member slot from one of `owner`'s groups, preferring the
    /// hinted one. Returns `(block, group key)` and updates the descriptor
    /// via `persist`.
    pub fn alloc_slot(
        &mut self,
        owner: Ino,
        hint: Option<(u32, u32)>,
        mut persist: impl FnMut(u32, u32, &GroupDescDisk, &Superblock),
        sb: &Superblock,
    ) -> Option<(u64, (u32, u32))> {
        let keys: Vec<(u32, u32)> = hint
            .into_iter()
            .chain(self.by_owner.get(&owner).into_iter().flatten().copied())
            .collect();
        for key in keys {
            let Some(g) = self.by_slot.get_mut(&key) else { continue };
            if g.owner != owner {
                continue;
            }
            if let Some(s) = g.free_slot() {
                g.member_valid |= 1 << s;
                let blk = g.slot_block(s);
                let d = to_disk(g, sb);
                persist(key.0, key.1, &d, sb);
                return Some((blk, key));
            }
        }
        None
    }

    /// Carve a new group of `nslots` blocks for `owner` in cylinder group
    /// `cg`: find a free contiguous run and a free descriptor slot,
    /// reserve the run in the bitmap, and allocate the first member.
    /// Returns `(block, key)`.
    ///
    /// # Panics
    /// Panics if `nslots` is 0 or exceeds [`GROUP_BLOCKS`] (the member
    /// bitmap is 16 bits wide).
    pub fn carve(
        &mut self,
        sb: &Superblock,
        hdr: &mut CgHeader,
        owner: Ino,
        nslots: u8,
    ) -> FsResult<Option<(u64, (u32, u32))>> {
        let Some(key) = self.carve_empty(sb, hdr, owner, nslots)? else {
            return Ok(None);
        };
        let g = self.by_slot.get_mut(&key).expect("just carved");
        g.member_valid = 1;
        let blk = g.start;
        hdr.groups[key.1 as usize] = Some(to_disk(g, sb));
        Ok(Some((blk, key)))
    }

    /// Carve a new group extent with *no* members yet — the regrouper's
    /// re-formation path: the extent is reserved first, then members are
    /// claimed one at a time via [`GroupIndex::alloc_slot_in`] as blocks
    /// are relocated into it. An extent left empty is reclaimed by
    /// [`GroupIndex::trim_slack`] (and dissolved by fsck after a crash),
    /// so an aborted re-formation leaks nothing permanently.
    ///
    /// # Panics
    /// Panics if `nslots` is 0 or exceeds [`GROUP_BLOCKS`].
    pub fn carve_empty(
        &mut self,
        sb: &Superblock,
        hdr: &mut CgHeader,
        owner: Ino,
        nslots: u8,
    ) -> FsResult<Option<(u32, u32)>> {
        assert!(
            nslots > 0 && nslots as usize <= GROUP_BLOCKS,
            "group size {nslots} outside 1..={GROUP_BLOCKS}"
        );
        let cg = hdr.cg;
        let Some(idx) = hdr.groups.iter().position(|g| g.is_none()) else {
            return Ok(None);
        };
        let Some(start_idx) = hdr.block_bitmap.find_free_run(0, nslots as usize) else {
            return Ok(None);
        };
        hdr.block_bitmap.set_run(start_idx, nslots as usize);
        let g = Group {
            cg,
            idx: idx as u32,
            start: sb.cg_data_start(cg) + start_idx as u64,
            nslots,
            member_valid: 0,
            owner,
        };
        hdr.groups[idx] = Some(to_disk(&g, sb));
        self.insert(g);
        Ok(Some((cg, idx as u32)))
    }

    /// Claim the lowest free member slot of *exactly* the group `key`
    /// (unlike [`GroupIndex::alloc_slot`], which falls back to the owner's
    /// other groups). This is how the regrouper packs relocated blocks
    /// into consecutive slots of a freshly carved extent. Returns the
    /// claimed block, or `None` if the group is full or missing.
    pub fn alloc_slot_in(
        &mut self,
        key: (u32, u32),
        mut persist: impl FnMut(u32, u32, &GroupDescDisk, &Superblock),
        sb: &Superblock,
    ) -> Option<u64> {
        let g = self.by_slot.get_mut(&key)?;
        let s = g.free_slot()?;
        g.member_valid |= 1 << s;
        let blk = g.slot_block(s);
        let d = to_disk(g, sb);
        persist(key.0, key.1, &d, sb);
        Some(blk)
    }

    /// Free the member slot holding `blk`. Returns `true` and updates (or
    /// dissolves) the group, or `false` if the block is in no group.
    /// `persist(cg, idx, Some(desc))` updates a descriptor;
    /// `persist(cg, idx, None)` deletes it (extent bitmap bits are the
    /// caller's to release via the returned [`FreeOutcome`]).
    pub fn free_slot(
        &mut self,
        sb: &Superblock,
        blk: u64,
        mut persist: impl FnMut(u32, u32, Option<&GroupDescDisk>),
    ) -> Option<FreeOutcome> {
        let key = {
            let g = self.group_of_block(sb, blk)?;
            (g.cg, g.idx)
        };
        let g = self.by_slot.get_mut(&key).expect("indexed group");
        let slot = (blk - g.start) as u8;
        debug_assert!(slot < g.nslots);
        g.member_valid &= !(1 << slot);
        if g.member_valid == 0 {
            let g = self.remove(key).expect("present");
            persist(key.0, key.1, None);
            Some(FreeOutcome::Dissolved { start: g.start, nslots: g.nslots })
        } else {
            let d = to_disk(g, sb);
            persist(key.0, key.1, Some(&d));
            Some(FreeOutcome::SlotFreed)
        }
    }

    /// Trim trailing unused slots from `owner`-agnostic groups in cylinder
    /// group `cg` to reclaim space. Returns blocks released (as
    /// `(start, len)` extents for the caller to clear in the bitmap).
    pub fn trim_slack(
        &mut self,
        sb: &Superblock,
        cg: u32,
        mut persist: impl FnMut(u32, u32, Option<&GroupDescDisk>),
    ) -> Vec<(u64, usize)> {
        let keys: Vec<(u32, u32)> =
            self.starts[cg as usize].iter().map(|&(_, k)| k).collect();
        let mut released = Vec::new();
        for key in keys {
            let g = self.by_slot.get_mut(&key).expect("indexed group");
            if g.member_valid == 0 {
                let g = self.remove(key).expect("present");
                persist(key.0, key.1, None);
                released.push((g.start, g.nslots as usize));
                continue;
            }
            let highest = 15 - g.member_valid.leading_zeros() as u8;
            let new_n = highest + 1;
            if new_n < g.nslots {
                let freed = (g.start + new_n as u64, (g.nslots - new_n) as usize);
                g.nslots = new_n;
                let d = to_disk(g, sb);
                persist(key.0, key.1, Some(&d));
                released.push(freed);
            }
        }
        released
    }

    /// Re-own every group of `old` to `new` (directory rename renumbers an
    /// embedded directory inode).
    pub fn reown(
        &mut self,
        old: Ino,
        new: Ino,
        mut persist: impl FnMut(u32, u32, &GroupDescDisk),
        sb: &Superblock,
    ) {
        let Some(keys) = self.by_owner.remove(&old) else { return };
        for key in &keys {
            let g = self.by_slot.get_mut(key).expect("indexed group");
            g.owner = new;
            let d = to_disk(g, sb);
            persist(key.0, key.1, &d);
        }
        self.by_owner.entry(new).or_default().extend(keys);
    }

    /// Iterate all groups (fsck, stats).
    pub fn iter(&self) -> impl Iterator<Item = &Group> {
        self.by_slot.values()
    }
}

/// What [`GroupIndex::free_slot`] did.
#[derive(Debug, PartialEq, Eq)]
pub enum FreeOutcome {
    /// A member bit was cleared; the extent persists.
    SlotFreed,
    /// The group's last member went away; the caller must release the
    /// extent's blocks in the allocation bitmap.
    Dissolved {
        /// Extent start block.
        start: u64,
        /// Extent length.
        nslots: u8,
    },
}

fn to_disk(g: &Group, sb: &Superblock) -> GroupDescDisk {
    GroupDescDisk {
        start_idx: (g.start - sb.cg_data_start(g.cg)) as u32,
        owner: g.owner,
        member_valid: g.member_valid,
        nslots: g.nslots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cffs_fslib::inode::Inode;
    use cffs_fslib::FileKind;

    fn sb() -> Superblock {
        Superblock {
            total_blocks: 2 + 4 * 512,
            cg_count: 4,
            cg_size: 512,
            exfile: Inode::new(FileKind::File),
            exfile_slots: 0,
            clean: true,
        }
    }

    fn setup() -> (Superblock, Vec<CgHeader>, GroupIndex) {
        let sb = sb();
        let cgs: Vec<CgHeader> =
            (0..4).map(|i| CgHeader::new(i, sb.data_per_cg(), sb.max_groups_per_cg())).collect();
        let ix = GroupIndex::build(&sb, &cgs);
        (sb, cgs, ix)
    }

    #[test]
    fn carve_then_fill_group() {
        let (sb, mut cgs, mut ix) = setup();
        let owner = crate::layout::external_ino(0);
        let (b0, key) = ix.carve(&sb, &mut cgs[1], owner, 16).unwrap().unwrap();
        assert_eq!(sb.block_cg(b0), Some(1));
        // 15 more slots.
        for i in 1..16u64 {
            let (b, k) = ix.alloc_slot(owner, Some(key), |_, _, _, _| {}, &sb).unwrap();
            assert_eq!(b, b0 + i);
            assert_eq!(k, key);
        }
        assert!(ix.alloc_slot(owner, Some(key), |_, _, _, _| {}, &sb).is_none());
        // All 16 bitmap bits were reserved at carve time.
        assert_eq!(cgs[1].block_bitmap.used(), 16);
        assert_eq!(ix.total_slack(), 0);
    }

    #[test]
    fn block_to_group_lookup() {
        let (sb, mut cgs, mut ix) = setup();
        let owner = crate::layout::external_ino(3);
        let (b0, _) = ix.carve(&sb, &mut cgs[0], owner, 16).unwrap().unwrap();
        assert_eq!(ix.group_of_block(&sb, b0).unwrap().owner, owner);
        assert_eq!(ix.group_of_block(&sb, b0 + 15).unwrap().owner, owner);
        assert!(ix.group_of_block(&sb, b0 + 16).is_none());
        assert!(ix.group_of_block(&sb, 1).is_none());
    }

    #[test]
    fn free_slots_then_dissolve() {
        let (sb, mut cgs, mut ix) = setup();
        let owner = crate::layout::external_ino(1);
        let (b0, key) = ix.carve(&sb, &mut cgs[2], owner, 16).unwrap().unwrap();
        let (b1, _) = ix.alloc_slot(owner, Some(key), |_, _, _, _| {}, &sb).unwrap();
        assert_eq!(ix.free_slot(&sb, b1, |_, _, _| {}), Some(FreeOutcome::SlotFreed));
        match ix.free_slot(&sb, b0, |_, _, _| {}) {
            Some(FreeOutcome::Dissolved { start, nslots }) => {
                assert_eq!(start, b0);
                assert_eq!(nslots, 16);
            }
            other => panic!("expected dissolution, got {other:?}"),
        }
        assert!(ix.is_empty());
    }

    #[test]
    fn live_runs_plan() {
        let g = Group {
            cg: 0,
            idx: 0,
            start: 100,
            nslots: 16,
            member_valid: 0b0000_0111_0011_0101,
            owner: 1,
        };
        assert_eq!(g.live_runs(), vec![(100, 1), (102, 1), (104, 2), (108, 3)]);
        assert_eq!(g.live(), 7);
        assert_eq!(g.slack(), 9);
    }

    #[test]
    fn trim_slack_releases_tail() {
        let (sb, mut cgs, mut ix) = setup();
        let owner = crate::layout::external_ino(9);
        let (b0, key) = ix.carve(&sb, &mut cgs[0], owner, 16).unwrap().unwrap();
        // Two live members: slots 0 and 1.
        ix.alloc_slot(owner, Some(key), |_, _, _, _| {}, &sb).unwrap();
        let released = ix.trim_slack(&sb, 0, |_, _, _| {});
        assert_eq!(released, vec![(b0 + 2, 14)]);
        assert_eq!(ix.get(0, key.1).unwrap().nslots, 2);
        assert_eq!(ix.total_slack(), 0);
        // Trimmed group no longer claims the tail blocks.
        assert!(ix.group_of_block(&sb, b0 + 2).is_none());
    }

    #[test]
    fn reown_moves_all_groups() {
        let (sb, mut cgs, mut ix) = setup();
        let old = crate::layout::embedded_ino(10, 0, 1);
        let new = crate::layout::embedded_ino(20, 8, 2);
        ix.carve(&sb, &mut cgs[0], old, 16).unwrap().unwrap();
        ix.carve(&sb, &mut cgs[1], old, 16).unwrap().unwrap();
        ix.reown(old, new, |_, _, _| {}, &sb);
        assert!(ix.groups_of(old).is_empty());
        assert_eq!(ix.groups_of(new).len(), 2);
        for g in ix.iter() {
            assert_eq!(g.owner, new);
        }
    }

    #[test]
    fn build_round_trips_through_headers() {
        let (sb, mut cgs, mut ix) = setup();
        let owner = crate::layout::external_ino(2);
        ix.carve(&sb, &mut cgs[3], owner, 16).unwrap().unwrap();
        // Persist descriptors into the header (carve already did), rebuild.
        let ix2 = GroupIndex::build(&sb, &cgs);
        assert_eq!(ix2.len(), 1);
        let g = ix2.groups_of(owner);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].member_valid, 1);
    }

    #[test]
    fn carve_empty_then_pack_consecutively() {
        let (sb, mut cgs, mut ix) = setup();
        let owner = crate::layout::external_ino(4);
        let key = ix.carve_empty(&sb, &mut cgs[1], owner, 16).unwrap().unwrap();
        // The extent is reserved whole but has no members yet.
        assert_eq!(cgs[1].block_bitmap.used(), 16);
        assert_eq!(ix.get(key.0, key.1).unwrap().live(), 0);
        // Claims come back lowest-slot-first: a contiguous run.
        let start = ix.get(key.0, key.1).unwrap().start;
        for i in 0..16u64 {
            let b = ix.alloc_slot_in(key, |c, i, d, _| {
                cgs[c as usize].groups[i as usize] = Some(*d);
            }, &sb);
            assert_eq!(b, Some(start + i));
        }
        assert!(ix.alloc_slot_in(key, |_, _, _, _| {}, &sb).is_none());
        // Descriptor round-trips with all members live.
        let rebuilt = GroupIndex::build(&sb, &cgs);
        assert_eq!(rebuilt.get(key.0, key.1).unwrap().member_valid, 0xFFFF);
    }

    #[test]
    fn empty_carved_group_is_reclaimed_by_trim() {
        let (sb, mut cgs, mut ix) = setup();
        let owner = crate::layout::external_ino(5);
        let key = ix.carve_empty(&sb, &mut cgs[0], owner, 16).unwrap().unwrap();
        let start = ix.get(key.0, key.1).unwrap().start;
        // An aborted re-formation (no members claimed) leaks nothing:
        // trim_slack removes the whole extent.
        let released = ix.trim_slack(&sb, 0, |c, i, d| {
            cgs[c as usize].groups[i as usize] = d.copied();
        });
        assert_eq!(released, vec![(start, 16)]);
        assert!(ix.is_empty());
        assert!(cgs[0].groups.iter().all(|g| g.is_none()));
    }

    #[test]
    fn carve_fails_when_no_contiguous_run() {
        let (sb, mut cgs, mut ix) = setup();
        // Fragment the bitmap: every 16th block allocated.
        for i in (0..cgs[0].block_bitmap.len()).step_by(GROUP_BLOCKS) {
            cgs[0].block_bitmap.set(i);
        }
        assert!(ix.carve(&sb, &mut cgs[0], 1, 16).unwrap().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cffs_fslib::inode::Inode;
    use cffs_fslib::FileKind;
    use proptest::prelude::*;

    fn sb(cgs: u32, cg_size: u32) -> Superblock {
        Superblock {
            total_blocks: 2 + (cgs * cg_size) as u64,
            cg_count: cgs,
            cg_size,
            exfile: Inode::new(FileKind::File),
            exfile_slots: 0,
            clean: true,
        }
    }

    #[derive(Debug, Clone)]
    enum GOp {
        Carve { cg: u8, owner: u8, nslots: u8 },
        Alloc { owner: u8 },
        FreeRandomLive { pick: u16 },
        Trim { cg: u8 },
        Reown { from: u8, to: u8 },
    }

    fn arb_gop() -> impl Strategy<Value = GOp> {
        prop_oneof![
            3 => (0u8..3, 0u8..5, 1u8..17)
                .prop_map(|(cg, owner, nslots)| GOp::Carve { cg, owner, nslots }),
            4 => (0u8..5).prop_map(|owner| GOp::Alloc { owner }),
            4 => any::<u16>().prop_map(|pick| GOp::FreeRandomLive { pick }),
            1 => (0u8..3).prop_map(|cg| GOp::Trim { cg }),
            1 => (0u8..5, 0u8..5).prop_map(|(from, to)| GOp::Reown { from, to }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Under arbitrary carve/alloc/free/trim/reown churn:
        /// * extents never overlap and stay inside their cylinder group;
        /// * the bitmap covers exactly the union of extents (this harness
        ///   allocates nothing outside groups);
        /// * every live member maps back to its group via group_of_block;
        /// * the index round-trips through the on-disk headers.
        #[test]
        fn group_lifecycle_invariants(ops in prop::collection::vec(arb_gop(), 1..80)) {
            let sb = sb(3, 256);
            let mut cgs: Vec<CgHeader> = (0..3)
                .map(|i| CgHeader::new(i, sb.data_per_cg(), sb.max_groups_per_cg()))
                .collect();
            let mut ix = GroupIndex::build(&sb, &cgs);
            let owner_ino = |o: u8| crate::layout::external_ino(o as u32 + 1);
            for op in ops {
                match op {
                    GOp::Carve { cg, owner, nslots } => {
                        let cg = (cg % 3) as usize;
                        let hdr = &mut cgs[cg];
                        let _ = ix.carve(&sb, hdr, owner_ino(owner), nslots).unwrap();
                    }
                    GOp::Alloc { owner } => {
                        let (cgs_ref, _) = (&mut cgs, ());
                        let _ = ix.alloc_slot(
                            owner_ino(owner),
                            None,
                            |c, i, d, _| {
                                cgs_ref[c as usize].groups[i as usize] = Some(*d);
                            },
                            &sb,
                        );
                    }
                    GOp::FreeRandomLive { pick } => {
                        // Deterministically pick a live block if any exist.
                        let live: Vec<u64> = ix
                            .iter()
                            .flat_map(|g| {
                                (0..g.nslots)
                                    .filter(|&s| g.member_valid & (1 << s) != 0)
                                    .map(|s| g.slot_block(s))
                                    .collect::<Vec<_>>()
                            })
                            .collect();
                        if live.is_empty() {
                            continue;
                        }
                        let blk = live[pick as usize % live.len()];
                        let outcome = ix.free_slot(&sb, blk, |c, i, d| {
                            cgs[c as usize].groups[i as usize] = d.copied();
                        });
                        if let Some(FreeOutcome::Dissolved { start, nslots }) = outcome {
                            let cg = sb.block_cg(start).unwrap();
                            let ds = sb.cg_data_start(cg);
                            cgs[cg as usize]
                                .block_bitmap
                                .clear_run((start - ds) as usize, nslots as usize);
                        }
                    }
                    GOp::Trim { cg } => {
                        let cg = (cg % 3) as u32;
                        let released = {
                            let cgs_ref = &mut cgs;
                            ix.trim_slack(&sb, cg, |c, i, d| {
                                cgs_ref[c as usize].groups[i as usize] = d.copied();
                            })
                        };
                        for (start, len) in released {
                            let ds = sb.cg_data_start(cg);
                            cgs[cg as usize]
                                .block_bitmap
                                .clear_run((start - ds) as usize, len);
                        }
                    }
                    GOp::Reown { from, to } => {
                        let cgs_ref = &mut cgs;
                        ix.reown(
                            owner_ino(from),
                            owner_ino(to),
                            |c, i, d| {
                                cgs_ref[c as usize].groups[i as usize] = Some(*d);
                            },
                            &sb,
                        );
                    }
                }

                // Invariant 1: disjoint extents within CG bounds.
                let mut extents: Vec<(u64, u64)> =
                    ix.iter().map(|g| (g.start, g.start + g.nslots as u64)).collect();
                extents.sort_unstable();
                for w in extents.windows(2) {
                    prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
                }
                for g in ix.iter() {
                    let cg = sb.block_cg(g.start);
                    prop_assert_eq!(cg, sb.block_cg(g.start + g.nslots as u64 - 1));
                    prop_assert!(g.nslots >= 1);
                }

                // Invariant 2: bitmap == union of extents.
                for cgno in 0..3u32 {
                    let ds = sb.cg_data_start(cgno);
                    let hdr = &cgs[cgno as usize];
                    for i in 0..hdr.block_bitmap.len() {
                        let blk = ds + i as u64;
                        let in_extent = ix.group_of_block(&sb, blk).is_some();
                        prop_assert_eq!(
                            hdr.block_bitmap.get(i),
                            in_extent,
                            "bitmap drift at block {}", blk
                        );
                    }
                }

                // Invariant 3: slot_block round trip.
                for g in ix.iter() {
                    for s in 0..g.nslots {
                        let found = ix.group_of_block(&sb, g.slot_block(s)).expect("in extent");
                        prop_assert_eq!((found.cg, found.idx), (g.cg, g.idx));
                    }
                }
            }
            // Invariant 4: rebuild from headers gives an identical index.
            let rebuilt = GroupIndex::build(&sb, &cgs);
            prop_assert_eq!(rebuilt.len(), ix.len());
            for g in ix.iter() {
                let r = rebuilt.get(g.cg, g.idx).expect("present after rebuild");
                prop_assert_eq!(r, g);
            }
        }
    }
}

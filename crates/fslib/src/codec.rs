//! Little-endian integer codecs for on-disk structures.
//!
//! Every on-disk structure in this workspace is serialized by hand with
//! these helpers rather than by casting structs — the layouts stay explicit,
//! endian-stable, and free of padding surprises.

/// Read a `u16` at `off`.
///
/// # Panics
/// Panics if the range is out of bounds (on-disk offsets are statically
/// known; an out-of-range read is a programming error, not bad data).
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(buf[off..off + 2].try_into().expect("u16 range"))
}

/// Write a `u16` at `off`.
#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u32` at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("u32 range"))
}

/// Write a `u32` at `off`.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u64` at `off`.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("u64 range"))
}

/// Write a `u64` at `off`.
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = [0u8; 32];
        put_u16(&mut b, 1, 0xBEEF);
        put_u32(&mut b, 4, 0xDEADBEEF);
        put_u64(&mut b, 8, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_u16(&b, 1), 0xBEEF);
        assert_eq!(get_u32(&b, 4), 0xDEADBEEF);
        assert_eq!(get_u64(&b, 8), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut b = [0u8; 4];
        put_u32(&mut b, 0, 0x0102_0304);
        assert_eq!(b, [4, 3, 2, 1]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let b = [0u8; 4];
        let _ = get_u32(&b, 2);
    }
}

//! The VFS layer: the `FileSystem` trait all implementations expose.
//!
//! Benchmarks, workloads, integration tests and the examples are all
//! written against this trait, so classic FFS, the four C-FFS variants and
//! the in-memory oracle are interchangeable.
//!
//! ## Inode-handle stability
//!
//! One C-FFS design consequence surfaces in the trait contract: an embedded
//! inode is *named by its physical location* inside a directory block. Two
//! operations can therefore relocate an inode and change its number:
//!
//! * [`FileSystem::rename`] may move the entry (and the embedded inode with
//!   it) to a different block; it returns the file's possibly-new inode
//!   number.
//! * [`FileSystem::link`] externalizes an embedded inode (multi-link files
//!   keep their inode in the external inode file, exactly as the paper
//!   specifies); it returns the possibly-new inode number of the target.
//!
//! Implementations without embedded inodes simply return the unchanged
//! number. Callers holding handles must adopt the returned values — the
//! same discipline a C-FFS kernel applies to its in-core inode table.

use crate::cpu::CpuModel;
use crate::error::FsResult;
use cffs_disksim::{DiskStats, SimTime};
use cffs_disksim::driver::DriverStats;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;

/// An inode number. For embedded inodes this encodes a physical location;
/// treat it as opaque.
pub type Ino = u64;

/// What kind of object an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// Attributes returned by [`FileSystem::getattr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr {
    /// The inode number queried.
    pub ino: Ino,
    /// Object kind.
    pub kind: FileKind,
    /// Size in bytes.
    pub size: u64,
    /// Hard-link count.
    pub nlink: u32,
    /// Data blocks allocated (file-system blocks, not sectors).
    pub blocks: u64,
}

/// One entry from [`FileSystem::readdir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (no path separators).
    pub name: String,
    /// Inode the name refers to.
    pub ino: Ino,
    /// Kind, denormalized into the entry as FFS does.
    pub kind: FileKind,
}

/// Capacity summary returned by [`FileSystem::statfs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatFs {
    /// Block size in bytes.
    pub block_size: u32,
    /// Total data blocks.
    pub total_blocks: u64,
    /// Blocks free for allocation (group-reserved slack excluded).
    pub free_blocks: u64,
    /// Blocks reserved inside partially used groups (C-FFS only; zero
    /// elsewhere). These are reclaimable, just not yet free.
    pub group_slack_blocks: u64,
    /// Total inode slots. `u64::MAX` means "dynamic" (C-FFS embedded
    /// inodes have no static limit — the paper's [Forin94] point).
    pub total_inodes: u64,
    /// Free inode slots (meaningless when `total_inodes` is dynamic).
    pub free_inodes: u64,
}

/// Buffer-cache statistics, defined here so the trait can expose them
/// without a circular crate dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Block lookups.
    pub lookups: u64,
    /// Hits via the physical-address index.
    pub phys_hits: u64,
    /// Hits via the logical (file, offset) index.
    pub logical_hits: u64,
    /// Group-fetched blocks later claimed by their file ("back-binding",
    /// the paper's Section 3 mechanism).
    pub backbinds: u64,
    /// Buffers evicted.
    pub evictions: u64,
    /// Dirty buffers written back.
    pub writebacks: u64,
    /// Synchronous (ordering-constrained) metadata writes.
    pub sync_writes: u64,
    /// Whole-group reads issued.
    pub group_reads: u64,
    /// Blocks brought in by group reads.
    pub group_read_blocks: u64,
}


impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        obj![
            ("lookups", self.lookups.to_json()),
            ("phys_hits", self.phys_hits.to_json()),
            ("logical_hits", self.logical_hits.to_json()),
            ("backbinds", self.backbinds.to_json()),
            ("evictions", self.evictions.to_json()),
            ("writebacks", self.writebacks.to_json()),
            ("sync_writes", self.sync_writes.to_json()),
            ("group_reads", self.group_reads.to_json()),
            ("group_read_blocks", self.group_read_blocks.to_json()),
        ]
    }
}

/// Combined I/O accounting: what the E8 reproduction reads out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Drive-level counters.
    pub disk: DiskStats,
    /// Driver-level counters (coalescing).
    pub driver: DriverStats,
    /// Buffer-cache counters.
    pub cache: CacheStats,
}


impl ToJson for IoStats {
    fn to_json(&self) -> Json {
        obj![
            ("disk", self.disk.to_json()),
            ("driver", self.driver.to_json()),
            ("cache", self.cache.to_json()),
        ]
    }
}

/// Metadata-integrity policy — the paper's Section 4 experimental axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetadataMode {
    /// Synchronous, ordered metadata writes: the conventional FFS approach
    /// the paper measures first.
    #[default]
    Synchronous,
    /// All metadata updates delayed (written at sync). Emulates soft
    /// updates exactly the way the paper does: "we have not yet actually
    /// implemented soft updates in C-FFS, but rather emulate it by using
    /// delayed writes for all metadata updates".
    Delayed,
}

/// The interface every file system in this workspace implements.
pub trait FileSystem {
    /// Short label for reports, e.g. `"C-FFS"` or `"conventional"`.
    fn label(&self) -> &str;

    /// The root directory's inode number.
    fn root(&self) -> Ino;

    /// Look `name` up in directory `dir`.
    fn lookup(&mut self, dir: Ino, name: &str) -> FsResult<Ino>;

    /// Fetch attributes of `ino`.
    fn getattr(&mut self, ino: Ino) -> FsResult<Attr>;

    /// Create a regular file named `name` in `dir`. Fails with
    /// [`crate::FsError::Exists`] if the name is taken.
    fn create(&mut self, dir: Ino, name: &str) -> FsResult<Ino>;

    /// Create a directory.
    fn mkdir(&mut self, dir: Ino, name: &str) -> FsResult<Ino>;

    /// Remove a file name. The file's storage is freed when the last link
    /// goes (there are no open-file reference counts in the simulation).
    fn unlink(&mut self, dir: Ino, name: &str) -> FsResult<()>;

    /// Remove an empty directory.
    fn rmdir(&mut self, dir: Ino, name: &str) -> FsResult<()>;

    /// Add a hard link `dir/name` to `target` (a regular file). Returns the
    /// target's inode number after the operation — C-FFS externalizes an
    /// embedded inode here, which renumbers it.
    fn link(&mut self, target: Ino, dir: Ino, name: &str) -> FsResult<Ino>;

    /// Rename `odir/oname` to `ndir/nname`, replacing any existing file at
    /// the destination. Returns the moved object's inode number after the
    /// operation (embedded inodes move with their entry).
    fn rename(&mut self, odir: Ino, oname: &str, ndir: Ino, nname: &str) -> FsResult<Ino>;

    /// Read up to `buf.len()` bytes at `off`; returns bytes read (short at
    /// end of file).
    fn read(&mut self, ino: Ino, off: u64, buf: &mut [u8]) -> FsResult<usize>;

    /// Write `data` at `off`, extending the file as needed; returns bytes
    /// written.
    fn write(&mut self, ino: Ino, off: u64, data: &[u8]) -> FsResult<usize>;

    /// Truncate (or zero-extend) to `size` bytes.
    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()>;

    /// List a directory (excluding `.` and `..`, which the simulation keeps
    /// implicit).
    fn readdir(&mut self, dir: Ino) -> FsResult<Vec<DirEntry>>;

    /// Write back all dirty state. On return the on-disk image is
    /// consistent and complete — the paper "forcefully write[s] back all
    /// dirty blocks before considering the measurement complete".
    fn sync(&mut self) -> FsResult<()>;

    /// Capacity summary.
    fn statfs(&mut self) -> FsResult<StatFs>;

    /// Current simulated time (the experiment clock).
    fn now(&self) -> SimTime;

    /// Cumulative I/O statistics.
    fn io_stats(&self) -> IoStats;

    /// Reset I/O statistics (for per-phase measurement).
    fn reset_io_stats(&mut self);

    /// Sync, then drop all clean cached state, emulating a remount so the
    /// next phase starts cold — how the benchmark separates create and read
    /// phases. Implementations without caches may no-op.
    fn drop_caches(&mut self) -> FsResult<()> {
        self.sync()
    }

    /// Application-directed grouping hint (the paper's Section 6 future
    /// work): ask that the named files in `dir` be co-located in one group.
    /// Default: ignored.
    fn group_hint(&mut self, _dir: Ino, _names: &[&str]) -> FsResult<()> {
        Ok(())
    }

    /// The CPU cost model in effect (for workload think-time accounting).
    fn cpu_model(&self) -> CpuModel {
        CpuModel::default()
    }

    /// The stack-wide observability handle (counter registry + event
    /// trace), when the implementation carries one. Benchmarks snapshot it
    /// per phase; `None` means the stack has no instrumentation.
    fn obs(&self) -> Option<std::sync::Arc<cffs_obs::Obs>> {
        None
    }
}

/// The concurrent surface: the subset of [`FileSystem`] that client
/// threads can drive **in parallel against one shared instance**. Every
/// method takes `&self`, and the implementation must be `Send + Sync` —
/// internally it shards or locks its own state (per-cylinder-group
/// allocation maps, cache shards, a threaded driver queue).
///
/// Time discipline: each client thread advances its own virtual clock
/// (thread-local mirror in `cffs_obs::Obs`); the run's elapsed simulated
/// time is the cross-thread high-water mark `Obs::global_clock_ns`, so
/// overlapping CPU work on different threads genuinely overlaps while
/// disk requests serialize through the shared driver worker.
///
/// The method set is intentionally narrower than [`FileSystem`]:
/// handle-renumbering operations (`rename`, `link`) and whole-fs
/// maintenance (`truncate`, `drop_caches`) stay on the single-threaded
/// trait — concurrent workloads don't need them and their inode-handle
/// adoption rules don't compose across racing threads.
pub trait ConcurrentFs: Send + Sync {
    /// Short label for reports, e.g. `"C-FFS"`.
    fn label(&self) -> &str;
    /// The root directory's inode number.
    fn root(&self) -> Ino;
    /// Look `name` up in directory `dir`.
    fn lookup(&self, dir: Ino, name: &str) -> FsResult<Ino>;
    /// Fetch attributes of `ino`.
    fn getattr(&self, ino: Ino) -> FsResult<Attr>;
    /// Create a regular file named `name` in `dir`.
    fn create(&self, dir: Ino, name: &str) -> FsResult<Ino>;
    /// Create a directory.
    fn mkdir(&self, dir: Ino, name: &str) -> FsResult<Ino>;
    /// Remove a file name (storage freed with the last link).
    fn unlink(&self, dir: Ino, name: &str) -> FsResult<()>;
    /// Read up to `buf.len()` bytes at `off`; returns bytes read.
    fn read(&self, ino: Ino, off: u64, buf: &mut [u8]) -> FsResult<usize>;
    /// Write `data` at `off`, extending as needed; returns bytes written.
    fn write(&self, ino: Ino, off: u64, data: &[u8]) -> FsResult<usize>;
    /// List a directory.
    fn readdir(&self, dir: Ino) -> FsResult<Vec<DirEntry>>;
    /// Write back all dirty state (safe to race with foreground ops).
    fn sync(&self) -> FsResult<()>;
    /// The calling thread's current simulated time.
    fn now(&self) -> SimTime;
    /// The stack-wide observability handle, when carried.
    fn obs(&self) -> Option<std::sync::Arc<cffs_obs::Obs>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statfs_default_is_zeroed() {
        let s = StatFs::default();
        assert_eq!(s.free_blocks, 0);
        assert_eq!(s.group_slack_blocks, 0);
    }

    #[test]
    fn metadata_mode_default_is_synchronous() {
        assert_eq!(MetadataMode::default(), MetadataMode::Synchronous);
    }

    #[test]
    fn trait_is_object_safe() {
        // Compile-time check: we rely on `&mut dyn FileSystem` everywhere.
        fn _takes_dyn(_fs: &mut dyn FileSystem) {}
    }
}

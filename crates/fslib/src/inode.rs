//! The on-disk inode, shared by classic FFS and C-FFS.
//!
//! Both file systems use the same 128-byte inode image: 12 direct block
//! pointers, one single-indirect and one double-indirect pointer, 4 KB
//! blocks. What differs is *where the image lives*: FFS keeps it in a
//! static per-cylinder-group table; C-FFS embeds it in the directory entry
//! (or, for multi-link files, in the external inode file). Sharing the
//! codec keeps the comparison honest — identical metadata, different
//! placement, exactly the paper's experimental control.

use crate::codec::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use crate::vfs::FileKind;
use crate::BLOCK_SIZE;

/// Size of an inode image on disk.
pub const INODE_SIZE: usize = 128;

/// Number of direct block pointers.
pub const NDIRECT: usize = 12;

/// Block pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 4;

/// Sentinel for "no block allocated".
pub const NO_BLOCK: u32 = 0;

/// Byte offset of the `generation` field within a serialized inode image
/// (C-FFS reads it directly out of directory blocks to stamp handles).
pub const GENERATION_OFFSET: usize = 76;

/// Largest mappable logical block number + 1.
pub const MAX_FILE_BLOCKS: u64 =
    NDIRECT as u64 + PTRS_PER_BLOCK as u64 + (PTRS_PER_BLOCK as u64) * (PTRS_PER_BLOCK as u64);

/// Maximum file size in bytes.
pub const MAX_FILE_SIZE: u64 = MAX_FILE_BLOCKS * BLOCK_SIZE as u64;

/// In-memory form of the on-disk inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Object kind.
    pub kind: FileKind,
    /// Hard-link count.
    pub nlink: u16,
    /// Size in bytes.
    pub size: u64,
    /// Allocated data blocks (including indirect blocks).
    pub blocks: u32,
    /// Direct block pointers ([`NO_BLOCK`] = hole).
    pub direct: [u32; NDIRECT],
    /// Single-indirect block pointer.
    pub indirect: u32,
    /// Double-indirect block pointer.
    pub dindirect: u32,
    /// Generation number (bumped on every reuse of the slot).
    pub generation: u32,
    /// Implementation-defined flags. C-FFS keeps the directory's active
    /// group hint here.
    pub flags: u32,
    /// Modification time (simulated seconds).
    pub mtime: u32,
}

const KIND_FREE: u16 = 0;
const KIND_FILE: u16 = 1;
const KIND_DIR: u16 = 2;

impl Inode {
    /// A fresh inode of the given kind.
    pub fn new(kind: FileKind) -> Self {
        Inode {
            kind,
            nlink: 1,
            size: 0,
            blocks: 0,
            direct: [NO_BLOCK; NDIRECT],
            indirect: NO_BLOCK,
            dindirect: NO_BLOCK,
            generation: 0,
            flags: 0,
            mtime: 0,
        }
    }

    /// Serialize into a 128-byte region at `buf[off..]`.
    ///
    /// # Panics
    /// Panics if the region is out of bounds.
    pub fn write_to(&self, buf: &mut [u8], off: usize) {
        let kind = match self.kind {
            FileKind::File => KIND_FILE,
            FileKind::Dir => KIND_DIR,
        };
        buf[off..off + INODE_SIZE].fill(0);
        put_u16(buf, off, kind);
        put_u16(buf, off + 2, self.nlink);
        put_u64(buf, off + 4, self.size);
        put_u32(buf, off + 12, self.mtime);
        put_u32(buf, off + 16, self.blocks);
        for (i, &d) in self.direct.iter().enumerate() {
            put_u32(buf, off + 20 + 4 * i, d);
        }
        put_u32(buf, off + 68, self.indirect);
        put_u32(buf, off + 72, self.dindirect);
        put_u32(buf, off + 76, self.generation);
        put_u32(buf, off + 80, self.flags);
    }

    /// Deserialize from a 128-byte region. Returns `None` for a free slot
    /// (kind 0) or an unrecognized kind tag.
    pub fn read_from(buf: &[u8], off: usize) -> Option<Self> {
        let kind = match get_u16(buf, off) {
            KIND_FREE => return None,
            KIND_FILE => FileKind::File,
            KIND_DIR => FileKind::Dir,
            _ => return None,
        };
        let mut direct = [NO_BLOCK; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = get_u32(buf, off + 20 + 4 * i);
        }
        Some(Inode {
            kind,
            nlink: get_u16(buf, off + 2),
            size: get_u64(buf, off + 4),
            mtime: get_u32(buf, off + 12),
            blocks: get_u32(buf, off + 16),
            direct,
            indirect: get_u32(buf, off + 68),
            dindirect: get_u32(buf, off + 72),
            generation: get_u32(buf, off + 76),
            flags: get_u32(buf, off + 80),
        })
    }

    /// Mark a 128-byte slot free.
    pub fn clear_slot(buf: &mut [u8], off: usize) {
        buf[off..off + INODE_SIZE].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut ino = Inode::new(FileKind::File);
        ino.nlink = 3;
        ino.size = 123_456_789;
        ino.blocks = 42;
        ino.direct[0] = 777;
        ino.direct[11] = 888;
        ino.indirect = 999;
        ino.dindirect = 1000;
        ino.generation = 5;
        ino.flags = 0xAA55;
        ino.mtime = 1234;
        let mut buf = vec![0u8; 256];
        ino.write_to(&mut buf, 128);
        assert_eq!(Inode::read_from(&buf, 128), Some(ino));
    }

    #[test]
    fn free_slot_reads_none() {
        let buf = vec![0u8; 128];
        assert_eq!(Inode::read_from(&buf, 0), None);
    }

    #[test]
    fn clear_slot_frees() {
        let mut buf = vec![0u8; 128];
        Inode::new(FileKind::Dir).write_to(&mut buf, 0);
        assert!(Inode::read_from(&buf, 0).is_some());
        Inode::clear_slot(&mut buf, 0);
        assert_eq!(Inode::read_from(&buf, 0), None);
    }

    #[test]
    fn garbage_kind_reads_none() {
        let mut buf = vec![0u8; 128];
        buf[0] = 0xFF;
        buf[1] = 0xFF;
        assert_eq!(Inode::read_from(&buf, 0), None);
    }

    #[test]
    fn max_file_size_is_multi_gb() {
        // 12 direct + 1024 indirect + 1024^2 double-indirect 4 KB blocks.
        assert_eq!(MAX_FILE_BLOCKS, 12 + 1024 + 1024 * 1024);
        let four_gb: u64 = 4 << 30;
        assert!(MAX_FILE_SIZE > four_gb);
    }

    #[test]
    fn dirty_slot_reuse_is_clean() {
        // Writing a new inode over a stale image must not leak old fields.
        let mut buf = vec![0xFFu8; 128];
        let ino = Inode::new(FileKind::File);
        ino.write_to(&mut buf, 0);
        let back = Inode::read_from(&buf, 0).unwrap();
        assert_eq!(back, ino);
        assert_eq!(back.direct, [NO_BLOCK; NDIRECT]);
    }
}

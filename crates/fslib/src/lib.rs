#![warn(missing_docs)]

//! # cffs-fslib
//!
//! Shared file-system infrastructure for the C-FFS reproduction:
//!
//! * [`vfs::FileSystem`] — the trait every implementation (classic FFS, the
//!   four C-FFS variants, and the in-memory oracle) exposes; benchmarks and
//!   integration tests are written against it.
//! * [`error::FsError`] — the common error type.
//! * [`bitmap::Bitmap`] — block/inode bitmaps with contiguous-run search
//!   (explicit grouping needs 16-block extents).
//! * [`cpu::CpuModel`] — per-operation CPU costs charged to the simulated
//!   clock, calibrated to the paper's 120 MHz Pentium testbed.
//! * [`path`] — `mkdir -p` / read / write convenience helpers over any
//!   `FileSystem`.
//! * [`model::ModelFs`] — a HashMap-backed reference implementation used as
//!   the oracle in property tests.
//! * [`codec`] — little-endian on-disk integer codecs.

pub mod bitmap;
pub mod codec;
pub mod cpu;
pub mod error;
pub mod inode;
pub mod model;
pub mod path;
pub mod vfs;

pub use bitmap::Bitmap;
pub use cpu::CpuModel;
pub use error::{FsError, FsResult};
pub use inode::Inode;
pub use vfs::{
    Attr, CacheStats, ConcurrentFs, DirEntry, FileKind, FileSystem, Ino, IoStats,
    MetadataMode, StatFs,
};

/// File-system block size in bytes. The paper's implementation used 4 KB
/// blocks with no fragments; so do we.
pub const BLOCK_SIZE: usize = 4096;

/// Sectors per file-system block.
pub const SECTORS_PER_BLOCK: u64 = (BLOCK_SIZE / cffs_disksim::SECTOR_SIZE) as u64;

/// Maximum file-name length, as in FFS.
pub const MAX_NAME_LEN: usize = 255;

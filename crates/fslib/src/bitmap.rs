//! Allocation bitmaps with contiguous-run search.
//!
//! Both file systems keep one block bitmap per cylinder group. C-FFS
//! additionally needs to carve 16-block *group* extents, so the bitmap
//! supports finding and claiming contiguous free runs.
//!
//! The bitmap serializes to/from raw bytes so it can live inside a cylinder
//! group's header block.

/// A fixed-size allocation bitmap. Bit set = allocated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u8>,
    len: usize,
    used: usize,
}

impl Bitmap {
    /// Create an all-free bitmap tracking `len` items.
    pub fn new(len: usize) -> Self {
        Bitmap { bits: vec![0u8; len.div_ceil(8)], len, used: 0 }
    }

    /// Deserialize from on-disk bytes.
    ///
    /// # Panics
    /// Panics if `raw` is too short for `len` bits.
    pub fn from_bytes(raw: &[u8], len: usize) -> Self {
        let nbytes = len.div_ceil(8);
        assert!(raw.len() >= nbytes, "bitmap bytes too short: {} < {nbytes}", raw.len());
        let bits = raw[..nbytes].to_vec();
        let mut bm = Bitmap { bits, len, used: 0 };
        bm.used = (0..len).filter(|&i| bm.get(i)).count();
        bm
    }

    /// Serialize into `out` (must be at least `len.div_ceil(8)` bytes).
    ///
    /// # Panics
    /// Panics if `out` is too short.
    pub fn write_bytes(&self, out: &mut [u8]) {
        out[..self.bits.len()].copy_from_slice(&self.bits);
    }

    /// Number of tracked items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated items.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Number of free items.
    pub fn free(&self) -> usize {
        self.len - self.used
    }

    /// Is item `i` allocated?
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Allocate item `i`. Returns `false` if it was already allocated.
    pub fn set(&mut self, i: usize) -> bool {
        if self.get(i) {
            return false;
        }
        self.bits[i / 8] |= 1 << (i % 8);
        self.used += 1;
        true
    }

    /// Free item `i`. Returns `false` if it was already free.
    pub fn clear(&mut self, i: usize) -> bool {
        if !self.get(i) {
            return false;
        }
        self.bits[i / 8] &= !(1 << (i % 8));
        self.used -= 1;
        true
    }

    /// Find the first free item at or after `hint`, wrapping around.
    pub fn find_free(&self, hint: usize) -> Option<usize> {
        if self.used == self.len {
            return None;
        }
        let start = if self.len == 0 { 0 } else { hint % self.len };
        (start..self.len)
            .chain(0..start)
            .find(|&i| !self.get(i))
    }

    /// Find `run` contiguous free items starting at or after `hint`
    /// (wrapping the *starting position*, not the run itself).
    pub fn find_free_run(&self, hint: usize, run: usize) -> Option<usize> {
        if run == 0 || run > self.len {
            return None;
        }
        let start = if self.len == 0 { 0 } else { hint % self.len };
        let candidates = (start..=self.len.saturating_sub(run)).chain(0..start.min(self.len.saturating_sub(run) + 1));
        'outer: for s in candidates {
            for i in s..s + run {
                if self.get(i) {
                    continue 'outer;
                }
            }
            return Some(s);
        }
        None
    }

    /// Allocate an entire run found by [`Bitmap::find_free_run`].
    ///
    /// # Panics
    /// Panics if any item in the run was already allocated — callers must
    /// only pass runs they just found free.
    pub fn set_run(&mut self, start: usize, run: usize) {
        for i in start..start + run {
            assert!(self.set(i), "set_run over allocated item {i}");
        }
    }

    /// Free an entire run.
    ///
    /// # Panics
    /// Panics if any item in the run was already free.
    pub fn clear_run(&mut self, start: usize, run: usize) {
        for i in start..start + run {
            assert!(self.clear(i), "clear_run over free item {i}");
        }
    }

    /// Iterate over allocated item indices.
    pub fn iter_used(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_set_clear() {
        let mut b = Bitmap::new(100);
        assert_eq!(b.free(), 100);
        assert!(b.set(5));
        assert!(!b.set(5));
        assert!(b.get(5));
        assert_eq!(b.used(), 1);
        assert!(b.clear(5));
        assert!(!b.clear(5));
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn find_free_respects_hint_and_wraps() {
        let mut b = Bitmap::new(10);
        for i in 3..10 {
            b.set(i);
        }
        assert_eq!(b.find_free(5), Some(0)); // wraps past the allocated tail
        assert_eq!(b.find_free(1), Some(1));
        for i in 0..3 {
            b.set(i);
        }
        assert_eq!(b.find_free(0), None);
    }

    #[test]
    fn find_free_run_basic() {
        let mut b = Bitmap::new(64);
        b.set(10);
        // 0..10 is only 10 items, so a 16-run must start past the hole.
        assert_eq!(b.find_free_run(0, 16), Some(11));
        assert_eq!(b.find_free_run(0, 10), Some(0));
    }

    #[test]
    fn find_free_run_wraps_start() {
        let mut b = Bitmap::new(32);
        for i in 20..32 {
            b.set(i);
        }
        // Hint beyond the only free region still finds it.
        assert_eq!(b.find_free_run(25, 8), Some(0));
        assert_eq!(b.find_free_run(25, 21), None);
    }

    #[test]
    fn run_alloc_free_cycle() {
        let mut b = Bitmap::new(64);
        let s = b.find_free_run(0, 16).unwrap();
        b.set_run(s, 16);
        assert_eq!(b.used(), 16);
        assert_eq!(b.find_free_run(0, 64), None);
        assert_eq!(b.find_free_run(0, 48), Some(16));
        b.clear_run(s, 16);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn serialization_round_trip() {
        let mut b = Bitmap::new(77);
        for i in [0, 3, 76, 40] {
            b.set(i);
        }
        let mut raw = vec![0u8; 10];
        b.write_bytes(&mut raw);
        let b2 = Bitmap::from_bytes(&raw, 77);
        assert_eq!(b, b2);
        assert_eq!(b2.used(), 4);
    }

    #[test]
    fn oversized_run_is_none() {
        let b = Bitmap::new(8);
        assert_eq!(b.find_free_run(0, 9), None);
        assert_eq!(b.find_free_run(0, 0), None);
    }

    proptest! {
        #[test]
        fn used_count_matches_bits(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..400)) {
            let mut b = Bitmap::new(200);
            for (i, set) in ops {
                if set { b.set(i); } else { b.clear(i); }
            }
            let counted = (0..200).filter(|&i| b.get(i)).count();
            prop_assert_eq!(b.used(), counted);
            prop_assert_eq!(b.free(), 200 - counted);
        }

        #[test]
        fn found_runs_are_actually_free(
            allocs in proptest::collection::vec(0usize..128, 0..64),
            hint in 0usize..128,
            run in 1usize..20,
        ) {
            let mut b = Bitmap::new(128);
            for i in allocs { b.set(i); }
            if let Some(s) = b.find_free_run(hint, run) {
                for i in s..s + run {
                    prop_assert!(!b.get(i), "run at {s} contains allocated item {i}");
                }
            }
        }

        #[test]
        fn serialization_preserves_state(allocs in proptest::collection::vec(0usize..100, 0..100)) {
            let mut b = Bitmap::new(100);
            for i in allocs { b.set(i); }
            let mut raw = vec![0u8; 13];
            b.write_bytes(&mut raw);
            prop_assert_eq!(Bitmap::from_bytes(&raw, 100), b);
        }
    }
}

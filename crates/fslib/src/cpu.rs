//! CPU cost model.
//!
//! The paper ran on a 120 MHz Pentium. When metadata writes are delayed
//! (the soft-updates emulation of Section 4), whole benchmark phases become
//! cache-bound, and on the real machine their duration was set by CPU and
//! memory-copy costs. Without a CPU model those phases would complete in
//! zero simulated time and every ratio involving them would be infinite.
//!
//! File-system implementations charge these costs to the driver clock as
//! they execute. Defaults are calibrated to mid-90s measurements: a system
//! call costs tens of microseconds, memcpy moves ~50 MB/s, and directory
//! scans cost about a microsecond per entry.

use cffs_disksim::SimDuration;

/// Per-operation CPU costs charged to the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuModel {
    /// Fixed cost of entering a file-system operation (trap + VFS layer).
    pub syscall: SimDuration,
    /// Cost of one block-level operation (cache lookup, mapping, bookkeeping).
    pub block_op: SimDuration,
    /// Cost of copying one kilobyte between buffers.
    pub copy_per_kb: SimDuration,
    /// Cost of examining one directory entry during a scan.
    pub dirent_scan: SimDuration,
    /// Cost of an allocation decision (bitmap search step).
    pub alloc_op: SimDuration,
}

impl Default for CpuModel {
    /// Costs for the paper's 120 MHz Pentium class machine.
    fn default() -> Self {
        CpuModel {
            syscall: SimDuration::from_micros(25),
            block_op: SimDuration::from_micros(8),
            copy_per_kb: SimDuration::from_micros(20),
            dirent_scan: SimDuration::from_nanos(1_000),
            alloc_op: SimDuration::from_micros(4),
        }
    }
}

impl CpuModel {
    /// A free CPU: pure disk-time experiments (Figure 2 reproduction).
    pub fn free() -> Self {
        CpuModel {
            syscall: SimDuration::ZERO,
            block_op: SimDuration::ZERO,
            copy_per_kb: SimDuration::ZERO,
            dirent_scan: SimDuration::ZERO,
            alloc_op: SimDuration::ZERO,
        }
    }

    /// Cost of copying `bytes` bytes.
    pub fn copy_cost(&self, bytes: usize) -> SimDuration {
        // Round up to whole KB so tiny copies are not free.
        let kb = (bytes as u64).div_ceil(1024);
        SimDuration::from_nanos(kb * self.copy_per_kb.as_nanos())
    }

    /// Cost of scanning `n` directory entries.
    pub fn scan_cost(&self, n: usize) -> SimDuration {
        SimDuration::from_nanos(n as u64 * self.dirent_scan.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_1990s_scale() {
        let c = CpuModel::default();
        // A full small-file create should cost well under a millisecond of
        // CPU — disk time must dominate in the synchronous experiments.
        let create_cpu = c.syscall + c.block_op + c.copy_cost(1024) + c.alloc_op;
        assert!(create_cpu.as_nanos() < 1_000_000);
        assert!(create_cpu.as_nanos() > 10_000);
    }

    #[test]
    fn copy_rounds_up() {
        let c = CpuModel::default();
        assert_eq!(c.copy_cost(1), c.copy_cost(1024));
        assert_eq!(c.copy_cost(1025).as_nanos(), 2 * c.copy_per_kb.as_nanos());
        assert_eq!(c.copy_cost(0), SimDuration::ZERO);
    }

    #[test]
    fn free_cpu_is_free() {
        let c = CpuModel::free();
        assert_eq!(c.copy_cost(1 << 20), SimDuration::ZERO);
        assert_eq!(c.scan_cost(1000), SimDuration::ZERO);
    }

    #[test]
    fn scan_scales_linearly() {
        let c = CpuModel::default();
        assert_eq!(c.scan_cost(100).as_nanos(), 100 * c.dirent_scan.as_nanos());
    }
}

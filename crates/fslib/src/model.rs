//! `ModelFs`: the in-memory reference file system.
//!
//! A deliberately boring HashMap-of-Vec implementation of the
//! [`FileSystem`] trait. It performs no I/O, charges no time, and is simple
//! enough to be obviously correct — which is exactly what the property
//! tests need: every on-disk implementation is driven with the same random
//! operation sequence and must end in the same logical state as `ModelFs`.

use crate::error::{check_name, FsError, FsResult};
use crate::vfs::{Attr, DirEntry, FileKind, FileSystem, Ino, IoStats, StatFs};
use cffs_disksim::SimTime;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Clone)]
enum Node {
    File { data: Vec<u8>, nlink: u32 },
    Dir { entries: BTreeMap<String, Ino> },
}

/// In-memory oracle file system.
#[derive(Debug, Clone)]
pub struct ModelFs {
    nodes: HashMap<Ino, Node>,
    next_ino: Ino,
}

const ROOT: Ino = 1;

impl ModelFs {
    /// Create an empty file system with just a root directory.
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(ROOT, Node::Dir { entries: BTreeMap::new() });
        ModelFs { nodes, next_ino: 2 }
    }

    fn dir_entries(&self, dir: Ino) -> FsResult<&BTreeMap<String, Ino>> {
        match self.nodes.get(&dir) {
            Some(Node::Dir { entries }) => Ok(entries),
            Some(Node::File { .. }) => Err(FsError::NotDir),
            None => Err(FsError::StaleHandle),
        }
    }

    fn dir_entries_mut(&mut self, dir: Ino) -> FsResult<&mut BTreeMap<String, Ino>> {
        match self.nodes.get_mut(&dir) {
            Some(Node::Dir { entries }) => Ok(entries),
            Some(Node::File { .. }) => Err(FsError::NotDir),
            None => Err(FsError::StaleHandle),
        }
    }

    fn alloc_ino(&mut self) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        ino
    }

    fn drop_link(&mut self, ino: Ino) {
        let gone = match self.nodes.get_mut(&ino) {
            Some(Node::File { nlink, .. }) => {
                *nlink -= 1;
                *nlink == 0
            }
            _ => true,
        };
        if gone {
            self.nodes.remove(&ino);
        }
    }
}

impl Default for ModelFs {
    fn default() -> Self {
        Self::new()
    }
}

impl FileSystem for ModelFs {
    fn label(&self) -> &str {
        "model"
    }

    fn root(&self) -> Ino {
        ROOT
    }

    fn lookup(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        check_name(name)?;
        self.dir_entries(dir)?.get(name).copied().ok_or(FsError::NotFound)
    }

    fn getattr(&mut self, ino: Ino) -> FsResult<Attr> {
        match self.nodes.get(&ino) {
            Some(Node::File { data, nlink }) => Ok(Attr {
                ino,
                kind: FileKind::File,
                size: data.len() as u64,
                nlink: *nlink,
                blocks: (data.len() as u64).div_ceil(crate::BLOCK_SIZE as u64),
            }),
            Some(Node::Dir { entries }) => Ok(Attr {
                ino,
                kind: FileKind::Dir,
                size: entries.len() as u64 * 16,
                nlink: 2 + entries
                    .values()
                    .filter(|i| matches!(self.nodes.get(i), Some(Node::Dir { .. })))
                    .count() as u32,
                blocks: 1,
            }),
            None => Err(FsError::StaleHandle),
        }
    }

    fn create(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        check_name(name)?;
        if self.dir_entries(dir)?.contains_key(name) {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_ino();
        self.nodes.insert(ino, Node::File { data: Vec::new(), nlink: 1 });
        self.dir_entries_mut(dir)?.insert(name.to_string(), ino);
        Ok(ino)
    }

    fn mkdir(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        check_name(name)?;
        if self.dir_entries(dir)?.contains_key(name) {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_ino();
        self.nodes.insert(ino, Node::Dir { entries: BTreeMap::new() });
        self.dir_entries_mut(dir)?.insert(name.to_string(), ino);
        Ok(ino)
    }

    fn unlink(&mut self, dir: Ino, name: &str) -> FsResult<()> {
        check_name(name)?;
        let &ino = self.dir_entries(dir)?.get(name).ok_or(FsError::NotFound)?;
        if matches!(self.nodes.get(&ino), Some(Node::Dir { .. })) {
            return Err(FsError::IsDir);
        }
        self.dir_entries_mut(dir)?.remove(name);
        self.drop_link(ino);
        Ok(())
    }

    fn rmdir(&mut self, dir: Ino, name: &str) -> FsResult<()> {
        check_name(name)?;
        let &ino = self.dir_entries(dir)?.get(name).ok_or(FsError::NotFound)?;
        match self.nodes.get(&ino) {
            Some(Node::Dir { entries }) if entries.is_empty() => {}
            Some(Node::Dir { .. }) => return Err(FsError::DirNotEmpty),
            _ => return Err(FsError::NotDir),
        }
        self.dir_entries_mut(dir)?.remove(name);
        self.nodes.remove(&ino);
        Ok(())
    }

    fn link(&mut self, target: Ino, dir: Ino, name: &str) -> FsResult<Ino> {
        check_name(name)?;
        match self.nodes.get(&target) {
            Some(Node::File { .. }) => {}
            Some(Node::Dir { .. }) => return Err(FsError::IsDir),
            None => return Err(FsError::StaleHandle),
        }
        if self.dir_entries(dir)?.contains_key(name) {
            return Err(FsError::Exists);
        }
        if let Some(Node::File { nlink, .. }) = self.nodes.get_mut(&target) {
            *nlink += 1;
        }
        self.dir_entries_mut(dir)?.insert(name.to_string(), target);
        Ok(target)
    }

    fn rename(&mut self, odir: Ino, oname: &str, ndir: Ino, nname: &str) -> FsResult<Ino> {
        check_name(oname)?;
        check_name(nname)?;
        let &ino = self.dir_entries(odir)?.get(oname).ok_or(FsError::NotFound)?;
        if odir == ndir && oname == nname {
            return Ok(ino);
        }
        let moving_dir = matches!(self.nodes.get(&ino), Some(Node::Dir { .. }));
        // Replacement semantics.
        if let Some(&existing) = self.dir_entries(ndir)?.get(nname) {
            if existing == ino {
                // Same object under both names (hard links): drop the old name.
                self.dir_entries_mut(odir)?.remove(oname);
                self.drop_link(ino);
                return Ok(ino);
            }
            match self.nodes.get(&existing) {
                Some(Node::Dir { entries }) => {
                    if !moving_dir {
                        return Err(FsError::IsDir);
                    }
                    if !entries.is_empty() {
                        return Err(FsError::DirNotEmpty);
                    }
                    self.nodes.remove(&existing);
                    self.dir_entries_mut(ndir)?.remove(nname);
                }
                Some(Node::File { .. }) => {
                    if moving_dir {
                        return Err(FsError::NotDir);
                    }
                    self.dir_entries_mut(ndir)?.remove(nname);
                    self.drop_link(existing);
                }
                None => return Err(FsError::StaleHandle),
            }
        }
        self.dir_entries_mut(odir)?.remove(oname);
        self.dir_entries_mut(ndir)?.insert(nname.to_string(), ino);
        Ok(ino)
    }

    fn read(&mut self, ino: Ino, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        match self.nodes.get(&ino) {
            Some(Node::File { data, .. }) => {
                let off = off as usize;
                if off >= data.len() {
                    return Ok(0);
                }
                let n = buf.len().min(data.len() - off);
                buf[..n].copy_from_slice(&data[off..off + n]);
                Ok(n)
            }
            Some(Node::Dir { .. }) => Err(FsError::IsDir),
            None => Err(FsError::StaleHandle),
        }
    }

    fn write(&mut self, ino: Ino, off: u64, data_in: &[u8]) -> FsResult<usize> {
        match self.nodes.get_mut(&ino) {
            Some(Node::File { data, .. }) => {
                let off = off as usize;
                if off + data_in.len() > data.len() {
                    data.resize(off + data_in.len(), 0);
                }
                data[off..off + data_in.len()].copy_from_slice(data_in);
                Ok(data_in.len())
            }
            Some(Node::Dir { .. }) => Err(FsError::IsDir),
            None => Err(FsError::StaleHandle),
        }
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        match self.nodes.get_mut(&ino) {
            Some(Node::File { data, .. }) => {
                data.resize(size as usize, 0);
                Ok(())
            }
            Some(Node::Dir { .. }) => Err(FsError::IsDir),
            None => Err(FsError::StaleHandle),
        }
    }

    fn readdir(&mut self, dir: Ino) -> FsResult<Vec<DirEntry>> {
        let entries = self.dir_entries(dir)?.clone();
        Ok(entries
            .into_iter()
            .map(|(name, ino)| {
                let kind = match self.nodes.get(&ino) {
                    Some(Node::Dir { .. }) => FileKind::Dir,
                    _ => FileKind::File,
                };
                DirEntry { name, ino, kind }
            })
            .collect())
    }

    fn sync(&mut self) -> FsResult<()> {
        Ok(())
    }

    fn statfs(&mut self) -> FsResult<StatFs> {
        Ok(StatFs {
            block_size: crate::BLOCK_SIZE as u32,
            total_blocks: u64::MAX,
            free_blocks: u64::MAX,
            group_slack_blocks: 0,
            total_inodes: u64::MAX,
            free_inodes: u64::MAX,
        })
    }

    fn now(&self) -> SimTime {
        SimTime::ZERO
    }

    fn io_stats(&self) -> IoStats {
        IoStats::default()
    }

    fn reset_io_stats(&mut self) {}
}

/// The model behind one big mutex: the reference implementation of
/// [`ConcurrentFs`]. No sharding, no parallelism — every operation
/// serializes — but the logical semantics are the model's, so tests of
/// `&self` path helpers and threaded workloads have an oracle that
/// doesn't drag in a disk stack.
#[derive(Debug, Default)]
pub struct SharedModelFs(std::sync::Mutex<ModelFs>);

impl SharedModelFs {
    /// Create an empty shared model with just a root directory.
    pub fn new() -> Self {
        SharedModelFs(std::sync::Mutex::new(ModelFs::new()))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ModelFs> {
        self.0.lock().expect("shared model poisoned")
    }
}

impl crate::vfs::ConcurrentFs for SharedModelFs {
    fn label(&self) -> &str {
        "model (shared)"
    }
    fn root(&self) -> Ino {
        self.lock().root()
    }
    fn lookup(&self, dir: Ino, name: &str) -> FsResult<Ino> {
        self.lock().lookup(dir, name)
    }
    fn getattr(&self, ino: Ino) -> FsResult<Attr> {
        self.lock().getattr(ino)
    }
    fn create(&self, dir: Ino, name: &str) -> FsResult<Ino> {
        self.lock().create(dir, name)
    }
    fn mkdir(&self, dir: Ino, name: &str) -> FsResult<Ino> {
        self.lock().mkdir(dir, name)
    }
    fn unlink(&self, dir: Ino, name: &str) -> FsResult<()> {
        self.lock().unlink(dir, name)
    }
    fn read(&self, ino: Ino, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.lock().read(ino, off, buf)
    }
    fn write(&self, ino: Ino, off: u64, data: &[u8]) -> FsResult<usize> {
        self.lock().write(ino, off, data)
    }
    fn readdir(&self, dir: Ino) -> FsResult<Vec<DirEntry>> {
        self.lock().readdir(dir)
    }
    fn sync(&self) -> FsResult<()> {
        self.lock().sync()
    }
    fn now(&self) -> SimTime {
        self.lock().now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_read_write() {
        let mut fs = ModelFs::new();
        let root = fs.root();
        let f = fs.create(root, "a.txt").unwrap();
        assert_eq!(fs.lookup(root, "a.txt").unwrap(), f);
        fs.write(f, 0, b"hello").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(fs.getattr(f).unwrap().size, 5);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut fs = ModelFs::new();
        let f = fs.create(1, "s").unwrap();
        fs.write(f, 100, b"x").unwrap();
        let mut buf = [9u8; 101];
        assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 101);
        assert!(buf[..100].iter().all(|&b| b == 0));
        assert_eq!(buf[100], b'x');
    }

    #[test]
    fn duplicate_create_fails() {
        let mut fs = ModelFs::new();
        fs.create(1, "x").unwrap();
        assert_eq!(fs.create(1, "x"), Err(FsError::Exists));
        assert_eq!(fs.mkdir(1, "x"), Err(FsError::Exists));
    }

    #[test]
    fn unlink_dir_fails_rmdir_file_fails() {
        let mut fs = ModelFs::new();
        let _d = fs.mkdir(1, "d").unwrap();
        let _f = fs.create(1, "f").unwrap();
        assert_eq!(fs.unlink(1, "d"), Err(FsError::IsDir));
        assert_eq!(fs.rmdir(1, "f"), Err(FsError::NotDir));
    }

    #[test]
    fn rmdir_nonempty_fails() {
        let mut fs = ModelFs::new();
        let d = fs.mkdir(1, "d").unwrap();
        fs.create(d, "f").unwrap();
        assert_eq!(fs.rmdir(1, "d"), Err(FsError::DirNotEmpty));
        fs.unlink(d, "f").unwrap();
        fs.rmdir(1, "d").unwrap();
    }

    #[test]
    fn hard_links_share_data() {
        let mut fs = ModelFs::new();
        let f = fs.create(1, "a").unwrap();
        fs.write(f, 0, b"shared").unwrap();
        let f2 = fs.link(f, 1, "b").unwrap();
        assert_eq!(f2, f);
        assert_eq!(fs.getattr(f).unwrap().nlink, 2);
        fs.unlink(1, "a").unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(fs.read(f, 0, &mut buf).unwrap(), 6);
        assert_eq!(&buf, b"shared");
        fs.unlink(1, "b").unwrap();
        assert_eq!(fs.getattr(f), Err(FsError::StaleHandle));
    }

    #[test]
    fn rename_replaces_file() {
        let mut fs = ModelFs::new();
        let a = fs.create(1, "a").unwrap();
        fs.write(a, 0, b"A").unwrap();
        let b = fs.create(1, "b").unwrap();
        fs.write(b, 0, b"B").unwrap();
        let moved = fs.rename(1, "a", 1, "b").unwrap();
        assert_eq!(moved, a);
        assert_eq!(fs.lookup(1, "a"), Err(FsError::NotFound));
        assert_eq!(fs.lookup(1, "b").unwrap(), a);
        assert_eq!(fs.getattr(b), Err(FsError::StaleHandle));
    }

    #[test]
    fn rename_dir_over_nonempty_dir_fails() {
        let mut fs = ModelFs::new();
        fs.mkdir(1, "src").unwrap();
        let dst = fs.mkdir(1, "dst").unwrap();
        fs.create(dst, "占").unwrap();
        assert_eq!(fs.rename(1, "src", 1, "dst"), Err(FsError::DirNotEmpty));
    }

    #[test]
    fn rename_same_name_is_noop() {
        let mut fs = ModelFs::new();
        let f = fs.create(1, "a").unwrap();
        assert_eq!(fs.rename(1, "a", 1, "a").unwrap(), f);
        assert_eq!(fs.lookup(1, "a").unwrap(), f);
    }

    #[test]
    fn rename_hardlink_onto_itself_drops_old_name() {
        let mut fs = ModelFs::new();
        let f = fs.create(1, "a").unwrap();
        fs.link(f, 1, "b").unwrap();
        fs.rename(1, "a", 1, "b").unwrap();
        assert_eq!(fs.lookup(1, "a"), Err(FsError::NotFound));
        assert_eq!(fs.getattr(f).unwrap().nlink, 1);
    }

    #[test]
    fn truncate_grows_and_shrinks() {
        let mut fs = ModelFs::new();
        let f = fs.create(1, "t").unwrap();
        fs.write(f, 0, b"abcdef").unwrap();
        fs.truncate(f, 3).unwrap();
        assert_eq!(fs.getattr(f).unwrap().size, 3);
        fs.truncate(f, 10).unwrap();
        let mut buf = [0xFFu8; 10];
        fs.read(f, 0, &mut buf).unwrap();
        assert_eq!(&buf[..3], b"abc");
        assert!(buf[3..].iter().all(|&b| b == 0));
    }

    #[test]
    fn readdir_sorted_and_complete() {
        let mut fs = ModelFs::new();
        fs.create(1, "zz").unwrap();
        fs.mkdir(1, "aa").unwrap();
        let names: Vec<String> = fs.readdir(1).unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }
}

//! Path-level convenience helpers over any [`FileSystem`].
//!
//! The trait works on `(directory inode, name)` pairs, like a kernel VFS.
//! Workloads and examples want `"/usr/src/lib/io.c"`-style paths; these
//! helpers provide that layer.
//!
//! The `*_c` variants take `&self` over [`ConcurrentFs`], so threaded
//! workloads can resolve paths against one shared instance. They cover
//! the concurrent trait's narrower surface: [`write_file_c`] has no
//! truncate, so overwriting an existing *longer* file keeps its tail —
//! fine for the fixed-size records every threaded workload writes.

use crate::error::{FsError, FsResult};
use crate::vfs::{ConcurrentFs, FileKind, FileSystem, Ino};

/// Split a path into components, ignoring empty segments and leading `/`.
pub fn components(path: &str) -> Vec<&str> {
    path.split('/').filter(|c| !c.is_empty() && *c != ".").collect()
}

/// Resolve a path to an inode.
pub fn resolve(fs: &mut (impl FileSystem + ?Sized), path: &str) -> FsResult<Ino> {
    let mut cur = fs.root();
    for c in components(path) {
        cur = fs.lookup(cur, c)?;
    }
    Ok(cur)
}

/// Resolve the parent directory of a path; returns `(parent_ino, leaf_name)`.
pub fn resolve_parent<'p>(
    fs: &mut (impl FileSystem + ?Sized),
    path: &'p str,
) -> FsResult<(Ino, &'p str)> {
    let comps = components(path);
    let (leaf, dirs) = comps.split_last().ok_or(FsError::InvalidArg)?;
    let mut cur = fs.root();
    for c in dirs {
        cur = fs.lookup(cur, c)?;
    }
    Ok((cur, leaf))
}

/// `mkdir -p`: create every missing directory along `path`; returns the
/// final directory's inode.
pub fn mkdir_p(fs: &mut (impl FileSystem + ?Sized), path: &str) -> FsResult<Ino> {
    let mut cur = fs.root();
    for c in components(path) {
        cur = match fs.lookup(cur, c) {
            Ok(ino) => {
                if fs.getattr(ino)?.kind != FileKind::Dir {
                    return Err(FsError::NotDir);
                }
                ino
            }
            Err(FsError::NotFound) => fs.mkdir(cur, c)?,
            Err(e) => return Err(e),
        };
    }
    Ok(cur)
}

/// Create (or truncate) the file at `path` and write `data` to it.
/// Returns the file's inode.
pub fn write_file(fs: &mut (impl FileSystem + ?Sized), path: &str, data: &[u8]) -> FsResult<Ino> {
    let (dir, name) = resolve_parent(fs, path)?;
    let ino = match fs.lookup(dir, name) {
        Ok(existing) => {
            fs.truncate(existing, 0)?;
            existing
        }
        Err(FsError::NotFound) => fs.create(dir, name)?,
        Err(e) => return Err(e),
    };
    let mut off = 0u64;
    while (off as usize) < data.len() {
        let n = fs.write(ino, off, &data[off as usize..])?;
        if n == 0 {
            return Err(FsError::Io("short write".into()));
        }
        off += n as u64;
    }
    Ok(ino)
}

/// Read the whole file at `path`.
pub fn read_file(fs: &mut (impl FileSystem + ?Sized), path: &str) -> FsResult<Vec<u8>> {
    let ino = resolve(fs, path)?;
    read_all(fs, ino)
}

/// Read the whole file with inode `ino`.
pub fn read_all(fs: &mut (impl FileSystem + ?Sized), ino: Ino) -> FsResult<Vec<u8>> {
    let size = fs.getattr(ino)?.size as usize;
    let mut out = vec![0u8; size];
    let mut off = 0usize;
    while off < size {
        let n = fs.read(ino, off as u64, &mut out[off..])?;
        if n == 0 {
            break;
        }
        off += n;
    }
    out.truncate(off);
    Ok(out)
}

/// Remove the file at `path`.
pub fn remove_file(fs: &mut (impl FileSystem + ?Sized), path: &str) -> FsResult<()> {
    let (dir, name) = resolve_parent(fs, path)?;
    fs.unlink(dir, name)
}

/// Recursively delete a directory tree rooted at `path` (like `rm -rf`,
/// but failing on errors rather than ignoring them).
pub fn remove_tree(fs: &mut (impl FileSystem + ?Sized), path: &str) -> FsResult<()> {
    let (parent, name) = resolve_parent(fs, path)?;
    let ino = fs.lookup(parent, name)?;
    remove_tree_inner(fs, ino)?;
    fs.rmdir(parent, name)
}

fn remove_tree_inner(fs: &mut (impl FileSystem + ?Sized), dir: Ino) -> FsResult<()> {
    for e in fs.readdir(dir)? {
        match e.kind {
            FileKind::File => fs.unlink(dir, &e.name)?,
            FileKind::Dir => {
                remove_tree_inner(fs, e.ino)?;
                fs.rmdir(dir, &e.name)?;
            }
        }
    }
    Ok(())
}

/// Walk a tree depth-first, invoking `visit(path, ino, kind)` for every
/// entry below `root_path`.
pub fn walk(
    fs: &mut (impl FileSystem + ?Sized),
    root_path: &str,
    visit: &mut dyn FnMut(&str, Ino, FileKind),
) -> FsResult<()> {
    let root = resolve(fs, root_path)?;
    let base = root_path.trim_end_matches('/').to_string();
    walk_inner(fs, root, &base, visit)
}

fn walk_inner(
    fs: &mut (impl FileSystem + ?Sized),
    dir: Ino,
    prefix: &str,
    visit: &mut dyn FnMut(&str, Ino, FileKind),
) -> FsResult<()> {
    for e in fs.readdir(dir)? {
        let p = format!("{prefix}/{}", e.name);
        visit(&p, e.ino, e.kind);
        if e.kind == FileKind::Dir {
            walk_inner(fs, e.ino, &p, visit)?;
        }
    }
    Ok(())
}

// ----- `&self` variants over the concurrent surface ---------------------

/// Resolve a path to an inode — [`resolve`] over [`ConcurrentFs`].
pub fn resolve_c(fs: &(impl ConcurrentFs + ?Sized), path: &str) -> FsResult<Ino> {
    let mut cur = fs.root();
    for c in components(path) {
        cur = fs.lookup(cur, c)?;
    }
    Ok(cur)
}

/// Resolve the parent directory of a path; returns `(parent_ino,
/// leaf_name)` — [`resolve_parent`] over [`ConcurrentFs`].
pub fn resolve_parent_c<'p>(
    fs: &(impl ConcurrentFs + ?Sized),
    path: &'p str,
) -> FsResult<(Ino, &'p str)> {
    let comps = components(path);
    let (leaf, dirs) = comps.split_last().ok_or(FsError::InvalidArg)?;
    let mut cur = fs.root();
    for c in dirs {
        cur = fs.lookup(cur, c)?;
    }
    Ok((cur, leaf))
}

/// `mkdir -p` over [`ConcurrentFs`]. Loses no race: a concurrent
/// creator of the same component turns this thread's `mkdir` into
/// `Exists`, which resolves to the winner's directory.
pub fn mkdir_p_c(fs: &(impl ConcurrentFs + ?Sized), path: &str) -> FsResult<Ino> {
    let mut cur = fs.root();
    for c in components(path) {
        cur = match fs.lookup(cur, c) {
            Ok(ino) => {
                if fs.getattr(ino)?.kind != FileKind::Dir {
                    return Err(FsError::NotDir);
                }
                ino
            }
            Err(FsError::NotFound) => match fs.mkdir(cur, c) {
                Ok(ino) => ino,
                Err(FsError::Exists) => fs.lookup(cur, c)?,
                Err(e) => return Err(e),
            },
            Err(e) => return Err(e),
        };
    }
    Ok(cur)
}

/// Create-or-overwrite the file at `path` with `data`, returning its
/// inode. Unlike [`write_file`] this cannot truncate (the concurrent
/// trait has no `truncate`), so a pre-existing file longer than `data`
/// keeps its tail beyond `data.len()`.
pub fn write_file_c(fs: &(impl ConcurrentFs + ?Sized), path: &str, data: &[u8]) -> FsResult<Ino> {
    let (dir, name) = resolve_parent_c(fs, path)?;
    let ino = match fs.lookup(dir, name) {
        Ok(existing) => existing,
        Err(FsError::NotFound) => match fs.create(dir, name) {
            Ok(ino) => ino,
            Err(FsError::Exists) => fs.lookup(dir, name)?,
            Err(e) => return Err(e),
        },
        Err(e) => return Err(e),
    };
    let mut off = 0u64;
    while (off as usize) < data.len() {
        let n = fs.write(ino, off, &data[off as usize..])?;
        if n == 0 {
            return Err(FsError::Io("short write".into()));
        }
        off += n as u64;
    }
    Ok(ino)
}

/// Read the whole file at `path` — [`read_file`] over [`ConcurrentFs`].
pub fn read_file_c(fs: &(impl ConcurrentFs + ?Sized), path: &str) -> FsResult<Vec<u8>> {
    let ino = resolve_c(fs, path)?;
    read_all_c(fs, ino)
}

/// Read the whole file with inode `ino` — [`read_all`] over
/// [`ConcurrentFs`].
pub fn read_all_c(fs: &(impl ConcurrentFs + ?Sized), ino: Ino) -> FsResult<Vec<u8>> {
    let size = fs.getattr(ino)?.size as usize;
    let mut out = vec![0u8; size];
    let mut off = 0usize;
    while off < size {
        let n = fs.read(ino, off as u64, &mut out[off..])?;
        if n == 0 {
            break;
        }
        off += n;
    }
    out.truncate(off);
    Ok(out)
}

/// Remove the file at `path` — [`remove_file`] over [`ConcurrentFs`].
pub fn remove_file_c(fs: &(impl ConcurrentFs + ?Sized), path: &str) -> FsResult<()> {
    let (dir, name) = resolve_parent_c(fs, path)?;
    fs.unlink(dir, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelFs;

    #[test]
    fn components_normalizes() {
        assert_eq!(components("/a/b/c"), vec!["a", "b", "c"]);
        assert_eq!(components("a//b/"), vec!["a", "b"]);
        assert_eq!(components("/"), Vec::<&str>::new());
        assert_eq!(components("./a/./b"), vec!["a", "b"]);
    }

    #[test]
    fn mkdir_p_and_resolve() {
        let mut fs = ModelFs::new();
        let d = mkdir_p(&mut fs, "/usr/src/lib").unwrap();
        assert_eq!(resolve(&mut fs, "/usr/src/lib").unwrap(), d);
        // Idempotent.
        assert_eq!(mkdir_p(&mut fs, "/usr/src/lib").unwrap(), d);
    }

    #[test]
    fn write_then_read_file() {
        let mut fs = ModelFs::new();
        mkdir_p(&mut fs, "/tmp").unwrap();
        write_file(&mut fs, "/tmp/hello.txt", b"hello world").unwrap();
        assert_eq!(read_file(&mut fs, "/tmp/hello.txt").unwrap(), b"hello world");
        // Overwrite truncates.
        write_file(&mut fs, "/tmp/hello.txt", b"bye").unwrap();
        assert_eq!(read_file(&mut fs, "/tmp/hello.txt").unwrap(), b"bye");
    }

    #[test]
    fn remove_tree_removes_everything() {
        let mut fs = ModelFs::new();
        mkdir_p(&mut fs, "/a/b/c").unwrap();
        write_file(&mut fs, "/a/x", b"1").unwrap();
        write_file(&mut fs, "/a/b/y", b"2").unwrap();
        write_file(&mut fs, "/a/b/c/z", b"3").unwrap();
        remove_tree(&mut fs, "/a").unwrap();
        assert_eq!(resolve(&mut fs, "/a"), Err(FsError::NotFound));
    }

    #[test]
    fn walk_visits_all() {
        let mut fs = ModelFs::new();
        mkdir_p(&mut fs, "/src/sub").unwrap();
        write_file(&mut fs, "/src/a.c", b"x").unwrap();
        write_file(&mut fs, "/src/sub/b.c", b"y").unwrap();
        let mut seen = Vec::new();
        walk(&mut fs, "/src", &mut |p, _, _| seen.push(p.to_string())).unwrap();
        seen.sort();
        assert_eq!(seen, vec!["/src/a.c", "/src/sub", "/src/sub/b.c"]);
    }

    #[test]
    fn resolve_parent_of_root_is_error() {
        let mut fs = ModelFs::new();
        assert_eq!(resolve_parent(&mut fs, "/").unwrap_err(), FsError::InvalidArg);
    }

    #[test]
    fn mkdir_p_through_file_fails() {
        let mut fs = ModelFs::new();
        write_file(&mut fs, "/f", b"").unwrap();
        assert_eq!(mkdir_p(&mut fs, "/f/sub"), Err(FsError::NotDir));
    }

    use crate::model::SharedModelFs as SharedModel;

    #[test]
    fn concurrent_mkdir_p_and_resolve() {
        let fs = SharedModel::new();
        let d = mkdir_p_c(&fs, "/srv/data/logs").unwrap();
        assert_eq!(resolve_c(&fs, "/srv/data/logs").unwrap(), d);
        // Idempotent, and resolves through existing components.
        assert_eq!(mkdir_p_c(&fs, "/srv/data/logs").unwrap(), d);
        let (parent, leaf) = resolve_parent_c(&fs, "/srv/data/logs").unwrap();
        assert_eq!(resolve_c(&fs, "/srv/data").unwrap(), parent);
        assert_eq!(leaf, "logs");
    }

    #[test]
    fn concurrent_write_read_remove() {
        let fs = SharedModel::new();
        mkdir_p_c(&fs, "/tmp").unwrap();
        let ino = write_file_c(&fs, "/tmp/rec", b"payload-1").unwrap();
        assert_eq!(read_file_c(&fs, "/tmp/rec").unwrap(), b"payload-1");
        assert_eq!(read_all_c(&fs, ino).unwrap(), b"payload-1");
        // Same-length overwrite replaces in place (no truncate on this
        // surface; workloads always rewrite fixed-size records).
        write_file_c(&fs, "/tmp/rec", b"payload-2").unwrap();
        assert_eq!(read_file_c(&fs, "/tmp/rec").unwrap(), b"payload-2");
        remove_file_c(&fs, "/tmp/rec").unwrap();
        assert_eq!(resolve_c(&fs, "/tmp/rec"), Err(FsError::NotFound));
    }

    #[test]
    fn concurrent_mkdir_p_through_file_fails() {
        let fs = SharedModel::new();
        write_file_c(&fs, "/f", b"").unwrap();
        assert_eq!(mkdir_p_c(&fs, "/f/sub"), Err(FsError::NotDir));
    }

    #[test]
    fn concurrent_helpers_race_cleanly() {
        let fs = std::sync::Arc::new(SharedModel::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let fs = fs.clone();
                std::thread::spawn(move || {
                    // Everyone races to create the same tree, then writes
                    // a private file under it.
                    let d = mkdir_p_c(&*fs, "/shared/tree").unwrap();
                    write_file_c(&*fs, &format!("/shared/tree/t{t}"), b"x").unwrap();
                    d
                })
            })
            .collect();
        let dirs: Vec<Ino> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        // All racers converged on one directory inode.
        assert!(dirs.windows(2).all(|w| w[0] == w[1]));
        for t in 0..4 {
            assert_eq!(read_file_c(&*fs, &format!("/shared/tree/t{t}")).unwrap(), b"x");
        }
    }
}

//! The common file-system error type.

use std::fmt;

/// Result alias used throughout the file-system crates.
pub type FsResult<T> = Result<T, FsError>;

/// Errors a file-system operation can return. Modeled on the errno values
/// a 4.4BSD FFS would produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No such file or directory (`ENOENT`).
    NotFound,
    /// Name already exists (`EEXIST`).
    Exists,
    /// Operation requires a directory but the target is not one (`ENOTDIR`).
    NotDir,
    /// Operation requires a file but the target is a directory (`EISDIR`).
    IsDir,
    /// Directory not empty (`ENOTEMPTY`).
    DirNotEmpty,
    /// No free data blocks (`ENOSPC`).
    NoSpace,
    /// No free inodes (`ENOSPC` on the inode side).
    NoInodes,
    /// File name longer than [`crate::MAX_NAME_LEN`] or empty (`ENAMETOOLONG`/`EINVAL`).
    BadName,
    /// File would exceed the maximum mappable size (`EFBIG`).
    FileTooBig,
    /// Too many hard links (`EMLINK`).
    TooManyLinks,
    /// Invalid argument (`EINVAL`).
    InvalidArg,
    /// Stale or malformed inode handle (`ESTALE`).
    StaleHandle,
    /// Cross-device or unsupported operation (`EXDEV`/`ENOSYS`).
    Unsupported,
    /// On-disk structure failed validation; fsck needed.
    Corrupt(String),
    /// Underlying device error (injected by failure tests).
    Io(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NotDir => write!(f, "not a directory"),
            FsError::IsDir => write!(f, "is a directory"),
            FsError::DirNotEmpty => write!(f, "directory not empty"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free inodes"),
            FsError::BadName => write!(f, "invalid file name"),
            FsError::FileTooBig => write!(f, "file too large"),
            FsError::TooManyLinks => write!(f, "too many links"),
            FsError::InvalidArg => write!(f, "invalid argument"),
            FsError::StaleHandle => write!(f, "stale file handle"),
            FsError::Unsupported => write!(f, "operation not supported"),
            FsError::Corrupt(m) => write!(f, "file system corrupt: {m}"),
            FsError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Validate a file name: nonempty, within the length limit, no NUL or '/'.
pub fn check_name(name: &str) -> FsResult<()> {
    if name.is_empty()
        || name.len() > crate::MAX_NAME_LEN
        || name.bytes().any(|b| b == 0 || b == b'/')
    {
        return Err(FsError::BadName);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(check_name("hello.c").is_ok());
        assert!(check_name(".").is_ok());
        assert_eq!(check_name(""), Err(FsError::BadName));
        assert_eq!(check_name("a/b"), Err(FsError::BadName));
        assert_eq!(check_name("a\0b"), Err(FsError::BadName));
        assert_eq!(check_name(&"x".repeat(256)), Err(FsError::BadName));
        assert!(check_name(&"x".repeat(255)).is_ok());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(FsError::NoSpace.to_string(), "no space left on device");
        assert!(FsError::Corrupt("bad magic".into()).to_string().contains("bad magic"));
    }
}

//! On-board segmented read cache with read-ahead.
//!
//! 1996-era drives carried 128–512 KB of buffer, split into a few segments,
//! each holding one contiguous run of recently read (plus prefetched)
//! sectors. The paper's testbed drive "prefetches sequential disk data into
//! its on-board cache"; this is what lets a second request for the next
//! sectors on the track complete at bus speed instead of paying another
//! rotation.
//!
//! Model: after a media read of sectors `[s, s+n)`, the servicing segment is
//! extended by up to `read_ahead` further sectors (capped at the segment
//! size), representing the drive continuing to read the track while idle.
//! This is the standard optimistic simplification — it assumes the idle gap
//! before the next request is long enough for the prefetch to finish, which
//! is true for the file-system workloads simulated here (each request is
//! followed by host-side work).
//!
//! Writes invalidate any cached overlap and are not cached (write caching
//! was shipped disabled for integrity, and the paper's file systems rely on
//! writes being durable when acknowledged).

use cffs_obs::json::{FromJson, Json, JsonError, ToJson};
use cffs_obs::obj;

/// Configuration of the on-board cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnboardCacheConfig {
    /// Number of cache segments.
    pub segments: usize,
    /// Capacity of each segment, in sectors.
    pub segment_sectors: u64,
    /// Maximum read-ahead after each media read, in sectors.
    pub read_ahead: u64,
}

impl OnboardCacheConfig {
    /// A disabled cache (every read goes to the media).
    pub fn disabled() -> Self {
        OnboardCacheConfig { segments: 0, segment_sectors: 0, read_ahead: 0 }
    }
}

impl ToJson for OnboardCacheConfig {
    fn to_json(&self) -> Json {
        obj![
            ("segments", self.segments.to_json()),
            ("segment_sectors", self.segment_sectors.to_json()),
            ("read_ahead", self.read_ahead.to_json()),
        ]
    }
}

impl FromJson for OnboardCacheConfig {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(OnboardCacheConfig {
            segments: usize::from_json(j.want("segments")?)?,
            segment_sectors: u64::from_json(j.want("segment_sectors")?)?,
            read_ahead: u64::from_json(j.want("read_ahead")?)?,
        })
    }
}

/// One cached run of sectors `[start, start + len)`.
#[derive(Debug, Clone, Copy)]
struct Segment {
    start: u64,
    len: u64,
    /// LRU stamp; larger is more recent.
    stamp: u64,
}

/// The on-board cache itself. Tracks only *which* sectors are cached; data
/// always comes from the sector store (the cache affects timing, not
/// contents).
#[derive(Debug)]
pub struct OnboardCache {
    config: OnboardCacheConfig,
    segments: Vec<Segment>,
    tick: u64,
}

impl OnboardCache {
    /// Create a cache with the given configuration.
    pub fn new(config: OnboardCacheConfig) -> Self {
        OnboardCache { config, segments: Vec::new(), tick: 0 }
    }

    /// Is the whole range `[lba, lba + n)` present in one segment?
    pub fn hit(&mut self, lba: u64, n: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        for seg in &mut self.segments {
            if lba >= seg.start && lba + n <= seg.start + seg.len {
                seg.stamp = tick;
                return true;
            }
        }
        false
    }

    /// Record that the media just read `[lba, lba + n)`; install it (plus
    /// read-ahead) in a segment.
    pub fn fill(&mut self, lba: u64, n: u64, disk_end: u64) {
        if self.config.segments == 0 || self.config.segment_sectors == 0 {
            return;
        }
        self.tick += 1;
        let ahead = self.config.read_ahead.min(disk_end.saturating_sub(lba + n));
        let mut len = n + ahead;
        let mut start = lba;
        if len > self.config.segment_sectors {
            // Keep the tail: the most recently read data plus read-ahead.
            start = lba + len - self.config.segment_sectors;
            len = self.config.segment_sectors;
        }
        let seg = Segment { start, len, stamp: self.tick };
        // Extend an existing segment if this continues it.
        for s in &mut self.segments {
            if start <= s.start + s.len && start + len >= s.start {
                let new_start = s.start.min(start);
                let new_end = (s.start + s.len).max(start + len);
                s.start = new_end.saturating_sub((new_end - new_start).min(self.config.segment_sectors));
                s.len = new_end - s.start;
                s.stamp = self.tick;
                return;
            }
        }
        if self.segments.len() < self.config.segments {
            self.segments.push(seg);
        } else if let Some(victim) = self.segments.iter_mut().min_by_key(|s| s.stamp) {
            *victim = seg;
        }
    }

    /// Invalidate any cached overlap with `[lba, lba + n)` (called on write).
    pub fn invalidate(&mut self, lba: u64, n: u64) {
        self.segments.retain_mut(|s| {
            let overlap = lba < s.start + s.len && lba + n > s.start;
            if !overlap {
                return true;
            }
            // Trim rather than drop when the write clips an edge.
            if lba <= s.start && lba + n >= s.start + s.len {
                false
            } else if lba <= s.start {
                let cut = lba + n - s.start;
                s.start += cut;
                s.len -= cut;
                s.len > 0
            } else {
                s.len = lba - s.start;
                s.len > 0
            }
        });
    }

    /// Drop all cached contents.
    pub fn flush(&mut self) {
        self.segments.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> OnboardCache {
        OnboardCache::new(OnboardCacheConfig { segments: 2, segment_sectors: 64, read_ahead: 16 })
    }

    #[test]
    fn cold_cache_misses() {
        let mut c = cache();
        assert!(!c.hit(100, 8));
    }

    #[test]
    fn fill_then_hit_with_read_ahead() {
        let mut c = cache();
        c.fill(100, 8, 1_000_000);
        assert!(c.hit(100, 8));
        // Read-ahead covers the next 16 sectors.
        assert!(c.hit(108, 16));
        assert!(!c.hit(108, 17));
    }

    #[test]
    fn read_ahead_clamped_at_disk_end() {
        let mut c = cache();
        c.fill(90, 8, 100);
        assert!(c.hit(96, 2));
        assert!(!c.hit(98, 4));
    }

    #[test]
    fn write_invalidates_overlap() {
        let mut c = cache();
        c.fill(100, 32, 1_000_000);
        c.invalidate(110, 4);
        assert!(!c.hit(100, 32));
        // The untouched prefix survives as a trimmed segment.
        assert!(c.hit(100, 10));
    }

    #[test]
    fn lru_eviction() {
        let mut c = cache();
        c.fill(0, 8, 1_000_000);
        c.fill(1000, 8, 1_000_000);
        assert!(c.hit(1000, 8)); // touch
        c.fill(2000, 8, 1_000_000); // evicts the 0-run (LRU)
        assert!(!c.hit(0, 8));
        assert!(c.hit(1000, 8));
        assert!(c.hit(2000, 8));
    }

    #[test]
    fn oversized_fill_keeps_tail() {
        let mut c = cache();
        c.fill(0, 100, 1_000_000); // 100 + 16 ahead > 64 capacity
        assert!(!c.hit(0, 1));
        assert!(c.hit(100, 8)); // tail including read-ahead retained
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = OnboardCache::new(OnboardCacheConfig::disabled());
        c.fill(0, 8, 1_000_000);
        assert!(!c.hit(0, 1));
    }

    #[test]
    fn sequential_fills_merge() {
        let mut c = cache();
        c.fill(0, 8, 1_000_000);
        c.fill(24, 8, 1_000_000); // contiguous with 16-sector read-ahead
        assert!(c.hit(0, 40));
    }
}

//! Simulated time.
//!
//! The whole reproduction runs against a single logical clock measured in
//! nanoseconds. Using a newtype (rather than `std::time::Duration`) keeps
//! arithmetic explicit and makes it impossible to confuse simulated time
//! with wall-clock time.

use cffs_obs::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl ToJson for SimTime {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for SimTime {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        u64::from_json(j).map(SimTime)
    }
}

impl ToJson for SimDuration {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for SimDuration {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        u64::from_json(j).map(SimDuration)
    }
}

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`. Saturates at zero rather than panicking
    /// so that out-of-order bookkeeping can't crash a benchmark run.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from (possibly fractional) milliseconds.
    ///
    /// # Panics
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "invalid duration: {ms} ms");
        SimDuration((ms * 1e6).round() as u64)
    }

    /// Construct from (possibly fractional) seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs} s");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating sum of two durations.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        let t2 = t + SimDuration::from_micros(500);
        assert_eq!((t2 - t).as_nanos(), 500_000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(100);
        let b = SimTime(200);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration(100));
    }

    #[test]
    fn millis_f64_round_trip() {
        let d = SimDuration::from_millis_f64(8.7);
        assert!((d.as_millis_f64() - 8.7).abs() < 1e-9);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(1_500)), "1.5us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs_f64(1.25)), "1.250s");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_millis_panics() {
        let _ = SimDuration::from_millis_f64(-1.0);
    }
}

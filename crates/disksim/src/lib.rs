#![warn(missing_docs)]

//! # cffs-disksim
//!
//! A mechanical disk-drive simulator faithful to mid-1990s SCSI drives, built
//! as the storage substrate for the C-FFS reproduction (Ganger & Kaashoek,
//! USENIX 1997).
//!
//! The paper's entire argument rests on the *ratio* between per-request
//! positioning costs (seek + rotational latency, milliseconds) and per-byte
//! transfer costs (tens of microseconds per 4 KB block). This crate models
//! exactly those mechanics:
//!
//! * **Zoned geometry** ([`geometry::Geometry`]): cylinders are divided into
//!   zones with different sectors-per-track counts, as on every drive since
//!   the early 90s; logical block addresses map to (cylinder, head, sector).
//! * **Seek curve** ([`seek::SeekCurve`]): the classic three-point model —
//!   single-cylinder, average, and full-stroke seek times — interpolated with
//!   a `a + b*sqrt(d)` region for short seeks and a linear region for long
//!   ones, following Ruemmler & Wilkes' disk modeling work.
//! * **Rotation**: the platter position is a pure function of simulated time;
//!   rotational latency falls out of where the head lands after a seek.
//! * **Track and cylinder skew**: sequential transfers that cross track or
//!   cylinder boundaries pay a head-switch/seek cost that the skew hides.
//! * **On-board segmented cache** ([`cache::OnboardCache`]): read-ahead
//!   segments which let sequential reads hit in the drive's buffer.
//! * **Request scheduling** ([`driver::Driver`]): FCFS, C-LOOK (the paper's
//!   testbed driver used C-LOOK) and SSTF, with scatter/gather coalescing.
//!
//! Five drive models ship in [`models`]: the paper's testbed Seagate ST31200
//! (Table 2), the three 1996 drives of Table 1 (HP C3653, Seagate Barracuda
//! 4LP, Quantum Atlas II), and the older HP C2247 used in the paper's
//! trend discussion.
//!
//! Time is simulated: every access returns a completion time and the drive
//! keeps its arm/rotation state consistent with that clock. Nothing here
//! does real I/O; sector contents live in a sparse in-memory store.
//!
//! ## Example
//!
//! ```
//! use cffs_disksim::{models, Disk, SimTime};
//!
//! let mut disk = Disk::new(models::seagate_st31200());
//! let t0 = SimTime::ZERO;
//! let data = vec![0xABu8; 4096];
//! let t1 = disk.write(t0, 1000, &data);
//! let mut back = vec![0u8; 4096];
//! let t2 = disk.read(t1, 1000, &mut back);
//! assert_eq!(back, data);
//! assert!(t2 > t1);
//! ```

pub mod cache;
pub mod driver;
pub mod geometry;
pub mod models;
pub mod seek;
pub mod stats;
pub mod store;
pub mod time;

mod disk;

pub use disk::{Disk, DiskModel, TraceEntry};
pub use driver::{Driver, DriverConfig, IoDir, IoReq, Scheduler};
pub use geometry::{Geometry, Zone};
pub use seek::SeekCurve;
pub use stats::DiskStats;
pub use time::{SimDuration, SimTime};

/// Size of a disk sector in bytes. All 90s-era SCSI drives used 512.
pub const SECTOR_SIZE: usize = 512;

//! Per-drive service statistics.
//!
//! The paper's headline mechanism claim is about *counts*: C-FFS reduces the
//! number of disk requests by an order of magnitude. These counters are what
//! the E8 reproduction (`repro_diskreqs`) reads out, and the time breakdown
//! (seek / rotation / transfer) backs the Figure 2 analysis.

use crate::time::SimDuration;
use cffs_obs::json::{Json, ToJson};
use cffs_obs::obj;

/// Cumulative counters for one simulated drive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Media (or cache-hit) read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// Sectors read.
    pub sectors_read: u64,
    /// Sectors written.
    pub sectors_written: u64,
    /// Reads satisfied entirely from the on-board cache.
    pub cache_hits: u64,
    /// Total time spent seeking (ns).
    pub seek_ns: u64,
    /// Total rotational latency (ns).
    pub rotation_ns: u64,
    /// Total media/bus transfer time (ns).
    pub transfer_ns: u64,
    /// Total fixed per-request controller overhead (ns).
    pub overhead_ns: u64,
    /// Total busy time (ns) — the sum of the four buckets above.
    pub busy_ns: u64,
}

impl ToJson for DiskStats {
    fn to_json(&self) -> Json {
        obj![
            ("reads", self.reads.to_json()),
            ("writes", self.writes.to_json()),
            ("sectors_read", self.sectors_read.to_json()),
            ("sectors_written", self.sectors_written.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("seek_ns", self.seek_ns.to_json()),
            ("rotation_ns", self.rotation_ns.to_json()),
            ("transfer_ns", self.transfer_ns.to_json()),
            ("overhead_ns", self.overhead_ns.to_json()),
            ("busy_ns", self.busy_ns.to_json()),
        ]
    }
}

impl DiskStats {
    /// Total requests (reads + writes).
    pub fn total_requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        (self.sectors_read + self.sectors_written) * crate::SECTOR_SIZE as u64
    }

    /// Mean service time per request, if any requests were serviced.
    pub fn mean_service_time(&self) -> Option<SimDuration> {
        self.busy_ns.checked_div(self.total_requests()).map(SimDuration)
    }

    /// Counters accumulated since `baseline` (for phase-scoped measurement).
    pub fn delta_since(&self, baseline: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - baseline.reads,
            writes: self.writes - baseline.writes,
            sectors_read: self.sectors_read - baseline.sectors_read,
            sectors_written: self.sectors_written - baseline.sectors_written,
            cache_hits: self.cache_hits - baseline.cache_hits,
            seek_ns: self.seek_ns - baseline.seek_ns,
            rotation_ns: self.rotation_ns - baseline.rotation_ns,
            transfer_ns: self.transfer_ns - baseline.transfer_ns,
            overhead_ns: self.overhead_ns - baseline.overhead_ns,
            busy_ns: self.busy_ns - baseline.busy_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_service_time_empty() {
        assert_eq!(DiskStats::default().mean_service_time(), None);
    }

    #[test]
    fn delta() {
        let a = DiskStats { reads: 10, seek_ns: 100, busy_ns: 100, ..Default::default() };
        let b = DiskStats { reads: 25, seek_ns: 300, busy_ns: 350, ..Default::default() };
        let d = b.delta_since(&a);
        assert_eq!(d.reads, 15);
        assert_eq!(d.seek_ns, 200);
        assert_eq!(d.mean_service_time(), Some(SimDuration(250 / 15)));
    }

    #[test]
    fn totals() {
        let s = DiskStats {
            reads: 2,
            writes: 3,
            sectors_read: 8,
            sectors_written: 16,
            ..Default::default()
        };
        assert_eq!(s.total_requests(), 5);
        assert_eq!(s.total_bytes(), 24 * 512);
    }
}

//! The disk service engine: combines geometry, seek curve, rotation, the
//! on-board cache and the sector store into a single device that services
//! one request at a time and keeps a consistent mechanical state.

use crate::cache::{OnboardCache, OnboardCacheConfig};
use crate::geometry::Geometry;
use crate::seek::SeekCurve;
use crate::stats::DiskStats;
use crate::store::SectorStore;
use crate::time::{SimDuration, SimTime};
use crate::SECTOR_SIZE;
use cffs_obs::json::{FromJson, Json, JsonError, ToJson};
use cffs_obs::{obj, Ctr, Obs};
use std::sync::Arc;

/// Static description of a drive: everything needed to predict service times.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskModel {
    /// Marketing name, e.g. `"Seagate ST31200N"`.
    pub name: String,
    /// Platter geometry.
    pub geometry: Geometry,
    /// Seek-time curve.
    pub seek: SeekCurve,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Head-switch (track-to-track, same cylinder) time.
    pub head_switch: SimDuration,
    /// Additional settle time charged on writes (vendors quote write seeks
    /// slightly above read seeks; Table 1's parenthesized figures).
    pub write_settle: SimDuration,
    /// Fixed per-request controller/command overhead.
    pub controller_overhead: SimDuration,
    /// Bus bandwidth in MB/s (used for on-board cache hits).
    pub bus_mb_per_s: f64,
    /// On-board cache configuration.
    pub cache: OnboardCacheConfig,
}

impl ToJson for DiskModel {
    fn to_json(&self) -> Json {
        obj![
            ("name", self.name.to_json()),
            ("geometry", self.geometry.to_json()),
            ("seek", self.seek.to_json()),
            ("rpm", self.rpm.to_json()),
            ("head_switch", self.head_switch.to_json()),
            ("write_settle", self.write_settle.to_json()),
            ("controller_overhead", self.controller_overhead.to_json()),
            ("bus_mb_per_s", self.bus_mb_per_s.to_json()),
            ("cache", self.cache.to_json()),
        ]
    }
}

impl FromJson for DiskModel {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(DiskModel {
            name: String::from_json(j.want("name")?)?,
            geometry: Geometry::from_json(j.want("geometry")?)?,
            seek: SeekCurve::from_json(j.want("seek")?)?,
            rpm: u32::from_json(j.want("rpm")?)?,
            head_switch: SimDuration::from_json(j.want("head_switch")?)?,
            write_settle: SimDuration::from_json(j.want("write_settle")?)?,
            controller_overhead: SimDuration::from_json(j.want("controller_overhead")?)?,
            bus_mb_per_s: f64::from_json(j.want("bus_mb_per_s")?)?,
            cache: OnboardCacheConfig::from_json(j.want("cache")?)?,
        })
    }
}

impl DiskModel {
    /// Duration of one platter revolution.
    pub fn revolution(&self) -> SimDuration {
        SimDuration::from_nanos(60_000_000_000 / self.rpm as u64)
    }

    /// Media transfer rate at the given cylinder, in MB/s.
    pub fn media_rate_at(&self, cyl: u32) -> f64 {
        let spt = self.geometry.sectors_per_track_at(cyl) as f64;
        let bytes_per_rev = spt * SECTOR_SIZE as f64;
        bytes_per_rev / self.revolution().as_secs_f64() / 1e6
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.geometry.total_sectors() * SECTOR_SIZE as u64
    }
}

/// One serviced request, for access-pattern analysis (recording is off by
/// default; see [`Disk::set_trace`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// When service began.
    pub start: SimTime,
    /// Starting sector.
    pub lba: u64,
    /// Sectors transferred.
    pub sectors: u64,
    /// Write (vs read).
    pub write: bool,
    /// Cylinders the arm moved to reach the request (0 on cache hits).
    pub seek_cylinders: u32,
    /// Total service time.
    pub service: SimDuration,
    /// Serviced from the on-board cache.
    pub cache_hit: bool,
}

/// A simulated drive: model + mechanical state + contents + statistics.
#[derive(Debug)]
pub struct Disk {
    model: DiskModel,
    cache: OnboardCache,
    store: SectorStore,
    stats: DiskStats,
    /// Cylinder the arm currently sits over.
    arm_cylinder: u32,
    /// Completion time of the last request (the drive is busy until then).
    last_completion: SimTime,
    /// The most recent mechanical write: `(lba, contents overwritten)` —
    /// kept so a crash can be simulated *mid-write* (see
    /// [`Disk::clone_image_torn`]).
    last_write_undo: Option<(u64, Vec<u8>)>,
    /// Request trace, populated only while enabled.
    trace: Option<Vec<TraceEntry>>,
    /// Cross-layer observability handle (shared with driver/cache/fs).
    obs: Arc<Obs>,
}

impl Disk {
    /// Create a new, zero-filled drive.
    pub fn new(model: DiskModel) -> Self {
        let cache = OnboardCache::new(model.cache);
        Disk {
            model,
            cache,
            store: SectorStore::new(),
            stats: DiskStats::default(),
            arm_cylinder: 0,
            last_completion: SimTime::ZERO,
            last_write_undo: None,
            trace: None,
            obs: Obs::new(),
        }
    }

    /// The observability handle (counters + trace ring). The upper layers
    /// of a stack clone this so one snapshot covers the whole path.
    pub fn obs(&self) -> Arc<Obs> {
        Arc::clone(&self.obs)
    }

    /// Replace the observability handle (to share one across stacks).
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        self.obs = obs;
    }

    /// The drive's static model.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Total addressable sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.model.geometry.total_sectors()
    }

    /// Cumulative service statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Reset statistics (mechanical state and contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }

    /// Enable or disable per-request trace recording (disabled by default;
    /// enabling clears any previous trace).
    pub fn set_trace(&mut self, on: bool) {
        self.trace = on.then(Vec::new);
    }

    /// The recorded trace (empty when recording is off).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Cylinder the arm currently rests over (for scheduler decisions).
    pub fn arm_cylinder(&self) -> u32 {
        self.arm_cylinder
    }

    /// Drop the on-board cache contents (e.g. simulating a power cycle).
    pub fn flush_onboard_cache(&mut self) {
        self.cache.flush();
    }

    /// Clone the *contents* of this drive onto a fresh drive of the same
    /// model (mechanical state, statistics and on-board cache reset). This
    /// is the crash-simulation primitive: the clone is "the disk as a
    /// power-cycle would find it".
    pub fn clone_image(&self) -> Disk {
        let mut d = Disk::new(self.model.clone());
        d.store = self.store.clone();
        d
    }

    /// Save the disk image (contents + model) to a file, so file systems
    /// persist across runs and tools like `cffs-inspect` can examine them.
    ///
    /// # Errors
    /// I/O errors from the underlying file.
    pub fn save_image(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let model = self.model.to_json().to_string().into_bytes();
        use std::io::Write as _;
        f.write_all(&(model.len() as u64).to_le_bytes())?;
        f.write_all(&model)?;
        self.store.save_to(&mut f)
    }

    /// Load a disk image saved by [`Disk::save_image`].
    ///
    /// # Errors
    /// I/O errors, or `InvalidData` for a malformed file.
    pub fn load_image(path: &std::path::Path) -> std::io::Result<Disk> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        use std::io::Read as _;
        let mut n8 = [0u8; 8];
        f.read_exact(&mut n8)?;
        let mut model_bytes = vec![0u8; u64::from_le_bytes(n8) as usize];
        f.read_exact(&mut model_bytes)?;
        let invalid = |e: JsonError| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        let model_text = std::str::from_utf8(&model_bytes).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e)
        })?;
        let model = DiskModel::from_json(&cffs_obs::json::parse(model_text).map_err(invalid)?)
            .map_err(invalid)?;
        let store = SectorStore::load_from(&mut f)?;
        let mut d = Disk::new(model);
        d.store = store;
        Ok(d)
    }

    /// Like [`Disk::clone_image`], but the crash happens *during* the most
    /// recent write: only its first `keep_sectors` sectors reached the
    /// platter; the rest still hold their prior contents. Sectors
    /// themselves are never torn — the per-sector atomicity that real
    /// drives guarantee and that embedded inodes rely on ("by keeping the
    /// two items in the same sector, we can guarantee that they will be
    /// consistent with respect to each other").
    ///
    /// Returns `None` if no write has happened yet.
    pub fn clone_image_torn(&self, keep_sectors: usize) -> Option<Disk> {
        let (lba, ref old) = *self.last_write_undo.as_ref()?;
        let mut d = self.clone_image();
        let total = old.len() / SECTOR_SIZE;
        if keep_sectors < total {
            let skip = keep_sectors * SECTOR_SIZE;
            d.store.write(lba + keep_sectors as u64, &old[skip..]);
        }
        Some(d)
    }

    /// Direct, *timing-free* access to sector contents. Used by mkfs-style
    /// tools, crash-image capture and fsck tests, where charging mechanical
    /// time would pollute measurements.
    pub fn raw_read(&self, lba: u64, buf: &mut [u8]) {
        self.store.read(lba, buf);
    }

    /// Direct, timing-free write. See [`Disk::raw_read`].
    pub fn raw_write(&mut self, lba: u64, buf: &[u8]) {
        self.cache.invalidate(lba, (buf.len() / SECTOR_SIZE) as u64);
        self.store.write(lba, buf);
    }

    /// Read `buf.len()` bytes at sector `lba`, starting no earlier than
    /// `now`. Returns the completion time.
    ///
    /// # Panics
    /// Panics if the range is unaligned or beyond the end of the disk.
    pub fn read(&mut self, now: SimTime, lba: u64, buf: &mut [u8]) -> SimTime {
        let n = self.check_range(lba, buf.len());
        let done = self.service(now, lba, n, false);
        self.store.read(lba, buf);
        self.stats.reads += 1;
        self.stats.sectors_read += n;
        self.obs.bump(Ctr::DiskRequests);
        self.obs.bump(Ctr::DiskReads);
        self.obs.add(Ctr::DiskBytesRead, n * SECTOR_SIZE as u64);
        done
    }

    /// Write `buf.len()` bytes at sector `lba`, starting no earlier than
    /// `now`. Returns the completion time.
    ///
    /// # Panics
    /// Panics if the range is unaligned or beyond the end of the disk.
    pub fn write(&mut self, now: SimTime, lba: u64, buf: &[u8]) -> SimTime {
        let n = self.check_range(lba, buf.len());
        let done = self.service(now, lba, n, true);
        self.cache.invalidate(lba, n);
        // Remember what this write destroys, for mid-write crash injection.
        let mut old = vec![0u8; buf.len()];
        self.store.read(lba, &mut old);
        self.last_write_undo = Some((lba, old));
        self.store.write(lba, buf);
        self.stats.writes += 1;
        self.stats.sectors_written += n;
        self.obs.bump(Ctr::DiskRequests);
        self.obs.bump(Ctr::DiskWrites);
        self.obs.add(Ctr::DiskBytesWritten, n * SECTOR_SIZE as u64);
        done
    }

    fn check_range(&self, lba: u64, len: usize) -> u64 {
        assert!(len > 0 && len.is_multiple_of(SECTOR_SIZE), "unaligned transfer of {len} bytes");
        let n = (len / SECTOR_SIZE) as u64;
        assert!(
            lba + n <= self.capacity_sectors(),
            "transfer [{lba}, {}) beyond end of disk ({} sectors)",
            lba + n,
            self.capacity_sectors()
        );
        n
    }

    /// Compute the service time for a request and advance mechanical state.
    fn service(&mut self, now: SimTime, lba: u64, nsect: u64, is_write: bool) -> SimTime {
        // The drive can't start before the previous request finished.
        let start = now.max(self.last_completion);
        let mut t = start + self.model.controller_overhead;
        self.stats.overhead_ns += self.model.controller_overhead.as_nanos();

        if !is_write && self.cache.hit(lba, nsect) {
            // Cache hit: bus transfer only.
            let bytes = nsect * SECTOR_SIZE as u64;
            let xfer = SimDuration::from_secs_f64(bytes as f64 / (self.model.bus_mb_per_s * 1e6));
            t += xfer;
            self.stats.transfer_ns += xfer.as_nanos();
            self.stats.cache_hits += 1;
            self.stats.busy_ns += (t - start).as_nanos();
            self.last_completion = t;
            self.obs.bump(Ctr::DiskCacheHits);
            self.obs.add(Ctr::DiskServiceNs, (t - start).as_nanos());
            self.obs.histos().disk_req_sectors.record(nsect);
            self.obs.histos().disk_req_service_ns.record((t - start).as_nanos());
            self.obs
                .trace_io(start.as_nanos(), "disk.cache_hit", lba, nsect, (t - start).as_nanos());
            if let Some(trace) = &mut self.trace {
                trace.push(TraceEntry {
                    start,
                    lba,
                    sectors: nsect,
                    write: is_write,
                    seek_cylinders: 0,
                    service: t - start,
                    cache_hit: true,
                });
            }
            return t;
        }

        let rev = self.model.revolution();
        let pos = self.model.geometry.lba_to_chs(lba);

        // Seek.
        let dist = pos.cylinder.abs_diff(self.arm_cylinder);
        let mut seek = self.model.seek.seek_time(dist);
        if is_write && dist > 0 {
            seek += self.model.write_settle;
        }
        t += seek;
        self.stats.seek_ns += seek.as_nanos();
        if dist > 0 {
            self.obs.bump(Ctr::DiskSeeks);
            self.obs.histos().disk_seek_cylinders.record(u64::from(dist));
        }
        self.obs.add(Ctr::DiskSeekNs, seek.as_nanos());

        // Rotational latency: wait for the target sector to come around.
        let angle_now = Self::angle_at(t, rev);
        let target = self.model.geometry.sector_angle(pos);
        let mut wait = target - angle_now;
        if wait < 0.0 {
            wait += 1.0;
        }
        let rot = SimDuration::from_secs_f64(wait * rev.as_secs_f64());
        t += rot;
        self.stats.rotation_ns += rot.as_nanos();

        // Media transfer: walk the run track by track, paying switch costs
        // (hidden by skew when the skew is large enough).
        let mut remaining = nsect;
        let mut cur = pos;
        let mut xfer = SimDuration::ZERO;
        while remaining > 0 {
            let on_track = (cur.sectors_per_track - cur.sector) as u64;
            let take = on_track.min(remaining);
            let frac = take as f64 / cur.sectors_per_track as f64;
            xfer += SimDuration::from_secs_f64(frac * rev.as_secs_f64());
            remaining -= take;
            if remaining == 0 {
                break;
            }
            // Advance to the start of the next track.
            let (next_cyl, next_head, crossing_cyl) = if cur.head + 1 < self.model.geometry.heads {
                (cur.cylinder, cur.head + 1, false)
            } else {
                (cur.cylinder + 1, 0, true)
            };
            let spt_next = self.model.geometry.sectors_per_track_at(next_cyl);
            let skew_sectors = if crossing_cyl {
                self.model.geometry.track_skew + self.model.geometry.cylinder_skew
            } else {
                self.model.geometry.track_skew
            } as f64;
            let skew_time = SimDuration::from_secs_f64(skew_sectors / spt_next as f64 * rev.as_secs_f64());
            let switch = if crossing_cyl {
                self.model.seek.seek_time(1).max(self.model.head_switch)
            } else {
                self.model.head_switch
            };
            // If the skew hides the switch we pay only the skew's rotation;
            // otherwise the switch overruns and we lose a full revolution
            // minus the slack — model the common case as max(switch, skew).
            xfer += switch.max(skew_time);
            cur = crate::geometry::ChsPos {
                cylinder: next_cyl,
                head: next_head,
                sector: 0,
                sectors_per_track: spt_next,
            };
        }
        t += xfer;
        self.stats.transfer_ns += xfer.as_nanos();

        // Arm ends up where the transfer ended.
        self.arm_cylinder = cur.cylinder;
        if !is_write {
            self.cache.fill(lba, nsect, self.capacity_sectors());
        }
        self.stats.busy_ns += (t - start).as_nanos();
        self.last_completion = t;
        self.obs.add(Ctr::DiskServiceNs, (t - start).as_nanos());
        self.obs.histos().disk_req_sectors.record(nsect);
        self.obs.histos().disk_req_service_ns.record((t - start).as_nanos());
        self.obs.trace_io(
            start.as_nanos(),
            if is_write { "disk.write" } else { "disk.read" },
            lba,
            nsect,
            (t - start).as_nanos(),
        );
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                start,
                lba,
                sectors: nsect,
                write: is_write,
                seek_cylinders: dist,
                service: t - start,
                cache_hit: false,
            });
        }
        t
    }

    /// Platter angle (fraction of a revolution) at absolute time `t`.
    fn angle_at(t: SimTime, rev: SimDuration) -> f64 {
        let r = rev.as_nanos();
        (t.as_nanos() % r) as f64 / r as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn disk() -> Disk {
        Disk::new(models::seagate_st31200())
    }

    #[test]
    fn write_read_round_trip() {
        let mut d = disk();
        let data: Vec<u8> = (0..8192).map(|i| (i % 253) as u8).collect();
        let t1 = d.write(SimTime::ZERO, 100, &data);
        let mut back = vec![0u8; 8192];
        let t2 = d.read(t1, 100, &mut back);
        assert_eq!(back, data);
        assert!(t2 > t1);
    }

    #[test]
    fn service_times_are_positive_and_ordered() {
        let mut d = disk();
        let buf = vec![0u8; 4096];
        let t1 = d.write(SimTime::ZERO, 0, &buf);
        assert!(t1 > SimTime::ZERO);
        // Submitting "in the past" still queues behind the previous request.
        let t2 = d.write(SimTime::ZERO, 10_000, &buf);
        assert!(t2 > t1);
    }

    #[test]
    fn onboard_cache_makes_rereads_fast() {
        let mut d = disk();
        let mut buf = vec![0u8; 4096];
        let t0 = SimTime::ZERO;
        let t1 = d.read(t0, 5000, &mut buf);
        let cold = t1 - t0;
        let t2 = d.read(t1, 5000, &mut buf);
        let warm = t2 - t1;
        assert!(
            warm.as_nanos() * 3 < cold.as_nanos(),
            "cache hit ({warm}) should be far cheaper than cold read ({cold})"
        );
        assert_eq!(d.stats().cache_hits, 1);
    }

    #[test]
    fn sequential_read_ahead_hits() {
        let mut d = disk();
        let mut buf = vec![0u8; 4096];
        let t1 = d.read(SimTime::ZERO, 5000, &mut buf);
        // The next blocks were prefetched.
        d.read(t1, 5008, &mut buf);
        assert_eq!(d.stats().cache_hits, 1);
    }

    #[test]
    fn big_transfer_beats_many_small_ones() {
        // The heart of the paper: one 64 KB request is far cheaper than
        // sixteen scattered 4 KB requests.
        let mut big = disk();
        let buf64 = vec![0u8; 65536];
        let t_big = big.write(SimTime::ZERO, 10_000, &buf64) - SimTime::ZERO;

        let mut small = disk();
        let buf4 = vec![0u8; 4096];
        let mut t = SimTime::ZERO;
        for i in 0..16 {
            // Scatter across the disk, as separately allocated files would be.
            t = small.write(t, 10_000 + i * 40_000, &buf4);
        }
        let t_small = t - SimTime::ZERO;
        assert!(
            t_small.as_nanos() > 5 * t_big.as_nanos(),
            "scattered: {t_small}, grouped: {t_big}"
        );
    }

    #[test]
    fn write_then_read_invalidates_onboard_cache() {
        let mut d = disk();
        let mut buf = vec![0u8; 4096];
        let t1 = d.read(SimTime::ZERO, 5000, &mut buf);
        let t2 = d.write(t1, 5000, &buf);
        let t3 = d.read(t2, 5000, &mut buf);
        assert_eq!(d.stats().cache_hits, 0);
        assert!(t3 > t2);
    }

    #[test]
    fn raw_access_charges_no_time() {
        let mut d = disk();
        d.raw_write(42, &[7u8; 512]);
        let mut b = [0u8; 512];
        d.raw_read(42, &mut b);
        assert_eq!(b[0], 7);
        assert_eq!(d.stats().total_requests(), 0);
        assert_eq!(d.stats().busy_ns, 0);
    }

    #[test]
    fn stats_time_buckets_sum_to_busy() {
        let mut d = disk();
        let buf = vec![0u8; 4096];
        let mut t = SimTime::ZERO;
        for i in 0..20 {
            t = d.write(t, i * 12_345 % 1_000_000, &buf);
        }
        let s = d.stats();
        assert_eq!(s.busy_ns, s.seek_ns + s.rotation_ns + s.transfer_ns + s.overhead_ns);
    }

    #[test]
    #[should_panic(expected = "beyond end of disk")]
    fn out_of_range_rejected() {
        let mut d = disk();
        let cap = d.capacity_sectors();
        d.write(SimTime::ZERO, cap, &[0u8; 512]);
    }

    #[test]
    fn torn_write_keeps_prefix_only() {
        let mut d = disk();
        d.write(SimTime::ZERO, 100, &vec![1u8; 4 * 512]);
        let t = d.last_completion;
        d.write(t, 100, &vec![2u8; 4 * 512]);
        let torn = d.clone_image_torn(2).expect("a write happened");
        let mut buf = vec![0u8; 512];
        torn.raw_read(100, &mut buf);
        assert!(buf.iter().all(|&b| b == 2), "sector 0 of the new write landed");
        torn.raw_read(101, &mut buf);
        assert!(buf.iter().all(|&b| b == 2), "sector 1 landed");
        torn.raw_read(102, &mut buf);
        assert!(buf.iter().all(|&b| b == 1), "sector 2 still holds old data");
        torn.raw_read(103, &mut buf);
        assert!(buf.iter().all(|&b| b == 1), "sector 3 still holds old data");
        // The original drive is untouched.
        let mut live = vec![0u8; 512];
        d.raw_read(103, &mut live);
        assert!(live.iter().all(|&b| b == 2));
    }

    #[test]
    fn torn_clone_none_before_any_write() {
        let d = disk();
        assert!(d.clone_image_torn(0).is_none());
    }

    #[test]
    fn capacity_matches_model() {
        let d = disk();
        let gb = d.model().capacity_bytes() as f64 / 1e9;
        assert!((0.9..1.3).contains(&gb), "ST31200 should be about 1 GB, got {gb:.2} GB");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::models;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Completion times are strictly increasing and every time bucket
        /// sums to busy time, for arbitrary request sequences.
        #[test]
        fn service_times_consistent(
            ops in prop::collection::vec((any::<u64>(), 1u64..32, any::<bool>()), 1..60)
        ) {
            let mut d = Disk::new(models::tiny_test_disk());
            let cap = d.capacity_sectors();
            let mut t = SimTime::ZERO;
            for (pos, nsect, write) in ops {
                let lba = pos % (cap - nsect);
                let mut buf = vec![0u8; (nsect as usize) * SECTOR_SIZE];
                let done = if write {
                    d.write(t, lba, &buf)
                } else {
                    d.read(t, lba, &mut buf)
                };
                prop_assert!(done > t, "time must advance");
                t = done;
            }
            let s = d.stats();
            prop_assert_eq!(
                s.busy_ns,
                s.seek_ns + s.rotation_ns + s.transfer_ns + s.overhead_ns
            );
        }

        /// What is written is what is read back, at any alignment pattern.
        #[test]
        fn contents_round_trip(
            writes in prop::collection::vec((0u64..10_000, 1u64..16, any::<u8>()), 1..40)
        ) {
            let mut d = Disk::new(models::tiny_test_disk());
            let mut t = SimTime::ZERO;
            let mut model: std::collections::HashMap<u64, u8> = Default::default();
            for &(lba, nsect, byte) in &writes {
                t = d.write(t, lba, &vec![byte; (nsect as usize) * SECTOR_SIZE]);
                for s in lba..lba + nsect {
                    model.insert(s, byte);
                }
            }
            for (&sector, &byte) in &model {
                let mut buf = vec![0u8; SECTOR_SIZE];
                t = d.read(t, sector, &mut buf);
                prop_assert!(buf.iter().all(|&b| b == byte), "sector {} corrupted", sector);
            }
        }

        /// Torn crashes never tear inside a sector and never touch sectors
        /// outside the final write.
        #[test]
        fn torn_crash_sector_atomicity(
            keep in 0usize..20,
            nsect in 1u64..16,
        ) {
            let mut d = Disk::new(models::tiny_test_disk());
            let len = (nsect as usize) * SECTOR_SIZE;
            let t = d.write(SimTime::ZERO, 100, &vec![0xAA; len]);
            d.write(t, 100, &vec![0xBB; len]);
            let torn = d.clone_image_torn(keep).expect("write happened");
            for s in 0..nsect {
                let mut buf = vec![0u8; SECTOR_SIZE];
                torn.raw_read(100 + s, &mut buf);
                let first = buf[0];
                prop_assert!(first == 0xAA || first == 0xBB);
                prop_assert!(buf.iter().all(|&b| b == first), "sector torn internally");
                let expect = if (s as usize) < keep { 0xBB } else { 0xAA };
                prop_assert_eq!(first, expect, "wrong prefix at sector {}", s);
            }
        }
    }
}

//! Parameterized models of the paper's disk drives.
//!
//! * [`seagate_st31200`] — the paper's testbed drive (Table 2).
//! * [`hp_c3653`], [`seagate_barracuda_4lp`], [`quantum_atlas_ii`] — the
//!   three "state-of-the-art (for 1996)" drives of Table 1.
//! * [`hp_c2247`] — the circa-1992 drive the paper uses to illustrate the
//!   trend: the C3653 has twice the sectors per track of the C2247 while
//!   the C2247's average access time was only 33% higher.
//!
//! Seek figures visible in the paper's text are used directly (Table 1:
//! single-cylinder 0.6/1.0 ms, average 8.7/8.0/7.9 ms, maximum
//! 16.5/19.0/18.0 ms). Geometry details the text does not preserve (zone
//! layout, head counts, skews) are reconstructed from vendor data sheets of
//! the period and documented here; they only need to land the media rates
//! in the right range (~3–4 MB/s for the 1993 testbed drive, ~10 MB/s for
//! the 1996 drives — the paper quotes "> 10 MB/second").

use crate::cache::OnboardCacheConfig;
use crate::disk::DiskModel;
use crate::geometry::{Geometry, Zone};
use crate::seek::SeekCurve;
use crate::time::SimDuration;

fn zones4(cyl_per_zone: u32, spts: [u32; 4]) -> Vec<Zone> {
    spts.iter()
        .map(|&spt| Zone { cylinders: cyl_per_zone, sectors_per_track: spt })
        .collect()
}

/// The paper's testbed drive: Seagate ST31200N (Table 2). ~1.05 GB,
/// 5411 RPM, ~10 ms average seek, ~3.5–4 MB/s media rate, 256 KB
/// segmented cache with read-ahead.
pub fn seagate_st31200() -> DiskModel {
    let geometry = Geometry::new(9, zones4(630, [108, 96, 84, 72]), 8, 16);
    let cylinders = geometry.total_cylinders();
    DiskModel {
        name: "Seagate ST31200N".to_string(),
        geometry,
        seek: SeekCurve::fit(cylinders, 1.5, 10.0, 21.0),
        rpm: 5411,
        head_switch: SimDuration::from_micros(750),
        write_settle: SimDuration::from_micros(700),
        controller_overhead: SimDuration::from_micros(700),
        bus_mb_per_s: 10.0,
        cache: OnboardCacheConfig { segments: 4, segment_sectors: 128, read_ahead: 64 },
    }
}

/// HP C3653 (Table 1, first column): average seek 8.7 ms, maximum 16.5 ms;
/// twice the sectors per track of the HP C2247.
pub fn hp_c3653() -> DiskModel {
    let geometry = Geometry::new(8, zones4(848, [168, 152, 136, 120]), 10, 20);
    let cylinders = geometry.total_cylinders();
    DiskModel {
        name: "HP C3653".to_string(),
        geometry,
        seek: SeekCurve::fit(cylinders, 0.9, 8.7, 16.5),
        rpm: 5400,
        head_switch: SimDuration::from_micros(600),
        write_settle: SimDuration::from_micros(800),
        controller_overhead: SimDuration::from_micros(500),
        bus_mb_per_s: 20.0,
        cache: OnboardCacheConfig { segments: 4, segment_sectors: 256, read_ahead: 96 },
    }
}

/// Seagate Barracuda 4LP (Table 1, middle column): 7200 RPM, single-cylinder
/// seek 0.6 ms, average 8.0 ms, maximum 19.0 ms.
pub fn seagate_barracuda_4lp() -> DiskModel {
    let geometry = Geometry::new(8, zones4(768, [186, 168, 150, 132]), 12, 22);
    let cylinders = geometry.total_cylinders();
    DiskModel {
        name: "Seagate Barracuda 4LP".to_string(),
        geometry,
        seek: SeekCurve::fit(cylinders, 0.6, 8.0, 19.0),
        rpm: 7200,
        head_switch: SimDuration::from_micros(600),
        write_settle: SimDuration::from_micros(500),
        controller_overhead: SimDuration::from_micros(500),
        bus_mb_per_s: 20.0,
        cache: OnboardCacheConfig { segments: 4, segment_sectors: 256, read_ahead: 128 },
    }
}

/// Quantum Atlas II (Table 1, last column): 7200 RPM, single-cylinder seek
/// 1.0 ms, average 7.9 ms, maximum 18.0 ms, ~10 MB/s media rate.
pub fn quantum_atlas_ii() -> DiskModel {
    let geometry = Geometry::new(10, zones4(1261, [195, 176, 157, 138]), 12, 24);
    let cylinders = geometry.total_cylinders();
    DiskModel {
        name: "Quantum Atlas II".to_string(),
        geometry,
        seek: SeekCurve::fit(cylinders, 1.0, 7.9, 18.0),
        rpm: 7200,
        head_switch: SimDuration::from_micros(600),
        write_settle: SimDuration::from_micros(600),
        controller_overhead: SimDuration::from_micros(500),
        bus_mb_per_s: 20.0,
        cache: OnboardCacheConfig { segments: 4, segment_sectors: 256, read_ahead: 128 },
    }
}

/// HP C2247 (circa 1992): half the sectors per track of the C3653 and an
/// average access time about 33% higher — the paper's illustration that
/// bandwidth improves much faster than access time.
pub fn hp_c2247() -> DiskModel {
    let geometry = Geometry::new(13, zones4(705, [84, 76, 68, 60]), 6, 12);
    let cylinders = geometry.total_cylinders();
    DiskModel {
        name: "HP C2247".to_string(),
        geometry,
        seek: SeekCurve::fit(cylinders, 1.5, 12.0, 24.0),
        rpm: 5400,
        head_switch: SimDuration::from_micros(900),
        write_settle: SimDuration::from_micros(900),
        controller_overhead: SimDuration::from_micros(1000),
        bus_mb_per_s: 10.0,
        cache: OnboardCacheConfig { segments: 2, segment_sectors: 64, read_ahead: 32 },
    }
}

/// The three Table 1 drives, in the paper's column order.
pub fn table1_drives() -> Vec<DiskModel> {
    vec![hp_c3653(), seagate_barracuda_4lp(), quantum_atlas_ii()]
}

/// A small drive for fast unit tests: same mechanics, ~64 MB capacity.
pub fn tiny_test_disk() -> DiskModel {
    let geometry = Geometry::new(2, zones4(100, [96, 88, 80, 72]), 6, 12);
    let cylinders = geometry.total_cylinders();
    DiskModel {
        name: "TestDisk 64M".to_string(),
        geometry,
        seek: SeekCurve::fit(cylinders, 1.0, 8.0, 18.0),
        rpm: 5400,
        head_switch: SimDuration::from_micros(700),
        write_settle: SimDuration::from_micros(600),
        controller_overhead: SimDuration::from_micros(600),
        bus_mb_per_s: 10.0,
        cache: OnboardCacheConfig { segments: 2, segment_sectors: 128, read_ahead: 64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_seek_figures_match_paper() {
        let hp = hp_c3653();
        assert!((hp.seek.average().as_millis_f64() - 8.7).abs() < 1e-6);
        assert!((hp.seek.full_stroke().as_millis_f64() - 16.5).abs() < 1e-6);
        let sg = seagate_barracuda_4lp();
        assert!((sg.seek.single().as_millis_f64() - 0.6).abs() < 1e-6);
        assert!((sg.seek.average().as_millis_f64() - 8.0).abs() < 1e-6);
        let qt = quantum_atlas_ii();
        assert!((qt.seek.single().as_millis_f64() - 1.0).abs() < 1e-6);
        assert!((qt.seek.full_stroke().as_millis_f64() - 18.0).abs() < 1e-6);
    }

    #[test]
    fn modern_drives_exceed_10mb_per_s_outer_zone() {
        // The paper: "the subsequent data bandwidth is reasonable (> 10 MB/second)".
        for m in [seagate_barracuda_4lp(), quantum_atlas_ii()] {
            let rate = m.media_rate_at(0);
            assert!(rate > 10.0, "{} outer rate {rate:.1} MB/s", m.name);
        }
    }

    #[test]
    fn c3653_has_double_the_spt_of_c2247() {
        let new = hp_c3653();
        let old = hp_c2247();
        let r = new.geometry.zones[0].sectors_per_track as f64
            / old.geometry.zones[0].sectors_per_track as f64;
        assert!((1.8..2.2).contains(&r), "spt ratio {r}");
    }

    #[test]
    fn testbed_capacity_about_1gb() {
        let m = seagate_st31200();
        let gb = m.capacity_bytes() as f64 / 1e9;
        assert!((0.9..1.2).contains(&gb), "capacity {gb:.2} GB");
    }

    #[test]
    fn rotation_periods() {
        assert_eq!(seagate_barracuda_4lp().revolution().as_nanos(), 8_333_333);
        let st = seagate_st31200().revolution().as_millis_f64();
        assert!((st - 11.088).abs() < 0.01);
    }

    #[test]
    fn tiny_disk_is_small_but_valid() {
        let m = tiny_test_disk();
        let mb = m.capacity_bytes() as f64 / 1e6;
        assert!((30.0..80.0).contains(&mb), "capacity {mb:.1} MB");
    }
}
